"""Tests for the hill-climbing baseline and the genetic-algorithm extension."""

from __future__ import annotations

import pytest

from repro.core.genetic import GeneticConfig, GeneticMinimizer
from repro.core.hillclimb import HillClimbConfig, HillClimbingMinimizer
from repro.core.optimizer import StoppingCriteria
from repro.core.pdsat import PDSAT
from repro.core.predictive import PredictiveFunction
from repro.core.search_space import SearchSpace


@pytest.fixture
def evaluator(geffe_instance):
    return PredictiveFunction(
        geffe_instance.cnf, sample_size=8, cost_measure="propagations", seed=1
    )


@pytest.fixture
def space(geffe_instance):
    return SearchSpace(geffe_instance.start_set)


class TestHillClimbing:
    def test_steepest_descent_improves_on_start(self, evaluator, space):
        minimizer = HillClimbingMinimizer(
            evaluator, space, stopping=StoppingCriteria(max_evaluations=60)
        )
        start = space.start_point()
        start_value = evaluator.evaluate(start).value
        result = minimizer.minimize(start)
        assert result.best_value <= start_value
        assert set(result.best_point) <= set(start)

    def test_first_improvement_strategy(self, evaluator, space):
        minimizer = HillClimbingMinimizer(
            evaluator,
            space,
            config=HillClimbConfig(strategy="first"),
            stopping=StoppingCriteria(max_evaluations=40),
        )
        result = minimizer.minimize()
        assert result.num_evaluations <= 41
        assert result.stop_reason in ("local_minimum", "max_evaluations")

    def test_stops_at_local_minimum(self, evaluator, space):
        minimizer = HillClimbingMinimizer(
            evaluator, space, stopping=StoppingCriteria(max_evaluations=10_000)
        )
        result = minimizer.minimize()
        assert result.stop_reason == "local_minimum"
        # At a local minimum no radius-1 neighbour is better.
        checked = {p.point for p in result.trajectory}
        assert space.is_neighborhood_checked(result.final_center, checked, radius=1)

    def test_rejects_empty_start_point(self, evaluator, space):
        minimizer = HillClimbingMinimizer(evaluator, space)
        with pytest.raises(ValueError):
            minimizer.minimize(frozenset())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HillClimbConfig(strategy="middle")
        with pytest.raises(ValueError):
            HillClimbConfig(radius=0)

    def test_budget_is_respected(self, evaluator, space):
        minimizer = HillClimbingMinimizer(
            evaluator, space, stopping=StoppingCriteria(max_evaluations=5)
        )
        result = minimizer.minimize()
        assert result.num_evaluations <= 6


class TestGenetic:
    def test_finds_a_point_at_least_as_good_as_start(self, evaluator, space):
        minimizer = GeneticMinimizer(
            evaluator,
            space,
            config=GeneticConfig(population_size=8, max_generations=4, seed=3),
            stopping=StoppingCriteria(max_evaluations=80),
        )
        start = space.start_point()
        start_value = evaluator.evaluate(start).value
        result = minimizer.minimize(start)
        assert result.best_value <= start_value
        assert result.best_point

    def test_deterministic_given_seed(self, geffe_instance):
        def run():
            evaluator = PredictiveFunction(
                geffe_instance.cnf, sample_size=6, cost_measure="propagations", seed=2
            )
            space = SearchSpace(geffe_instance.start_set)
            minimizer = GeneticMinimizer(
                evaluator,
                space,
                config=GeneticConfig(population_size=6, max_generations=3, seed=5),
                stopping=StoppingCriteria(max_evaluations=50),
            )
            return minimizer.minimize()

        first, second = run(), run()
        assert first.best_point == second.best_point
        assert first.best_value == second.best_value

    def test_budget_is_respected(self, evaluator, space):
        minimizer = GeneticMinimizer(
            evaluator,
            space,
            config=GeneticConfig(population_size=6, max_generations=50, seed=1),
            stopping=StoppingCriteria(max_evaluations=20),
        )
        result = minimizer.minimize()
        assert result.num_evaluations <= 21
        assert result.stop_reason == "max_evaluations"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GeneticConfig(population_size=1)
        with pytest.raises(ValueError):
            GeneticConfig(tournament_size=99)
        with pytest.raises(ValueError):
            GeneticConfig(crossover_rate=1.5)
        with pytest.raises(ValueError):
            GeneticConfig(mutation_rate=-0.1)
        with pytest.raises(ValueError):
            GeneticConfig(elite_count=12, population_size=12)
        with pytest.raises(ValueError):
            GeneticConfig(max_generations=0)

    def test_rejects_empty_start_point(self, evaluator, space):
        minimizer = GeneticMinimizer(evaluator, space)
        with pytest.raises(ValueError):
            minimizer.minimize(frozenset())


class TestPDSATMethodDispatch:
    def test_hillclimb_method(self, geffe_instance):
        pdsat = PDSAT(geffe_instance, sample_size=6, seed=4)
        report = pdsat.estimate(
            method="hillclimb", stopping=StoppingCriteria(max_evaluations=25)
        )
        assert report.method == "hillclimb"
        assert report.best_decomposition

    def test_genetic_method(self, geffe_instance):
        pdsat = PDSAT(geffe_instance, sample_size=6, seed=4)
        report = pdsat.estimate(
            method="genetic", stopping=StoppingCriteria(max_evaluations=25)
        )
        assert report.method == "genetic"
        assert report.best_decomposition

    def test_unknown_method_rejected(self, geffe_instance):
        pdsat = PDSAT(geffe_instance, sample_size=6)
        with pytest.raises(ValueError):
            pdsat.estimate(method="brute_force")
