"""Correctness tests for the CDCL solver."""

from __future__ import annotations

import pytest

from repro.sat.cdcl import CDCLConfig, CDCLSolver
from repro.sat.dpll import DPLLSolver
from repro.sat.formula import CNF
from repro.sat.random_cnf import pigeonhole, planted_ksat, random_ksat, random_unsat_core
from repro.sat.solver import SolverBudget, SolverStatus, check_model


class TestBasicCases:
    def test_empty_formula_is_sat(self, cdcl):
        result = cdcl.solve(CNF())
        assert result.status is SolverStatus.SAT

    def test_single_unit_clause(self, cdcl):
        result = cdcl.solve(CNF([(3,)]))
        assert result.is_sat
        assert result.model[3] is True

    def test_contradictory_units(self, cdcl):
        result = cdcl.solve(CNF([(1,), (-1,)]))
        assert result.is_unsat

    def test_empty_clause_is_unsat(self, cdcl):
        result = cdcl.solve(CNF([()], num_vars=2))
        assert result.is_unsat

    def test_unique_model(self, cdcl, tiny_sat_cnf):
        result = cdcl.solve(tiny_sat_cnf)
        assert result.is_sat
        assert result.model[1] is True
        assert result.model[2] is False
        assert result.model[3] is True

    def test_small_unsat(self, cdcl, tiny_unsat_cnf):
        assert cdcl.solve(tiny_unsat_cnf).is_unsat

    def test_tautological_clause_is_ignored(self, cdcl):
        result = cdcl.solve(CNF([(1, -1), (2,)]))
        assert result.is_sat
        assert result.model[2] is True

    def test_duplicate_literals_are_handled(self, cdcl):
        result = cdcl.solve(CNF([(1, 1, 2), (-1, -1)]))
        assert result.is_sat
        assert result.model[1] is False

    def test_unconstrained_variables_get_values(self, cdcl):
        cnf = CNF([(1,)], num_vars=5)
        result = cdcl.solve(cnf)
        assert result.is_sat
        assert set(result.model) == {1, 2, 3, 4, 5}

    def test_model_satisfies_formula(self, cdcl):
        cnf = CNF([(1, 2, 3), (-1, -2), (-2, -3), (2, 3)])
        result = cdcl.solve(cnf)
        assert result.is_sat
        assert check_model(cnf, result.model)


class TestAgainstDPLL:
    """Differential testing: CDCL and DPLL must agree on random instances."""

    @pytest.mark.parametrize("seed", range(12))
    def test_random_3sat_at_threshold(self, cdcl, dpll, seed):
        cnf = random_ksat(25, 106, k=3, seed=seed)
        cdcl_result = cdcl.solve(cnf)
        dpll_result = dpll.solve(cnf)
        assert cdcl_result.status == dpll_result.status
        if cdcl_result.is_sat:
            assert check_model(cnf, cdcl_result.model)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_2sat(self, cdcl, dpll, seed):
        cnf = random_ksat(30, 60, k=2, seed=seed)
        assert cdcl.solve(cnf).status == dpll.solve(cnf).status

    @pytest.mark.parametrize("seed", range(6))
    def test_random_4sat(self, cdcl, dpll, seed):
        cnf = random_ksat(20, 180, k=4, seed=seed)
        assert cdcl.solve(cnf).status == dpll.solve(cnf).status


class TestStructuredInstances:
    def test_planted_instances_are_sat(self, cdcl):
        for seed in range(5):
            cnf, _ = planted_ksat(40, 160, seed=seed)
            result = cdcl.solve(cnf)
            assert result.is_sat
            assert check_model(cnf, result.model)

    def test_pigeonhole_unsat(self, cdcl):
        for holes in (2, 3, 4, 5):
            assert cdcl.solve(pigeonhole(holes)).is_unsat

    def test_implication_chain_unsat(self, cdcl):
        for seed in range(5):
            assert cdcl.solve(random_unsat_core(30, seed=seed)).is_unsat

    def test_xor_chain(self, cdcl):
        # x1 xor x2 = 1, x2 xor x3 = 1, x3 xor x1 = 1 is unsatisfiable.
        cnf = CNF(
            [
                (1, 2), (-1, -2),
                (2, 3), (-2, -3),
                (3, 1), (-3, -1),
            ]
        )
        assert cdcl.solve(cnf).is_unsat


class TestAssumptions:
    def test_assumption_fixes_variable(self, cdcl):
        cnf = CNF([(1, 2)])
        result = cdcl.solve(cnf, assumptions=[-1])
        assert result.is_sat
        assert result.model[1] is False
        assert result.model[2] is True

    def test_conflicting_assumptions_give_unsat(self, cdcl):
        cnf = CNF([(1, 2)])
        assert cdcl.solve(cnf, assumptions=[-1, -2]).is_unsat

    def test_assumption_conflicting_with_unit(self, cdcl):
        cnf = CNF([(5,)])
        assert cdcl.solve(cnf, assumptions=[-5]).is_unsat

    def test_assumptions_equal_unit_clauses(self, cdcl):
        cnf = random_ksat(20, 85, seed=3)
        assumption = [1, -2, 3]
        with_assumptions = cdcl.solve(cnf, assumptions=assumption)
        with_units = cdcl.solve(cnf.with_unit_clauses({1: True, 2: False, 3: True}))
        assert with_assumptions.status == with_units.status

    def test_flipping_model_variable(self, cdcl):
        cnf = CNF([(1,), (-1, 2)])
        base = cdcl.solve(cnf)
        assert base.is_sat
        flipped = cdcl.solve(cnf, assumptions=[-2])
        assert flipped.is_unsat


class TestBudgets:
    def test_conflict_budget_returns_unknown(self, cdcl):
        result = cdcl.solve(pigeonhole(8), budget=SolverBudget(max_conflicts=20))
        assert result.status is SolverStatus.UNKNOWN
        assert result.stats.conflicts >= 20

    def test_decision_budget(self, cdcl):
        result = cdcl.solve(pigeonhole(8), budget=SolverBudget(max_decisions=10))
        assert result.status is SolverStatus.UNKNOWN

    def test_propagation_budget(self, cdcl):
        result = cdcl.solve(pigeonhole(8), budget=SolverBudget(max_propagations=50))
        assert result.status is SolverStatus.UNKNOWN

    def test_generous_budget_still_solves(self, cdcl):
        result = cdcl.solve(pigeonhole(4), budget=SolverBudget(max_conflicts=10_000))
        assert result.is_unsat


class TestDeterminism:
    def test_same_input_same_counters(self):
        cnf = random_ksat(40, 170, seed=11)
        first = CDCLSolver().solve(cnf)
        second = CDCLSolver().solve(cnf)
        assert first.status == second.status
        assert first.stats.conflicts == second.stats.conflicts
        assert first.stats.decisions == second.stats.decisions
        assert first.stats.propagations == second.stats.propagations

    def test_stats_are_populated(self, cdcl):
        result = cdcl.solve(random_ksat(30, 128, seed=2))
        assert result.stats.propagations > 0
        assert result.stats.wall_time > 0

    def test_conflict_activity_reported_for_all_variables(self, cdcl):
        cnf = random_ksat(25, 107, seed=4)
        result = cdcl.solve(cnf)
        assert set(result.conflict_activity) == set(range(1, 26))
        assert all(value >= 0 for value in result.conflict_activity.values())


class TestConfigurations:
    @pytest.mark.parametrize(
        "config",
        [
            CDCLConfig(use_luby_restarts=False),
            CDCLConfig(phase_saving=False),
            CDCLConfig(clause_minimization=False),
            CDCLConfig(default_phase=True),
            CDCLConfig(restart_base=20),
            CDCLConfig(var_decay=0.8, clause_decay=0.99),
        ],
    )
    def test_variants_agree_with_reference(self, config):
        reference = DPLLSolver()
        solver = CDCLSolver(config)
        for seed in range(4):
            cnf = random_ksat(22, 94, seed=seed)
            assert solver.solve(cnf).status == reference.solve(cnf).status

    def test_learned_clause_reduction_happens_on_long_runs(self):
        solver = CDCLSolver(CDCLConfig(learntsize_factor=0.01))
        result = solver.solve(pigeonhole(6))
        assert result.is_unsat
        assert result.stats.deleted_clauses > 0
