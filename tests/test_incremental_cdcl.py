"""Tests for the incremental-assumption mode of the CDCL solver.

The contract under test (see the module docstring of
:mod:`repro.sat.cdcl.solver`): one ``load()`` builds the clause database, every
subsequent ``solve(assumptions=...)`` reuses it; statuses always agree with a
fresh solver; learned clauses, activities and phases persist across calls while
``stats`` restarts per call; budgets bound individual calls and leave the
solver reusable.
"""

from __future__ import annotations

import random

import pytest

from repro.sat.cdcl import CDCLSolver
from repro.sat.formula import CNF
from repro.sat.random_cnf import pigeonhole, planted_ksat, random_ksat
from repro.sat.solver import SolverBudget, SolverStatus, check_model


def _random_assumptions(rng: random.Random, num_vars: int, max_len: int = 6) -> list[int]:
    variables = rng.sample(range(1, num_vars + 1), rng.randint(0, max_len))
    return [v if rng.random() < 0.5 else -v for v in variables]


class TestAgreementWithFreshSolver:
    """Incremental solves must reach the same verdicts as one-shot solves."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_3sat_under_random_assumptions(self, seed):
        num_vars = 25
        cnf = random_ksat(num_vars, 105, k=3, seed=seed)
        incremental = CDCLSolver().load(cnf)
        rng = random.Random(1000 + seed)
        for _ in range(12):
            assumptions = _random_assumptions(rng, num_vars)
            inc_result = incremental.solve(assumptions=assumptions)
            fresh_result = CDCLSolver().solve(cnf, assumptions=assumptions)
            assert inc_result.status == fresh_result.status
            if inc_result.status is SolverStatus.SAT:
                assert check_model(cnf, inc_result.model)
                assert all(
                    inc_result.model[abs(lit)] is (lit > 0) for lit in assumptions
                )

    def test_planted_instance_stays_sat_without_assumptions(self):
        cnf, _ = planted_ksat(30, 120, k=3, seed=2)
        solver = CDCLSolver().load(cnf)
        for _ in range(5):
            result = solver.solve()
            assert result.status is SolverStatus.SAT
            assert check_model(cnf, result.model)

    def test_globally_unsat_is_remembered(self):
        cnf = CNF([(1, 2), (-1, 2), (1, -2), (-1, -2)])
        solver = CDCLSolver().load(cnf)
        assert solver.solve().status is SolverStatus.UNSAT
        followup = solver.solve(assumptions=[1])
        assert followup.status is SolverStatus.UNSAT
        assert followup.stats.conflicts == 0  # answered from the _ok flag

    def test_assumption_conflicting_with_learned_unit(self):
        # (x1) forces x1 at level 0; assuming -1 must yield UNSAT-under-
        # assumptions without corrupting state for the next call.
        cnf = CNF([(1,), (1, 2), (-2, 3)])
        solver = CDCLSolver().load(cnf)
        assert solver.solve(assumptions=[-1]).status is SolverStatus.UNSAT
        result = solver.solve(assumptions=[3])
        assert result.status is SolverStatus.SAT
        assert result.model[1] is True


class TestStateRetention:
    def test_learned_clauses_survive_across_calls(self):
        cnf = random_ksat(40, 170, k=3, seed=1)
        solver = CDCLSolver().load(cnf)
        first = solver.solve(assumptions=[1, -2, 3])
        assert first.stats.conflicts > 0
        learnts_after_first = len(solver._learnts)
        assert learnts_after_first > 0
        second = solver.solve(assumptions=[1, -2, 3])
        # The same sub-problem re-solved against the retained clause database
        # needs (weakly) fewer conflicts, and the database was not rebuilt.
        assert second.status == first.status
        assert second.stats.conflicts <= first.stats.conflicts
        assert len(solver._learnts) >= learnts_after_first

    def test_conflict_activity_is_per_call(self):
        # Activity (like stats) must report only the current call's bumps, not
        # the cumulative VSIDS state retained across calls — otherwise the
        # predictive function double-counts early samples' activity.
        cnf = random_ksat(40, 170, k=3, seed=1)
        solver = CDCLSolver().load(cnf)
        first = solver.solve(assumptions=[1, -2, 3])
        assert sum(first.stats.conflicts for _ in [0]) > 0
        second = solver.solve(assumptions=[1, -2, 3])
        # The repeat call resolves via retained clauses with no new conflicts,
        # so its per-call activity must be (near) zero, not >= the first call's.
        assert second.stats.conflicts == 0
        assert sum(second.conflict_activity.values()) == 0.0

    def test_conflict_activity_comparable_across_calls(self):
        # Deltas are normalised by the call-start var_inc, so a bump in a late
        # call weighs like a bump in an early call instead of exploding like
        # (1/var_decay)^total_conflicts.
        cnf = random_ksat(40, 170, k=3, seed=5)
        solver = CDCLSolver().load(cnf)
        solver._var_inc = 1e50  # as if thousands of conflicts had accumulated
        result = solver.solve(assumptions=[1, -2, 3])
        if result.stats.conflicts > 0:
            assert 0 < max(result.conflict_activity.values()) < 1e6

    def test_conflict_activity_survives_vsids_rescale(self):
        # When the 1e100 activity rescale fires mid-call, the per-call delta
        # must be computed in the rescaled frame — not clamp to all zeros.
        cnf = random_ksat(60, 255, k=3, seed=2)
        solver = CDCLSolver().load(cnf)
        solver._var_inc = 9.9e99  # force a rescale on the first bump
        result = solver.solve(assumptions=[1, -2, 3, -4, 5, -6])
        assert solver._activity_rescales >= 1
        if result.stats.conflicts > 0:
            assert any(v > 0 for v in result.conflict_activity.values())

    def test_stats_are_per_call(self):
        cnf = random_ksat(30, 126, k=3, seed=4)
        solver = CDCLSolver().load(cnf)
        first = solver.solve()
        second = solver.solve()
        # A second identical call is pure propagation/decisions, not a
        # continuation of the first call's counters.
        assert second.stats.conflicts <= first.stats.conflicts
        assert second.stats.propagations <= first.stats.propagations

    def test_passing_a_cnf_resets_state(self):
        sat_cnf = CNF([(1, 2)])
        unsat_cnf = CNF([(1,), (-1,)])
        solver = CDCLSolver()
        assert solver.solve(unsat_cnf).status is SolverStatus.UNSAT
        # A fresh CNF argument must rebuild from scratch, clearing the _ok flag.
        assert solver.solve(sat_cnf).status is SolverStatus.SAT
        assert solver.loaded_cnf is sat_cnf

    def test_solve_without_load_raises(self):
        with pytest.raises(ValueError):
            CDCLSolver().solve(assumptions=[1])


class TestBudgets:
    def test_budget_limited_call_returns_unknown_then_resumes(self):
        cnf = pigeonhole(6)
        solver = CDCLSolver().load(cnf)
        limited = solver.solve(budget=SolverBudget(max_conflicts=5))
        assert limited.status is SolverStatus.UNKNOWN
        assert limited.stats.conflicts == 5
        # The budget bounds the call, not the solver: an unlimited follow-up
        # call finishes the refutation (helped by the retained learnt clauses).
        finished = solver.solve()
        assert finished.status is SolverStatus.UNSAT

    def test_budget_is_per_call_not_cumulative(self):
        cnf = pigeonhole(5)
        solver = CDCLSolver().load(cnf)
        budget = SolverBudget(max_conflicts=3)
        for _ in range(4):
            result = solver.solve(budget=budget)
            if result.status is SolverStatus.UNSAT:
                break
            assert result.status is SolverStatus.UNKNOWN
            assert result.stats.conflicts <= 3

    def test_interrupted_call_keeps_solver_consistent(self):
        # Interleave budget-limited UNKNOWN calls with decided calls and check
        # the verdicts still match a fresh solver.
        cnf = random_ksat(35, 150, k=3, seed=9)
        solver = CDCLSolver().load(cnf)
        rng = random.Random(7)
        for index in range(10):
            assumptions = _random_assumptions(rng, 35)
            if index % 2 == 0:
                solver.solve(assumptions=assumptions, budget=SolverBudget(max_conflicts=1))
            else:
                inc = solver.solve(assumptions=assumptions)
                fresh = CDCLSolver().solve(cnf, assumptions=assumptions)
                assert inc.status == fresh.status


class TestAssumptionEdgeCases:
    """The boundary inputs of the incremental contract."""

    def test_empty_assumption_list_solves_the_bare_formula(self):
        cnf, _ = planted_ksat(20, 80, k=3, seed=4)
        solver = CDCLSolver().load(cnf)
        for assumptions in ([], (), None):
            result = (
                solver.solve() if assumptions is None
                else solver.solve(assumptions=assumptions)
            )
            assert result.status is SolverStatus.SAT
            assert check_model(cnf, result.model)

    def test_mutually_contradictory_assumptions_are_unsat_not_global(self):
        cnf, _ = planted_ksat(15, 60, k=3, seed=5)
        solver = CDCLSolver().load(cnf)
        contradiction = solver.solve(assumptions=[3, -3])
        assert contradiction.status is SolverStatus.UNSAT
        # The contradiction lived in the assumptions, not the formula: the
        # solver must stay usable and still find the instance satisfiable.
        recovered = solver.solve()
        assert recovered.status is SolverStatus.SAT
        assert check_model(cnf, recovered.model)

    def test_repeated_and_redundant_assumptions_are_harmless(self):
        cnf, _ = planted_ksat(15, 60, k=3, seed=6)
        solver = CDCLSolver().load(cnf)
        result = solver.solve(assumptions=[2, 2, 2])
        fresh = CDCLSolver().solve(cnf, assumptions=[2])
        assert result.status == fresh.status
        if result.status is SolverStatus.SAT:
            assert result.model[2] is True

    def test_assumptions_over_unknown_variables_raise_value_error(self):
        cnf = CNF([(1, 2), (-1, 2)])
        solver = CDCLSolver().load(cnf)
        with pytest.raises(ValueError, match="outside the loaded formula"):
            solver.solve(assumptions=[5])
        with pytest.raises(ValueError, match="outside the loaded formula"):
            solver.solve(assumptions=[-99])
        with pytest.raises(ValueError, match="outside the loaded formula"):
            solver.solve(assumptions=[0])
        # The rejected calls must not have corrupted the solver.
        assert solver.solve(assumptions=[2]).status is SolverStatus.SAT

    def test_one_shot_solve_validates_assumptions_too(self):
        cnf = CNF([(1, 2)])
        with pytest.raises(ValueError, match="outside the loaded formula"):
            CDCLSolver().solve(cnf, assumptions=[7])

    def test_solve_after_global_unsat_is_memoised_with_zero_work(self):
        cnf = CNF([(1,), (-1,)], num_vars=2)
        solver = CDCLSolver().load(cnf)
        first = solver.solve()
        assert first.status is SolverStatus.UNSAT
        # Every later call — with or without assumptions — answers UNSAT from
        # the memoised level-0 conflict without doing any search work.
        for assumptions in ([], [2], [-2], [1, 2]):
            again = solver.solve(assumptions=assumptions)
            assert again.status is SolverStatus.UNSAT
            assert again.stats.conflicts == 0
            assert again.stats.decisions == 0
            assert again.stats.propagations == 0
