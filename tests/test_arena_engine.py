"""Unit tests for the flat-array arena internals of :class:`CDCLSolver`.

The differential fuzz suite establishes that the arena engine and the legacy
engine reach identical verdicts; this module tests the arena-specific
machinery directly: LBD-aware learned-clause reduction, phase saving, the
pinned-false binary sentinel, the clause-arena garbage collector and the
array-indexed watcher layout.
"""

from __future__ import annotations

from repro.api.registry import get_solver
from repro.sat.cdcl import CDCLConfig, CDCLSolver, LegacyCDCLSolver
from repro.sat.cdcl.solver import _FALSE, _elit, _ilit
from repro.sat.formula import CNF
from repro.sat.random_cnf import pigeonhole, random_ksat
from repro.sat.solver import SolverStats, SolverStatus, check_model


def _clause_lits(solver: CDCLSolver, cref: int) -> list[int]:
    """Read a clause back from the arena as external literals."""
    arena = solver._arena
    return [_elit(arena[cref + 1 + i]) for i in range(arena[cref])]


def _add_learnt(solver: CDCLSolver, lits: list[int], lbd: int, activity: float) -> int:
    """Manufacture a learnt clause directly in the arena (test helper)."""
    cref = solver._alloc([_ilit(lit) for lit in lits])
    solver._learnts.append(cref)
    solver._cla_activity[cref] = activity
    solver._cla_lbd[cref] = lbd
    solver._attach(cref)
    return cref


class TestLiteralEncoding:
    def test_round_trip(self):
        for lit in (1, -1, 7, -7, 123, -123):
            assert _elit(_ilit(lit)) == lit

    def test_negation_is_xor_one(self):
        for lit in (1, -1, 9, -9):
            assert _ilit(-lit) == _ilit(lit) ^ 1


class TestLBDReduction:
    def _solver_with_learnts(self) -> CDCLSolver:
        # Two long problem clauses so the learnts are clearly separate.
        cnf = CNF([(1, 2, 3, 4, 5), (4, 5, 6, 7, 8)], num_vars=10)
        solver = CDCLSolver().load(cnf)
        solver._stats = SolverStats()
        return solver

    def test_high_lbd_clauses_are_deleted_first(self):
        solver = self._solver_with_learnts()
        glue = _add_learnt(solver, [1, 2, 3], lbd=2, activity=0.0)
        weak = _add_learnt(solver, [4, 5, 6], lbd=9, activity=0.0)
        medium = _add_learnt(solver, [7, 8, 9], lbd=5, activity=1.0)
        strong = _add_learnt(solver, [1, 5, 9], lbd=3, activity=9.0)
        solver._reduce_db()  # target: delete 4 // 2 = 2 clauses, worst first
        remaining = {cref for cref in solver._learnts}
        assert glue in remaining, "glue clauses (lbd <= 2) must never be deleted"
        assert weak not in remaining, "the highest-LBD clause goes first"
        assert medium not in remaining
        assert strong in remaining
        assert solver._stats.deleted_clauses == 2
        # Metadata of deleted clauses is dropped with them.
        assert set(solver._cla_lbd) == remaining
        assert set(solver._cla_activity) == remaining

    def test_binary_learnts_are_never_deleted(self):
        solver = self._solver_with_learnts()
        binary = _add_learnt(solver, [1, 2], lbd=9, activity=0.0)
        for offset in range(4):
            _add_learnt(solver, [3 + offset, 6, 9], lbd=8, activity=0.0)
        solver._reduce_db()
        assert binary in solver._learnts

    def test_reduction_fires_end_to_end_and_keeps_answers_right(self):
        solver = CDCLSolver(CDCLConfig(learntsize_factor=0.01))
        result = solver.solve(pigeonhole(6))
        assert result.status is SolverStatus.UNSAT
        assert result.stats.deleted_clauses > 0
        # Every surviving learnt clause has its LBD on record.
        assert set(solver._cla_lbd) == set(solver._learnts)
        assert all(lbd >= 1 for lbd in solver._cla_lbd.values())


class TestPhaseSaving:
    def test_decisions_follow_the_saved_phase(self):
        cnf = CNF([(1, 2)], num_vars=2)
        solver = CDCLSolver().load(cnf)
        solver._saved_phase[1] = True
        assert solver.solve().model[1] is True
        # solve() saves the previous trail's phases while backtracking, so the
        # injected phase must go in after the trail is rolled back.
        solver._cancel_until(0)
        solver._saved_phase[1] = False
        assert solver.solve().model[1] is False

    def test_backtracking_records_the_last_assignment(self):
        cnf = CNF([(1, 2)], num_vars=2)
        solver = CDCLSolver().load(cnf)
        # Under the assumption -1 the model fixes 1 = False; the phase sticks.
        assert solver.solve(assumptions=[-1]).model[1] is False
        followup = solver.solve()
        assert followup.model[1] is False

    def test_phase_saving_off_uses_the_default_phase(self):
        cnf = CNF([(1, 2)], num_vars=3)
        solver = CDCLSolver(CDCLConfig(phase_saving=False, default_phase=True))
        result = solver.solve(cnf)
        # Unconstrained variable 3 and first decisions take the default phase.
        assert result.model[3] is True
        assert result.model[1] is True

    def test_saved_phases_persist_across_incremental_calls(self):
        cnf = random_ksat(25, 80, k=3, seed=5)  # under-constrained: SAT
        solver = CDCLSolver().load(cnf)
        first = solver.solve()
        second = solver.solve()
        assert first.status is SolverStatus.SAT
        assert second.model == first.model  # phases replay the same model


class TestBinarySentinel:
    def test_sentinel_literal_is_pinned_false(self):
        cnf = CNF([(1, 2), (-1, 2)], num_vars=2)
        solver = CDCLSolver().load(cnf)
        assert solver._values[0] == _FALSE
        solver.solve()
        assert solver._values[0] == _FALSE

    def test_binary_chain_propagates_without_decisions(self):
        cnf = CNF([(1,), (-1, 2), (-2, 3), (-3, 4)])
        result = CDCLSolver().solve(cnf)
        assert result.is_sat
        assert result.stats.decisions == 0
        assert all(result.model[v] is True for v in range(1, 5))

    def test_binary_conflict_is_detected(self):
        cnf = CNF([(1,), (-1, 2), (-2,)])
        assert CDCLSolver().solve(cnf).is_unsat


class TestGarbageCollection:
    def test_compaction_preserves_clauses_and_remaps_metadata(self):
        cnf = CNF([(1, 2, 3, 4, 5), (4, 5, 6, 7, 8)], num_vars=10)
        solver = CDCLSolver().load(cnf)
        solver._stats = SolverStats()
        for offset in range(6):
            _add_learnt(solver, [1 + offset, 5, 9], lbd=4 + offset, activity=float(offset))
        before = {
            "clauses": [_clause_lits(solver, cref) for cref in solver._clauses],
            "learnts": [_clause_lits(solver, cref) for cref in solver._learnts],
            "lbds": sorted(solver._cla_lbd.values()),
        }
        solver._reduce_db()  # deletes 3, leaving dead ints in the arena
        kept_learnts = [_clause_lits(solver, cref) for cref in solver._learnts]
        arena_before_gc = len(solver._arena)
        solver._garbage_collect()
        assert len(solver._arena) < arena_before_gc
        assert solver._wasted == 0
        assert [_clause_lits(solver, cref) for cref in solver._clauses] == before["clauses"]
        assert [_clause_lits(solver, cref) for cref in solver._learnts] == kept_learnts
        assert set(solver._cla_lbd) == set(solver._learnts)
        # The rebuilt watches still drive a correct solve.
        result = solver.solve()
        assert result.status is SolverStatus.SAT
        assert check_model(cnf, result.model)

    def test_gc_triggers_during_long_runs_and_stays_correct(self):
        triggered = []

        class CountingGC(CDCLSolver):
            def _garbage_collect(self):
                triggered.append(len(self._arena))
                super()._garbage_collect()

        solver = CountingGC(CDCLConfig(learntsize_factor=0.01))
        result = solver.solve(pigeonhole(6))
        assert result.status is SolverStatus.UNSAT
        assert triggered, "repeated reductions must eventually trigger compaction"

    def test_incremental_calls_survive_gc(self):
        cnf = random_ksat(40, 170, k=3, seed=3)
        solver = CDCLSolver(CDCLConfig(learntsize_factor=0.01)).load(cnf)
        legacy = LegacyCDCLSolver().load(cnf)
        for assumptions in ([1, -2], [3, 4], [-1], [], [5, -6, 7]):
            arena_result = solver.solve(assumptions=assumptions)
            legacy_result = legacy.solve(assumptions=assumptions)
            assert arena_result.status == legacy_result.status


class TestWatcherLayout:
    def test_watches_are_array_indexed_by_literal(self):
        cnf = CNF([(1, 2, 3), (-1, -2), (1, 2, 3, 4)], num_vars=5)
        solver = CDCLSolver().load(cnf)
        expected = (cnf.num_vars + 1) * 2
        assert len(solver._tern_watches) == expected
        assert len(solver._watches) == expected
        # The ternary clause is watched (as trigger lists) on all 3 literals,
        # the binary on both, the 4-clause on its first two literals only.
        tern_entries = sum(len(wl) for wl in solver._tern_watches)
        assert tern_entries == 3 + 2  # ternary triples + binary-with-sentinel
        long_entries = sum(len(wl) for wl in solver._watches) // 2
        assert long_entries == 2
        assert solver._has_long

    def test_short_clause_databases_skip_the_long_path(self):
        solver = CDCLSolver().load(CNF([(1, 2, 3), (-1, -2)], num_vars=3))
        assert not solver._has_long
        assert all(not wl for wl in solver._watches)

    def test_forced_general_path_matches_fast_drain(self):
        # _propagate's binary/ternary visit logic exists twice: in the
        # fast drain (no long clauses) and in the mixed path.  Forcing
        # _has_long on a short-clause-only database routes the same formulas
        # through the mixed path (whose long lists are all empty), so the
        # two copies must produce bit-identical counters and verdicts.
        for seed in range(20):
            cnf = random_ksat(20, 85, k=3, seed=seed)
            fast = CDCLSolver().load(cnf)
            forced = CDCLSolver().load(cnf)
            assert not forced._has_long
            forced._has_long = True  # empty long lists, general path
            fast_result = fast.solve()
            forced_result = forced.solve()
            assert fast_result.status == forced_result.status
            assert fast_result.stats.propagations == forced_result.stats.propagations
            assert fast_result.stats.conflicts == forced_result.stats.conflicts
            assert fast_result.stats.decisions == forced_result.stats.decisions
            assert fast_result.model == forced_result.model

    def test_reload_rebuilds_the_database(self):
        solver = CDCLSolver()
        first = CNF([(1, 2)], num_vars=2)
        second = CNF([(1,), (-1,)], num_vars=1)
        assert solver.load(first).solve().is_sat
        assert solver.load(second).solve().is_unsat
        assert solver.loaded_cnf is second


class TestEngineRegistry:
    def test_default_engine_is_the_arena(self):
        assert isinstance(get_solver("cdcl")(), CDCLSolver)

    def test_legacy_engine_is_registered(self):
        solver = get_solver("cdcl-legacy")()
        assert isinstance(solver, LegacyCDCLSolver)
        assert solver.solve(CNF([(1,), (-1,)])).is_unsat

    def test_both_factories_accept_config_options(self):
        arena = get_solver("cdcl")(restart_base=32)
        legacy = get_solver("cdcl-legacy")(restart_base=32)
        assert arena.config.restart_base == 32
        assert legacy.config.restart_base == 32
