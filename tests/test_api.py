"""Tests for the unified experiment layer (:mod:`repro.api`)."""

from __future__ import annotations

import json

import pytest

from repro.api import (
    BackendSpec,
    Experiment,
    ExperimentConfig,
    InstanceSpec,
    MinimizerSpec,
    SolverSpec,
)
from repro.api.measures import resolve_cost_measure
from repro.api.registry import (
    DuplicateNameError,
    Registry,
    UnknownNameError,
    get_backend,
    get_cipher,
    get_minimizer,
    get_partitioner,
    get_solver,
    list_backends,
    list_ciphers,
    list_cost_measures,
    list_minimizers,
    list_partitioners,
    list_solvers,
)
from repro.sat.solver import SolverStats


class TestRegistry:
    def test_register_get_and_list(self):
        registry = Registry("widget")
        registry.add("alpha", 1, description="first")
        registry.register("beta")(2)
        assert registry.get("alpha") == 1
        assert registry.get("beta") == 2
        assert registry.names() == ["alpha", "beta"]
        assert "alpha" in registry
        assert len(registry) == 2

    def test_decorator_returns_object_unchanged(self):
        registry = Registry("widget")

        @registry.register("thing")
        def factory():
            return 42

        assert factory() == 42
        assert registry.get("thing") is factory

    def test_duplicate_name_rejected(self):
        registry = Registry("widget")
        registry.add("alpha", 1)
        with pytest.raises(DuplicateNameError):
            registry.add("alpha", 2)
        # and the original registration is untouched
        assert registry.get("alpha") == 1

    def test_duplicate_allowed_with_replace(self):
        registry = Registry("widget")
        registry.add("alpha", 1)
        registry.add("alpha", 2, replace=True)
        assert registry.get("alpha") == 2

    def test_unknown_name_is_value_error_listing_choices(self):
        registry = Registry("widget")
        registry.add("alpha", 1)
        with pytest.raises(UnknownNameError, match="alpha"):
            registry.get("nope")
        with pytest.raises(ValueError):
            registry.get("nope")

    def test_builtins_are_registered(self):
        assert "geffe-tiny" in list_ciphers()
        assert "cdcl" in list_solvers()
        assert {"tabu", "annealing", "hillclimb", "genetic"} <= set(list_minimizers())
        assert {"guiding-path", "scattering", "cube-and-conquer"} <= set(list_partitioners())
        assert {"serial", "process-pool", "simulated-cluster", "volunteer-grid"} <= set(
            list_backends()
        )
        assert {"conflicts", "decisions", "propagations", "wall_time", "weighted"} <= set(
            list_cost_measures()
        )

    def test_builtin_factories_build(self):
        generator = get_cipher("geffe-tiny")()
        assert generator.state_size > 0
        solver = get_solver("cdcl")()
        assert hasattr(solver, "solve")
        assert callable(get_minimizer("tabu"))
        assert callable(get_partitioner("scattering"))
        backend = get_backend("serial")()
        assert backend.name == "serial"


class TestCostMeasures:
    def test_stats_cost_routes_through_registry(self):
        stats = SolverStats(conflicts=1, decisions=2, propagations=3, wall_time=0.5)
        assert stats.cost("conflicts") == 1.0
        assert stats.cost("decisions") == 2.0
        assert stats.cost("propagations") == 3.0
        assert stats.cost("wall_time") == 0.5
        assert stats.cost("weighted") == 3.0 + 10.0 * 1 + 2.0 * 2
        assert resolve_cost_measure("weighted")(stats) == stats.cost("weighted")

    def test_unknown_measure_error_is_consistent(self, geffe_instance):
        from repro.core.predictive import PredictiveFunction

        stats = SolverStats()
        with pytest.raises(UnknownNameError):
            stats.cost("bogus")
        with pytest.raises(UnknownNameError):
            PredictiveFunction(geffe_instance.cnf, cost_measure="bogus")


class TestConfigRoundTrip:
    def test_default_config_round_trips(self):
        cfg = ExperimentConfig()
        assert ExperimentConfig.from_dict(cfg.to_dict()) == cfg
        assert ExperimentConfig.from_json(cfg.to_json()) == cfg

    def test_fully_populated_config_round_trips(self):
        cfg = ExperimentConfig(
            instance=InstanceSpec(cipher="bivium-tiny", seed=7, keystream_length=20, known_bits=2),
            solver=SolverSpec(name="cdcl", options={"var_decay": 0.9}),
            minimizer=MinimizerSpec(
                name="annealing", max_evaluations=30, max_seconds=5.0, options={"max_radius": 2}
            ),
            backend=BackendSpec(name="simulated-cluster", options={"cores": 16}),
            sample_size=25,
            cost_measure="conflicts",
            seed=3,
            decomposition=(4, 5, 6),
            decomposition_size=8,
            stop_on_sat=True,
            max_family_bits=12,
            technique="scattering",
            parts=6,
            members=4,
        )
        round_tripped = ExperimentConfig.from_dict(cfg.to_dict())
        assert round_tripped == cfg
        assert ExperimentConfig.from_json(cfg.to_json()) == cfg
        # the JSON form is plain data
        json.loads(cfg.to_json())

    def test_decomposition_lists_normalised_to_tuples(self):
        cfg = ExperimentConfig(decomposition=[3, 1, 2])
        assert cfg.decomposition == (3, 1, 2)
        assert cfg == ExperimentConfig.from_dict(cfg.to_dict())

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown ExperimentConfig keys"):
            ExperimentConfig.from_dict({"samplesize": 10})
        with pytest.raises(ValueError, match="unknown InstanceSpec keys"):
            InstanceSpec.from_dict({"cipherr": "geffe"})

    def test_replace_produces_new_config(self):
        cfg = ExperimentConfig()
        other = cfg.replace(sample_size=99)
        assert other.sample_size == 99
        assert cfg.sample_size == 50


@pytest.fixture(scope="module")
def tiny_decomposition():
    instance = InstanceSpec(cipher="geffe-tiny", seed=1).build()
    return tuple(instance.start_set[:4])


class TestExperimentFacade:
    BACKENDS = [
        ("serial", {}),
        ("process-pool", {"processes": 1}),
        ("simulated-cluster", {"cores": 4}),
        ("volunteer-grid", {"num_hosts": 4, "seed": 3}),
    ]

    def _config(self, backend: str, options: dict, decomposition) -> ExperimentConfig:
        return ExperimentConfig(
            instance=InstanceSpec(cipher="geffe-tiny", seed=1),
            backend=BackendSpec(name=backend, options=options),
            decomposition=decomposition,
            sample_size=8,
        )

    @pytest.mark.parametrize("backend,options", BACKENDS)
    def test_solve_on_every_backend(self, backend, options, tiny_decomposition):
        result = Experiment.from_config(
            self._config(backend, options, tiny_decomposition)
        ).solve()
        assert result.status == "SAT"
        assert result.data["num_subproblems"] == 2 ** len(tiny_decomposition)
        assert len(result.data["statuses"]) == result.data["num_subproblems"]
        assert result.data["recovered_state"] is not None
        json.loads(result.to_json())  # JSON-serialisable end to end

    def test_backends_agree_on_outcomes_and_costs(self, tiny_decomposition):
        baseline = None
        for backend, options in self.BACKENDS:
            result = Experiment.from_config(
                self._config(backend, options, tiny_decomposition)
            ).solve()
            observed = (result.status, result.data["statuses"], result.data["costs"])
            if baseline is None:
                baseline = observed
            else:
                assert observed == baseline

    def test_estimate_then_solve_run(self):
        cfg = ExperimentConfig(
            instance=InstanceSpec(cipher="geffe-tiny", seed=2),
            minimizer=MinimizerSpec(name="tabu", max_evaluations=5),
            sample_size=8,
            decomposition_size=4,
        )
        result = Experiment.from_config(cfg).run()
        assert result.kind == "run"
        assert result.data["estimate"]["method"] == "tabu"
        assert len(result.data["solve"]["statuses"]) <= 2**4
        assert result.status in ("SAT", "UNSAT", "UNKNOWN")

    def test_progress_events_are_emitted(self, tiny_decomposition):
        events = []
        experiment = Experiment.from_config(
            self._config("serial", {}, tiny_decomposition), progress=events.append
        )
        experiment.solve()
        phases = {event.phase for event in events}
        assert "solve" in phases
        assert any(event.completed == 2 ** len(tiny_decomposition) for event in events)

    def test_family_size_guard(self, tiny_decomposition):
        cfg = self._config("serial", {}, tiny_decomposition).replace(max_family_bits=2)
        with pytest.raises(ValueError, match="max_family_bits"):
            Experiment.from_config(cfg).solve()

    def test_stop_on_sat_truncates_identically(self, tiny_decomposition):
        runs = []
        for backend, options in [("serial", {}), ("process-pool", {"processes": 1})]:
            cfg = self._config(backend, options, tiny_decomposition).replace(stop_on_sat=True)
            result = Experiment.from_config(cfg).solve()
            runs.append(result.data["statuses"])
        assert runs[0] == runs[1]
        assert runs[0][-1] == "SAT"

    def test_partition_and_portfolio(self):
        cfg = ExperimentConfig(
            instance=InstanceSpec(cipher="geffe-tiny", seed=2),
            technique="scattering",
            parts=4,
            members=3,
        )
        experiment = Experiment.from_config(cfg)
        partition = experiment.partition(solve_parts=True)
        assert partition.kind == "partition"
        assert partition.data["num_cubes"] >= 2
        assert len(partition.data["costs"]) == partition.data["num_cubes"]
        portfolio = experiment.portfolio()
        assert portfolio.kind == "portfolio"
        assert len(portfolio.data["members"]) == 3
        assert portfolio.status == "SAT"

    def test_from_file(self, tmp_path):
        cfg = self._config("serial", {}, (4, 5))
        path = tmp_path / "exp.json"
        path.write_text(cfg.to_json())
        experiment = Experiment.from_file(path)
        assert experiment.config == cfg


class TestBackwardCompatibility:
    def test_legacy_imports_still_work(self):
        from repro import (  # noqa: F401
            CNF,
            PDSAT,
            CDCLSolver,
            DecompositionFamily,
            DecompositionSet,
            EstimationReport,
            GeneticMinimizer,
            HillClimbingMinimizer,
            PredictionResult,
            PredictiveFunction,
            SearchSpace,
            SimulatedAnnealingMinimizer,
            SolvingReport,
            TabuSearchMinimizer,
            make_inversion_instance,
            parse_dimacs,
            write_dimacs,
        )

    def test_cli_legacy_aliases(self):
        from repro.cli import CIPHER_PRESETS, METHOD_CHOICES

        assert "geffe-tiny" in CIPHER_PRESETS
        assert set(METHOD_CHOICES) == set(list_minimizers())
        generator = CIPHER_PRESETS["geffe-tiny"]()
        assert generator.state_size > 0

    def test_pdsat_estimate_unknown_method_raises_value_error(self, geffe_instance):
        from repro.core.pdsat import PDSAT

        pdsat = PDSAT(geffe_instance, sample_size=5)
        with pytest.raises(ValueError, match="unknown minimizer"):
            pdsat.estimate(method="gradient-descent")


class TestCliExperimentCommands:
    def test_list_command(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for section in ("ciphers:", "solvers:", "minimizers:", "backends:", "cost-measures:"):
            assert section in output
        assert "geffe-tiny" in output

    def test_list_single_kind(self, capsys):
        from repro.cli import main

        assert main(["list", "--kind", "backends"]) == 0
        output = capsys.readouterr().out
        assert "simulated-cluster" in output
        assert "geffe-tiny" not in output

    def test_run_command(self, tmp_path, capsys):
        from repro.cli import main

        cfg = ExperimentConfig(
            instance=InstanceSpec(cipher="geffe-tiny", seed=1),
            minimizer=MinimizerSpec(name="tabu", max_evaluations=5),
            backend=BackendSpec(name="simulated-cluster", options={"cores": 4}),
            sample_size=8,
            decomposition_size=4,
        )
        config_path = tmp_path / "exp.json"
        config_path.write_text(cfg.to_json())
        out_path = tmp_path / "result.json"
        code = main(["run", "--config", str(config_path), "--output", str(out_path)])
        assert code == 0
        output = capsys.readouterr().out
        assert "solved" in output
        payload = json.loads(out_path.read_text())
        assert payload["kind"] == "run"
        assert payload["config"]["instance"]["cipher"] == "geffe-tiny"

    def test_run_command_missing_config(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["run", "--config", "/nonexistent/exp.json"])

    def test_solve_backend_flag(self, capsys):
        from repro.cli import main

        code = main(
            [
                "solve",
                "--cipher",
                "geffe-tiny",
                "--seed",
                "1",
                "--decomposition",
                "4,5,6",
                "--backend",
                "serial",
            ]
        )
        assert code == 0
        assert "sub-problems" in capsys.readouterr().out


class TestCheckpointResumeFlow:
    """The --resume flag and the checkpoint_path config field, end to end."""

    def _config(self, tmp_path, **overrides) -> "ExperimentConfig":
        base = dict(
            instance=InstanceSpec(cipher="geffe-tiny", seed=1),
            backend=BackendSpec(name="serial"),
            decomposition=(1, 2, 3, 4, 5),
        )
        base.update(overrides)
        return ExperimentConfig(**base)

    def test_checkpoint_file_is_written_and_resumed(self, tmp_path):
        path = tmp_path / "solve.ckpt"
        cfg = self._config(tmp_path, checkpoint_path=str(path))
        first = Experiment.from_config(cfg).solve()
        assert path.exists()
        assert first.data["resumed_subproblems"] == 0

        second = Experiment.from_config(cfg).solve()
        assert second.data["resumed_subproblems"] == len(first.data["statuses"])
        assert second.data["statuses"] == first.data["statuses"]
        assert second.data["costs"] == first.data["costs"]
        assert second.status == first.status

    def test_partial_checkpoint_resumes_missing_subproblems_only(self, tmp_path):
        from repro.runner.scheduler import SchedulerCheckpoint

        path = tmp_path / "partial.ckpt"
        cfg = self._config(tmp_path, checkpoint_path=str(path))
        full = Experiment.from_config(self._config(tmp_path)).solve()

        # Keep only half the sub-problems in the checkpoint, then resume.
        Experiment.from_config(cfg).solve()
        checkpoint = SchedulerCheckpoint.load(path)
        kept = dict(sorted(checkpoint.results.items())[: len(checkpoint) // 2])
        SchedulerCheckpoint(results=kept).save(path)

        resumed = Experiment.from_config(cfg).solve()
        assert resumed.data["resumed_subproblems"] == len(kept)
        assert resumed.data["statuses"] == full.data["statuses"]
        assert resumed.data["costs"] == full.data["costs"]

    def test_checkpoint_path_round_trips_through_json(self):
        cfg = ExperimentConfig(checkpoint_path="solve.ckpt")
        assert ExperimentConfig.from_json(cfg.to_json()) == cfg

    def test_checkpoint_from_other_solver_spec_is_rejected(self, tmp_path):
        """A checkpoint written under ``cdcl-legacy`` must not silently resume
        under the arena engine: their per-sub-problem costs are incomparable."""
        path = tmp_path / "legacy.ckpt"
        legacy_cfg = self._config(
            tmp_path,
            checkpoint_path=str(path),
            solver=SolverSpec(name="cdcl-legacy"),
        )
        Experiment.from_config(legacy_cfg).solve()
        assert path.exists()

        arena_cfg = self._config(tmp_path, checkpoint_path=str(path))
        with pytest.raises(ValueError, match="belongs to a different experiment"):
            Experiment.from_config(arena_cfg).solve()

    def test_default_solver_checkpoint_has_no_solver_key(self, tmp_path):
        """Backward compatibility: default-spec runs omit the ``solver`` key,
        so checkpoints from before the key existed keep resuming (the same
        conditional pattern as ``preprocessor``)."""
        from repro.api import experiment_fingerprint
        from repro.runner.scheduler import SchedulerCheckpoint

        path = tmp_path / "default.ckpt"
        cfg = self._config(tmp_path, checkpoint_path=str(path))
        Experiment.from_config(cfg).solve()
        stamp = SchedulerCheckpoint.load(path).metadata["experiment"]
        assert "solver" not in stamp
        assert stamp == experiment_fingerprint(cfg, cfg.decomposition)

        # A pre-solver-key checkpoint (identical stamp) resumes cleanly.
        resumed = Experiment.from_config(cfg).solve()
        assert resumed.data["resumed_subproblems"] > 0

    def test_fingerprint_records_non_default_solver_spec(self):
        from repro.api import experiment_fingerprint

        base = self._config(None)
        legacy = self._config(None, solver=SolverSpec(name="cdcl-legacy"))
        assert "solver" not in experiment_fingerprint(base, base.decomposition)
        stamp = experiment_fingerprint(legacy, legacy.decomposition)
        assert stamp["solver"] == SolverSpec(name="cdcl-legacy").to_dict()
        assert stamp["decomposition"] == sorted(legacy.decomposition)

    def test_run_cli_resume_flag(self, tmp_path, capsys):
        from repro.cli import main

        cfg = self._config(tmp_path)
        config_path = tmp_path / "exp.json"
        config_path.write_text(cfg.to_json())
        checkpoint = tmp_path / "run.ckpt"

        assert main(["run", "--config", str(config_path), "--resume", str(checkpoint)]) == 0
        first = capsys.readouterr().out
        assert checkpoint.exists()
        assert "resumed" not in first

        assert main(["run", "--config", str(config_path), "--resume", str(checkpoint)]) == 0
        second = capsys.readouterr().out
        assert "resumed 32 sub-problems" in second

    def test_run_cli_backend_override(self, tmp_path, capsys):
        from repro.cli import main

        cfg = self._config(tmp_path)
        config_path = tmp_path / "exp.json"
        config_path.write_text(cfg.to_json())
        code = main(
            [
                "run", "--config", str(config_path),
                "--backend", "simulated-cluster", "--cores", "4",
            ]
        )
        assert code == 0
        assert "simulated-cluster: solved" in capsys.readouterr().out

    def test_solve_cli_resume_flag(self, tmp_path, capsys):
        from repro.cli import main

        checkpoint = tmp_path / "solve-cli.ckpt"
        argv = [
            "solve", "--cipher", "geffe-tiny", "--seed", "1",
            "--decomposition", "4,5,6", "--backend", "serial",
            "--resume", str(checkpoint),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert checkpoint.exists()
        assert main(argv) == 0
        assert "resumed 8 sub-problems" in capsys.readouterr().out


class TestPreprocessorSpec:
    """PR 5: the preprocessor registry and its spec/config plumbing."""

    def test_registry_lookup_and_listing(self):
        from repro.api import get_preprocessor, list_preprocessors

        assert "satelite" in list_preprocessors()
        preprocessor = get_preprocessor("satelite")()
        assert preprocessor.config.variable_elimination is True

    def test_spec_builds_with_options(self):
        from repro.api import PreprocessorSpec

        spec = PreprocessorSpec(name="satelite", options={"max_growth": 4})
        assert spec.build().config.max_growth == 4

    def test_spec_round_trips_through_config_json(self):
        from repro.api import ExperimentConfig, InstanceSpec, PreprocessorSpec

        cfg = ExperimentConfig(
            instance=InstanceSpec(cipher="geffe-tiny", seed=1),
            preprocessor=PreprocessorSpec(options={"max_occurrences": 12}),
        )
        clone = ExperimentConfig.from_json(cfg.to_json())
        assert clone == cfg
        assert clone.preprocessor.options == {"max_occurrences": 12}
        # Absent spec stays absent (and keeps old config files loadable).
        assert ExperimentConfig.from_dict({"instance": {"cipher": "geffe-tiny"}}).preprocessor is None

    def test_unknown_spec_keys_rejected(self):
        from repro.api import PreprocessorSpec

        with pytest.raises(ValueError, match="unknown PreprocessorSpec keys"):
            PreprocessorSpec.from_dict({"name": "satelite", "growth": 1})

    def test_experiment_run_with_preprocessor_recovers_the_state(self):
        from repro.api import Experiment, ExperimentConfig, InstanceSpec, PreprocessorSpec
        from repro.api.registry import get_cipher
        from repro.problems import make_inversion_instance

        start_set = make_inversion_instance(get_cipher("geffe-tiny")(), seed=1).start_set
        cfg = ExperimentConfig(
            instance=InstanceSpec(cipher="geffe-tiny", seed=1),
            preprocessor=PreprocessorSpec(),
            decomposition=tuple(start_set[:6]),
            sample_size=5,
        )
        raw = Experiment.from_config(cfg.replace(preprocessor=None)).run()
        simplified = Experiment.from_config(cfg).run()
        assert simplified.status == raw.status
        assert simplified.data["solve"]["statuses"] == raw.data["solve"]["statuses"]
        # The preprocessed run must still verify the recovered secret state on
        # the *original* generator (model reconstruction end to end).
        assert simplified.data["solve"]["recovered_state"] == raw.data["solve"]["recovered_state"]
        assert simplified.data["solve"]["recovered_state"] is not None

    def test_experiment_rejects_preprocessed_away_decomposition_variables(self):
        from repro.api import Experiment, ExperimentConfig, InstanceSpec, PreprocessorSpec

        # geffe-tiny's start set is variables 3..14; variables 1 and 2 are
        # keystream-adjacent and get fixed/dropped by preprocessing.  Asking
        # to decompose on them afterwards must fail loudly.
        experiment = Experiment.from_config(
            ExperimentConfig(
                instance=InstanceSpec(cipher="geffe-tiny", seed=1),
                preprocessor=PreprocessorSpec(),
                sample_size=5,
            )
        )
        with pytest.raises(ValueError, match="eliminated or fixed by preprocessing"):
            experiment.solve(decomposition=[1, 2])

    def test_pdsat_presolve_exposed(self):
        from repro.api.registry import get_cipher
        from repro.core.pdsat import PDSAT
        from repro.problems import make_inversion_instance
        from repro.sat.simplify import Preprocessor

        instance = make_inversion_instance(get_cipher("geffe-tiny")(), seed=1)
        pdsat = PDSAT(instance, sample_size=5, preprocessor=Preprocessor())
        assert pdsat.presolve is not None
        assert pdsat.cnf is pdsat.presolve.cnf
        assert pdsat.cnf.num_vars == instance.cnf.num_vars
        # Frozen contract: no start-set variable may have been eliminated.
        assert not (pdsat.presolve.eliminated_variables & set(instance.start_set))
        report = pdsat.solve_family(list(instance.start_set[:5]))
        assert report.num_sat >= 1
        for model in report.satisfying_models:
            state = instance.state_from_model(model)
            if instance.verify_state(state):
                break
        else:
            raise AssertionError("no reconstructed model verified the keystream")
