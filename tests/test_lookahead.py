"""Tests for the lookahead solver and lookahead variable scoring."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.formula import CNF
from repro.sat.lookahead import (
    LookaheadSolver,
    lookahead_scores,
    rank_variables_by_lookahead,
)
from repro.sat.random_cnf import pigeonhole, planted_ksat, random_ksat
from repro.sat.solver import SolverBudget, SolverStatus, check_model


class TestLookaheadSolver:
    def test_sat_on_tiny_formula(self, tiny_sat_cnf):
        result = LookaheadSolver().solve(tiny_sat_cnf)
        assert result.is_sat
        assert check_model(tiny_sat_cnf, result.model)

    def test_unsat_on_tiny_formula(self, tiny_unsat_cnf):
        result = LookaheadSolver().solve(tiny_unsat_cnf)
        assert result.is_unsat

    def test_empty_formula_is_sat(self):
        result = LookaheadSolver().solve(CNF([], num_vars=3))
        assert result.is_sat
        assert check_model(CNF([], num_vars=3), result.model)

    def test_empty_clause_is_unsat(self):
        result = LookaheadSolver().solve(CNF([()]))
        assert result.is_unsat

    def test_planted_instance(self):
        cnf, planted = planted_ksat(18, 70, seed=3)
        result = LookaheadSolver().solve(cnf)
        assert result.is_sat
        assert check_model(cnf, result.model)

    def test_pigeonhole_unsat(self):
        cnf = pigeonhole(3)
        result = LookaheadSolver().solve(cnf)
        assert result.is_unsat

    def test_assumptions_restrict_models(self):
        cnf = CNF([(1, 2), (-1, 3)])
        result = LookaheadSolver().solve(cnf, assumptions=[1])
        assert result.is_sat
        assert result.model[1] is True
        assert result.model[3] is True

    def test_conflicting_assumptions_are_unsat(self):
        cnf = CNF([(1, 2)])
        result = LookaheadSolver().solve(cnf, assumptions=[-1, -2])
        assert result.is_unsat

    def test_budget_yields_unknown(self):
        cnf = pigeonhole(5)
        result = LookaheadSolver().solve(cnf, budget=SolverBudget(max_decisions=1))
        assert result.status is SolverStatus.UNKNOWN

    def test_agrees_with_cdcl_on_random_instances(self, cdcl):
        for seed in range(6):
            cnf = random_ksat(14, 58, seed=seed)
            lookahead = LookaheadSolver().solve(cnf)
            reference = cdcl.solve(cnf)
            assert lookahead.status == reference.status
            if lookahead.is_sat:
                assert check_model(cnf, lookahead.model)

    def test_deterministic(self):
        cnf = random_ksat(14, 58, seed=9)
        first = LookaheadSolver().solve(cnf)
        second = LookaheadSolver().solve(cnf)
        assert first.status == second.status
        assert first.stats.decisions == second.stats.decisions
        assert first.stats.propagations == second.stats.propagations

    def test_probe_cap_validation(self):
        with pytest.raises(ValueError):
            LookaheadSolver(max_probe_variables=0)


class TestLookaheadScores:
    def test_failed_literal_detection(self):
        # x1 must be true: probing x1=False fails immediately.
        cnf = CNF([(1, 2), (1, -2), (3, 4)])
        probes = {p.variable: p for p in lookahead_scores(cnf)}
        assert probes[1].failed_negative
        assert not probes[1].failed_positive

    def test_contradiction_detected(self):
        probes = lookahead_scores(CNF([(1, 2), (1, -2), (-1, 2), (-1, -2)]))
        assert any(p.is_contradiction for p in probes) or probes == []

    def test_unsatisfiable_root_returns_empty(self):
        assert lookahead_scores(CNF([()])) == []

    def test_candidates_are_respected(self):
        cnf = random_ksat(10, 30, seed=1)
        probes = lookahead_scores(cnf, candidates=[1, 2, 3])
        assert {p.variable for p in probes} <= {1, 2, 3}

    def test_ranking_prefers_balanced_splitters(self):
        # Variable 1 appears in every clause; it should rank above variable 5,
        # which appears only once.
        cnf = CNF([(1, 2), (-1, 3), (1, -3), (-1, -2), (5, 4)])
        ranking = rank_variables_by_lookahead(cnf)
        assert ranking.index(1) < ranking.index(5)

    def test_ranking_under_assumptions(self):
        cnf = CNF([(1, 2), (-1, 3), (4, 5)])
        ranking = rank_variables_by_lookahead(cnf, assumptions=[1])
        assert 1 not in ranking
        assert 3 not in ranking  # forced by the assumption

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_property_agrees_with_cdcl(self, seed):
        cnf = random_ksat(10, 42, seed=seed)
        from repro.sat.cdcl import CDCLSolver

        lookahead = LookaheadSolver().solve(cnf)
        reference = CDCLSolver().solve(cnf)
        assert lookahead.status == reference.status
