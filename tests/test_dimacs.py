"""Unit tests for repro.sat.dimacs."""

from __future__ import annotations

import pytest

from repro.sat.dimacs import DimacsError, parse_dimacs, parse_dimacs_file, write_dimacs, write_dimacs_file
from repro.sat.formula import CNF


SIMPLE = """c a comment
p cnf 3 2
1 -2 0
2 3 0
"""


class TestParse:
    def test_parses_clauses(self):
        cnf = parse_dimacs(SIMPLE)
        assert cnf.num_vars == 3
        assert cnf.clauses == [(1, -2), (2, 3)]

    def test_preserves_comments(self):
        cnf = parse_dimacs(SIMPLE)
        assert cnf.comments == ["a comment"]

    def test_clause_spanning_lines(self):
        cnf = parse_dimacs("p cnf 3 1\n1 2\n3 0\n")
        assert cnf.clauses == [(1, 2, 3)]

    def test_multiple_clauses_on_one_line(self):
        cnf = parse_dimacs("p cnf 2 2\n1 0 -2 0\n")
        assert cnf.clauses == [(1,), (-2,)]

    def test_percent_terminator(self):
        cnf = parse_dimacs("p cnf 2 1\n1 2 0\n%\n0\n")
        assert cnf.clauses == [(1, 2)]

    def test_missing_header_tolerated_when_not_strict(self):
        cnf = parse_dimacs("1 2 0\n-1 0\n")
        assert cnf.num_vars == 2
        assert cnf.num_clauses == 2

    def test_missing_final_zero_tolerated_when_not_strict(self):
        cnf = parse_dimacs("p cnf 2 1\n1 2\n")
        assert cnf.clauses == [(1, 2)]

    def test_strict_requires_header(self):
        with pytest.raises(DimacsError):
            parse_dimacs("1 2 0\n", strict=True)

    def test_strict_checks_clause_count(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf 2 2\n1 2 0\n", strict=True)

    def test_strict_checks_variable_bound(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf 2 1\n1 5 0\n", strict=True)

    def test_strict_rejects_missing_terminator(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf 2 1\n1 2\n", strict=True)

    def test_malformed_header(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf x y\n")

    def test_non_integer_token(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf 2 1\n1 foo 0\n")

    def test_empty_document(self):
        cnf = parse_dimacs("")
        assert cnf.num_vars == 0
        assert cnf.num_clauses == 0


class TestWrite:
    def test_round_trip(self):
        original = CNF([(1, -2), (2, 3), (-3,)], comments=["hello"])
        text = write_dimacs(original)
        parsed = parse_dimacs(text, strict=True)
        assert parsed.clauses == original.clauses
        assert parsed.num_vars == original.num_vars
        assert parsed.comments == ["hello"]

    def test_header_counts(self):
        text = write_dimacs(CNF([(1, 2)], num_vars=5))
        assert "p cnf 5 1" in text

    def test_without_comments(self):
        text = write_dimacs(CNF([(1,)], comments=["secret"]), include_comments=False)
        assert "secret" not in text

    def test_file_round_trip(self, tmp_path):
        cnf = CNF([(1, 2), (-1, -2)])
        path = tmp_path / "instance.cnf"
        write_dimacs_file(cnf, path)
        loaded = parse_dimacs_file(path, strict=True)
        assert loaded.clauses == cnf.clauses
