"""Tests for the Monte Carlo predictive function."""

from __future__ import annotations

import pytest

from repro.ciphers import Geffe
from repro.core.decomposition import DecompositionSet
from repro.core.predictive import PredictiveFunction
from repro.problems import make_inversion_instance
from repro.sat.cdcl import CDCLSolver
from repro.sat.formula import CNF
from repro.sat.random_cnf import random_ksat
from repro.sat.solver import SolverBudget, SolverStatus


@pytest.fixture(scope="module")
def geffe_cnf():
    instance = make_inversion_instance(Geffe.tiny(), keystream_length=24, seed=3)
    return instance


class TestEvaluation:
    def test_value_is_two_to_d_times_mean(self, geffe_cnf):
        evaluator = PredictiveFunction(geffe_cnf.cnf, sample_size=16, seed=1)
        result = evaluator.evaluate(geffe_cnf.start_set[:5])
        mean = sum(obs.cost for obs in result.observations) / len(result.observations)
        assert result.value == pytest.approx((2**5) * mean)

    def test_observation_count_matches_sample_size(self, geffe_cnf):
        evaluator = PredictiveFunction(geffe_cnf.cnf, sample_size=7, seed=0)
        result = evaluator.evaluate(geffe_cnf.start_set[:4])
        assert len(result.observations) == 7
        assert result.sample_size == 7

    def test_costs_are_nonnegative(self, geffe_cnf):
        evaluator = PredictiveFunction(geffe_cnf.cnf, sample_size=10, seed=0)
        result = evaluator.evaluate(geffe_cnf.start_set[:6])
        assert all(obs.cost >= 0 for obs in result.observations)

    def test_empty_decomposition_rejected(self, geffe_cnf):
        evaluator = PredictiveFunction(geffe_cnf.cnf, sample_size=5)
        with pytest.raises(ValueError):
            evaluator.evaluate([])

    def test_invalid_sample_size(self, geffe_cnf):
        with pytest.raises(ValueError):
            PredictiveFunction(geffe_cnf.cnf, sample_size=0)

    def test_invalid_substitution_mode(self, geffe_cnf):
        with pytest.raises(ValueError):
            PredictiveFunction(geffe_cnf.cnf, substitution_mode="magic")

    def test_callable_shorthand(self, geffe_cnf):
        evaluator = PredictiveFunction(geffe_cnf.cnf, sample_size=8, seed=2)
        value = evaluator(geffe_cnf.start_set[:4])
        assert value == evaluator.evaluate(geffe_cnf.start_set[:4]).value

    def test_full_backdoor_start_set_is_cheap(self, geffe_cnf):
        # Substituting the whole SUPBS (as unit clauses, like PDSAT shipping
        # sub-instances) makes every sub-problem solvable by unit propagation
        # alone, so the CDCL solver records zero conflicts.
        evaluator = PredictiveFunction(
            geffe_cnf.cnf,
            sample_size=12,
            cost_measure="conflicts",
            seed=0,
            substitution_mode="units",
        )
        result = evaluator.evaluate(geffe_cnf.start_set)
        assert result.mean_cost == 0.0

    def test_confidence_interval_contains_value(self, geffe_cnf):
        evaluator = PredictiveFunction(geffe_cnf.cnf, sample_size=20, seed=5)
        result = evaluator.evaluate(geffe_cnf.start_set[:6])
        low, high = result.confidence_interval
        assert low <= result.value <= high

    def test_value_on_cores(self, geffe_cnf):
        evaluator = PredictiveFunction(geffe_cnf.cnf, sample_size=10, seed=0)
        result = evaluator.evaluate(geffe_cnf.start_set[:5])
        assert result.value_on_cores(4) == pytest.approx(result.value / 4)
        with pytest.raises(ValueError):
            result.value_on_cores(0)

    def test_summary_format(self, geffe_cnf):
        evaluator = PredictiveFunction(geffe_cnf.cnf, sample_size=5, seed=0)
        summary = evaluator.evaluate(geffe_cnf.start_set[:3]).summary()
        assert "F =" in summary
        assert "N = 5" in summary


class TestDeterminismAndCaching:
    def test_same_seed_same_result(self, geffe_cnf):
        a = PredictiveFunction(geffe_cnf.cnf, sample_size=10, seed=9)
        b = PredictiveFunction(geffe_cnf.cnf, sample_size=10, seed=9)
        assert a(geffe_cnf.start_set[:6]) == b(geffe_cnf.start_set[:6])

    def test_different_seed_can_differ(self, geffe_cnf):
        a = PredictiveFunction(geffe_cnf.cnf, sample_size=5, seed=1)
        b = PredictiveFunction(geffe_cnf.cnf, sample_size=5, seed=2)
        set_vars = geffe_cnf.start_set[:6]
        # Not guaranteed to differ, but the sampled assignments must differ.
        bits_a = [obs.assignment_bits for obs in a.evaluate(set_vars).observations]
        bits_b = [obs.assignment_bits for obs in b.evaluate(set_vars).observations]
        assert bits_a != bits_b

    def test_cache_avoids_resolving(self, geffe_cnf):
        evaluator = PredictiveFunction(geffe_cnf.cnf, sample_size=6, seed=0)
        evaluator.evaluate(geffe_cnf.start_set[:4])
        solves_after_first = evaluator.num_subproblem_solves
        evaluator.evaluate(geffe_cnf.start_set[:4])
        assert evaluator.num_subproblem_solves == solves_after_first
        assert evaluator.num_evaluations == 1

    def test_is_cached(self, geffe_cnf):
        evaluator = PredictiveFunction(geffe_cnf.cnf, sample_size=4, seed=0)
        assert not evaluator.is_cached(geffe_cnf.start_set[:3])
        evaluator.evaluate(geffe_cnf.start_set[:3])
        assert evaluator.is_cached(geffe_cnf.start_set[:3])

    def test_cached_results_listing(self, geffe_cnf):
        evaluator = PredictiveFunction(geffe_cnf.cnf, sample_size=4, seed=0)
        evaluator.evaluate(geffe_cnf.start_set[:3])
        evaluator.evaluate(geffe_cnf.start_set[:5])
        assert len(evaluator.cached_results()) == 2

    def test_accumulated_activity_grows(self, geffe_cnf):
        evaluator = PredictiveFunction(geffe_cnf.cnf, sample_size=8, seed=0)
        evaluator.evaluate(geffe_cnf.start_set[:6])
        assert isinstance(evaluator.accumulated_activity, dict)


class TestSubstitutionModes:
    def test_units_mode_agrees_with_assumptions_on_status(self, geffe_cnf):
        set_vars = geffe_cnf.start_set[:5]
        by_assumptions = PredictiveFunction(
            geffe_cnf.cnf, sample_size=6, seed=4, substitution_mode="assumptions"
        ).evaluate(set_vars)
        by_units = PredictiveFunction(
            geffe_cnf.cnf, sample_size=6, seed=4, substitution_mode="units"
        ).evaluate(set_vars)
        statuses_a = [obs.status for obs in by_assumptions.observations]
        statuses_u = [obs.status for obs in by_units.observations]
        assert statuses_a == statuses_u


class TestCostMeasures:
    @pytest.mark.parametrize("measure", ["conflicts", "decisions", "propagations", "weighted", "wall_time"])
    def test_all_measures_work(self, geffe_cnf, measure):
        evaluator = PredictiveFunction(geffe_cnf.cnf, sample_size=5, cost_measure=measure, seed=0)
        result = evaluator.evaluate(geffe_cnf.start_set[:4])
        assert result.value >= 0

    def test_budgeted_subproblems_flagged_unknown(self):
        cnf = random_ksat(40, 180, seed=1)
        evaluator = PredictiveFunction(
            cnf,
            sample_size=4,
            seed=0,
            subproblem_budget=SolverBudget(max_propagations=5),
        )
        result = evaluator.evaluate([1, 2])
        assert all(obs.status is SolverStatus.UNKNOWN or obs.cost >= 0 for obs in result.observations)


class TestExhaustive:
    def test_exhaustive_matches_full_enumeration(self):
        instance = make_inversion_instance(Geffe.tiny(), keystream_length=20, seed=0)
        evaluator = PredictiveFunction(instance.cnf, sample_size=4, seed=0)
        total, costs = evaluator.exhaustive_value(instance.start_set[:4])
        assert len(costs) == 16
        assert total == pytest.approx(sum(costs))

    def test_exhaustive_guards_large_sets(self):
        cnf = CNF([(i, i + 1) for i in range(1, 30)])
        evaluator = PredictiveFunction(cnf, sample_size=2)
        with pytest.raises(ValueError):
            evaluator.exhaustive_value(list(range(1, 21)), max_subproblems=1024)

    def test_estimate_tracks_exhaustive_truth(self):
        # With a large sample relative to 2^d the estimate should be close to
        # the true total cost.
        instance = make_inversion_instance(Geffe.tiny(), keystream_length=20, seed=1)
        decomposition = instance.start_set[:5]
        evaluator = PredictiveFunction(instance.cnf, sample_size=64, seed=7)
        estimate = evaluator.evaluate(decomposition).value
        truth, _ = PredictiveFunction(instance.cnf, sample_size=1, seed=0).exhaustive_value(
            decomposition
        )
        assert estimate == pytest.approx(truth, rel=0.5)
