"""Tests for the shared minimiser infrastructure (stopping criteria, result records)."""

from __future__ import annotations

import time

import pytest

from repro.ciphers import Geffe
from repro.core.optimizer import (
    BaseMinimizer,
    MinimizationResult,
    StoppingCriteria,
    VisitedPoint,
)
from repro.core.predictive import PredictiveFunction
from repro.core.search_space import SearchSpace
from repro.problems import make_inversion_instance


class TestStoppingCriteria:
    def test_defaults(self):
        criteria = StoppingCriteria()
        assert criteria.max_evaluations == 200
        assert criteria.max_seconds is None

    def test_evaluation_limit(self):
        criteria = StoppingCriteria(max_evaluations=5)
        assert criteria.exceeded(5, 0, time.perf_counter()) == "max_evaluations"
        assert criteria.exceeded(4, 0, time.perf_counter()) is None

    def test_subproblem_limit(self):
        criteria = StoppingCriteria(max_evaluations=None, max_subproblem_solves=100)
        assert criteria.exceeded(1000, 100, time.perf_counter()) == "max_subproblem_solves"
        assert criteria.exceeded(1000, 99, time.perf_counter()) is None

    def test_time_limit(self):
        criteria = StoppingCriteria(max_evaluations=None, max_seconds=0.01)
        started = time.perf_counter() - 1.0
        assert criteria.exceeded(0, 0, started) == "max_seconds"

    def test_no_limits(self):
        criteria = StoppingCriteria(max_evaluations=None)
        assert criteria.exceeded(10**6, 10**6, time.perf_counter()) is None


class TestBaseMinimizer:
    @pytest.fixture
    def setup(self):
        instance = make_inversion_instance(Geffe.tiny(), keystream_length=20, seed=0)
        evaluator = PredictiveFunction(instance.cnf, sample_size=5, seed=0)
        space = SearchSpace(instance.start_set)
        return instance, evaluator, space

    def test_run_counters_start_at_zero(self, setup):
        _, evaluator, space = setup
        evaluator.evaluate(space.to_decomposition(space.start_point()))
        minimizer = BaseMinimizer(evaluator, space)
        minimizer._begin_run()
        assert minimizer._run_evaluations() == 0
        assert minimizer._run_subproblem_solves() == 0

    def test_run_counters_track_new_work(self, setup):
        instance, evaluator, space = setup
        minimizer = BaseMinimizer(evaluator, space)
        minimizer._begin_run()
        minimizer._evaluate(frozenset(instance.start_set[:4]))
        assert minimizer._run_evaluations() == 1
        assert minimizer._run_subproblem_solves() == 5

    def test_minimize_is_abstract(self, setup):
        _, evaluator, space = setup
        with pytest.raises(NotImplementedError):
            BaseMinimizer(evaluator, space).minimize()


class TestResultRecords:
    def test_visited_point_fields(self):
        visit = VisitedPoint(frozenset({1, 2}), 12.5, True, 3)
        assert visit.point == frozenset({1, 2})
        assert visit.is_improvement

    def test_minimization_result_summary_and_decomposition(self):
        from repro.core.decomposition import DecompositionSet
        from repro.core.predictive import PredictionResult
        from repro.stats.montecarlo import sample_statistics

        prediction = PredictionResult(
            decomposition=DecompositionSet.of([3, 1]),
            sample_size=4,
            cost_measure="propagations",
            estimate=sample_statistics([1.0, 2.0, 3.0, 4.0]),
        )
        result = MinimizationResult(
            best_point=frozenset({3, 1}),
            best_value=10.0,
            best_prediction=prediction,
            final_center=frozenset({1}),
            num_evaluations=7,
            num_subproblem_solves=28,
            wall_time=0.5,
            stop_reason="max_evaluations",
        )
        assert result.best_decomposition == [1, 3]
        summary = result.summary()
        assert "max_evaluations" in summary
        assert "7 evaluations" in summary
