"""Tests for the SatELite-style simplifier (subsumption, self-subsumption, BVE, BCE)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.cdcl import CDCLSolver
from repro.sat.formula import CNF
from repro.sat.random_cnf import pigeonhole, planted_ksat, random_ksat
from repro.sat.simplify import SimplifyConfig, simplify_cnf
from repro.sat.solver import check_model


def _solve_status(cnf):
    return CDCLSolver().solve(cnf).status


class TestSubsumption:
    def test_subsumed_clause_removed(self):
        cnf = CNF([(1, 2), (1, 2, 3), (4, 5)])
        result = simplify_cnf(cnf, SimplifyConfig(variable_elimination=False))
        assert result.removed_subsumed >= 1
        assert (1, 2, 3) not in result.cnf.clauses

    def test_self_subsumption_strengthens(self):
        # (1 2) and (-1 2 3): resolving on 1 gives (2 3) ⊆ (-1 2 3) minus -1,
        # so the long clause is strengthened to (2 3).
        cnf = CNF([(1, 2), (-1, 2, 3)])
        result = simplify_cnf(cnf, SimplifyConfig(variable_elimination=False))
        assert result.strengthened >= 1
        assert all(len(clause) <= 2 for clause in result.cnf.clauses)

    def test_duplicate_clauses_collapse(self):
        cnf = CNF([(1, 2), (2, 1), (1, 2)])
        result = simplify_cnf(cnf, SimplifyConfig(variable_elimination=False))
        assert result.cnf.num_clauses == 1


class TestVariableElimination:
    def test_pure_variable_is_eliminated(self):
        cnf = CNF([(1, 2), (1, 3), (2, 4), (-2, -4, 3)])
        result = simplify_cnf(cnf)
        assert result.num_eliminated_variables >= 1

    def test_growth_bound_respected(self):
        # Variable 1 occurs in 3 positive and 3 negative clauses: eliminating it
        # would produce up to 9 resolvents; with max_growth=0 it must stay.
        clauses = [(1, 2), (1, 3), (1, 4), (-1, 5), (-1, 6), (-1, 7), (2, 5), (3, 6)]
        cnf = CNF(clauses)
        result = simplify_cnf(
            cnf, SimplifyConfig(subsumption=False, max_growth=0, max_occurrences=100)
        )
        eliminated_vars = {var for var, _ in result.eliminated}
        assert 1 not in eliminated_vars

    def test_frozen_variables_are_kept(self):
        cnf = CNF([(1, 2), (-1, 3), (2, 3)])
        result = simplify_cnf(cnf, SimplifyConfig(frozen=frozenset({1})))
        eliminated_vars = {var for var, _ in result.eliminated}
        assert 1 not in eliminated_vars

    def test_model_extension_covers_eliminated_variables(self):
        cnf, _ = planted_ksat(12, 40, seed=3)
        result = simplify_cnf(cnf, SimplifyConfig(max_growth=4, max_occurrences=50))
        assert not result.unsat
        solved = CDCLSolver().solve(result.cnf)
        assert solved.is_sat
        extended = result.extend_model(solved.model)
        assert check_model(cnf, {v: extended.get(v, False) for v in range(1, cnf.num_vars + 1)})


class TestBlockedClauses:
    def test_blocked_clause_removed(self):
        # (1 2) is blocked on 1: the only clause with -1 is (-1 -2) and the
        # resolvent (2 -2) is a tautology.
        cnf = CNF([(1, 2), (-1, -2), (2, 3)])
        result = simplify_cnf(
            cnf,
            SimplifyConfig(
                subsumption=False,
                variable_elimination=False,
                blocked_clause_elimination=True,
            ),
        )
        assert result.removed_blocked >= 1

    def test_bce_preserves_satisfiability_and_extends_models(self):
        cnf, _ = planted_ksat(10, 30, seed=9)
        result = simplify_cnf(
            cnf,
            SimplifyConfig(
                subsumption=False,
                variable_elimination=False,
                blocked_clause_elimination=True,
            ),
        )
        solved = CDCLSolver().solve(result.cnf)
        assert solved.is_sat
        extended = result.extend_model(solved.model)
        assert check_model(cnf, {v: extended.get(v, False) for v in range(1, cnf.num_vars + 1)})


class TestPipeline:
    def test_unsat_input_detected(self):
        cnf = CNF([(1,), (-1,)])
        result = simplify_cnf(cnf)
        assert result.unsat

    def test_empty_clause_detected(self):
        result = simplify_cnf(CNF([()]))
        assert result.unsat

    def test_unit_clauses_become_fixed_assignments(self):
        cnf = CNF([(1,), (-1, 2), (2, 3)])
        result = simplify_cnf(cnf)
        assert result.fixed.get(1) is True
        assert result.fixed.get(2) is True

    def test_satisfiable_formula_stays_satisfiable(self):
        cnf, _ = planted_ksat(15, 50, seed=1)
        result = simplify_cnf(cnf)
        assert not result.unsat
        assert _solve_status(result.cnf) == _solve_status(cnf)

    def test_unsatisfiable_formula_stays_unsatisfiable(self):
        cnf = pigeonhole(3)
        result = simplify_cnf(cnf)
        if not result.unsat:
            assert CDCLSolver().solve(result.cnf).is_unsat

    def test_simplified_formula_is_smaller_or_equal(self):
        cnf = random_ksat(20, 85, seed=4)
        result = simplify_cnf(cnf)
        if not result.unsat:
            assert result.cnf.num_clauses <= cnf.num_clauses + result.num_eliminated_variables * 2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SimplifyConfig(max_occurrences=0)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000), num_clauses=st.integers(min_value=10, max_value=60))
def test_property_simplification_preserves_satisfiability(seed, num_clauses):
    cnf = random_ksat(10, num_clauses, seed=seed)
    reference = CDCLSolver().solve(cnf)
    result = simplify_cnf(cnf, SimplifyConfig(max_growth=2))
    if result.unsat:
        assert reference.is_unsat
    else:
        simplified = CDCLSolver().solve(result.cnf)
        assert simplified.status == reference.status
        if simplified.is_sat:
            extended = result.extend_model(simplified.model)
            full = {v: extended.get(v, False) for v in range(1, cnf.num_vars + 1)}
            assert check_model(cnf, full)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_property_bce_preserves_satisfiability(seed):
    cnf = random_ksat(9, 32, seed=seed)
    reference = CDCLSolver().solve(cnf)
    result = simplify_cnf(
        cnf,
        SimplifyConfig(
            subsumption=False, variable_elimination=False, blocked_clause_elimination=True
        ),
    )
    simplified = CDCLSolver().solve(result.cnf)
    assert simplified.status == reference.status
    if simplified.is_sat:
        extended = result.extend_model(simplified.model)
        full = {v: extended.get(v, False) for v in range(1, cnf.num_vars + 1)}
        assert check_model(cnf, full)
