"""Tests for the SatELite-style simplifier (subsumption, self-subsumption, BVE, BCE)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.cdcl import CDCLSolver
from repro.sat.formula import CNF
from repro.sat.random_cnf import pigeonhole, planted_ksat, random_ksat
from repro.sat.simplify import SimplifyConfig, simplify_cnf
from repro.sat.solver import check_model


def _solve_status(cnf):
    return CDCLSolver().solve(cnf).status


class TestSubsumption:
    def test_subsumed_clause_removed(self):
        cnf = CNF([(1, 2), (1, 2, 3), (4, 5)])
        result = simplify_cnf(cnf, SimplifyConfig(variable_elimination=False))
        assert result.removed_subsumed >= 1
        assert (1, 2, 3) not in result.cnf.clauses

    def test_self_subsumption_strengthens(self):
        # (1 2) and (-1 2 3): resolving on 1 gives (2 3) ⊆ (-1 2 3) minus -1,
        # so the long clause is strengthened to (2 3).
        cnf = CNF([(1, 2), (-1, 2, 3)])
        result = simplify_cnf(cnf, SimplifyConfig(variable_elimination=False))
        assert result.strengthened >= 1
        assert all(len(clause) <= 2 for clause in result.cnf.clauses)

    def test_duplicate_clauses_collapse(self):
        cnf = CNF([(1, 2), (2, 1), (1, 2)])
        result = simplify_cnf(cnf, SimplifyConfig(variable_elimination=False))
        assert result.cnf.num_clauses == 1


class TestVariableElimination:
    def test_pure_variable_is_eliminated(self):
        cnf = CNF([(1, 2), (1, 3), (2, 4), (-2, -4, 3)])
        result = simplify_cnf(cnf)
        assert result.num_eliminated_variables >= 1

    def test_growth_bound_respected(self):
        # Variable 1 occurs in 3 positive and 3 negative clauses: eliminating it
        # would produce up to 9 resolvents; with max_growth=0 it must stay.
        clauses = [(1, 2), (1, 3), (1, 4), (-1, 5), (-1, 6), (-1, 7), (2, 5), (3, 6)]
        cnf = CNF(clauses)
        result = simplify_cnf(
            cnf, SimplifyConfig(subsumption=False, max_growth=0, max_occurrences=100)
        )
        eliminated_vars = {var for var, _ in result.eliminated}
        assert 1 not in eliminated_vars

    def test_frozen_variables_are_kept(self):
        cnf = CNF([(1, 2), (-1, 3), (2, 3)])
        result = simplify_cnf(cnf, SimplifyConfig(frozen=frozenset({1})))
        eliminated_vars = {var for var, _ in result.eliminated}
        assert 1 not in eliminated_vars

    def test_model_extension_covers_eliminated_variables(self):
        cnf, _ = planted_ksat(12, 40, seed=3)
        result = simplify_cnf(cnf, SimplifyConfig(max_growth=4, max_occurrences=50))
        assert not result.unsat
        solved = CDCLSolver().solve(result.cnf)
        assert solved.is_sat
        extended = result.extend_model(solved.model)
        assert check_model(cnf, {v: extended.get(v, False) for v in range(1, cnf.num_vars + 1)})


class TestBlockedClauses:
    def test_blocked_clause_removed(self):
        # (1 2) is blocked on 1: the only clause with -1 is (-1 -2) and the
        # resolvent (2 -2) is a tautology.
        cnf = CNF([(1, 2), (-1, -2), (2, 3)])
        result = simplify_cnf(
            cnf,
            SimplifyConfig(
                subsumption=False,
                variable_elimination=False,
                blocked_clause_elimination=True,
            ),
        )
        assert result.removed_blocked >= 1

    def test_bce_preserves_satisfiability_and_extends_models(self):
        cnf, _ = planted_ksat(10, 30, seed=9)
        result = simplify_cnf(
            cnf,
            SimplifyConfig(
                subsumption=False,
                variable_elimination=False,
                blocked_clause_elimination=True,
            ),
        )
        solved = CDCLSolver().solve(result.cnf)
        assert solved.is_sat
        extended = result.extend_model(solved.model)
        assert check_model(cnf, {v: extended.get(v, False) for v in range(1, cnf.num_vars + 1)})


class TestPipeline:
    def test_unsat_input_detected(self):
        cnf = CNF([(1,), (-1,)])
        result = simplify_cnf(cnf)
        assert result.unsat

    def test_empty_clause_detected(self):
        result = simplify_cnf(CNF([()]))
        assert result.unsat

    def test_unit_clauses_become_fixed_assignments(self):
        cnf = CNF([(1,), (-1, 2), (2, 3)])
        result = simplify_cnf(cnf)
        assert result.fixed.get(1) is True
        assert result.fixed.get(2) is True

    def test_satisfiable_formula_stays_satisfiable(self):
        cnf, _ = planted_ksat(15, 50, seed=1)
        result = simplify_cnf(cnf)
        assert not result.unsat
        assert _solve_status(result.cnf) == _solve_status(cnf)

    def test_unsatisfiable_formula_stays_unsatisfiable(self):
        cnf = pigeonhole(3)
        result = simplify_cnf(cnf)
        if not result.unsat:
            assert CDCLSolver().solve(result.cnf).is_unsat

    def test_simplified_formula_is_smaller_or_equal(self):
        cnf = random_ksat(20, 85, seed=4)
        result = simplify_cnf(cnf)
        if not result.unsat:
            assert result.cnf.num_clauses <= cnf.num_clauses + result.num_eliminated_variables * 2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SimplifyConfig(max_occurrences=0)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000), num_clauses=st.integers(min_value=10, max_value=60))
def test_property_simplification_preserves_satisfiability(seed, num_clauses):
    cnf = random_ksat(10, num_clauses, seed=seed)
    reference = CDCLSolver().solve(cnf)
    result = simplify_cnf(cnf, SimplifyConfig(max_growth=2))
    if result.unsat:
        assert reference.is_unsat
    else:
        simplified = CDCLSolver().solve(result.cnf)
        assert simplified.status == reference.status
        if simplified.is_sat:
            extended = result.extend_model(simplified.model)
            full = {v: extended.get(v, False) for v in range(1, cnf.num_vars + 1)}
            assert check_model(cnf, full)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_property_bce_preserves_satisfiability(seed):
    cnf = random_ksat(9, 32, seed=seed)
    reference = CDCLSolver().solve(cnf)
    result = simplify_cnf(
        cnf,
        SimplifyConfig(
            subsumption=False, variable_elimination=False, blocked_clause_elimination=True
        ),
    )
    simplified = CDCLSolver().solve(result.cnf)
    assert simplified.status == reference.status
    if simplified.is_sat:
        extended = result.extend_model(simplified.model)
        full = {v: extended.get(v, False) for v in range(1, cnf.num_vars + 1)}
        assert check_model(cnf, full)


# ======================================================================
# The production Preprocessor (PR 5): per-rule units + integration contract.
# ======================================================================

from repro.sat.cdcl import LegacyCDCLSolver  # noqa: E402
from repro.sat.cdcl.config import CDCLConfig  # noqa: E402
from repro.sat.simplify import (  # noqa: E402
    PreprocessConfig,
    Preprocessor,
    PreprocessResult,
)


def _full_model(cnf, model):
    return {v: model.get(v, False) for v in range(1, cnf.num_vars + 1)}


class TestPreprocessorUnitPropagation:
    def test_unit_chain_fixed_to_fixpoint(self):
        cnf = CNF([(1,), (-1, 2), (-2, 3), (3, 4)])
        result = Preprocessor().preprocess(cnf)
        assert result.fixed == {1: True, 2: True, 3: True}
        assert not result.unsat

    def test_contradictory_units_refute(self):
        result = Preprocessor().preprocess(CNF([(1,), (-1, 2), (-2,)]))
        assert result.unsat
        assert result.cnf.clauses == [()]

    def test_frozen_fixed_variables_stay_as_unit_clauses(self):
        # Variable 1 is fixed by UP *and* frozen: the consequence must remain
        # visible as a unit clause so solve(assumptions=[-1]) can report UNSAT.
        cnf = CNF([(1,), (-1, 2), (2, 3)])
        result = Preprocessor().preprocess(cnf, frozen=[1])
        assert (1,) in result.cnf.clauses
        assert result.fixed[1] is True

    def test_nonfrozen_fixed_variables_leave_no_clauses(self):
        cnf = CNF([(1,), (-1, 2), (2, 3)])
        result = Preprocessor().preprocess(cnf)
        assert all(1 not in map(abs, clause) for clause in result.cnf.clauses)

    def test_reconstruct_restores_fixed_values(self):
        cnf = CNF([(1,), (-1, 2), (2, 3), (4, 5)])
        result = Preprocessor().preprocess(cnf)
        solved = CDCLSolver().solve(result.cnf)
        assert solved.is_sat
        model = result.reconstruct(solved.model)
        assert model[1] is True and model[2] is True
        assert check_model(cnf, _full_model(cnf, model))


class TestPreprocessorPureLiterals:
    def test_pure_literal_recorded_as_elimination(self):
        cnf = CNF([(1, 2), (1, 3), (2, -3)])
        result = Preprocessor(
            subsumption=False, self_subsumption=False, variable_elimination=False
        ).preprocess(cnf)
        assert result.stats.pure_literals >= 1
        assert 1 in result.eliminated_variables
        # Reconstruction must choose the satisfying polarity.
        model = result.reconstruct({v: False for v in range(1, cnf.num_vars + 1)})
        assert model[1] is True

    def test_frozen_variables_never_pure_eliminated(self):
        cnf = CNF([(1, 2), (1, 3), (2, -3)])
        result = Preprocessor(
            subsumption=False, self_subsumption=False, variable_elimination=False
        ).preprocess(cnf, frozen=[1])
        assert 1 not in result.eliminated_variables

    def test_cascading_pure_literals(self):
        # Eliminating 1 makes 2 pure, and so on down the chain.
        cnf = CNF([(1, -2), (2, -3), (3, 4)])
        result = Preprocessor(
            subsumption=False, self_subsumption=False, variable_elimination=False
        ).preprocess(cnf)
        assert result.cnf.num_clauses == 0
        model = result.reconstruct({})
        assert check_model(cnf, _full_model(cnf, model))


class TestPreprocessorSubsumption:
    def test_superset_clause_removed(self):
        cnf = CNF([(1, 2), (1, 2, 3), (4, 5)])
        result = Preprocessor(variable_elimination=False, pure_literals=False).preprocess(cnf)
        assert result.stats.subsumed >= 1
        assert (1, 2, 3) not in result.cnf.clauses

    def test_duplicate_clauses_deduplicated(self):
        cnf = CNF([(1, 2), (2, 1), (1, 2)])
        result = Preprocessor(variable_elimination=False, pure_literals=False).preprocess(cnf)
        assert result.cnf.num_clauses == 1

    def test_self_subsumption_strengthens(self):
        cnf = CNF([(1, 2), (-1, 2, 3)])
        result = Preprocessor(variable_elimination=False, pure_literals=False).preprocess(cnf)
        assert result.stats.strengthened >= 1
        assert all(len(clause) <= 2 for clause in result.cnf.clauses)

    def test_strengthening_to_unit_feeds_propagation(self):
        # (1) strengthens (-1 2) to (2); the unit 2 must then propagate.
        cnf = CNF([(1,), (-1, 2), (-2, 3, 4)])
        result = Preprocessor(variable_elimination=False, pure_literals=False).preprocess(cnf)
        assert result.fixed.get(2) is True


class TestPreprocessorVariableElimination:
    def test_growth_bound_respected(self):
        clauses = [(1, 2), (1, 3), (1, 4), (-1, 5), (-1, 6), (-1, 7), (2, 5), (3, 6)]
        result = Preprocessor(
            subsumption=False, self_subsumption=False, pure_literals=False,
            max_growth=0, max_occurrences=100,
        ).preprocess(CNF(clauses))
        assert 1 not in result.eliminated_variables

    def test_occurrence_limit_respected(self):
        cnf = CNF([(1, v) for v in range(2, 8)] + [(-1, v) for v in range(8, 14)])
        result = Preprocessor(max_occurrences=5).preprocess(cnf)
        assert 1 not in result.eliminated_variables

    def test_resolvent_length_cap(self):
        # Eliminating 1 would create the length-4 resolvent (2 3 4 5).
        cnf = CNF([(1, 2, 3), (-1, 4, 5), (2, 4), (3, 5)])
        capped = Preprocessor(
            max_resolvent_length=3, subsumption=False, self_subsumption=False,
            pure_literals=False,
        ).preprocess(cnf)
        assert 1 not in capped.eliminated_variables
        uncapped = Preprocessor(
            subsumption=False, self_subsumption=False, pure_literals=False
        ).preprocess(cnf)
        assert 1 in uncapped.eliminated_variables
        assert all(len(clause) <= 3 for clause in capped.cnf.clauses)

    def test_frozen_variables_survive(self):
        cnf = CNF([(1, 2), (-1, 3), (2, 3)])
        result = Preprocessor().preprocess(cnf, frozen=[1])
        assert 1 not in result.eliminated_variables

    def test_eliminated_clause_recording_reconstructs_models(self):
        cnf, _ = planted_ksat(12, 40, seed=3)
        result = Preprocessor(max_growth=4, max_occurrences=50).preprocess(cnf)
        assert not result.unsat
        solved = CDCLSolver().solve(result.cnf)
        assert solved.is_sat
        model = result.reconstruct(solved.model)
        assert check_model(cnf, _full_model(cnf, model))

    def test_empty_resolvent_refutes(self):
        result = Preprocessor(
            unit_propagation=False, subsumption=False, self_subsumption=False,
            pure_literals=False,
        ).preprocess(CNF([(1,), (-1,)]))
        assert result.unsat


class TestPreprocessorProbing:
    def test_failed_literal_is_fixed(self):
        # Assuming -1 propagates 2 and -2: conflict, so 1 must be true — but
        # no single unit clause says so.
        cnf = CNF([(1, 2), (1, -2, 3), (1, -3), (1, -2, -3), (4, 5)])
        result = Preprocessor(
            subsumption=False, self_subsumption=False, variable_elimination=False,
            pure_literals=False, failed_literal_probing=True,
        ).preprocess(cnf, frozen=[1, 2, 3, 4, 5])
        assert result.fixed.get(1) is True
        assert result.stats.failed_literals >= 1
        assert result.stats.probed_literals > 0

    def test_both_polarities_failing_refutes(self):
        cnf = CNF([(1, 2), (1, -2), (-1, 3), (-1, -3)])
        result = Preprocessor(
            subsumption=False, self_subsumption=False, variable_elimination=False,
            pure_literals=False, failed_literal_probing=True,
        ).preprocess(cnf, frozen=[1, 2, 3])
        assert result.unsat


class TestPreprocessorBlockedClauses:
    def test_blocked_clause_removed_and_repaired(self):
        cnf = CNF([(1, 2), (-1, -2), (2, 3)])
        result = Preprocessor(
            subsumption=False, self_subsumption=False, variable_elimination=False,
            pure_literals=False, blocked_clause_elimination=True,
        ).preprocess(cnf)
        assert result.stats.blocked_clauses >= 1
        solved = CDCLSolver().solve(result.cnf)
        assert solved.is_sat
        model = result.reconstruct(solved.model)
        assert check_model(cnf, _full_model(cnf, model))

    def test_frozen_blocking_literals_are_not_used(self):
        cnf = CNF([(1, 2), (-1, -2)])
        result = Preprocessor(
            subsumption=False, self_subsumption=False, variable_elimination=False,
            pure_literals=False, blocked_clause_elimination=True,
        ).preprocess(cnf, frozen=[1, 2])
        assert result.stats.blocked_clauses == 0


class TestPreprocessorContract:
    def test_frozen_out_of_range_raises_value_error(self):
        cnf = CNF([(1, 2)])
        with pytest.raises(ValueError, match="frozen variables"):
            Preprocessor().preprocess(cnf, frozen=[3])
        with pytest.raises(ValueError, match="frozen variables"):
            Preprocessor().preprocess(cnf, frozen=[0])
        with pytest.raises(ValueError, match="frozen variables"):
            Preprocessor().preprocess(cnf, frozen=[-1])

    def test_bad_config_raises_value_error(self):
        with pytest.raises(ValueError):
            PreprocessConfig(max_occurrences=0)
        with pytest.raises(ValueError):
            PreprocessConfig(max_growth=-1)
        with pytest.raises(ValueError):
            PreprocessConfig(max_resolvent_length=-2)

    def test_variable_numbering_preserved(self):
        cnf, _ = planted_ksat(15, 50, seed=11)
        result = Preprocessor().preprocess(cnf)
        assert result.cnf.num_vars == cnf.num_vars

    def test_deterministic_output(self):
        cnf, _ = planted_ksat(20, 70, seed=2)
        first = Preprocessor().preprocess(cnf, frozen=[1, 2, 3])
        second = Preprocessor().preprocess(cnf, frozen=[1, 2, 3])
        assert first.cnf.clauses == second.cnf.clauses
        assert first.reconstruction == second.reconstruction

    def test_result_dataclass_shape(self):
        cnf = CNF([(1, 2)])
        result = Preprocessor().preprocess(cnf)
        assert isinstance(result, PreprocessResult)
        assert result.original is cnf
        assert result.stats.clauses_before == 1
        assert isinstance(result.stats.to_dict(), dict)
        assert "clauses" in result.summary()

    def test_config_override_shorthand(self):
        assert Preprocessor(max_growth=5).config.max_growth == 5
        base = PreprocessConfig(max_growth=2)
        assert Preprocessor(base, max_occurrences=9).config == PreprocessConfig(
            max_growth=2, max_occurrences=9
        )

    def test_registry_factories(self):
        from repro.api.registry import get_preprocessor, list_preprocessors

        assert "satelite" in list_preprocessors()
        assert "units-only" in list_preprocessors()
        units = get_preprocessor("units-only")()
        assert units.config.variable_elimination is False
        assert get_preprocessor("satelite")(max_growth=3).config.max_growth == 3


class TestSolverSimplifyKnob:
    """CDCLConfig.simplify: preprocessing inside CDCLSolver.load()."""

    def test_one_shot_model_covers_original_formula(self):
        cnf, _ = planted_ksat(14, 46, seed=8)
        result = CDCLSolver(CDCLConfig(simplify=True)).solve(cnf)
        assert result.is_sat
        assert check_model(cnf, result.model)

    def test_incremental_contract_with_frozen_assumptions(self):
        cnf, _ = planted_ksat(16, 55, seed=4)
        frozen = [1, 2, 3, 4]
        plain = CDCLSolver().load(cnf)
        simplifying = CDCLSolver(CDCLConfig(simplify=True)).load(cnf, frozen=frozen)
        for assumptions in ([1, -2], [-1, 2, 3], [4], [-3, -4], [1, 2, 3, 4]):
            expected = plain.solve(assumptions=assumptions)
            got = simplifying.solve(assumptions=assumptions)
            assert got.status is expected.status, assumptions
            if got.is_sat:
                assert check_model(cnf, got.model)
                for literal in assumptions:
                    assert got.model[abs(literal)] == (literal > 0)

    def test_assumption_on_eliminated_variable_raises(self):
        cnf, _ = planted_ksat(14, 46, seed=8)
        solver = CDCLSolver(CDCLConfig(simplify=True)).load(cnf, frozen=[1])
        eliminated = sorted(solver.eliminated_variables)
        assert eliminated, "expected the planted instance to lose variables"
        with pytest.raises(ValueError, match="eliminated or fixed by preprocessing"):
            solver.solve(assumptions=[eliminated[0]])

    def test_frozen_out_of_range_raises_on_load(self):
        cnf = CNF([(1, 2)])
        with pytest.raises(ValueError, match="frozen variables"):
            CDCLSolver(CDCLConfig(simplify=True)).load(cnf, frozen=[5])
        # The validation applies even with simplify off (contract consistency).
        with pytest.raises(ValueError, match="frozen variables"):
            CDCLSolver().load(cnf, frozen=[5])
        with pytest.raises(ValueError, match="frozen variables"):
            LegacyCDCLSolver().load(cnf, frozen=[5])

    def test_globally_unsat_after_preprocessing(self):
        cnf = CNF([(1,), (-1, 2), (-2,)])
        solver = CDCLSolver(CDCLConfig(simplify=True)).load(cnf)
        assert solver.solve().status.value == "UNSAT"
        assert solver.solve(assumptions=[1]).status.value == "UNSAT"

    def test_assumption_against_fixed_frozen_variable_is_unsat_under_assumptions(self):
        # UP fixes 1=True at the root; assuming -1 must be UNSAT, and the
        # solver must stay usable afterwards (not globally unsat).
        cnf = CNF([(1,), (-1, 2), (2, 3), (3, 4)])
        solver = CDCLSolver(CDCLConfig(simplify=True)).load(cnf, frozen=[1])
        assert solver.solve(assumptions=[-1]).status.value == "UNSAT"
        assert solver.solve(assumptions=[1]).status.value == "SAT"

    def test_custom_preprocessor_honoured(self):
        cnf, _ = planted_ksat(14, 46, seed=8)
        solver = CDCLSolver(CDCLConfig(simplify=True))
        solver.preprocessor = Preprocessor(
            subsumption=False, self_subsumption=False, variable_elimination=False,
            pure_literals=False,
        )
        solver.load(cnf)
        assert solver.eliminated_variables == frozenset()
        assert solver.presolve is not None

    def test_simplify_off_has_no_presolve(self):
        cnf = CNF([(1, 2)])
        solver = CDCLSolver().load(cnf)
        assert solver.presolve is None
        assert solver.eliminated_variables == frozenset()


class TestPredictiveFunctionFrozenPlumbing:
    def test_estimates_identical_with_and_without_frozen_plumbing(self):
        from repro.core.predictive import PredictiveFunction

        cnf, _ = planted_ksat(16, 55, seed=6)
        plain = PredictiveFunction(
            cnf, solver=CDCLSolver(), sample_size=20, seed=1,
            incremental=True, sample_cache_size=None,
        ).evaluate([1, 2, 3, 4])
        plumbed = PredictiveFunction(
            cnf, solver=CDCLSolver(), sample_size=20, seed=1,
            incremental=True, sample_cache_size=None,
            frozen_variables=range(1, 9),
        ).evaluate([1, 2, 3, 4])
        assert plain.value == plumbed.value
        assert [o.cost for o in plain.observations] == [o.cost for o in plumbed.observations]
        assert [o.status for o in plain.observations] == [
            o.status for o in plumbed.observations
        ]

    def test_simplifying_solver_reloads_for_unfrozen_decomposition(self):
        from repro.core.predictive import PredictiveFunction

        cnf, _ = planted_ksat(16, 55, seed=6)
        solver = CDCLSolver(CDCLConfig(simplify=True))
        evaluator = PredictiveFunction(
            cnf, solver=solver, sample_size=10, seed=1,
            incremental=True, sample_cache_size=None,
            frozen_variables=[1, 2, 3],
        )
        evaluator.evaluate([1, 2, 3])
        eliminated = sorted(solver.eliminated_variables)
        assert eliminated, "expected eliminations on the planted instance"
        target = eliminated[0]
        result = evaluator.evaluate([1, target])  # must trigger a re-load, not an error
        assert evaluator.num_freeze_reloads == 1
        assert target not in solver.eliminated_variables
        assert result.sample_size == 10

    def test_assumption_on_nonfrozen_fixed_variable_raises(self):
        # Var 1 is root-fixed by UP but NOT frozen: its clauses are gone from
        # the simplified formula, so assuming against it could silently
        # return SAT on a query the original formula refutes.  It must raise.
        cnf = CNF([(1,), (2, 3)], 3)
        solver = CDCLSolver(CDCLConfig(simplify=True)).load(cnf, frozen=[2])
        with pytest.raises(ValueError, match="eliminated or fixed by preprocessing"):
            solver.solve(assumptions=[-1])
        with pytest.raises(ValueError, match="eliminated or fixed by preprocessing"):
            solver.solve(assumptions=[1])  # even the agreeing polarity
        # Freezing the variable instead keeps it assumable and sound.
        frozen_solver = CDCLSolver(CDCLConfig(simplify=True)).load(cnf, frozen=[1, 2])
        assert frozen_solver.solve(assumptions=[-1]).status.value == "UNSAT"
        assert frozen_solver.solve(assumptions=[1]).status.value == "SAT"

    def test_unassumable_variables_property(self):
        cnf = CNF([(1,), (2, 3)], 3)
        solver = CDCLSolver(CDCLConfig(simplify=True)).load(cnf, frozen=[2])
        assert 1 in solver.unassumable_variables
        assert 2 not in solver.unassumable_variables
        plain = CDCLSolver().load(cnf)
        assert plain.unassumable_variables == frozenset()

    def test_reload_triggered_by_nonfrozen_fixed_decomposition_variable(self):
        # Var 1 is root-fixed away by preprocessing (not frozen at first
        # load); a later decomposition naming it must re-load with the
        # enlarged frozen set and then sample soundly: the 1=False half of
        # the sample is UNSAT on the original formula, so not every
        # observation may claim SAT.
        from repro.core.predictive import PredictiveFunction
        from repro.sat.solver import SolverStatus

        cnf = CNF([(1,), (2, 3)], 3)
        solver = CDCLSolver(CDCLConfig(simplify=True))
        evaluator = PredictiveFunction(
            cnf, solver=solver, sample_size=8, seed=0,
            incremental=True, sample_cache_size=None, frozen_variables=[2],
        )
        evaluator.evaluate([2])                    # loads with frozen = {2}
        assert 1 in solver.unassumable_variables   # var 1 was fixed away
        result = evaluator.evaluate([1])           # must re-load, not mis-sample
        assert evaluator.num_freeze_reloads == 1
        assert 1 not in solver.unassumable_variables
        statuses = {obs.status for obs in result.observations}
        assert SolverStatus.UNSAT in statuses

    def test_first_evaluation_freezes_its_decomposition_at_load(self):
        # The very first evaluate() folds its decomposition into the frozen
        # set before the initial load, so no reload is needed and the sample
        # is sound immediately.
        from repro.core.predictive import PredictiveFunction
        from repro.sat.solver import SolverStatus

        cnf = CNF([(1,), (2, 3)], 3)
        evaluator = PredictiveFunction(
            cnf, solver=CDCLSolver(CDCLConfig(simplify=True)), sample_size=8,
            seed=0, incremental=True, sample_cache_size=None, frozen_variables=[2],
        )
        result = evaluator.evaluate([1])
        assert evaluator.num_freeze_reloads == 0
        assert SolverStatus.UNSAT in {obs.status for obs in result.observations}
