"""Unit tests for repro.sat.formula."""

from __future__ import annotations

import pytest

from repro.sat.formula import CNF, lit_to_var, neg, normalize_clause, var_to_lit


class TestLiteralHelpers:
    def test_neg_flips_sign(self):
        assert neg(3) == -3
        assert neg(-7) == 7

    def test_neg_rejects_zero(self):
        with pytest.raises(ValueError):
            neg(0)

    def test_lit_to_var(self):
        assert lit_to_var(5) == 5
        assert lit_to_var(-5) == 5

    def test_lit_to_var_rejects_zero(self):
        with pytest.raises(ValueError):
            lit_to_var(0)

    def test_var_to_lit_polarities(self):
        assert var_to_lit(4) == 4
        assert var_to_lit(4, positive=False) == -4

    def test_var_to_lit_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            var_to_lit(0)
        with pytest.raises(ValueError):
            var_to_lit(-2)


class TestNormalizeClause:
    def test_deduplicates(self):
        assert normalize_clause([1, 1, 2]) == (1, 2)

    def test_detects_tautology(self):
        assert normalize_clause([1, -1, 3]) is None

    def test_empty_clause(self):
        assert normalize_clause([]) == ()

    def test_sorted_by_variable(self):
        assert normalize_clause([-3, 1, 2]) == (1, 2, -3)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            normalize_clause([1, 0, 2])


class TestCNFConstruction:
    def test_infers_num_vars(self):
        cnf = CNF([(1, -5), (2, 3)])
        assert cnf.num_vars == 5

    def test_explicit_num_vars_can_exceed_max(self):
        cnf = CNF([(1, 2)], num_vars=10)
        assert cnf.num_vars == 10

    def test_explicit_num_vars_raised_to_max(self):
        cnf = CNF([(1, 7)], num_vars=3)
        assert cnf.num_vars == 7

    def test_rejects_zero_literal(self):
        with pytest.raises(ValueError):
            CNF([(1, 0)])

    def test_add_clause_updates_num_vars(self):
        cnf = CNF()
        cnf.add_clause((4, -9))
        assert cnf.num_vars == 9
        assert cnf.num_clauses == 1

    def test_add_clauses(self):
        cnf = CNF()
        cnf.add_clauses([(1,), (2, -3)])
        assert cnf.num_clauses == 2

    def test_new_var_is_fresh(self):
        cnf = CNF([(1, 2)])
        v = cnf.new_var()
        assert v == 3
        assert cnf.num_vars == 3

    def test_len_and_iter(self):
        clauses = [(1, 2), (-1, 3)]
        cnf = CNF(clauses)
        assert len(cnf) == 2
        assert list(cnf) == [(1, 2), (-1, 3)]

    def test_equality(self):
        assert CNF([(1, 2)]) == CNF([(1, 2)])
        assert CNF([(1, 2)]) != CNF([(2, 1)])

    def test_copy_is_independent(self):
        cnf = CNF([(1, 2)])
        clone = cnf.copy()
        clone.add_clause((3,))
        assert cnf.num_clauses == 1
        assert clone.num_clauses == 2

    def test_variables(self):
        cnf = CNF([(1, -4), (2,)], num_vars=9)
        assert cnf.variables() == {1, 2, 4}


class TestCNFAssign:
    def test_assign_satisfies_clause(self):
        cnf = CNF([(1, 2), (-1, 3)])
        reduced = cnf.assign({1: True})
        assert reduced.clauses == [(3,)]

    def test_assign_removes_falsified_literal(self):
        cnf = CNF([(1, 2)])
        reduced = cnf.assign({1: False})
        assert reduced.clauses == [(2,)]

    def test_assign_can_produce_empty_clause(self):
        cnf = CNF([(1, 2)])
        reduced = cnf.assign({1: False, 2: False})
        assert reduced.clauses == [()]

    def test_assign_preserves_numbering(self):
        cnf = CNF([(1, 2), (3, 4)])
        reduced = cnf.assign({1: True})
        assert reduced.num_vars == 4

    def test_with_unit_clauses(self):
        cnf = CNF([(1, 2)])
        extended = cnf.with_unit_clauses({2: False, 3: True})
        assert (-2,) in extended.clauses
        assert (3,) in extended.clauses
        assert extended.num_clauses == 3

    def test_with_unit_clauses_does_not_mutate_original(self):
        cnf = CNF([(1, 2)])
        cnf.with_unit_clauses({1: True})
        assert cnf.num_clauses == 1


class TestCNFModels:
    def test_is_satisfied_by_dict(self):
        cnf = CNF([(1, -2), (2, 3)])
        assert cnf.is_satisfied_by({1: True, 2: False, 3: True})
        assert not cnf.is_satisfied_by({1: False, 2: True, 3: False})

    def test_is_satisfied_by_sequence(self):
        cnf = CNF([(1, -2), (2, 3)])
        assert cnf.is_satisfied_by([True, False, True])

    def test_falsified_clauses(self):
        cnf = CNF([(1,), (-1, 2), (2,)])
        falsified = cnf.falsified_clauses({1: True, 2: False})
        assert falsified == [(-1, 2), (2,)]

    def test_restrict_to_clauses(self):
        cnf = CNF([(1, 2), (3,), (-1,)])
        units = cnf.restrict_to_clauses(lambda c: len(c) == 1)
        assert units.clauses == [(3,), (-1,)]
