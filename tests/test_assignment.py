"""Unit tests for repro.sat.assignment."""

from __future__ import annotations

import pytest

from repro.sat.assignment import Assignment


class TestConstruction:
    def test_rejects_nonpositive_variables(self):
        with pytest.raises(ValueError):
            Assignment({0: True})

    def test_from_literals(self):
        a = Assignment.from_literals([3, -5])
        assert a[3] is True
        assert a[5] is False

    def test_from_literals_conflict(self):
        with pytest.raises(ValueError):
            Assignment.from_literals([2, -2])

    def test_from_literals_rejects_zero(self):
        with pytest.raises(ValueError):
            Assignment.from_literals([0])

    def test_from_bits(self):
        a = Assignment.from_bits([4, 7, 9], [1, 0, 1])
        assert a.values == {4: True, 7: False, 9: True}

    def test_from_bits_length_mismatch(self):
        with pytest.raises(ValueError):
            Assignment.from_bits([1, 2], [1])

    def test_from_model(self):
        a = Assignment.from_model([True, False, True])
        assert a.values == {1: True, 2: False, 3: True}


class TestViews:
    def test_len_contains_get(self):
        a = Assignment({1: True, 2: False})
        assert len(a) == 2
        assert 1 in a
        assert 3 not in a
        assert a.get(3) is None
        assert a.get(3, True) is True

    def test_variables_sorted(self):
        a = Assignment({5: True, 2: False})
        assert a.variables() == [2, 5]

    def test_str(self):
        assert str(Assignment({2: True, 1: False})) == "{1=0, 2=1}"


class TestConversions:
    def test_to_literals(self):
        a = Assignment({3: False, 1: True})
        assert a.to_literals() == [1, -3]

    def test_to_unit_clauses(self):
        a = Assignment({2: True})
        assert a.to_unit_clauses() == [(2,)]

    def test_bits_for(self):
        a = Assignment({1: True, 2: False, 3: True})
        assert a.bits_for([3, 2, 1]) == (1, 0, 1)

    def test_bits_for_missing_variable(self):
        with pytest.raises(KeyError):
            Assignment({1: True}).bits_for([1, 2])

    def test_restrict(self):
        a = Assignment({1: True, 2: False, 3: True})
        assert a.restrict([1, 3]).values == {1: True, 3: True}

    def test_update_overrides(self):
        a = Assignment({1: True})
        b = a.update({1: False, 2: True})
        assert b.values == {1: False, 2: True}
        assert a.values == {1: True}

    def test_update_accepts_assignment(self):
        merged = Assignment({1: True}).update(Assignment({2: False}))
        assert merged.values == {1: True, 2: False}


class TestAgreement:
    def test_agrees_with_disjoint(self):
        assert Assignment({1: True}).agrees_with(Assignment({2: False}))

    def test_agrees_with_same(self):
        assert Assignment({1: True}).agrees_with(Assignment({1: True, 2: False}))

    def test_disagrees(self):
        assert not Assignment({1: True}).agrees_with(Assignment({1: False}))
