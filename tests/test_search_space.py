"""Tests for the χ-vector search space and its neighbourhoods."""

from __future__ import annotations

import math

import pytest

from repro.core.search_space import SearchSpace


class TestConstruction:
    def test_base_sorted_and_deduplicated(self):
        space = SearchSpace([5, 2, 2, 9])
        assert space.base_variables == (2, 5, 9)
        assert space.dimension == 3
        assert space.size == 8

    def test_empty_base_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace([])

    def test_nonpositive_variable_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace([0, 1])

    def test_start_point_is_full_base(self):
        space = SearchSpace([1, 2, 3])
        assert space.start_point() == frozenset({1, 2, 3})

    def test_point_validation(self):
        space = SearchSpace([1, 2, 3])
        assert space.point([1, 3]) == frozenset({1, 3})
        with pytest.raises(ValueError):
            space.point([4])


class TestChiVectors:
    def test_round_trip(self):
        space = SearchSpace([2, 4, 6, 8])
        point = frozenset({4, 8})
        assert space.from_chi_vector(space.to_chi_vector(point)) == point

    def test_to_chi_vector_order(self):
        space = SearchSpace([3, 1, 2])
        assert space.to_chi_vector(frozenset({1, 3})) == (1, 0, 1)

    def test_from_chi_vector_length_check(self):
        space = SearchSpace([1, 2])
        with pytest.raises(ValueError):
            space.from_chi_vector([1])

    def test_hamming_distance(self):
        space = SearchSpace([1, 2, 3, 4])
        assert space.hamming_distance(frozenset({1, 2}), frozenset({2, 3})) == 2
        assert space.hamming_distance(frozenset({1}), frozenset({1})) == 0


class TestNeighborhoods:
    def test_radius_one_size(self):
        space = SearchSpace(list(range(1, 8)))
        point = space.start_point()
        neighbors = list(space.neighborhood(point, radius=1))
        assert len(neighbors) == 7
        assert all(space.hamming_distance(point, n) == 1 for n in neighbors)

    def test_radius_two_contains_radius_one(self):
        space = SearchSpace([1, 2, 3, 4])
        point = frozenset({1, 2})
        r1 = set(space.neighborhood(point, radius=1))
        r2 = set(space.neighborhood(point, radius=2))
        assert r1 <= r2
        assert len(r2) == space.neighborhood_size(point, 2)

    def test_empty_set_excluded(self):
        space = SearchSpace([1, 2])
        neighbors = list(space.neighborhood(frozenset({1}), radius=1))
        # Flipping variable 1 off would give the empty set, which is excluded;
        # the only radius-1 neighbour is the full set.
        assert frozenset() not in neighbors
        assert neighbors == [frozenset({1, 2})]

    def test_neighborhood_size_accounts_for_empty_exclusion(self):
        space = SearchSpace([1, 2, 3])
        single = frozenset({2})
        expected = math.comb(3, 1) - 1  # flipping variable 2 off would give the empty set
        assert space.neighborhood_size(single, 1) == expected
        assert len(list(space.neighborhood(single, 1))) == expected

    def test_deterministic_order(self):
        space = SearchSpace([1, 2, 3, 4, 5])
        point = frozenset({1, 2, 3})
        assert list(space.neighborhood(point, 1)) == list(space.neighborhood(point, 1))

    def test_invalid_radius(self):
        space = SearchSpace([1, 2])
        with pytest.raises(ValueError):
            list(space.neighborhood(frozenset({1}), radius=0))

    def test_point_outside_space_rejected(self):
        space = SearchSpace([1, 2])
        with pytest.raises(ValueError):
            list(space.neighborhood(frozenset({9}), radius=1))

    def test_is_neighborhood_checked(self):
        space = SearchSpace([1, 2, 3])
        point = space.start_point()
        neighbors = set(space.neighborhood(point, 1))
        assert not space.is_neighborhood_checked(point, set())
        assert space.is_neighborhood_checked(point, neighbors)

    def test_unchecked_neighbors(self):
        space = SearchSpace([1, 2, 3])
        point = space.start_point()
        neighbors = list(space.neighborhood(point, 1))
        checked = {neighbors[0]}
        remaining = list(space.unchecked_neighbors(point, checked, 1))
        assert neighbors[0] not in remaining
        assert len(remaining) == len(neighbors) - 1

    def test_to_decomposition(self):
        space = SearchSpace([4, 2])
        dec = space.to_decomposition(frozenset({2, 4}))
        assert dec.variables == (2, 4)

    def test_contains(self):
        space = SearchSpace([1, 2, 3])
        assert space.contains(frozenset({1, 3}))
        assert not space.contains(frozenset({5}))
