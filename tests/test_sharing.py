"""The clause-sharing portfolio's determinism and soundness battery (PR 10).

Four layers, bottom up:

* the :class:`~repro.portfolio.exchange.ClauseExchange` bus — policy filters,
  per-round budgets, first-exporter dedup, round-stamped visibility (a round-r
  export is importable from round r+1, never earlier), seeded rotation, audit
  log;
* the engines' sharing surface — ``import_clauses`` / ``exportable_clauses``
  on both the arena and the legacy engine, including cross-engine transplants;
* the inprocessing contract — frozen variables survive
  :meth:`~repro.sat.cdcl.CDCLSolver.inprocess`, ``unassumable_variables`` is
  correct afterwards, and chained reconstruction stacks across repeated
  inprocessing passes;
* the :class:`~repro.portfolio.sharing.SharingPortfolioSolver` determinism
  contract — same seed ⇒ bit-identical winner, costs, counters, exchange log,
  schedule fingerprint and trace bytes, across repeated runs and across the
  inline / thread / simulated-grid executors and ``replay=True``.

This module is part of the CI flake-detection matrix (five PYTHONHASHSEED
values), so none of the equalities below may depend on dict/set iteration
order.
"""

from __future__ import annotations

import io

import pytest

from repro.portfolio import (
    ClauseExchange,
    PortfolioSolver,
    SharingPolicy,
    SharingPortfolioSolver,
    slice_budget_for,
)
from repro.portfolio.portfolio import default_portfolio
from repro.sat.cdcl import CDCLSolver, LegacyCDCLSolver
from repro.sat.formula import CNF
from repro.sat.random_cnf import planted_ksat, random_ksat
from repro.sat.simplify import Preprocessor
from repro.sat.solver import SolverStatus, check_model


@pytest.fixture(scope="module")
def bivium():
    """One bivium-tiny inversion instance shared by the heavier races."""
    from repro.api.registry import get_cipher
    from repro.problems import make_inversion_instance

    return make_inversion_instance(get_cipher("bivium-tiny")(), seed=1)


# --------------------------------------------------------------------- exchange
class TestClauseExchange:
    def _bus(self, **kwargs) -> ClauseExchange:
        defaults = dict(members=["a", "b", "c"], policy=SharingPolicy(), seed=7)
        defaults.update(kwargs)
        return ClauseExchange(**defaults)

    def test_policy_filters_lbd_and_size(self):
        bus = self._bus(policy=SharingPolicy(max_lbd=3, max_size=4))
        accepted = bus.export(
            "a",
            0,
            [((1, 2), 2), ((3, 4), 4), ((1, 2, 3, 4, 5), 2)],
        )
        assert accepted == 1  # lbd 4 and size 5 both fail the policy
        assert [record.clause for record in bus.records] == [(1, 2)]
        assert bus.exported["a"] == 1
        assert bus.dropped["a"] == 2

    def test_per_round_budget_keeps_the_best_clauses(self):
        bus = self._bus(policy=SharingPolicy(max_lbd=10, max_size=10, per_round=2))
        candidates = [((1, 2, 3), 3), ((4, 5), 1), ((6, 7), 2), ((8, 9), 1)]
        assert bus.export("a", 0, candidates) == 2
        # Ranked by (lbd, size, literals): the two lbd-1 clauses win.
        assert [record.clause for record in bus.records] == [(4, 5), (8, 9)]

    def test_first_exporter_wins_dedup(self):
        bus = self._bus()
        assert bus.export("a", 0, [((1, 2), 2)]) == 1
        assert bus.export("b", 0, [((1, 2), 2)]) == 0
        assert len(bus.records) == 1
        assert bus.records[0].exporter == 0

    def test_round_stamped_visibility(self):
        bus = self._bus()
        bus.export("a", 0, [((1, 2), 2)])
        # Not visible in the round it was exported in ...
        assert bus.imports_for("b", 0) == []
        # ... visible from the next round on, but never to the exporter.
        assert bus.imports_for("b", 1) == [(1, 2)]
        assert bus.imports_for("a", 1) == []
        # The cursor advanced: nothing is delivered twice.
        assert bus.imports_for("b", 2) == []

    def test_import_order_is_a_pure_function_of_the_seed(self):
        def run(seed: int):
            bus = self._bus(seed=seed)
            bus.export("a", 0, [((1, 2), 2), ((3, 4), 2)])
            bus.export("b", 0, [((5, 6), 2), ((7, 8), 2)])
            return bus.imports_for("c", 1), bus.schedule_fingerprint()

        first_order, first_print = run(7)
        second_order, second_print = run(7)
        assert first_order == second_order
        assert first_print == second_print
        assert sorted(first_order) == [(1, 2), (3, 4), (5, 6), (7, 8)]

    def test_audit_log_records_every_barrier_call(self):
        bus = self._bus()
        bus.export("a", 0, [((1, 2), 2)])
        bus.imports_for("b", 1)
        assert bus.log_tuples() == [(0, "a", "export", 1), (1, "b", "import", 1)]
        assert bus.total_exported == 1
        assert bus.total_imported == 1

    def test_member_validation(self):
        with pytest.raises(ValueError):
            ClauseExchange(members=[])
        with pytest.raises(ValueError):
            ClauseExchange(members=["a", "a"])

    def test_policy_validation(self):
        for bad in (
            dict(max_lbd=0),
            dict(max_size=0),
            dict(per_round=0),
        ):
            with pytest.raises(ValueError):
                SharingPolicy(**bad)


# ------------------------------------------------------------------ slice budget
class TestSliceBudget:
    def test_sliceable_measures_map_to_their_budget_field(self):
        assert slice_budget_for("conflicts", 5).max_conflicts == 5
        assert slice_budget_for("decisions", 7).max_decisions == 7
        assert slice_budget_for("propagations", 9).max_propagations == 9

    def test_wall_clock_measures_are_rejected(self):
        # Slicing by seconds would make the virtual race machine-dependent —
        # the latent flake the BENCH_7 gate must never inherit.
        for measure in ("wall_time", "weighted"):
            with pytest.raises(ValueError):
                slice_budget_for(measure, 100)

    def test_zero_units_are_rejected(self):
        with pytest.raises(ValueError):
            slice_budget_for("conflicts", 0)


# ------------------------------------------------------------- engine surfaces
ENGINES = {"arena": CDCLSolver, "legacy": LegacyCDCLSolver}


class TestImportExport:
    @staticmethod
    def _learned_solver(engine_cls, seed: int = 3):  # seed 3: SAT, both engines learn
        cnf = random_ksat(20, 85, k=3, seed=seed)
        solver = engine_cls().load(cnf)
        solver.solve()
        return cnf, solver

    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_exportable_clauses_are_canonical_and_filtered(self, engine):
        _, solver = self._learned_solver(ENGINES[engine])
        exports = solver.exportable_clauses(max_lbd=4, max_size=6)
        assert exports, f"{engine}: the solve learned nothing exportable"
        keys = [(lbd, len(clause), clause) for clause, lbd in exports]
        assert keys == sorted(keys)  # canonical (lbd, size, literals) order
        for clause, lbd in exports:
            assert lbd <= 4 and len(clause) <= 6
            assert clause == tuple(sorted(clause, key=abs))
        limited = solver.exportable_clauses(max_lbd=4, max_size=6, limit=3)
        assert limited == exports[:3]

    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_exported_clauses_are_implied_by_the_formula(self, engine):
        cnf, solver = self._learned_solver(ENGINES[engine])
        checker = CDCLSolver().load(cnf)
        for clause, _lbd in solver.exportable_clauses(max_lbd=5, max_size=8):
            negation = [-lit for lit in clause]
            assert checker.solve(assumptions=negation).status is SolverStatus.UNSAT, (
                f"{engine} exported a clause the formula does not imply: {clause}"
            )

    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_import_units_constrain_the_model(self, engine):
        cnf = random_ksat(12, 30, k=3, seed=11)  # under-constrained: SAT
        solver = ENGINES[engine]().load(cnf)
        model = solver.solve().model
        assert model is not None
        # A unit implied by the formula: any literal true in some model is
        # consistent; re-check it is actually a consequence-free import by
        # solving under it afterwards.
        literal = 3 if model[3] else -3
        assert solver.import_clauses([(literal,)]) == 1
        result = solver.solve()
        assert result.status is SolverStatus.SAT
        assert result.model[3] is (literal > 0)

    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_import_skips_root_satisfied_and_rejects_foreign_literals(self, engine):
        cnf = CNF([(1,), (1, 2), (3, 4)], num_vars=4)
        solver = ENGINES[engine]().load(cnf)
        solver.solve()
        # 1 is fixed at the root by the unit clause, so (1, 3) adds nothing.
        assert solver.import_clauses([(1, 3)]) == 0
        with pytest.raises(ValueError):
            solver.import_clauses([(5, 6)])

    def test_cross_engine_transplant_preserves_verdicts(self):
        # Clauses learned by one engine import cleanly into the other and
        # never flip any answer on a shared assumption corpus.
        cnf = random_ksat(16, 68, k=3, seed=23)
        arena = CDCLSolver().load(cnf)
        legacy = LegacyCDCLSolver().load(cnf)
        arena.solve()
        legacy.solve()
        legacy.import_clauses(
            [clause for clause, _ in arena.exportable_clauses(max_lbd=4, max_size=8)]
        )
        arena.import_clauses(
            [clause for clause, _ in legacy.exportable_clauses(max_lbd=4, max_size=8)]
        )
        reference = CDCLSolver()
        for assumptions in ([], [1], [-1], [2, -3], [-2, 3], [4, 5, -6]):
            expected = reference.solve(cnf, assumptions=assumptions).status
            assert arena.solve(assumptions=assumptions).status is expected
            assert legacy.solve(assumptions=assumptions).status is expected

    def test_import_requires_a_loaded_formula(self):
        with pytest.raises(ValueError):
            CDCLSolver().import_clauses([(1,)])
        assert CDCLSolver().exportable_clauses() == []


# ------------------------------------------------------- inprocessing contract
class TestInprocessingContract:
    @staticmethod
    def _sliced(solver, assumptions=(), rounds=2, budget=256):
        for _ in range(rounds):
            result = solver.solve(
                None, assumptions, budget=slice_budget_for("propagations", budget)
            )
            if result.is_decided:
                break
        return result

    def test_frozen_variables_survive_inprocessing(self, bivium):
        frozen = frozenset(bivium.start_set)
        solver = CDCLSolver().load(bivium.cnf, frozen=frozen)
        self._sliced(solver)
        result = solver.inprocess(Preprocessor())
        assert result is not None and not result.unsat
        # The whole point of the contract: the assumption superset stays
        # assumable, while the simplifier did real work elsewhere.
        assert not (frozen & solver.unassumable_variables)
        assert not (frozen & result.eliminated_variables)
        assert solver.unassumable_variables, (
            "expected bivium-tiny inprocessing to eliminate or fix variables"
        )

    def test_unassumable_variables_reject_assumptions_after_inprocessing(self, bivium):
        frozen = frozenset(bivium.start_set)
        solver = CDCLSolver().load(bivium.cnf, frozen=frozen)
        self._sliced(solver)
        solver.inprocess(Preprocessor())
        gone = sorted(solver.unassumable_variables)
        assert gone
        with pytest.raises(ValueError):
            solver.solve(None, [gone[0]])
        # Frozen assumptions still work and agree with an untouched solver.
        reference = CDCLSolver().load(bivium.cnf)
        for polarity in (1, -1):
            assumptions = [polarity * v for v in bivium.start_set[:3]]
            expected = reference.solve(None, assumptions)
            got = solver.solve(None, assumptions)
            assert got.status is expected.status

    def test_chained_reconstruction_stacks_across_passes(self, bivium):
        # Two inprocessing passes with solving in between: the reconstruction
        # stages chain, and a final SAT model must satisfy the *original*
        # formula with every assumption honoured.
        frozen = frozenset(bivium.start_set)
        solver = CDCLSolver().load(bivium.cnf, frozen=frozen)
        self._sliced(solver)
        first = solver.inprocess(Preprocessor())
        self._sliced(solver)
        second = solver.inprocess(Preprocessor())
        assert first is not None and second is not None
        result = solver.solve(None, [])
        assert result.status is SolverStatus.SAT
        assert check_model(bivium.cnf, result.model)

    def test_inprocessing_keeps_answers_on_random_instances(self):
        for seed in range(6):
            cnf = random_ksat(14, round(4.3 * 14), k=3, seed=300 + seed)
            frozen = [1, 2, 3]
            solver = CDCLSolver().load(cnf, frozen=frozen)
            self._sliced(solver, budget=64, rounds=1)
            solver.inprocess(Preprocessor())
            reference = CDCLSolver()
            for assumptions in ([], [1], [-1, 2], [3, -2]):
                expected = reference.solve(cnf, assumptions=assumptions)
                got = solver.solve(None, assumptions)
                assert got.status is expected.status, (seed, assumptions)
                if got.status is SolverStatus.SAT:
                    assert check_model(cnf, got.model), (seed, assumptions)
                    for literal in assumptions:
                        assert got.model[abs(literal)] is (literal > 0)

    def test_inprocess_requires_load_and_skips_refuted_databases(self):
        with pytest.raises(ValueError):
            CDCLSolver().inprocess(Preprocessor())
        unsat = CNF([(1,), (-1,)], num_vars=1)
        solver = CDCLSolver().load(unsat)
        assert solver.solve().status is SolverStatus.UNSAT
        assert solver.inprocess(Preprocessor()) is None


# ------------------------------------------------------- portfolio determinism
def _race(members=3, **kwargs) -> SharingPortfolioSolver:
    defaults = dict(
        configurations=default_portfolio()[:members],
        cost_measure="propagations",
        slice_budget=512,
        max_rounds=64,
        policy=SharingPolicy(max_lbd=6, max_size=12, per_round=64),
        seed=3,
    )
    defaults.update(kwargs)
    return SharingPortfolioSolver(**defaults)


def _traced_solve(solver: SharingPortfolioSolver, cnf, **kwargs):
    from repro.trace.format import TraceWriter

    buffer = io.BytesIO()
    writer = TraceWriter(buffer, kind="portfolio-sharing", fingerprint="sharing-test")
    result = solver.solve(cnf, trace=writer, **kwargs)
    writer.close()
    return result, buffer.getvalue()


def _signature(result) -> tuple:
    """Everything the determinism contract pins, as one comparable tuple."""
    return (
        result.status,
        result.winner.configuration.name if result.winner else None,
        result.decided_round,
        result.rounds_executed,
        [run.cost for run in result.runs],
        [run.rounds for run in result.runs],
        [(run.exported, run.imported, run.imported_added) for run in result.runs],
        result.exported,
        result.imported,
        result.exchange_log,
        result.shared_clauses,
        result.exchange_fingerprint,
    )


class TestSharingDeterminism:
    def test_same_seed_is_bit_identical_across_repeated_runs(self, bivium):
        first, first_bytes = _traced_solve(_race(4), bivium.cnf)
        second, second_bytes = _traced_solve(_race(4), bivium.cnf)
        assert _signature(first) == _signature(second)
        assert first_bytes == second_bytes
        assert first.total_exported > 0 and first.total_imported > 0

    def test_all_executors_and_replay_agree_bit_for_bit(self, bivium):
        reference, reference_bytes = _traced_solve(_race(4), bivium.cnf)
        for variant in (
            _race(4, executor="threads"),
            _race(4, executor="threads", threads=2),
            _race(4, executor="simulated-grid"),
        ):
            result, raw = _traced_solve(variant, bivium.cnf)
            assert _signature(result) == _signature(reference), variant.executor
            assert raw == reference_bytes, variant.executor
        replayed, replay_bytes = _traced_solve(_race(4), bivium.cnf, replay=True)
        assert _signature(replayed) == _signature(reference)
        assert replay_bytes == reference_bytes
        assert replayed.executor == "replay" and replayed.replay is True

    def test_thread_vs_inline_in_replay_mode(self, bivium):
        # replay=True ignores the configured executor by construction; the
        # determinism claim is that a thread-configured solver's replay is
        # still bit-identical to the inline solver's live run.
        live, live_bytes = _traced_solve(_race(3), bivium.cnf)
        replayed, replay_bytes = _traced_solve(
            _race(3, executor="threads"), bivium.cnf, replay=True
        )
        assert _signature(replayed) == _signature(live)
        assert replay_bytes == live_bytes

    def test_inprocessing_runs_stay_deterministic(self, bivium):
        solver = lambda: _race(3, policy=SharingPolicy(), inprocess_every=4)  # noqa: E731
        first, first_bytes = _traced_solve(solver(), bivium.cnf)
        second, second_bytes = _traced_solve(solver(), bivium.cnf)
        assert _signature(first) == _signature(second)
        assert first_bytes == second_bytes
        assert any(run.inprocessings > 0 for run in first.runs)

    def test_assumptions_are_honoured_and_deterministic(self):
        cnf, planted = planted_ksat(24, 96, k=3, seed=9)
        literal = 5 if planted[5] else -5
        runs = [
            _race(3, slice_budget=64, max_rounds=128).solve(cnf, assumptions=[literal])
            for _ in range(2)
        ]
        assert _signature(runs[0]) == _signature(runs[1])
        assert runs[0].status is SolverStatus.SAT
        assert runs[0].model[abs(literal)] is (literal > 0)
        assert check_model(cnf, runs[0].model)

    def test_disagreeing_members_raise(self):
        # Simultaneous SAT and UNSAT claims in one barrier must abort the run
        # loudly — sanity net for the soundness argument, never expected.
        class Liar:
            def __init__(self, status):
                self._status = status

            def load(self, cnf, frozen=()):
                return self

            def solve(self, cnf, assumptions=(), budget=None):
                from repro.sat.solver import SolveResult, SolverStats

                return SolveResult(
                    status=self._status,
                    model={} if self._status is SolverStatus.SAT else None,
                    stats=SolverStats(),
                )

        from dataclasses import dataclass

        @dataclass(frozen=True)
        class LiarConfiguration:
            name: str
            status: SolverStatus

            def build_solver(self):
                return Liar(self.status)

        solver = SharingPortfolioSolver(
            [
                LiarConfiguration("sat-liar", SolverStatus.SAT),
                LiarConfiguration("unsat-liar", SolverStatus.UNSAT),
            ],
            slice_budget=16,
            max_rounds=1,
        )
        with pytest.raises(RuntimeError, match="disagree"):
            solver.solve(CNF([(1, 2)], num_vars=2))


class TestSharingAgainstIsolated:
    def test_sharing_agrees_with_the_isolated_sliced_portfolio(self, bivium):
        configurations = default_portfolio()[:4]
        isolated = PortfolioSolver(
            configurations, cost_measure="propagations", slice_budget=512, max_rounds=64
        ).solve(bivium.cnf)
        sharing = _race(4).solve(bivium.cnf)
        assert sharing.status is isolated.status
        assert sharing.status is SolverStatus.SAT
        assert check_model(bivium.cnf, sharing.model)

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            SharingPortfolioSolver([])
        duplicated = [default_portfolio()[0]] * 2
        with pytest.raises(ValueError):
            SharingPortfolioSolver(duplicated)
        with pytest.raises(ValueError):
            SharingPortfolioSolver(cost_measure="wall_time")
        with pytest.raises(ValueError):
            SharingPortfolioSolver(max_rounds=0)
        with pytest.raises(ValueError):
            SharingPortfolioSolver(inprocess_every=-1)
        with pytest.raises(ValueError):
            SharingPortfolioSolver(executor="processes")
        with pytest.raises(ValueError):
            SharingPortfolioSolver(threads=0)

    def test_undecided_race_reports_unknown_at_the_round_cap(self, bivium):
        result = _race(3, slice_budget=16, max_rounds=2).solve(bivium.cnf)
        assert result.status is SolverStatus.UNKNOWN
        assert result.decided_round is None
        assert result.rounds_executed == 2
        assert result.virtual_parallel_cost == float("inf")
