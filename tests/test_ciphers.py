"""Tests common to every keystream generator plus cipher-specific checks.

The central invariant: for random states, the bit-level simulator and the
Tseitin-encoded circuit must produce identical keystream.  On top of that each
cipher has structural checks (register layout, validation, scaled presets).
"""

from __future__ import annotations

import pytest

from repro.ciphers import A51, Bivium, Geffe, Grain, Trivium
from repro.ciphers.bivium import RegisterSpec, TriviumLike
from repro.ciphers.grain import GrainLike

ALL_GENERATORS = [
    pytest.param(Geffe.tiny(), id="geffe-tiny"),
    pytest.param(Geffe(), id="geffe"),
    pytest.param(A51.scaled("tiny"), id="a51-tiny"),
    pytest.param(A51.scaled("small"), id="a51-small"),
    pytest.param(A51.full(), id="a51-full"),
    pytest.param(Bivium.scaled("tiny"), id="bivium-tiny"),
    pytest.param(Bivium.scaled("small"), id="bivium-small"),
    pytest.param(Bivium.full(), id="bivium-full"),
    pytest.param(Trivium.scaled("tiny"), id="trivium-tiny"),
    pytest.param(Grain.scaled("tiny"), id="grain-tiny"),
    pytest.param(Grain.scaled("small"), id="grain-small"),
    pytest.param(Grain.full(), id="grain-full"),
]


class TestGeneratorContract:
    @pytest.mark.parametrize("generator", ALL_GENERATORS)
    def test_simulator_matches_circuit(self, generator):
        length = min(generator.default_keystream_length(), 32)
        for seed in range(2):
            state = generator.random_state(seed)
            assert generator.keystream_from_state(state, length) == generator.circuit_keystream(
                state, length
            )

    @pytest.mark.parametrize("generator", ALL_GENERATORS)
    def test_state_size_matches_registers(self, generator):
        assert generator.state_size == sum(generator.registers().values())

    @pytest.mark.parametrize("generator", ALL_GENERATORS)
    def test_random_state_is_deterministic(self, generator):
        assert generator.random_state(7) == generator.random_state(7)
        assert len(generator.random_state(7)) == generator.state_size

    @pytest.mark.parametrize("generator", ALL_GENERATORS)
    def test_keystream_is_deterministic(self, generator):
        state = generator.random_state(0)
        assert generator.keystream_from_state(state, 16) == generator.keystream_from_state(state, 16)

    @pytest.mark.parametrize("generator", ALL_GENERATORS)
    def test_keystream_bits_are_binary(self, generator):
        state = generator.random_state(3)
        assert set(generator.keystream_from_state(state, 24)) <= {0, 1}

    @pytest.mark.parametrize("generator", ALL_GENERATORS)
    def test_split_state_round_trip(self, generator):
        state = generator.random_state(1)
        split = generator.split_state(state)
        flat = [bit for reg in generator.registers() for bit in split[reg]]
        assert flat == state

    @pytest.mark.parametrize("generator", ALL_GENERATORS)
    def test_split_state_validates_length(self, generator):
        with pytest.raises(ValueError):
            generator.split_state([0] * (generator.state_size + 1))

    @pytest.mark.parametrize("generator", ALL_GENERATORS)
    def test_state_variable_labels(self, generator):
        labels = generator.state_variable_labels()
        assert len(labels) == generator.state_size
        assert len(set(labels)) == generator.state_size

    @pytest.mark.parametrize(
        "generator",
        [
            pytest.param(Geffe.tiny(), id="geffe-tiny"),
            pytest.param(A51.scaled("tiny"), id="a51-tiny"),
            pytest.param(Bivium.scaled("tiny"), id="bivium-tiny"),
            pytest.param(Grain.scaled("tiny"), id="grain-tiny"),
        ],
    )
    def test_encode_exposes_state_and_keystream(self, generator):
        encoding = generator.encode(10)
        for reg, width in generator.registers().items():
            assert len(encoding.vars_of_group(reg)) == width
        assert len(encoding.vars_of_group("keystream")) == 10


class TestA51:
    def test_full_parameters(self):
        a51 = A51.full()
        assert a51.registers() == {"R1": 19, "R2": 22, "R3": 23}
        assert a51.state_size == 64

    def test_keystream_depends_on_state(self):
        a51 = A51.scaled("tiny")
        s1, s2 = a51.random_state(0), a51.random_state(1)
        assert s1 != s2
        assert a51.keystream_from_state(s1, 30) != a51.keystream_from_state(s2, 30)

    def test_majority_clocking_stops_minority_register(self):
        # With clock bits (1, 1, 0) registers 1 and 2 move, register 3 stays.
        a51 = A51.scaled("tiny")
        state = [0] * a51.state_size
        lengths = a51.lengths
        # Set the clocking bits of registers 1 and 2 to 1.
        state[a51.clock_bits[0]] = 1
        state[lengths[0] + a51.clock_bits[1]] = 1
        regs_before = a51.split_state(state)
        a51.keystream_from_state(state, 1)
        # Simulate one step manually to compare register 3 (it must not shift).
        # Since register 3's clocking bit (0) disagrees with the majority (1),
        # its content is unchanged after one step; we verify via the simulator's
        # internals by reproducing the step.
        clock_vals = [regs_before["R1"][a51.clock_bits[0]], regs_before["R2"][a51.clock_bits[1]], regs_before["R3"][a51.clock_bits[2]]]
        majority = int(sum(clock_vals) >= 2)
        assert clock_vals[2] != majority

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            A51(lengths=(4, 5), taps=((1,), (1,)), clock_bits=(1, 1))
        with pytest.raises(ValueError):
            A51(lengths=(4, 5, 6), taps=((9,), (1,), (1,)), clock_bits=(1, 1, 1))
        with pytest.raises(ValueError):
            A51.scaled("huge")

    def test_default_keystream_length_grows_with_state(self):
        assert A51.full().default_keystream_length() > A51.scaled("tiny").default_keystream_length()


class TestTriviumFamily:
    def test_bivium_full_parameters(self):
        bivium = Bivium.full()
        assert bivium.registers() == {"A": 93, "B": 84}
        assert bivium.state_size == 177

    def test_trivium_full_parameters(self):
        trivium = Trivium.full()
        assert trivium.registers() == {"A": 93, "B": 84, "C": 111}
        assert trivium.state_size == 288

    def test_scaled_presets_have_valid_taps(self):
        for size in ("tiny", "small", "medium"):
            bivium = Bivium.scaled(size)
            for spec in bivium.specs:
                assert 1 <= spec.t_tap < spec.length
                assert 1 <= spec.and_taps[0] <= spec.length
                assert 1 <= spec.and_taps[1] <= spec.length
                assert spec.and_taps[0] != spec.and_taps[1]

    def test_unknown_preset(self):
        with pytest.raises(ValueError):
            Bivium.scaled("enormous")
        with pytest.raises(ValueError):
            Trivium.scaled("enormous")

    def test_register_spec_validation(self):
        with pytest.raises(ValueError):
            RegisterSpec(length=3, t_tap=1, and_taps=(1, 2), dest_extra_tap=1)
        with pytest.raises(ValueError):
            RegisterSpec(length=10, t_tap=11, and_taps=(1, 2), dest_extra_tap=1)

    def test_cross_register_tap_validation(self):
        specs = (
            RegisterSpec(length=10, t_tap=5, and_taps=(8, 9), dest_extra_tap=20),
            RegisterSpec(length=8, t_tap=4, and_taps=(6, 7), dest_extra_tap=3),
        )
        with pytest.raises(ValueError):
            TriviumLike(specs)

    def test_needs_two_registers(self):
        with pytest.raises(ValueError):
            TriviumLike((RegisterSpec(length=10, t_tap=5, and_taps=(8, 9), dest_extra_tap=3),))

    def test_bivium_keystream_mixes_both_registers(self):
        bivium = Bivium.scaled("tiny")
        state_a = [1] * bivium.specs[0].length + [0] * bivium.specs[1].length
        state_b = [1] * bivium.specs[0].length + [1] * bivium.specs[1].length
        assert bivium.keystream_from_state(state_a, 20) != bivium.keystream_from_state(state_b, 20)


class TestGrain:
    def test_full_parameters(self):
        grain = Grain.full()
        assert grain.registers() == {"NFSR": 80, "LFSR": 80}
        assert grain.state_size == 160

    def test_scaled_presets(self):
        for size, expected in (("tiny", 16), ("small", 26), ("medium", 40)):
            assert Grain.scaled(size).state_size == expected

    def test_unknown_preset(self):
        with pytest.raises(ValueError):
            Grain.scaled("giant")

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GrainLike(4, 4, lfsr_taps=(9,), nfsr_linear_taps=(0,), nfsr_monomials=(),
                      filter_monomials=(), output_nfsr_taps=(0,))
        with pytest.raises(ValueError):
            GrainLike(4, 4, lfsr_taps=(0,), nfsr_linear_taps=(0,), nfsr_monomials=(),
                      filter_monomials=((("x", 1),),), output_nfsr_taps=(0,))
        with pytest.raises(ValueError):
            GrainLike(4, 4, lfsr_taps=(0,), nfsr_linear_taps=(0,), nfsr_monomials=((7,),),
                      filter_monomials=(), output_nfsr_taps=(0,))

    def test_keystream_depends_on_lfsr(self):
        grain = Grain.scaled("tiny")
        base = [0] * grain.state_size
        flipped = list(base)
        flipped[-1] = 1  # flip an LFSR bit
        assert grain.keystream_from_state(base, 24) != grain.keystream_from_state(flipped, 24)


class TestGeffe:
    def test_registers(self):
        assert Geffe().registers() == {"L1": 7, "L2": 8, "L3": 9}
        assert Geffe.tiny().state_size == 12

    def test_selector_semantics(self):
        # When register 1 outputs 1 the keystream follows register 2, else register 3.
        geffe = Geffe.tiny()
        state = geffe.random_state(4)
        keystream = geffe.keystream_from_state(state, 8)
        assert set(keystream) <= {0, 1}

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Geffe(lengths=(3, 4), taps=((1,), (1,)))
        with pytest.raises(ValueError):
            Geffe(lengths=(3, 4, 5), taps=((9,), (1,), (1,)))
