"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.ciphers import Geffe
from repro.problems import make_inversion_instance
from repro.sat.cdcl import CDCLSolver
from repro.sat.dpll import DPLLSolver
from repro.sat.formula import CNF


@pytest.fixture
def cdcl() -> CDCLSolver:
    """A fresh CDCL solver with default configuration."""
    return CDCLSolver()


@pytest.fixture
def dpll() -> DPLLSolver:
    """A fresh DPLL solver (reference implementation)."""
    return DPLLSolver()


@pytest.fixture
def tiny_sat_cnf() -> CNF:
    """A small satisfiable CNF with a unique model: x1=T, x2=F, x3=T."""
    return CNF([(1,), (-2,), (3,), (-1, -2, 3)])


@pytest.fixture
def tiny_unsat_cnf() -> CNF:
    """A minimal unsatisfiable CNF."""
    return CNF([(1, 2), (1, -2), (-1, 2), (-1, -2)])


@pytest.fixture
def geffe_instance():
    """A Geffe-tiny inversion instance used by several integration-level tests."""
    return make_inversion_instance(Geffe.tiny(), keystream_length=24, seed=5)
