"""Tests for the volunteer-computing (SAT@home-style) grid simulation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runner.cluster import simulate_makespan
from repro.runner.volunteer import (
    VolunteerGridConfig,
    VolunteerSimulation,
    simulate_volunteer_grid,
)


def _uniform_costs(n: int, cost: float = 10.0) -> list[float]:
    return [cost] * n


class TestConfigValidation:
    def test_rejects_bad_host_count(self):
        with pytest.raises(ValueError):
            VolunteerGridConfig(num_hosts=0)

    def test_rejects_bad_availability(self):
        with pytest.raises(ValueError):
            VolunteerGridConfig(availability=0.0)
        with pytest.raises(ValueError):
            VolunteerGridConfig(availability=1.5)

    def test_rejects_bad_failure_rate(self):
        with pytest.raises(ValueError):
            VolunteerGridConfig(failure_rate=1.0)

    def test_rejects_quorum_above_redundancy(self):
        with pytest.raises(ValueError):
            VolunteerGridConfig(redundancy=1, quorum=2)

    def test_rejects_bad_speed(self):
        with pytest.raises(ValueError):
            VolunteerGridConfig(mean_speed=0.0)
        with pytest.raises(ValueError):
            VolunteerGridConfig(speed_spread=0.5)

    def test_rejects_bad_deadline(self):
        with pytest.raises(ValueError):
            VolunteerGridConfig(deadline_factor=0.0)


class TestSimulation:
    def test_all_work_units_complete(self):
        costs = _uniform_costs(50)
        result = simulate_volunteer_grid(costs, VolunteerGridConfig(num_hosts=10, seed=1))
        assert len(result.completed_at) == len(costs)
        assert result.campaign_duration > 0
        assert result.total_work == pytest.approx(sum(costs))

    def test_empty_costs_rejected(self):
        with pytest.raises(ValueError):
            simulate_volunteer_grid([])

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            simulate_volunteer_grid([1.0, -2.0])

    def test_deterministic_given_seed(self):
        costs = [float(1 + (i % 7)) for i in range(40)]
        config = VolunteerGridConfig(num_hosts=12, seed=9)
        first = simulate_volunteer_grid(costs, config)
        second = simulate_volunteer_grid(costs, config)
        assert first.campaign_duration == second.campaign_duration
        assert first.dispatched_results == second.dispatched_results

    def test_more_hosts_do_not_slow_the_campaign(self):
        costs = [float(2 + (i % 5)) for i in range(120)]
        small = simulate_volunteer_grid(costs, VolunteerGridConfig(num_hosts=5, seed=3))
        large = simulate_volunteer_grid(costs, VolunteerGridConfig(num_hosts=50, seed=3))
        assert large.campaign_duration <= small.campaign_duration * 1.05

    def test_redundancy_increases_dispatched_results(self):
        costs = _uniform_costs(60)
        single = simulate_volunteer_grid(
            costs, VolunteerGridConfig(num_hosts=20, redundancy=1, quorum=1, seed=2)
        )
        double = simulate_volunteer_grid(
            costs, VolunteerGridConfig(num_hosts=20, redundancy=2, quorum=1, seed=2)
        )
        assert double.dispatched_results > single.dispatched_results
        assert double.replication_overhead >= 1.5

    def test_unreliable_hosts_cause_reissues(self):
        costs = _uniform_costs(80)
        flaky = simulate_volunteer_grid(
            costs,
            VolunteerGridConfig(
                num_hosts=20, redundancy=1, quorum=1, failure_rate=0.4, seed=4
            ),
        )
        assert flaky.reissued_work_units > 0
        assert flaky.lost_results > 0
        assert len(flaky.completed_at) == len(costs)

    def test_volunteer_grid_is_slower_than_dedicated_cluster(self):
        # Same number of "machines", but volunteers are part-time and replicated:
        # the campaign must take longer than the dedicated-cluster makespan.
        costs = [float(5 + (i % 11)) for i in range(200)]
        config = VolunteerGridConfig(
            num_hosts=16, availability=0.3, redundancy=2, quorum=1, seed=5, mean_speed=1.0
        )
        grid = simulate_volunteer_grid(costs, config)
        cluster = simulate_makespan(costs, num_cores=16)
        assert grid.campaign_duration > cluster.makespan

    def test_effective_throughput_bounded_by_host_capacity(self):
        costs = _uniform_costs(100, cost=4.0)
        config = VolunteerGridConfig(num_hosts=10, availability=0.5, mean_speed=1.0, seed=6)
        result = simulate_volunteer_grid(costs, config)
        # 10 hosts at 50% duty cycle and spread speeds cannot sustainably exceed
        # ~10 * 0.5 * max_speed work per unit time; with spread 3 the cap is 15.
        assert result.effective_throughput <= 10 * 0.5 * 3.0 + 1e-6

    def test_summary_mentions_hosts(self):
        result = simulate_volunteer_grid(_uniform_costs(10), VolunteerGridConfig(num_hosts=4))
        assert "4 hosts" in result.summary()
        assert isinstance(result, VolunteerSimulation)


@settings(max_examples=20, deadline=None)
@given(
    num_jobs=st.integers(min_value=1, max_value=60),
    seed=st.integers(min_value=0, max_value=1000),
    redundancy=st.integers(min_value=1, max_value=3),
)
def test_property_campaign_always_finishes(num_jobs, seed, redundancy):
    costs = [float(1 + (i % 9)) for i in range(num_jobs)]
    config = VolunteerGridConfig(
        num_hosts=8, redundancy=redundancy, quorum=1, failure_rate=0.2, seed=seed
    )
    result = simulate_volunteer_grid(costs, config)
    assert len(result.completed_at) == num_jobs
    assert result.campaign_duration >= 0
