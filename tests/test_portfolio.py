"""Tests for the portfolio approach and the portfolio-vs-partitioning comparison."""

from __future__ import annotations

import pytest

from repro.portfolio import (
    PortfolioSolver,
    SolverConfiguration,
    compare_with_partitioning,
    default_portfolio,
)
from repro.sat.cdcl import CDCLConfig
from repro.sat.formula import CNF
from repro.sat.random_cnf import pigeonhole, planted_ksat, random_ksat
from repro.sat.solver import SolverBudget, SolverStatus, check_model


class TestDefaultPortfolio:
    def test_has_distinct_names(self):
        members = default_portfolio()
        assert len(members) >= 8
        assert len({m.name for m in members}) == len(members)

    def test_builds_independent_solvers(self):
        member = default_portfolio()[0]
        assert member.build_solver() is not member.build_solver()


class TestPortfolioSolver:
    def test_sat_instance(self):
        cnf, _ = planted_ksat(16, 60, seed=2)
        result = PortfolioSolver().solve(cnf)
        assert result.status is SolverStatus.SAT
        winner = result.winner
        assert winner is not None
        assert check_model(cnf, winner.result.model)

    def test_unsat_instance(self):
        result = PortfolioSolver().solve(pigeonhole(3))
        assert result.status is SolverStatus.UNSAT

    def test_all_members_agree(self):
        cnf = random_ksat(14, 60, seed=3)
        result = PortfolioSolver().solve(cnf)
        statuses = {run.result.status for run in result.runs if run.result.is_decided}
        assert len(statuses) == 1

    def test_virtual_parallel_cost_is_minimum_over_decided(self):
        cnf = random_ksat(14, 60, seed=4)
        result = PortfolioSolver().solve(cnf)
        decided_costs = [run.cost for run in result.runs if run.result.is_decided]
        assert result.virtual_parallel_cost == min(decided_costs)

    def test_total_work_capped_at_winner_cost(self):
        cnf = random_ksat(14, 60, seed=5)
        result = PortfolioSolver().solve(cnf)
        cap = result.virtual_parallel_cost
        assert result.total_work <= cap * len(result.runs) + 1e-9

    def test_budget_gives_unknown(self):
        cnf = pigeonhole(5)
        result = PortfolioSolver().solve(cnf, budget=SolverBudget(max_conflicts=5))
        assert result.status is SolverStatus.UNKNOWN
        assert result.winner is None
        assert result.virtual_parallel_cost == float("inf")

    def test_assumptions_are_passed_through(self):
        cnf = CNF([(1, 2)])
        result = PortfolioSolver().solve(cnf, assumptions=[-1])
        assert result.status is SolverStatus.SAT
        assert result.winner.result.model[2] is True

    def test_custom_configuration_list(self):
        members = [SolverConfiguration("only", CDCLConfig())]
        cnf, _ = planted_ksat(10, 30, seed=6)
        result = PortfolioSolver(members).solve(cnf)
        assert len(result.runs) == 1

    def test_empty_portfolio_rejected(self):
        with pytest.raises(ValueError):
            PortfolioSolver([])

    def test_summary_names_the_winner(self):
        cnf, _ = planted_ksat(10, 30, seed=7)
        result = PortfolioSolver().solve(cnf)
        assert result.winner.configuration.name in result.summary()


class TestComparison:
    def test_comparison_on_inversion_instance(self, geffe_instance):
        decomposition = list(geffe_instance.start_set)[-6:]
        comparison = compare_with_partitioning(
            geffe_instance.cnf, decomposition, num_cores=8
        )
        assert comparison.portfolio.status is SolverStatus.SAT
        assert comparison.partitioning_makespan > 0
        assert comparison.partitioning_total_work >= comparison.partitioning_makespan
        assert comparison.speedup_of_partitioning > 0

    def test_comparison_respects_core_count(self, geffe_instance):
        decomposition = list(geffe_instance.start_set)[-4:]
        comparison = compare_with_partitioning(
            geffe_instance.cnf, decomposition, num_cores=3
        )
        assert comparison.num_cores == 3
        assert len(comparison.portfolio.runs) <= 3
