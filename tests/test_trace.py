"""Tests for the observability subsystem: binary traces and their toolkit.

Four layers are covered, mirroring the package structure:

* the **codec** (:mod:`repro.trace.format`) — randomized roundtrips, every
  error path (magic, version, truncation, dangling string refs) and the
  million-event size budget (≤ 8 bytes/event);
* the **instrumentation** — for both CDCL engines, the preprocessor and the
  scheduler, the event stream must agree *exactly* with the subsystem's own
  statistics counters (traces are evidence, so they must not drift from the
  numbers the rest of the system reports);
* **determinism and diffing** — identically-seeded runs produce byte-identical
  trace files and a zero-divergence diff, while a config-knob change is
  pinpointed at its first divergent event;
* the **zero-overhead contract** — the arena hot loop carries exactly three
  strippable ``# trace-hook`` lines and a hook-stripped build propagates
  bit-identical closures; the companion wall-clock budget (disabled tracing
  costs ≤ 5 %) is timing-sensitive and therefore lives in the perf-smoke
  lane (``benchmarks/bench_tracing_overhead.py``), not in tier-1.
"""

from __future__ import annotations

import inspect
import io
import json
import random
import textwrap

import pytest

from repro.sat.cdcl import CDCLSolver, LegacyCDCLSolver
from repro.sat.cdcl.config import CDCLConfig
from repro.sat.formula import CNF
from repro.sat.random_cnf import random_ksat
from repro.sat.simplify import Preprocessor
from repro.sat.solver import SolverBudget, SolverStats
from repro.trace import (
    diff_traces,
    read_trace,
    record_estimate,
    record_simplify,
    record_solve,
    summarize_trace,
)
from repro.trace.analysis import format_summary
from repro.trace.diff import format_diff
from repro.trace.export import export_trace, export_trace_string
from repro.trace.format import (
    EVENT_TASK_DISPATCH,
    FORMAT_VERSION,
    MAGIC,
    PRE_RULES,
    TraceFormatError,
    TraceReader,
    TraceTruncatedError,
    TraceVersionError,
    TraceWriter,
    cnf_fingerprint,
)


def _reread(buffer: io.BytesIO):
    """Decode a trace written into a BytesIO (writer flushed, not closed)."""
    return read_trace(io.BytesIO(buffer.getvalue()))


def _event_counts(events) -> dict[str, int]:
    counts: dict[str, int] = {}
    for event in events:
        counts[event.name] = counts.get(event.name, 0) + 1
    return counts


# ---------------------------------------------------------------------- codec
class TestCodecRoundtrip:
    def test_header_roundtrip(self):
        buffer = io.BytesIO()
        config = {"solver": "cdcl", "options": {"restart_base": 50}}
        meta = {"num_vars": 12, "num_clauses": 40}
        with TraceWriter(
            buffer, kind="solve", fingerprint="deadbeef01234567",
            config=config, meta=meta,
        ):
            pass
        header, events = _reread(buffer)
        assert events == []
        assert header.version == FORMAT_VERSION
        assert header.kind == "solve"
        assert header.fingerprint == "deadbeef01234567"
        assert header.config == config
        assert header.meta == meta

    def test_randomized_event_stream_roundtrips_exactly(self):
        rng = random.Random(1234)
        buffer = io.BytesIO()
        writer = TraceWriter(buffer, kind="fuzz")
        expected: list[tuple[str, tuple]] = []
        conflicts = 0
        last_time_us = 0
        tasks = [f"task-{i}" for i in range(7)]
        outcomes = ["success", "error", "timeout"]
        for _ in range(4000):
            choice = rng.randrange(12)
            if choice == 0:
                lit = rng.randint(-(10**7), 10**7)
                writer.decide(lit)
                expected.append(("DECIDE", (lit,)))
            elif choice == 1:
                lits = [rng.randint(-4000, 4000) for _ in range(rng.randint(0, 6))]
                writer.enqueue_all(lits)
                expected.extend(("ENQUEUE", (lit,)) for lit in lits)
            elif choice == 2:
                lit = rng.randint(-99, 99)
                writer.enqueue(lit)
                expected.append(("ENQUEUE", (lit,)))
            elif choice == 3:
                level = rng.randint(0, 500)
                writer.conflict(level)
                expected.append(("CONFLICT", (level,)))
            elif choice == 4:
                lbd, size = rng.randint(1, 30), rng.randint(1, 60)
                writer.learn(lbd, size)
                expected.append(("LEARN", (lbd, size)))
            elif choice == 5:
                to_level = rng.randint(0, 100)
                from_level = to_level + rng.randint(0, 50)
                writer.backtrack(from_level, to_level)
                expected.append(("BACKTRACK", (from_level, to_level)))
            elif choice == 6:
                conflicts += rng.randint(0, 300)
                writer.restart(conflicts)
                expected.append(("RESTART", (conflicts,)))
            elif choice == 7:
                deleted, remaining = rng.randint(0, 99), rng.randint(0, 99)
                writer.reduce(deleted, remaining)
                expected.append(("REDUCE", (deleted, remaining)))
                before = rng.randint(0, 10**6)
                after = rng.randint(0, before)
                writer.arena_gc(before, after)
                expected.append(("ARENA_GC", (before, after)))
            elif choice == 8:
                round_index = rng.randint(1, 9)
                num_vars = rng.randint(0, 500)
                num_clauses = rng.randint(0, 2000)
                writer.pre_round(round_index, num_vars, num_clauses)
                expected.append(("PRE_ROUND", (round_index, num_vars, num_clauses)))
            elif choice == 9:
                rule = rng.choice(PRE_RULES)
                count = rng.randint(1, 40)
                writer.pre_rule(rule, count)
                expected.append(("PRE_RULE", (rule, count)))
            elif choice == 10:
                task = rng.choice(tasks)
                seq = rng.randint(1, 10**4)
                writer.task_dispatch(task, seq)
                expected.append(("TASK_DISPATCH", (task, seq)))
                if rng.random() < 0.3:
                    attempt = rng.randint(1, 5)
                    writer.task_retry(task, attempt)
                    expected.append(("TASK_RETRY", (task, attempt)))
            else:
                task = rng.choice(tasks)
                outcome = rng.choice(outcomes)
                time_s = rng.random() * 100.0
                duration_s = rng.random()
                writer.task_complete(task, outcome, time_s, duration_s)
                # Replicate the writer's microsecond quantisation: the reader
                # reconstructs the stored (rounded) absolute value exactly.
                time_us = int(round(time_s * 1e6))
                duration_us = max(0, int(round(duration_s * 1e6)))
                expected.append(("TASK_COMPLETE", (task, outcome, time_us, duration_us)))
                last_time_us = time_us
        writer.close()
        header, events = _reread(buffer)
        assert header.kind == "fuzz"
        assert [(event.name, event.args) for event in events] == expected

    def test_enqueue_all_equals_individual_enqueues(self):
        lits = [3, -7, 120, -1, 0, 99999, -99999]
        one = io.BytesIO()
        with TraceWriter(one) as writer:
            writer.enqueue_all(lits)
        other = io.BytesIO()
        with TraceWriter(other) as writer:
            for lit in lits:
                writer.enqueue(lit)
        assert one.getvalue() == other.getvalue()
        _, events = _reread(one)
        assert [event.args[0] for event in events] == lits


class TestCodecErrors:
    @staticmethod
    def _header_bytes(**kwargs) -> bytes:
        buffer = io.BytesIO()
        with TraceWriter(buffer, **kwargs):
            pass
        return buffer.getvalue()

    def test_bad_magic_raises_format_error(self):
        with pytest.raises(TraceFormatError, match="bad magic"):
            TraceReader(io.BytesIO(b"NOPE" + b"\x00" * 16))

    def test_empty_file_raises_format_error(self):
        with pytest.raises(TraceFormatError):
            TraceReader(io.BytesIO(b""))

    def test_future_version_raises_version_error(self):
        blob = b"{}"
        data = MAGIC + bytes([FORMAT_VERSION + 1]) + bytes([len(blob)]) + blob
        with pytest.raises(TraceVersionError, match="not supported"):
            TraceReader(io.BytesIO(data))

    def test_header_cut_short_raises_truncated_error(self):
        data = self._header_bytes()
        with pytest.raises(TraceTruncatedError):
            TraceReader(io.BytesIO(data[: len(data) // 2]))

    def test_corrupt_header_json_raises_format_error(self):
        blob = b"{not json"
        data = MAGIC + bytes([FORMAT_VERSION]) + bytes([len(blob)]) + blob
        with pytest.raises(TraceFormatError, match="corrupt trace header"):
            TraceReader(io.BytesIO(data))

    def test_event_cut_inside_varint_raises_truncated_error(self):
        buffer = io.BytesIO()
        with TraceWriter(buffer) as writer:
            writer.decide(123456789)  # multi-byte varint payload
        data = buffer.getvalue()
        reader = TraceReader(io.BytesIO(data[:-1]))
        with pytest.raises(TraceTruncatedError):
            list(reader.events())

    def test_string_record_cut_short_raises_truncated_error(self):
        buffer = io.BytesIO()
        with TraceWriter(buffer) as writer:
            writer.task_dispatch("a-rather-long-task-identifier", 1)
        data = buffer.getvalue()
        header_len = len(self._header_bytes())
        # Cut inside the STRDEF payload (well before the dispatch record).
        reader = TraceReader(io.BytesIO(data[: header_len + 6]))
        with pytest.raises(TraceTruncatedError):
            list(reader.events())

    def test_unknown_event_code_raises_format_error(self):
        data = self._header_bytes() + bytes([200])
        reader = TraceReader(io.BytesIO(data))
        with pytest.raises(TraceFormatError, match="unknown event code"):
            list(reader.events())

    def test_undefined_string_reference_raises_format_error(self):
        # A TASK_DISPATCH referencing string-table slot 5 with no STRDEF.
        data = self._header_bytes() + bytes([EVENT_TASK_DISPATCH, 5, 1])
        reader = TraceReader(io.BytesIO(data))
        with pytest.raises(TraceFormatError, match="string-table reference"):
            list(reader.events())

    def test_every_truncation_point_raises_cleanly(self):
        # Chopping the stream at *any* byte inside the event section must
        # either decode a clean prefix or raise TraceTruncatedError — never
        # yield garbage or an unrelated exception.
        buffer = io.BytesIO()
        with TraceWriter(buffer) as writer:
            writer.task_dispatch("tail-task", 7)
            writer.decide(-1234)
            writer.restart(500)
            writer.task_complete("tail-task", "success", 1.5, 0.25)
        data = buffer.getvalue()
        header_len = len(self._header_bytes())
        full = [(e.name, e.args) for e in TraceReader(io.BytesIO(data)).events()]
        for cut in range(header_len, len(data)):
            reader = TraceReader(io.BytesIO(data[:cut]))
            try:
                prefix = [(e.name, e.args) for e in reader.events()]
            except TraceTruncatedError:
                continue
            assert prefix == full[: len(prefix)]


class TestMillionEventBudget:
    def test_million_events_fit_in_eight_bytes_each(self):
        rng = random.Random(7)
        buffer = io.BytesIO()
        writer = TraceWriter(buffer, kind="smoke")
        header_size = len(buffer.getvalue()) + len(writer._buf)
        target = 1_000_000
        batch = [rng.randint(-3000, 3000) for _ in range(1000)]
        while writer.event_count < target:
            writer.enqueue_all(batch)
            writer.decide(rng.randint(-3000, 3000))
            writer.conflict(rng.randint(0, 64))
            writer.learn(rng.randint(1, 20), rng.randint(1, 40))
        writer.close()
        total = len(buffer.getvalue())
        per_event = (total - header_size) / writer.event_count
        assert writer.event_count >= target
        assert per_event <= 8.0, f"{per_event:.2f} bytes/event exceeds the budget"
        # The stream must also decode end to end.
        decoded = sum(1 for _ in TraceReader(io.BytesIO(buffer.getvalue())).events())
        assert decoded == writer.event_count


# ------------------------------------------------------------- instrumentation
def _traced_solve(solver, cnf, **kwargs):
    buffer = io.BytesIO()
    writer = TraceWriter(buffer)
    result = solver.solve(cnf, trace=writer, **kwargs)
    writer.close()
    _, events = _reread(buffer)
    return result, events


class TestSolverInstrumentation:
    #: Past the phase transition (UNSAT) with a small restart budget, so
    #: conflicts, learning, backtracking *and* restarts all occur.
    CNF_ARGS = (60, 276)

    @pytest.mark.parametrize("engine", [CDCLSolver, LegacyCDCLSolver])
    def test_event_counts_equal_stats_counters(self, engine):
        cnf = random_ksat(*self.CNF_ARGS, k=3, seed=11)
        solver = engine(CDCLConfig(restart_base=16))
        result, events = _traced_solve(solver, cnf)
        counts = _event_counts(events)
        stats = result.stats
        assert counts.get("DECIDE", 0) == stats.decisions
        assert counts.get("ENQUEUE", 0) == stats.propagations
        assert counts.get("CONFLICT", 0) == stats.conflicts
        assert counts.get("RESTART", 0) == stats.restarts
        learned = sum(1 for e in events if e.name == "LEARN" and e.args[1] > 1)
        assert learned == stats.learned_clauses
        assert counts.get("SOLVE", 0) == 1
        assert stats.conflicts > 0 and stats.restarts > 0  # workload is real

    @pytest.mark.parametrize("engine", [CDCLSolver, LegacyCDCLSolver])
    def test_restart_conflict_counters_are_monotone(self, engine):
        cnf = random_ksat(*self.CNF_ARGS, k=3, seed=11)
        _, events = _traced_solve(engine(CDCLConfig(restart_base=16)), cnf)
        at_restart = [e.args[0] for e in events if e.name == "RESTART"]
        assert at_restart == sorted(at_restart)
        assert all(b > a for a, b in zip(at_restart, at_restart[1:]))

    def test_persistent_trace_spans_incremental_solve_calls(self):
        cnf = random_ksat(20, 80, k=3, seed=4)
        buffer = io.BytesIO()
        writer = TraceWriter(buffer)
        solver = CDCLSolver().load(cnf)
        solver.trace = writer
        for assumptions in ([], [1], [-1, 2]):
            solver.solve(assumptions=assumptions)
        writer.close()
        _, events = _reread(buffer)
        solves = [e for e in events if e.name == "SOLVE"]
        assert len(solves) == 3
        seqs = [e.args[0] for e in solves]
        assert seqs == sorted(seqs) and len(set(seqs)) == 3
        assert [e.args[1] for e in solves] == [0, 1, 2]

    def test_backtrack_events_never_increase_the_level(self):
        cnf = random_ksat(*self.CNF_ARGS, k=3, seed=11)
        _, events = _traced_solve(CDCLSolver(), cnf)
        jumps = [e.args for e in events if e.name == "BACKTRACK"]
        assert jumps and all(frm >= to for frm, to in jumps)


class TestPreprocessorInstrumentation:
    @staticmethod
    def _record(cnf, **options):
        buffer = io.BytesIO()
        writer = TraceWriter(buffer, kind="simplify")
        result = Preprocessor(**options).preprocess(cnf, trace=writer)
        writer.close()
        _, events = _reread(buffer)
        return result, events

    def test_round_events_match_stats_rounds(self):
        cnf = random_ksat(30, 100, k=3, seed=3)
        cnf = CNF(list(cnf.clauses) + [(5,), (-5, 9)], cnf.num_vars)
        result, events = self._record(cnf)
        rounds = [e for e in events if e.name == "PRE_ROUND"]
        assert len(rounds) == result.stats.rounds
        assert len(rounds) >= 1
        # Clause counts at round entry never grow between rounds.
        clause_counts = [e.args[2] for e in rounds]
        assert clause_counts == sorted(clause_counts, reverse=True)

    def test_rule_event_totals_equal_stats_counters(self):
        cnf = random_ksat(30, 100, k=3, seed=3)
        cnf = CNF(list(cnf.clauses) + [(5,), (-5, 9)], cnf.num_vars)
        result, events = self._record(cnf)
        totals = {rule: 0 for rule in PRE_RULES}
        for event in events:
            if event.name == "PRE_RULE":
                totals[event.args[0]] += event.args[1]
        for rule, counter in zip(PRE_RULES, Preprocessor._TRACE_RULE_COUNTERS):
            assert totals[rule] == getattr(result.stats, counter), rule
        assert sum(totals.values()) > 0  # the workload actually simplified

    def test_refuted_instance_still_produces_a_readable_trace(self):
        result, events = self._record(CNF([(1,), (-1, 2), (-2,)]))
        assert result.unsat
        assert any(e.name == "PRE_ROUND" for e in events)


class TestSchedulerInstrumentation:
    def test_dispatch_and_complete_counts_match_run_metadata(self):
        from repro.runner.estimation import estimate_family_scheduled

        cnf = random_ksat(20, 60, k=3, seed=2)
        buffer = io.BytesIO()
        writer = TraceWriter(buffer, kind="estimate")
        estimation = estimate_family_scheduled(
            cnf, [1, 2, 3], sample_size=8, seed=1,
            executor="simulated-cluster", cores=3, trace=writer,
        )
        writer.close()
        _, events = _reread(buffer)
        counts = _event_counts(events)
        stats = estimation.run.metadata
        assert counts.get("TASK_DISPATCH", 0) == stats["dispatches"] > 0
        assert counts.get("TASK_COMPLETE", 0) == stats["dispatches"]
        assert counts.get("TASK_RETRY", 0) == stats["retries"] == 0
        seqs = [e.args[1] for e in events if e.name == "TASK_DISPATCH"]
        assert seqs == list(range(1, len(seqs) + 1))

    def test_retry_events_match_metadata_under_fault_injection(self):
        from repro.runner.estimation import estimate_family_scheduled
        from repro.runner.scheduler import FailureModel, RetryPolicy

        cnf = random_ksat(20, 60, k=3, seed=2)
        buffer = io.BytesIO()
        writer = TraceWriter(buffer, kind="estimate")
        estimation = estimate_family_scheduled(
            cnf, [1, 2, 3], sample_size=10, seed=1,
            executor="simulated-cluster", cores=4,
            failures=FailureModel(crash_rate=0.3, seed=5),
            retry=RetryPolicy(max_attempts=None, timeout=50.0),
            trace=writer,
        )
        writer.close()
        _, events = _reread(buffer)
        counts = _event_counts(events)
        stats = estimation.run.metadata
        assert counts.get("TASK_RETRY", 0) == stats["retries"]
        assert counts.get("TASK_DISPATCH", 0) == stats["dispatches"]
        assert estimation.run.completed

    def test_virtual_completion_times_are_monotone(self):
        from repro.runner.estimation import estimate_family_scheduled

        cnf = random_ksat(18, 54, k=3, seed=6)
        buffer = io.BytesIO()
        writer = TraceWriter(buffer, kind="estimate")
        estimate_family_scheduled(
            cnf, [1, 2], sample_size=6, seed=0,
            executor="simulated-cluster", cores=2, trace=writer,
        )
        writer.close()
        _, events = _reread(buffer)
        times = [e.args[2] for e in events if e.name == "TASK_COMPLETE"]
        assert times and times == sorted(times)


# -------------------------------------------------------- determinism and diff
class TestDeterminismAndDiff:
    CNF = staticmethod(lambda: random_ksat(40, 176, k=3, seed=21))

    def test_identically_seeded_solves_are_byte_identical(self, tmp_path):
        paths = [tmp_path / "a.trc", tmp_path / "b.trc"]
        for path in paths:
            record_solve(self.CNF(), path, budget=SolverBudget(max_conflicts=500))
        assert paths[0].read_bytes() == paths[1].read_bytes()
        diff = diff_traces(paths[0], paths[1])
        assert diff.identical
        assert diff.divergence_index is None
        assert diff.count_deltas == {} and diff.stat_deltas == {}
        assert "identical" in format_diff(diff)

    def test_knob_change_is_pinpointed_at_the_first_divergent_event(self, tmp_path):
        base, tweaked = tmp_path / "base.trc", tmp_path / "tweaked.trc"
        budget = SolverBudget(max_conflicts=500)
        record_solve(self.CNF(), base, budget=budget,
                     solver_options={"restart_base": 100})
        record_solve(self.CNF(), tweaked, budget=budget,
                     solver_options={"restart_base": 8})
        diff = diff_traces(base, tweaked)
        assert not diff.identical
        assert isinstance(diff.divergence_index, int)
        assert diff.event_a is not None or diff.event_b is not None
        assert diff.header_deltas  # the config snapshot records the knob
        assert diff.count_deltas or diff.stat_deltas
        text = format_diff(diff, label_a="base", label_b="tweaked")
        assert f"diverge at event {diff.divergence_index}" in text

    def test_identically_seeded_estimations_are_byte_identical(self, tmp_path):
        cnf = random_ksat(20, 60, k=3, seed=2)
        paths = [tmp_path / "e1.trc", tmp_path / "e2.trc"]
        for path in paths:
            record_estimate(cnf, [1, 2, 3], path, sample_size=8, seed=1, cores=3)
        assert paths[0].read_bytes() == paths[1].read_bytes()
        assert diff_traces(paths[0], paths[1]).identical

    def test_different_instances_show_a_fingerprint_delta(self, tmp_path):
        one, other = tmp_path / "one.trc", tmp_path / "two.trc"
        record_solve(random_ksat(10, 30, k=3, seed=1), one)
        record_solve(random_ksat(10, 30, k=3, seed=2), other)
        diff = diff_traces(one, other)
        assert "fingerprint" in diff.header_deltas


# ------------------------------------------------------------ analysis, export
class TestAnalysis:
    def test_solve_summary_sections_and_counts(self, tmp_path):
        path = tmp_path / "solve.trc"
        cnf = random_ksat(40, 176, k=3, seed=21)
        result = record_solve(cnf, path, budget=SolverBudget(max_conflicts=500))
        summary = summarize_trace(path)
        assert summary["header"]["version"] == FORMAT_VERSION
        assert summary["header"]["fingerprint"] == cnf_fingerprint(cnf)
        assert summary["event_count"] == sum(summary["events"].values())
        solver = summary["solver"]
        assert solver["decisions"] == result.stats.decisions
        assert solver["propagations"] == result.stats.propagations
        assert solver["conflicts"] == result.stats.conflicts
        assert solver["restarts"] == result.stats.restarts
        assert solver["lbd"]["count"] == solver["learned"] + solver["unit_learnts"]
        assert "scheduler" not in summary and "preprocessor" not in summary
        text = format_summary(summary)
        assert "solver:" in text and "events:" in text

    def test_simplify_summary_has_timeline_and_rules(self, tmp_path):
        path = tmp_path / "simplify.trc"
        cnf = random_ksat(30, 100, k=3, seed=3)
        cnf = CNF(list(cnf.clauses) + [(5,), (-5, 9)], cnf.num_vars)
        result = record_simplify(cnf, path)
        summary = summarize_trace(path)
        pre = summary["preprocessor"]
        assert pre["rounds"] == result.stats.rounds
        assert len(pre["timeline"]) == pre["rounds"]
        assert set(pre["rules"]) <= set(PRE_RULES)
        assert "preprocessor: rounds=" in format_summary(summary)

    def test_estimate_summary_has_scheduler_latency(self, tmp_path):
        path = tmp_path / "estimate.trc"
        cnf = random_ksat(20, 60, k=3, seed=2)
        estimation = record_estimate(cnf, [1, 2, 3], path, sample_size=8, seed=1)
        summary = summarize_trace(path)
        sched = summary["scheduler"]
        assert sched["dispatches"] == estimation.run.metadata["dispatches"]
        assert sched["task_latency_us"]["count"] == sched["dispatches"]
        assert sched["makespan_us"] > 0
        assert sum(sched["outcomes"].values()) == sched["dispatches"]


class TestExport:
    @pytest.fixture()
    def trace_path(self, tmp_path):
        path = tmp_path / "export.trc"
        record_solve(random_ksat(16, 56, k=3, seed=9), path)
        return path

    def test_jsonl_rows_match_events(self, trace_path, tmp_path):
        out = tmp_path / "trace.jsonl"
        _, events = read_trace(trace_path)
        count = export_trace(trace_path, out, format="jsonl")
        lines = out.read_text().splitlines()
        assert count == len(events) == len(lines)
        first = json.loads(lines[0])
        assert first["index"] == 0 and "event" in first

    def test_csv_has_union_columns(self, trace_path, tmp_path):
        out = tmp_path / "trace.csv"
        count = export_trace(trace_path, out, format="csv")
        lines = out.read_text().splitlines()
        assert len(lines) == count + 1  # header row
        header = lines[0].split(",")
        for column in ("index", "event", "lit", "lbd", "task", "outcome"):
            assert column in header

    def test_unknown_format_raises_value_error(self, trace_path):
        with pytest.raises(ValueError, match="unknown export format"):
            export_trace(trace_path, io.StringIO(), format="xml")

    def test_string_export_matches_file_export(self, trace_path, tmp_path):
        out = tmp_path / "trace.jsonl"
        export_trace(trace_path, out, format="jsonl")
        assert export_trace_string(trace_path, format="jsonl") == out.read_text()


# ---------------------------------------------------------------------- CLI
class TestTraceCli:
    def test_record_stats_diff_export_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "run.trc"
        assert main([
            "trace", "record", "--cipher", "geffe-tiny", "--mode", "solve",
            "--max-conflicts", "300", "--trace-out", str(trace),
        ]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out and "bytes/event" in out

        assert main(["trace", "stats", str(trace)]) == 0
        assert "events:" in capsys.readouterr().out
        assert main(["trace", "stats", str(trace), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["event_count"] > 0

        csv_out = tmp_path / "run.csv"
        assert main([
            "trace", "export", str(trace), "--format", "csv",
            "--output", str(csv_out),
        ]) == 0
        assert csv_out.exists()
        capsys.readouterr()
        assert main(["trace", "export", str(trace)]) == 0
        first_line = capsys.readouterr().out.splitlines()[0]
        assert json.loads(first_line)["index"] == 0

    def test_diff_exit_codes_gate_determinism(self, tmp_path, capsys):
        from repro.cli import main

        same_a, same_b = tmp_path / "a.trc", tmp_path / "b.trc"
        for path in (same_a, same_b):
            assert main([
                "trace", "record", "--cipher", "geffe-tiny", "--mode", "simplify",
                "--trace-out", str(path),
            ]) == 0
        assert main(["trace", "diff", str(same_a), str(same_b)]) == 0
        assert "identical" in capsys.readouterr().out

        # A different secret seed changes the keystream constants, so the
        # solve trajectory — and therefore the event stream — diverges.
        base, other = tmp_path / "s0.trc", tmp_path / "s5.trc"
        for seed, path in (("0", base), ("5", other)):
            assert main([
                "trace", "record", "--cipher", "geffe-tiny", "--seed", seed,
                "--mode", "solve", "--max-conflicts", "300",
                "--trace-out", str(path),
            ]) == 0
        capsys.readouterr()
        assert main(["trace", "diff", str(base), str(other)]) == 1
        assert "diverge" in capsys.readouterr().out

    def test_record_estimate_mode_from_dimacs_input(self, tmp_path, capsys):
        from repro.cli import main
        from repro.sat.dimacs import write_dimacs_file

        dimacs = tmp_path / "instance.cnf"
        write_dimacs_file(random_ksat(20, 60, k=3, seed=2), dimacs)
        trace = tmp_path / "estimate.trc"
        assert main([
            "trace", "record", "--input", str(dimacs), "--mode", "estimate",
            "--decomposition-size", "3", "--sample-size", "6",
            "--trace-out", str(trace),
        ]) == 0
        out = capsys.readouterr().out
        assert "F =" in out and "wrote" in out
        summary = summarize_trace(trace)
        assert summary["scheduler"]["dispatches"] > 0

    def test_stats_on_missing_and_garbage_files_exit_cleanly(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="not found"):
            main(["trace", "stats", str(tmp_path / "absent.trc")])
        garbage = tmp_path / "garbage.trc"
        garbage.write_bytes(b"this is not a trace")
        with pytest.raises(SystemExit, match="unreadable trace"):
            main(["trace", "stats", str(garbage)])
        with pytest.raises(SystemExit, match="unreadable trace"):
            main(["trace", "diff", str(garbage), str(garbage)])

    def test_record_rejects_unknown_solver(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main([
                "trace", "record", "--cipher", "geffe-tiny", "--mode", "solve",
                "--solver", "no-such-solver", "--trace-out", str(tmp_path / "x.trc"),
            ])


class TestBenchSuiteEnumeration:
    def test_unknown_suite_exits_listing_the_available_suites(self):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "--suite", "bogus"])
        message = str(excinfo.value)
        assert "unknown perf suite 'bogus'" in message
        assert "preprocessing" in message and "propagation" in message

    def test_suite_runners_cover_the_baseline_registry(self):
        from repro.perf import SUITE_RUNNERS
        from repro.perf.baseline import SUITES

        assert set(SUITE_RUNNERS) == set(SUITES)
        assert all(callable(runner) for runner in SUITE_RUNNERS.values())


class TestBenchExplain:
    def test_explain_records_and_diffs_the_regressed_workload(self, capsys):
        from repro.cli import _explain_regressions

        _explain_regressions(
            ["propagation-core/a51-tiny-d8: arena regressed 40.0% vs baseline"],
            seed=3,
        )
        out = capsys.readouterr().out
        assert "--explain traces for a51-tiny" in out
        assert "arena" in out and "legacy" in out

    def test_explain_skips_unparseable_workload_names(self, capsys):
        from repro.cli import _explain_regressions

        _explain_regressions(["weird-workload-name: something"], seed=3)
        out = capsys.readouterr().out
        assert "no workload names" in out


# ------------------------------------------------------------ overhead budget
def make_stripped_solver_class():
    """A ``CDCLSolver`` subclass whose ``_propagate`` has the trace hooks
    physically removed (the ``# trace-hook`` tagged lines).

    Shared by the structural tier-1 checks below and by the wall-clock
    overhead gate in ``benchmarks/bench_tracing_overhead.py``.
    """
    from repro.sat.cdcl import solver as solver_module

    source = textwrap.dedent(inspect.getsource(solver_module.CDCLSolver._propagate))
    stripped_lines = [
        line for line in source.splitlines() if "# trace-hook" not in line
    ]
    assert len(stripped_lines) == len(source.splitlines()) - 3, (
        "the arena hot loop must carry exactly 3 tagged trace-hook lines"
    )
    namespace = dict(vars(solver_module))
    exec(compile("\n".join(stripped_lines), "<stripped>", "exec"), namespace)
    stripped_propagate = namespace["_propagate"]

    class StrippedSolver(solver_module.CDCLSolver):
        pass

    StrippedSolver._propagate = stripped_propagate
    return StrippedSolver


class TestDisabledTracingOverhead:
    """Structural half of the zero-overhead contract (deterministic, tier-1).

    The wall-clock budget — disabled tracing must cost ≤5% propagation
    throughput against a hook-stripped build — asserts a timing *ratio* and
    therefore flakes under CI machine load.  That assertion lives in the
    perf-smoke lane (``benchmarks/bench_tracing_overhead.py``, run next to
    the BENCH gates); tier-1 keeps only what is bit-reproducible: the hook
    lines are present, taggable and strippable, and a stripped build
    propagates the exact same closures.
    """

    def test_hot_loop_carries_exactly_three_tagged_hook_lines(self):
        from repro.sat.cdcl import solver as solver_module

        source = textwrap.dedent(
            inspect.getsource(solver_module.CDCLSolver._propagate)
        )
        tagged = [line for line in source.splitlines() if "# trace-hook" in line]
        assert len(tagged) == 3
        # Every tagged line must concern the trace sink only — stripping it
        # may not change the untraced semantics.
        assert all("trace" in line.split("#")[0] for line in tagged)

    def test_stripped_build_propagates_identical_closures(self):
        """Hook-stripped and instrumented builds must agree propagation by
        propagation on identical assumption vectors (counts, not timings)."""
        from repro.api.registry import get_cipher
        from repro.perf.workloads import assumption_vectors
        from repro.problems import make_inversion_instance
        from repro.sat.cdcl import solver as solver_module
        from repro.sat.cdcl.solver import _ilit

        StrippedSolver = make_stripped_solver_class()
        instance = make_inversion_instance(get_cipher("a51-tiny")(), seed=3)
        vectors = assumption_vectors(list(instance.start_set), 8, 50, seed=42)
        cnf = instance.cnf

        def propagation_counts(solver_cls) -> list[int]:
            solver = solver_cls().load(cnf)
            solver._stats = SolverStats()
            solver._budget = SolverBudget()
            solver._propagate()
            counts = []
            for vector in vectors:
                before = solver._stats.propagations
                solver._trail_lim.append(len(solver._trail))
                for lit in vector:
                    solver._enqueue(_ilit(lit), -1)
                solver._propagate()
                counts.append(solver._stats.propagations - before)
                solver._cancel_until(0)
            return counts

        instrumented = propagation_counts(solver_module.CDCLSolver)
        stripped = propagation_counts(StrippedSolver)
        assert sum(instrumented) > 0
        assert instrumented == stripped
