"""Tests for the random CNF generators."""

from __future__ import annotations

import pytest

from repro.sat.random_cnf import (
    pigeonhole,
    planted_ksat,
    random_ksat,
    random_ksat_at_ratio,
    random_unsat_core,
)


class TestRandomKSat:
    def test_shape(self):
        cnf = random_ksat(20, 50, k=3, seed=0)
        assert cnf.num_vars == 20
        assert cnf.num_clauses == 50
        assert all(len(clause) == 3 for clause in cnf.clauses)

    def test_variables_in_range(self):
        cnf = random_ksat(10, 30, seed=1)
        assert all(1 <= abs(lit) <= 10 for clause in cnf for lit in clause)

    def test_clause_variables_distinct(self):
        cnf = random_ksat(10, 100, seed=2)
        for clause in cnf:
            variables = [abs(lit) for lit in clause]
            assert len(set(variables)) == len(variables)

    def test_deterministic_in_seed(self):
        assert random_ksat(15, 40, seed=3).clauses == random_ksat(15, 40, seed=3).clauses

    def test_different_seeds_differ(self):
        assert random_ksat(15, 40, seed=3).clauses != random_ksat(15, 40, seed=4).clauses

    def test_k_larger_than_n_rejected(self):
        with pytest.raises(ValueError):
            random_ksat(2, 5, k=3)

    def test_ratio_helper(self):
        cnf = random_ksat_at_ratio(50, ratio=4.0)
        assert cnf.num_clauses == 200


class TestPlantedKSat:
    def test_planted_assignment_satisfies(self):
        cnf, planted = planted_ksat(30, 120, seed=0)
        assert cnf.is_satisfied_by(planted)

    def test_shape(self):
        cnf, planted = planted_ksat(25, 100, k=4, seed=5)
        assert cnf.num_clauses == 100
        assert len(planted) == 25

    def test_rejects_wide_clauses(self):
        with pytest.raises(ValueError):
            planted_ksat(3, 5, k=4)


class TestUnsatGenerators:
    def test_unsat_core_is_unsat(self, cdcl):
        for seed in range(3):
            assert cdcl.solve(random_unsat_core(15, seed=seed)).is_unsat

    def test_unsat_core_needs_two_vars(self):
        with pytest.raises(ValueError):
            random_unsat_core(1)

    def test_pigeonhole_shape(self):
        php = pigeonhole(3)
        assert php.num_vars == 12
        # 4 pigeon clauses + C(4,2)*3 hole clauses.
        assert php.num_clauses == 4 + 6 * 3

    def test_pigeonhole_requires_a_hole(self):
        with pytest.raises(ValueError):
            pigeonhole(0)

    def test_pigeonhole_without_one_pigeon_is_sat(self, cdcl):
        php = pigeonhole(3)
        # Dropping the "pigeon 0 must be placed" clause makes it satisfiable.
        relaxed = php.copy()
        relaxed.clauses = relaxed.clauses[1:]
        assert cdcl.solve(relaxed).is_sat
