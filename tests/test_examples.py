"""Smoke tests for the example scripts and the benchmark helpers.

The examples are user-facing entry points; these tests import them and run the
cheap ones end to end so that API drift is caught by the test suite rather than
by a user.  The heavier cipher examples are exercised by importing their helper
functions only (their ``main()`` functions run minute-scale searches).
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
BENCHMARKS_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


def _load_module(path: Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[path.stem] = module
    spec.loader.exec_module(module)
    return module


class TestExampleScripts:
    def test_examples_exist(self):
        names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
        assert "quickstart.py" in names
        assert len(names) >= 3

    def test_quickstart_runs_end_to_end(self, capsys):
        module = _load_module(EXAMPLES_DIR / "quickstart.py")
        module.main()
        output = capsys.readouterr().out
        assert "Tabu search result" in output
        assert "recovered state" in output

    def test_a51_example_helpers(self):
        module = _load_module(EXAMPLES_DIR / "a51_cryptanalysis.py")
        from repro.ciphers import A51
        from repro.problems import make_inversion_instance

        instance = make_inversion_instance(A51.scaled("tiny"), keystream_length=30, seed=1)
        manual = module.manual_reference_set(instance)
        assert set(manual) <= set(instance.start_set)
        assert 0 < len(manual) < len(instance.start_set)

    def test_other_examples_import_cleanly(self):
        for name in (
            "bivium_weakened.py",
            "grain_partitioning.py",
            "volunteer_grid.py",
            "portfolio_vs_partitioning.py",
            "custom_cipher.py",
        ):
            module = _load_module(EXAMPLES_DIR / name)
            assert hasattr(module, "main")

    def test_custom_cipher_generator_is_consistent(self):
        module = _load_module(EXAMPLES_DIR / "custom_cipher.py")
        generator = module.build_custom_generator()
        state = generator.random_state(seed=4)
        assert generator.keystream_from_state(state, 16) == generator.circuit_keystream(state, 16)

    def test_portfolio_example_runs_end_to_end(self, capsys):
        module = _load_module(EXAMPLES_DIR / "portfolio_vs_partitioning.py")
        module.main()
        output = capsys.readouterr().out
        assert "Partitioning over" in output
        assert "portfolio" in output.lower()


class TestBenchmarkHelpers:
    def test_print_table(self, capsys):
        sys.path.insert(0, str(BENCHMARKS_DIR.parent))
        from benchmarks._common import print_table

        print_table("demo", ["a", "bb"], [[1, 22], [333, 4]])
        output = capsys.readouterr().out
        assert "demo" in output
        assert "333" in output

    def test_render_decomposition_bitmap(self):
        from benchmarks._common import render_decomposition_bitmap

        labels = [f"R[{i}]" for i in range(6)]
        variables = [10, 11, 12, 13, 14, 15]
        art = render_decomposition_bitmap(labels, variables, chosen=[11, 14], per_line=4)
        assert "#" in art
        assert art.count("#") == 2

    def test_format_count(self):
        from benchmarks._common import format_count

        assert format_count(37690000000.0) == "3.769e+10"

    def test_benchmark_modules_cover_every_table_and_figure(self):
        names = {path.name for path in BENCHMARKS_DIR.glob("bench_*.py")}
        expected = {
            "bench_table1_a51_predictive.py",
            "bench_table2_bivium_estimates.py",
            "bench_table3_weakened_solving.py",
            "bench_fig1_2_a51_sets.py",
            "bench_fig3_bivium_set.py",
            "bench_fig4_grain_set.py",
            "bench_montecarlo_convergence.py",
            "bench_sat_at_home.py",
            "bench_partitioning_techniques.py",
            "bench_portfolio_vs_partitioning.py",
        }
        assert expected <= names
