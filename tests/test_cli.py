"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import CIPHER_PRESETS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_estimate_defaults(self):
        args = build_parser().parse_args(["estimate"])
        assert args.cipher == "geffe-tiny"
        assert args.method == "tabu"

    def test_unknown_cipher_rejected_at_runtime(self):
        with pytest.raises(SystemExit):
            main(["generate", "--cipher", "enigma"])


class TestCommands:
    def test_list_ciphers(self, capsys):
        assert main(["list-ciphers"]) == 0
        output = capsys.readouterr().out
        for name in CIPHER_PRESETS:
            assert name in output

    def test_generate_writes_dimacs(self, tmp_path, capsys):
        out = tmp_path / "instance.cnf"
        assert main(["generate", "--cipher", "geffe-tiny", "--seed", "1", "--output", str(out)]) == 0
        assert out.exists()
        text = out.read_text()
        assert text.startswith("c") or text.startswith("p")
        assert "p cnf" in text

    def test_generate_without_output(self, capsys):
        assert main(["generate", "--cipher", "geffe-tiny"]) == 0
        assert "start set" in capsys.readouterr().out

    def test_estimate_command(self, capsys):
        code = main(
            [
                "estimate",
                "--cipher",
                "geffe-tiny",
                "--seed",
                "1",
                "--sample-size",
                "10",
                "--max-evaluations",
                "8",
                "--cores",
                "4",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "F_best" in output
        assert "X_best" in output
        assert "predicted on 4 cores" in output

    def test_solve_command_with_explicit_decomposition(self, capsys):
        from repro.ciphers import Geffe
        from repro.problems import make_inversion_instance

        instance = make_inversion_instance(Geffe.tiny(), seed=1)
        decomposition = ",".join(str(v) for v in instance.start_set[:5])
        code = main(
            [
                "solve",
                "--cipher",
                "geffe-tiny",
                "--seed",
                "1",
                "--decomposition",
                decomposition,
                "--cores",
                "4",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "sub-problems" in output
        assert "makespan" in output

    def test_solve_command_estimates_when_no_decomposition(self, capsys):
        code = main(
            [
                "solve",
                "--cipher",
                "geffe-tiny",
                "--seed",
                "2",
                "--sample-size",
                "10",
                "--max-evaluations",
                "6",
                "--decomposition-size",
                "8",
            ]
        )
        assert code == 0
        assert "solved" in capsys.readouterr().out

    def test_solve_family_size_guard(self):
        from repro.ciphers import Geffe
        from repro.problems import make_inversion_instance

        instance = make_inversion_instance(Geffe(), seed=0)
        decomposition = ",".join(str(v) for v in instance.start_set)
        with pytest.raises(SystemExit):
            main(
                [
                    "solve",
                    "--cipher",
                    "geffe",
                    "--seed",
                    "0",
                    "--decomposition",
                    decomposition,
                    "--max-family-bits",
                    "10",
                ]
            )


class TestNewCommands:
    def test_simplify_command(self, capsys):
        code = main(["simplify", "--cipher", "geffe-tiny", "--seed", "1"])
        assert code == 0
        output = capsys.readouterr().out
        assert "vars" in output
        assert "eliminated" in output

    def test_simplify_writes_dimacs(self, tmp_path, capsys):
        target = tmp_path / "simplified.cnf"
        code = main(
            ["simplify", "--cipher", "geffe-tiny", "--seed", "1", "--output", str(target)]
        )
        assert code == 0
        assert target.exists()
        assert target.read_text().startswith("c") or "p cnf" in target.read_text()

    @pytest.mark.parametrize("technique", ["guiding-path", "scattering", "cube-and-conquer"])
    def test_partition_command(self, technique, capsys):
        code = main(
            [
                "partition",
                "--cipher",
                "geffe-tiny",
                "--seed",
                "2",
                "--technique",
                technique,
                "--parts",
                "4",
                "--solve",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "solved" in output
        assert "satisfiable" in output

    def test_portfolio_command(self, capsys):
        code = main(["portfolio", "--cipher", "geffe-tiny", "--seed", "3", "--members", "3"])
        assert code == 0
        output = capsys.readouterr().out
        assert "portfolio of 3" in output
        assert "SAT" in output

    def test_estimate_accepts_new_methods(self, capsys):
        code = main(
            [
                "estimate",
                "--cipher",
                "geffe-tiny",
                "--seed",
                "1",
                "--method",
                "hillclimb",
                "--sample-size",
                "6",
                "--max-evaluations",
                "10",
            ]
        )
        assert code == 0
        assert "hillclimb" in capsys.readouterr().out

    def test_bench_writes_trajectory_file(self, tmp_path, capsys):
        import json

        code = main(
            [
                "bench",
                "--cipher",
                "geffe-tiny",
                "--seed",
                "1",
                "--decomposition-size",
                "5",
                "--sample-size",
                "10",
                "--verify-batch",
                "8",
                "--output-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "speedup" in output
        assert "statuses agree: True" in output
        bench_files = list(tmp_path.glob("BENCH_*.json"))
        assert len(bench_files) == 1
        record = json.loads(bench_files[0].read_text())
        assert record["kind"] == "montecarlo-estimation-bench"
        assert record["statuses_agree"] is True
        assert record["speedup"] is not None and record["speedup"] > 0
        assert record["batch_keystream"]["matches_scalar"] is True
        trajectory = record["trajectory"]
        assert trajectory[-1]["n"] == 10
        assert trajectory[-1]["value"] == pytest.approx(record["engine"]["value"])

    def test_bench_without_baseline(self, tmp_path, capsys):
        code = main(
            [
                "bench",
                "--cipher",
                "geffe-tiny",
                "--seed",
                "2",
                "--decomposition-size",
                "4",
                "--sample-size",
                "5",
                "--no-baseline",
                "--output-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        assert "speedup" not in capsys.readouterr().out

    def test_bench_rejects_bad_decomposition_size(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "bench",
                    "--cipher",
                    "geffe-tiny",
                    "--decomposition-size",
                    "0",
                    "--output-dir",
                    str(tmp_path),
                ]
            )


class TestPerfBenchCLI:
    """The bench --compare-baseline / --update-baseline perf-gate paths.

    The real suite runs for seconds, so these tests monkeypatch
    ``repro.perf.run_bench4`` with a canned record and exercise the gate
    wiring: baseline writing, ratio comparison, exit codes and tolerance.
    """

    @staticmethod
    def _record(speedup: float) -> dict:
        return {
            "kind": "propagation-core-bench",
            "bench_id": 4,
            "schema": 1,
            "profile": "smoke",
            "seed": 3,
            "engines": {"arena": "cdcl", "legacy": "cdcl-legacy"},
            "workloads": {"propagation-core/a51-tiny-d8": {"speedup": speedup}},
        }

    @pytest.fixture
    def canned_suite(self, monkeypatch):
        import repro.perf as perf

        def fake_run_bench4(profile, seed=3, progress=None):
            return self._record(3.0)

        monkeypatch.setattr(perf, "run_bench4", fake_run_bench4)

    def test_update_baseline_writes_the_file(self, canned_suite, tmp_path, capsys):
        path = tmp_path / "BENCH_4.json"
        assert main(["bench", "--perf-profile", "full", "--update-baseline", str(path)]) == 0
        assert path.exists()
        assert "wrote perf baseline" in capsys.readouterr().out

    def test_update_baseline_refuses_the_smoke_profile(self, canned_suite, tmp_path):
        # A smoke-profile baseline would skew later gate runs (some workload
        # ratios shift with workload size), so writing one must be an error.
        path = tmp_path / "BENCH_4.json"
        with pytest.raises(SystemExit, match="perf-profile full"):
            main(["bench", "--update-baseline", str(path)])
        assert not path.exists()

    def test_compare_baseline_passes_within_tolerance(self, canned_suite, tmp_path, capsys):
        from repro.perf import write_baseline

        path = tmp_path / "BENCH_4.json"
        write_baseline(self._record(3.2), path)  # 3.0 measured vs 3.2 committed
        assert main(["bench", "--compare-baseline", str(path)]) == 0
        assert "no perf regressions" in capsys.readouterr().out

    def test_compare_baseline_fails_on_regression(self, canned_suite, tmp_path, capsys):
        from repro.perf import write_baseline

        path = tmp_path / "BENCH_4.json"
        write_baseline(self._record(9.0), path)  # 3.0 measured vs 9.0 committed
        assert main(["bench", "--compare-baseline", str(path)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_tolerance_flag_loosens_the_gate(self, canned_suite, tmp_path):
        from repro.perf import write_baseline

        path = tmp_path / "BENCH_4.json"
        write_baseline(self._record(4.0), path)  # 3.0 vs 4.0: 25% drop exactly
        assert main(["bench", "--compare-baseline", str(path), "--tolerance", "0.5"]) == 0
        assert main(["bench", "--compare-baseline", str(path), "--tolerance", "0.1"]) == 1

    def test_missing_baseline_file_exits_cleanly(self, canned_suite, tmp_path):
        with pytest.raises(SystemExit, match="not found"):
            main(["bench", "--compare-baseline", str(tmp_path / "absent.json")])

    def test_invalid_tolerance_exits_cleanly(self, canned_suite, tmp_path):
        with pytest.raises(SystemExit, match="tolerance"):
            main(["bench", "--compare-baseline", str(tmp_path), "--tolerance", "1.5"])

    def test_combined_flags_gate_before_updating(self, canned_suite, tmp_path, capsys):
        # The gate must compare against the *old* baseline, and a regression
        # must block the update — never compare the fresh record to itself.
        from repro.perf import load_baseline, write_baseline

        path = tmp_path / "BENCH_4.json"
        write_baseline(self._record(9.0), path)  # 3.0 measured vs 9.0 committed
        code = main(
            ["bench", "--perf-profile", "full",
             "--compare-baseline", str(path), "--update-baseline", str(path)]
        )
        assert code == 1
        assert "baseline NOT updated" in capsys.readouterr().out
        assert load_baseline(path)["workloads"]["propagation-core/a51-tiny-d8"]["speedup"] == 9.0

    def test_combined_flags_update_after_passing_gate(self, canned_suite, tmp_path):
        from repro.perf import load_baseline, write_baseline

        path = tmp_path / "BENCH_4.json"
        write_baseline(self._record(3.1), path)  # 3.0 measured: within tolerance
        code = main(
            ["bench", "--perf-profile", "full",
             "--compare-baseline", str(path), "--update-baseline", str(path)]
        )
        assert code == 0
        assert load_baseline(path)["workloads"]["propagation-core/a51-tiny-d8"]["speedup"] == 3.0


class TestSimplifyCLI:
    """PR 5: the reworked simplify sub-command (DIMACS in/out, clean errors)."""

    def test_instance_mode_prints_reduction_stats(self, capsys):
        assert main(["simplify", "--cipher", "bivium-tiny", "--seed", "1"]) == 0
        output = capsys.readouterr().out
        assert "vars" in output and "eliminated" in output
        assert "reconstruction stack" in output

    def test_dimacs_input_round_trip(self, tmp_path, capsys):
        source = tmp_path / "in.cnf"
        source.write_text("p cnf 4 3\n1 2 0\n-1 2 3 0\n3 4 0\n")
        target = tmp_path / "out.cnf"
        stats = tmp_path / "stats.json"
        assert main([
            "simplify", "--input", str(source), "--frozen", "1,2",
            "--output", str(target), "--stats-json", str(stats),
        ]) == 0
        assert target.exists()
        assert "p cnf" in target.read_text()
        import json as _json

        record = _json.loads(stats.read_text())
        assert record["clauses_before"] == 3

    def test_malformed_dimacs_exits_with_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.cnf"
        bad.write_text("p cnf 3 1\n1 two 0\n")
        with pytest.raises(SystemExit) as excinfo:
            main(["simplify", "--input", str(bad)])
        assert "malformed DIMACS" in str(excinfo.value)

    def test_strict_header_mismatch_exits_with_clean_error(self, tmp_path):
        bad = tmp_path / "bad.cnf"
        bad.write_text("p cnf 2 5\n1 2 0\n")
        with pytest.raises(SystemExit) as excinfo:
            main(["simplify", "--input", str(bad), "--strict"])
        assert "malformed DIMACS" in str(excinfo.value)

    def test_missing_input_file_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["simplify", "--input", str(tmp_path / "nope.cnf")])
        assert "not found" in str(excinfo.value)

    def test_frozen_variable_out_of_range_exits_with_value_error_text(self, tmp_path):
        source = tmp_path / "in.cnf"
        source.write_text("p cnf 3 2\n1 2 0\n-1 3 0\n")
        with pytest.raises(SystemExit) as excinfo:
            main(["simplify", "--input", str(source), "--frozen", "1,9"])
        assert "frozen variables [9]" in str(excinfo.value)

    def test_unparsable_frozen_list_exits_cleanly(self, tmp_path):
        source = tmp_path / "in.cnf"
        source.write_text("p cnf 2 1\n1 2 0\n")
        with pytest.raises(SystemExit) as excinfo:
            main(["simplify", "--input", str(source), "--frozen", "1;2"])
        assert "--frozen" in str(excinfo.value)

    def test_unknown_preprocessor_name_exits_cleanly(self, tmp_path):
        source = tmp_path / "in.cnf"
        source.write_text("p cnf 2 1\n1 2 0\n")
        with pytest.raises(SystemExit) as excinfo:
            main(["simplify", "--input", str(source), "--preprocessor", "nope"])
        assert "unknown preprocessor" in str(excinfo.value)

    def test_refuted_input_reported(self, tmp_path, capsys):
        source = tmp_path / "in.cnf"
        source.write_text("p cnf 1 2\n1 0\n-1 0\n")
        assert main(["simplify", "--input", str(source)]) == 0
        assert "refuted" in capsys.readouterr().out

    def test_list_includes_preprocessors(self, capsys):
        assert main(["list", "--kind", "preprocessors"]) == 0
        output = capsys.readouterr().out
        assert "satelite" in output and "units-only" in output


class TestPreprocessingSuiteCLI:
    """The bench --suite preprocessing gate wiring (canned suite record)."""

    @staticmethod
    def _record(speedup: float) -> dict:
        return {
            "kind": "preprocessing-bench",
            "bench_id": 5,
            "schema": 1,
            "profile": "smoke",
            "seed": 3,
            "preprocessor": "satelite",
            "workloads": {
                "preprocessing-estimation-fresh/bivium-tiny-d10": {
                    "speedup": speedup,
                    "statuses_agree": True,
                }
            },
            "differential": {},
        }

    @pytest.fixture
    def canned_suite(self, monkeypatch):
        import repro.perf as perf

        monkeypatch.setattr(
            perf, "run_bench5", lambda profile, seed=3, progress=None: self._record(1.4)
        )

    def test_suite_alone_runs_and_prints_speedups(self, canned_suite, capsys):
        assert main(["bench", "--suite", "preprocessing"]) == 0
        output = capsys.readouterr().out
        assert "preprocessing perf suite" in output
        assert "x1.40" in output

    def test_update_baseline_writes_bench5(self, canned_suite, tmp_path, capsys):
        path = tmp_path / "BENCH_5.json"
        assert main([
            "bench", "--suite", "preprocessing", "--perf-profile", "full",
            "--update-baseline", str(path),
        ]) == 0
        import json as _json

        assert _json.loads(path.read_text())["kind"] == "preprocessing-bench"

    def test_compare_baseline_gates_on_the_ratio(self, canned_suite, tmp_path):
        import json as _json

        good = tmp_path / "BENCH_5.json"
        good.write_text(_json.dumps(self._record(1.3)))
        assert main([
            "bench", "--suite", "preprocessing", "--compare-baseline", str(good)
        ]) == 0
        strict = tmp_path / "BENCH_5_strict.json"
        strict.write_text(_json.dumps(self._record(2.5)))
        assert main([
            "bench", "--suite", "preprocessing", "--compare-baseline", str(strict)
        ]) == 1

    def test_wrong_suite_kind_is_rejected_before_running(self, canned_suite, tmp_path, monkeypatch):
        # A BENCH_4 file given to --suite preprocessing must fail fast, before
        # the (expensive) suite run — the canned runner would raise if called.
        import json as _json

        import repro.perf as perf

        def explode(profile, seed=3, progress=None):  # pragma: no cover
            raise AssertionError("suite ran before baseline validation")

        monkeypatch.setattr(perf, "run_bench5", explode)
        wrong = tmp_path / "BENCH_4.json"
        wrong.write_text(_json.dumps({"kind": "propagation-core-bench", "schema": 1,
                                      "workloads": {}}))
        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "--suite", "preprocessing", "--compare-baseline", str(wrong)])
        assert "preprocessing-bench" in str(excinfo.value)

    def test_committed_bench5_baseline_loads(self):
        from repro.perf import default_baseline_path, load_baseline

        path = default_baseline_path("preprocessing")
        assert path.exists(), "benchmarks/BENCH_5.json must be committed"
        document = load_baseline(path, suite="preprocessing")
        assert document["bench_id"] == 5

    def test_gate_fails_on_broken_differential_evidence(self, tmp_path, monkeypatch):
        # A record whose speedup is excellent but whose per-sample statuses
        # disagree must fail the gate and refuse to write a baseline.
        import repro.perf as perf

        record = self._record(9.9)
        record["workloads"]["preprocessing-estimation-fresh/bivium-tiny-d10"][
            "statuses_agree"
        ] = False
        monkeypatch.setattr(
            perf, "run_bench5", lambda profile, seed=3, progress=None: record
        )
        path = tmp_path / "BENCH_5.json"
        assert main([
            "bench", "--suite", "preprocessing", "--perf-profile", "full",
            "--update-baseline", str(path),
        ]) == 1
        assert not path.exists()
