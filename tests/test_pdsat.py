"""Tests for the PDSAT facade (estimating mode + solving mode)."""

from __future__ import annotations

import pytest

from repro.ciphers import Geffe
from repro.core.optimizer import StoppingCriteria
from repro.core.pdsat import PDSAT
from repro.problems import make_inversion_instance
from repro.sat.solver import SolverStatus


@pytest.fixture(scope="module")
def pdsat():
    instance = make_inversion_instance(Geffe.tiny(), keystream_length=24, seed=5)
    return PDSAT(instance, sample_size=15, seed=2)


class TestEstimatingMode:
    def test_tabu_estimation(self, pdsat):
        report = pdsat.estimate(method="tabu", stopping=StoppingCriteria(max_evaluations=25))
        assert report.best_value > 0
        assert set(report.best_decomposition) <= set(pdsat.instance.start_set)
        assert report.method == "tabu"
        assert "F_best" in report.summary()

    def test_annealing_estimation(self, pdsat):
        report = pdsat.estimate(method="annealing", stopping=StoppingCriteria(max_evaluations=25))
        assert report.best_value > 0
        assert report.method == "annealing"

    def test_invalid_method(self, pdsat):
        with pytest.raises(ValueError):
            pdsat.estimate(method="gradient-descent")

    def test_predicted_on_cores(self, pdsat):
        report = pdsat.estimate(method="tabu", stopping=StoppingCriteria(max_evaluations=10))
        assert report.predicted_on_cores(10) == pytest.approx(report.best_value / 10)

    def test_custom_start_variables(self, pdsat):
        start = pdsat.instance.start_set[:6]
        report = pdsat.estimate(
            method="tabu",
            stopping=StoppingCriteria(max_evaluations=8),
            start_variables=start,
        )
        assert report.minimization.trajectory[0].point == frozenset(start)

    def test_evaluate_decomposition_directly(self, pdsat):
        result = pdsat.evaluate_decomposition(pdsat.instance.start_set[:5])
        assert result.d == 5
        assert result.value >= 0


class TestSolvingMode:
    def test_family_is_processed_completely(self, pdsat):
        decomposition = pdsat.instance.start_set[:6]
        report = pdsat.solve_family(decomposition)
        assert len(report.costs) == 2**6
        assert len(report.statuses) == 2**6
        assert report.total_cost == pytest.approx(sum(report.costs))

    def test_satisfying_subproblem_found_and_verified(self, pdsat):
        decomposition = pdsat.instance.start_set[:6]
        report = pdsat.solve_family(decomposition)
        assert report.num_sat >= 1
        assert report.first_sat_index is not None
        recovered = pdsat.instance.state_from_model(report.satisfying_models[0])
        assert pdsat.instance.verify_state(recovered)

    def test_stop_on_sat(self, pdsat):
        decomposition = pdsat.instance.start_set[:6]
        report = pdsat.solve_family(decomposition, stop_on_sat=True)
        if report.num_sat:
            assert report.stopped_early or report.first_sat_index == len(report.costs) - 1
            assert len(report.costs) <= 2**6

    def test_cost_to_first_solution(self, pdsat):
        decomposition = pdsat.instance.start_set[:6]
        report = pdsat.solve_family(decomposition)
        assert report.cost_to_first_solution <= report.total_cost

    def test_unsat_statuses_dominate(self, pdsat):
        # Only a handful of the 2^d assignments extend to the secret state.
        decomposition = pdsat.instance.start_set[:6]
        report = pdsat.solve_family(decomposition)
        unsat = sum(1 for s in report.statuses if s is SolverStatus.UNSAT)
        assert unsat > report.num_sat

    def test_family_size_guard(self, pdsat):
        with pytest.raises(ValueError):
            pdsat.solve_family(pdsat.instance.start_set, max_subproblems=16)

    def test_makespan_on_cores(self, pdsat):
        report = pdsat.solve_family(pdsat.instance.start_set[:5])
        simulation = report.makespan_on_cores(4)
        assert simulation.makespan <= report.total_cost
        assert simulation.makespan >= report.total_cost / 4

    def test_summary(self, pdsat):
        report = pdsat.solve_family(pdsat.instance.start_set[:4])
        assert "sub-problems" in report.summary()


class TestEndToEnd:
    def test_estimate_then_solve_prediction_tracks_reality(self):
        instance = make_inversion_instance(Geffe.tiny(), keystream_length=24, seed=8)
        pdsat = PDSAT(instance, sample_size=40, seed=1)
        estimation, solving = pdsat.estimate_then_solve(
            method="tabu", stopping=StoppingCriteria(max_evaluations=30)
        )
        assert len(solving.costs) == 2 ** len(estimation.best_decomposition)
        # The Monte Carlo prediction should be within a factor of ~3 of the
        # actual total cost on these tiny instances (the paper reports ~8%
        # deviation with N = 1e4-1e5; our N is far smaller).
        assert solving.total_cost > 0
        ratio = estimation.best_value / solving.total_cost
        assert 1 / 3 <= ratio <= 3
