"""Tests for the Tseitin transformation: the encoding must agree with circuit evaluation."""

from __future__ import annotations

import itertools

import pytest

from repro.encoder.circuit import Circuit
from repro.encoder.tseitin import tseitin_encode
from repro.sat.cdcl import CDCLSolver
from repro.sat.preprocessing import unit_propagate


def _assert_encoding_matches_circuit(circuit: Circuit, output_group: str = "out"):
    """For every input assignment, unit propagation on the encoding must yield the circuit outputs."""
    encoding = tseitin_encode(circuit)
    groups = circuit.input_groups
    widths = {name: len(signals) for name, signals in groups.items()}
    names = list(groups)
    for bits in itertools.product((0, 1), repeat=sum(widths.values())):
        offset = 0
        inputs = {}
        for name in names:
            inputs[name] = list(bits[offset : offset + widths[name]])
            offset += widths[name]
        expected = circuit.output_bits(output_group, inputs)
        assignment = {}
        for name in names:
            for var, bit in zip(encoding.input_vars[name], inputs[name]):
                assignment[var] = bool(bit)
        propagation = unit_propagate(encoding.cnf, assignment)
        assert not propagation.conflict
        out_vars = encoding.output_vars[output_group]
        derived = [int(propagation.assignment[v]) for v in out_vars]
        assert derived == expected


class TestSmallCircuits:
    def test_xor_and_circuit(self):
        circuit = Circuit("xor-and")
        a, b, c = circuit.add_input_group("in", 3)
        circuit.set_output_group("out", [circuit.xor(a, b, c), circuit.and_(a, b, c)])
        _assert_encoding_matches_circuit(circuit)

    def test_maj_mux_circuit(self):
        circuit = Circuit("maj-mux")
        a, b, c = circuit.add_input_group("in", 3)
        circuit.set_output_group("out", [circuit.maj(a, b, c), circuit.mux(a, b, c)])
        _assert_encoding_matches_circuit(circuit)

    def test_nested_circuit(self):
        circuit = Circuit("nested")
        a, b, c, d = circuit.add_input_group("in", 4)
        inner = circuit.or_(circuit.and_(a, b), circuit.and_(c, d))
        circuit.set_output_group("out", [circuit.xor(inner, circuit.not_(a))])
        _assert_encoding_matches_circuit(circuit)

    def test_not_gate(self):
        circuit = Circuit("not")
        (a,) = circuit.add_input_group("in", 1)
        circuit.set_output_group("out", [circuit.not_(a)])
        _assert_encoding_matches_circuit(circuit)


class TestEncodingStructure:
    def test_inputs_are_mapped(self):
        circuit = Circuit()
        circuit.add_input_group("key", 3)
        encoding = tseitin_encode(circuit)
        assert len(encoding.input_vars["key"]) == 3
        assert len(set(encoding.input_vars["key"])) == 3

    def test_constants_are_forced(self):
        circuit = Circuit()
        circuit.add_input_group("key", 1)
        encoding = tseitin_encode(circuit)
        propagation = unit_propagate(encoding.cnf)
        # Signal 1 is TRUE, signal 0 is FALSE.
        assert propagation.assignment[encoding.signal_to_var[1]] is True
        assert propagation.assignment[encoding.signal_to_var[0]] is False

    def test_name_defaults_to_circuit_name(self):
        circuit = Circuit("mycirc")
        circuit.add_input_group("key", 1)
        assert tseitin_encode(circuit).name == "mycirc"

    def test_fix_group_produces_solvable_instance(self):
        circuit = Circuit()
        a, b = circuit.add_input_group("in", 2)
        circuit.set_output_group("out", [circuit.and_(a, b)])
        encoding = tseitin_encode(circuit)
        cnf = encoding.fix_group("out", [1])
        result = CDCLSolver().solve(cnf)
        assert result.is_sat
        assert encoding.decode_group("in", result.model) == [1, 1]

    def test_fix_group_wrong_width(self):
        circuit = Circuit()
        a, b = circuit.add_input_group("in", 2)
        circuit.set_output_group("out", [circuit.and_(a, b)])
        encoding = tseitin_encode(circuit)
        with pytest.raises(ValueError):
            encoding.fix_group("out", [1, 0])

    def test_unknown_group(self):
        circuit = Circuit()
        circuit.add_input_group("in", 1)
        encoding = tseitin_encode(circuit)
        with pytest.raises(KeyError):
            encoding.vars_of_group("nope")

    def test_summary_mentions_groups(self):
        circuit = Circuit()
        a, b = circuit.add_input_group("in", 2)
        circuit.set_output_group("out", [circuit.xor(a, b)])
        encoding = tseitin_encode(circuit)
        summary = encoding.summary()
        assert "in[2]" in summary
        assert "out[1]" in summary

    def test_all_input_vars_order(self):
        circuit = Circuit()
        a = circuit.add_input_group("a", 2)
        b = circuit.add_input_group("b", 3)
        encoding = tseitin_encode(circuit)
        assert encoding.all_input_vars() == encoding.input_vars["a"] + encoding.input_vars["b"]

    def test_assignment_for_group(self):
        circuit = Circuit()
        circuit.add_input_group("in", 3)
        encoding = tseitin_encode(circuit)
        assignment = encoding.assignment_for_group("in", [1, 0, 1])
        assert assignment.bits_for(encoding.input_vars["in"]) == (1, 0, 1)
