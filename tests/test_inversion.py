"""Tests for keystream-inversion instance generation."""

from __future__ import annotations

import pytest

from repro.ciphers import Bivium, Geffe, Grain
from repro.problems import make_instance_series, make_inversion_instance, weaken_instance
from repro.sat.cdcl import CDCLSolver


class TestInstanceConstruction:
    def test_basic_fields(self):
        instance = make_inversion_instance(Geffe.tiny(), keystream_length=20, seed=0)
        assert instance.cnf.num_clauses > 0
        assert len(instance.keystream) == 20
        assert len(instance.start_set) == 12
        assert len(instance.known_assignment) == 0
        assert instance.secret_state is not None

    def test_secret_state_produces_keystream(self):
        instance = make_inversion_instance(Geffe.tiny(), keystream_length=20, seed=1)
        assert instance.verify_state(instance.secret_state)

    def test_default_keystream_length_used(self):
        generator = Geffe.tiny()
        instance = make_inversion_instance(generator, seed=0)
        assert len(instance.keystream) == generator.default_keystream_length()

    def test_instance_is_satisfiable_and_recovers_valid_state(self):
        instance = make_inversion_instance(Geffe.tiny(), keystream_length=24, seed=2)
        result = CDCLSolver().solve(instance.cnf)
        assert result.is_sat
        state = instance.state_from_model(result.model)
        assert instance.verify_state(state)

    def test_secret_state_satisfies_encoding(self):
        instance = make_inversion_instance(Geffe.tiny(), keystream_length=24, seed=3)
        assumptions = []
        split = instance.generator.split_state(instance.secret_state)
        for reg, bits in split.items():
            for var, bit in zip(instance.register_vars[reg], bits):
                assumptions.append(var if bit else -var)
        result = CDCLSolver().solve(instance.cnf, assumptions=assumptions)
        assert result.is_sat

    def test_register_vars_cover_start_set(self):
        instance = make_inversion_instance(Bivium.scaled("tiny"), keystream_length=24, seed=0)
        flat = [v for reg in instance.generator.registers() for v in instance.register_vars[reg]]
        assert flat == instance.start_set

    def test_different_seeds_give_different_keystream(self):
        a = make_inversion_instance(Geffe.tiny(), keystream_length=20, seed=0)
        b = make_inversion_instance(Geffe.tiny(), keystream_length=20, seed=1)
        assert a.keystream != b.keystream

    def test_name_contains_seed(self):
        instance = make_inversion_instance(Geffe.tiny(), seed=9)
        assert "seed=9" in instance.name

    def test_summary_mentions_sizes(self):
        instance = make_inversion_instance(Geffe.tiny(), keystream_length=20, seed=0)
        summary = instance.summary()
        assert "start set" in summary
        assert "20 bits" in summary


class TestWeakening:
    def test_known_bits_fix_last_register_cells(self):
        generator = Bivium.scaled("tiny")
        instance = make_inversion_instance(generator, keystream_length=24, seed=0, known_bits=4)
        assert len(instance.known_assignment) == 4
        last_register_vars = instance.register_vars["B"]
        assert set(instance.known_assignment) == set(last_register_vars[-4:])

    def test_known_bits_match_secret_state(self):
        generator = Bivium.scaled("tiny")
        instance = make_inversion_instance(generator, keystream_length=24, seed=1, known_bits=5)
        split = generator.split_state(instance.secret_state)
        expected_bits = split["B"][-5:]
        observed = [int(instance.known_assignment[v]) for v in instance.register_vars["B"][-5:]]
        assert observed == expected_bits

    def test_free_start_variables_exclude_known(self):
        instance = make_inversion_instance(
            Bivium.scaled("tiny"), keystream_length=24, seed=0, known_bits=3
        )
        assert len(instance.free_start_variables) == len(instance.start_set) - 3

    def test_weakened_instance_still_satisfiable(self):
        instance = make_inversion_instance(
            Grain.scaled("tiny"), keystream_length=20, seed=0, known_bits=4
        )
        result = CDCLSolver().solve(instance.cnf)
        assert result.is_sat

    def test_known_register_can_be_chosen(self):
        instance = make_inversion_instance(
            Bivium.scaled("tiny"), keystream_length=24, seed=0, known_bits=3, known_register="A"
        )
        assert set(instance.known_assignment) <= set(instance.register_vars["A"])

    def test_known_from_start(self):
        instance = make_inversion_instance(
            Bivium.scaled("tiny"), keystream_length=24, seed=0, known_bits=3, known_from_end=False
        )
        assert set(instance.known_assignment) == set(instance.register_vars["B"][:3])

    def test_too_many_known_bits_rejected(self):
        with pytest.raises(ValueError):
            make_inversion_instance(Geffe.tiny(), seed=0, known_bits=100)

    def test_weaken_existing_instance(self):
        base = make_inversion_instance(Bivium.scaled("tiny"), keystream_length=24, seed=2)
        weakened = weaken_instance(base, known_bits=6)
        assert len(weakened.known_assignment) == 6
        assert weakened.keystream == base.keystream
        assert weakened.secret_state == base.secret_state
        assert weakened.cnf.num_clauses == base.cnf.num_clauses + 6

    def test_weaken_name_mentions_k(self):
        base = make_inversion_instance(Bivium.scaled("tiny"), keystream_length=24, seed=2)
        assert "K=6" in weaken_instance(base, known_bits=6).name

    def test_paper_naming_convention(self):
        # BiviumK: the instance name carries the weakening level K.
        instance = make_inversion_instance(
            Bivium.scaled("tiny"), keystream_length=24, seed=0, known_bits=9
        )
        assert "Bivium9" in instance.name


class TestInstanceSeries:
    def test_series_length_and_seeds(self):
        series = make_instance_series(Geffe.tiny(), count=3, keystream_length=20, first_seed=10)
        assert len(series) == 3
        keystreams = {tuple(inst.keystream) for inst in series}
        assert len(keystreams) == 3

    def test_series_share_structure(self):
        series = make_instance_series(Geffe.tiny(), count=2, keystream_length=20)
        assert series[0].start_set == series[1].start_set
        assert series[0].cnf.num_vars == series[1].cnf.num_vars

    def test_series_with_weakening(self):
        series = make_instance_series(
            Bivium.scaled("tiny"), count=2, keystream_length=24, known_bits=4
        )
        assert all(len(inst.known_assignment) == 4 for inst in series)


class TestRandomKeystreamInstance:
    def test_longer_than_state_is_unsat(self):
        from repro.problems import make_random_keystream_instance

        instance = make_random_keystream_instance(Geffe.tiny(), keystream_length=24, seed=9)
        assert instance.secret_state is None
        result = CDCLSolver().solve(instance.cnf)
        assert result.is_unsat

    def test_structure_matches_planted_instance(self):
        from repro.problems import make_random_keystream_instance

        random_instance = make_random_keystream_instance(
            Bivium.scaled("tiny"), keystream_length=26, seed=3
        )
        planted = make_inversion_instance(Bivium.scaled("tiny"), keystream_length=26, seed=3)
        assert random_instance.start_set == planted.start_set
        assert random_instance.cnf.num_vars == planted.cnf.num_vars
        assert "random keystream" in random_instance.name

    def test_deterministic_given_seed(self):
        from repro.problems import make_random_keystream_instance

        first = make_random_keystream_instance(Geffe.tiny(), keystream_length=20, seed=7)
        second = make_random_keystream_instance(Geffe.tiny(), keystream_length=20, seed=7)
        assert first.keystream == second.keystream
