"""Unit tests for repro.sat.solver (status, stats, budgets, results)."""

from __future__ import annotations

import pytest

from repro.sat.formula import CNF
from repro.sat.solver import (
    SolveResult,
    SolverBudget,
    SolverStats,
    SolverStatus,
    check_model,
)


class TestSolverStatus:
    def test_values(self):
        assert SolverStatus.SAT.value == "SAT"
        assert SolverStatus.UNSAT.value == "UNSAT"
        assert SolverStatus.UNKNOWN.value == "UNKNOWN"

    def test_truthiness_is_forbidden(self):
        with pytest.raises(TypeError):
            bool(SolverStatus.SAT)


class TestSolverBudget:
    def test_unlimited_by_default(self):
        assert SolverBudget().is_unlimited()

    def test_any_limit_makes_it_limited(self):
        assert not SolverBudget(max_conflicts=10).is_unlimited()
        assert not SolverBudget(max_seconds=1.0).is_unlimited()


class TestSolverStats:
    def test_cost_measures(self):
        stats = SolverStats(conflicts=3, decisions=5, propagations=100, wall_time=0.5)
        assert stats.cost("conflicts") == 3
        assert stats.cost("decisions") == 5
        assert stats.cost("propagations") == 100
        assert stats.cost("wall_time") == 0.5

    def test_weighted_cost(self):
        stats = SolverStats(conflicts=1, decisions=2, propagations=10)
        assert stats.cost("weighted") == 10 + 10 * 1 + 2 * 2

    def test_unknown_measure(self):
        with pytest.raises(ValueError):
            SolverStats().cost("nonsense")

    def test_merge_adds_counters(self):
        a = SolverStats(conflicts=1, decisions=2, propagations=3, wall_time=0.1, max_decision_level=4)
        b = SolverStats(conflicts=10, decisions=20, propagations=30, wall_time=0.2, max_decision_level=2)
        merged = a.merge(b)
        assert merged.conflicts == 11
        assert merged.decisions == 22
        assert merged.propagations == 33
        assert merged.wall_time == pytest.approx(0.3)
        assert merged.max_decision_level == 4


class TestSolveResult:
    def test_is_sat_unsat_flags(self):
        assert SolveResult(SolverStatus.SAT).is_sat
        assert SolveResult(SolverStatus.UNSAT).is_unsat
        assert not SolveResult(SolverStatus.UNKNOWN).is_decided

    def test_model_bits(self):
        result = SolveResult(SolverStatus.SAT, model={1: True, 2: False})
        assert result.model_bits([2, 1]) == (0, 1)

    def test_model_bits_without_model(self):
        with pytest.raises(ValueError):
            SolveResult(SolverStatus.UNSAT).model_bits([1])


class TestCheckModel:
    def test_satisfying_model(self):
        cnf = CNF([(1, -2), (2, 3)])
        assert check_model(cnf, {1: True, 2: False, 3: True})

    def test_falsifying_model(self):
        cnf = CNF([(1,), (-1, 2)])
        assert not check_model(cnf, {1: True, 2: False})
