"""Tests for the simulated cluster and the multiprocessing pool."""

from __future__ import annotations

import pytest

from repro.ciphers import Geffe
from repro.problems import make_inversion_instance
from repro.runner.cluster import simulate_makespan
from repro.runner.pool import solve_family_parallel
from repro.sat.solver import SolverStatus


class TestMakespanSimulation:
    def test_single_core_is_total_work(self):
        sim = simulate_makespan([3.0, 1.0, 2.0], 1)
        assert sim.makespan == 6.0
        assert sim.total_work == 6.0
        assert sim.efficiency == pytest.approx(1.0)

    def test_many_cores_bounded_by_longest_job(self):
        sim = simulate_makespan([5.0, 1.0, 1.0], 10)
        assert sim.makespan == 5.0

    def test_perfectly_divisible_work(self):
        sim = simulate_makespan([1.0] * 8, 4)
        assert sim.makespan == 2.0
        assert sim.efficiency == pytest.approx(1.0)

    def test_dynamic_scheduling_order_matters(self):
        # A long job arriving last forces a worse makespan than LPT.
        costs = [1.0, 1.0, 1.0, 9.0]
        dynamic = simulate_makespan(costs, 2, scheduler="dynamic")
        lpt = simulate_makespan(costs, 2, scheduler="lpt")
        assert dynamic.makespan >= lpt.makespan
        assert lpt.makespan == 9.0

    def test_empty_job_list(self):
        sim = simulate_makespan([], 4)
        assert sim.makespan == 0.0
        assert sim.total_work == 0.0

    def test_makespan_bounds(self):
        costs = [float(i % 7 + 1) for i in range(100)]
        for cores in (1, 3, 16):
            sim = simulate_makespan(costs, cores)
            assert sim.makespan >= sim.ideal_makespan
            assert sim.makespan >= max(costs)
            assert sim.makespan <= sum(costs)

    def test_core_loads_sum_to_total(self):
        costs = [2.0, 3.0, 4.0, 5.0]
        sim = simulate_makespan(costs, 3)
        assert sum(sim.core_loads) == pytest.approx(sum(costs))

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            simulate_makespan([1.0], 0)
        with pytest.raises(ValueError):
            simulate_makespan([-1.0], 2)
        with pytest.raises(ValueError):
            simulate_makespan([1.0], 2, scheduler="magic")


class TestParallelPool:
    @pytest.fixture(scope="class")
    def instance(self):
        return make_inversion_instance(Geffe.tiny(), keystream_length=24, seed=2)

    def test_sequential_fallback(self, instance):
        vectors = [[v] for v in instance.start_set[:4]]
        outcomes = solve_family_parallel(instance.cnf, vectors, processes=1)
        assert len(outcomes) == 4
        assert all(o.status in (SolverStatus.SAT, SolverStatus.UNSAT) for o in outcomes)

    def test_results_in_input_order(self, instance):
        vectors = [[instance.start_set[0]], [-instance.start_set[0]]]
        outcomes = solve_family_parallel(instance.cnf, vectors, processes=1)
        assert outcomes[0].assumptions == (instance.start_set[0],)
        assert outcomes[1].assumptions == (-instance.start_set[0],)

    def test_models_kept_for_sat(self, instance):
        outcomes = solve_family_parallel(instance.cnf, [[]], processes=1)
        assert outcomes[0].status is SolverStatus.SAT
        assert outcomes[0].model is not None

    def test_models_dropped_when_not_requested(self, instance):
        outcomes = solve_family_parallel(instance.cnf, [[]], processes=1, keep_models=False)
        assert outcomes[0].model is None

    def test_invalid_process_count(self, instance):
        with pytest.raises(ValueError):
            solve_family_parallel(instance.cnf, [[1]], processes=0)

    def test_two_worker_processes(self, instance):
        # Keep this small: spawning processes is slow but exercises the real pool.
        vectors = [[v] for v in instance.start_set[:4]]
        parallel = solve_family_parallel(instance.cnf, vectors, processes=2)
        sequential = solve_family_parallel(instance.cnf, vectors, processes=1)
        assert [o.status for o in parallel] == [o.status for o in sequential]
        assert [o.cost for o in parallel] == [o.cost for o in sequential]
