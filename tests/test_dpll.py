"""Tests for the DPLL reference solver."""

from __future__ import annotations

import pytest

from repro.sat.dpll import DPLLSolver
from repro.sat.formula import CNF
from repro.sat.random_cnf import pigeonhole, planted_ksat, random_ksat
from repro.sat.solver import SolverBudget, SolverStatus, check_model


class TestBasics:
    def test_empty_formula(self, dpll):
        assert dpll.solve(CNF()).is_sat

    def test_unit_clauses(self, dpll):
        result = dpll.solve(CNF([(1,), (-2,)]))
        assert result.is_sat
        assert result.model[1] is True
        assert result.model[2] is False

    def test_empty_clause(self, dpll):
        assert dpll.solve(CNF([()], num_vars=1)).is_unsat

    def test_unique_model(self, dpll, tiny_sat_cnf):
        result = dpll.solve(tiny_sat_cnf)
        assert result.is_sat
        assert (result.model[1], result.model[2], result.model[3]) == (True, False, True)

    def test_unsat(self, dpll, tiny_unsat_cnf):
        assert dpll.solve(tiny_unsat_cnf).is_unsat

    def test_tautology_ignored(self, dpll):
        assert dpll.solve(CNF([(1, -1)])).is_sat

    def test_model_covers_all_variables(self, dpll):
        result = dpll.solve(CNF([(2,)], num_vars=4))
        assert set(result.model) == {1, 2, 3, 4}

    def test_model_satisfies_formula(self, dpll):
        cnf, _ = planted_ksat(20, 80, seed=1)
        result = dpll.solve(cnf)
        assert result.is_sat
        assert check_model(cnf, result.model)


class TestAssumptions:
    def test_assumptions_are_respected(self, dpll):
        result = dpll.solve(CNF([(1, 2)]), assumptions=[-1])
        assert result.is_sat
        assert result.model[2] is True

    def test_conflicting_assumptions(self, dpll):
        assert dpll.solve(CNF([(1,)]), assumptions=[-1]).is_unsat


class TestStructured:
    def test_pigeonhole(self, dpll):
        assert dpll.solve(pigeonhole(3)).is_unsat

    def test_budget_gives_unknown(self, dpll):
        result = dpll.solve(pigeonhole(7), budget=SolverBudget(max_decisions=5))
        assert result.status is SolverStatus.UNKNOWN

    def test_pure_literal_toggle_agrees(self):
        with_pure = DPLLSolver(use_pure_literals=True)
        without_pure = DPLLSolver(use_pure_literals=False)
        for seed in range(5):
            cnf = random_ksat(18, 76, seed=seed)
            assert with_pure.solve(cnf).status == without_pure.solve(cnf).status

    def test_stats_recorded(self, dpll):
        result = dpll.solve(random_ksat(15, 64, seed=0))
        assert result.stats.wall_time > 0
        assert result.stats.decisions >= 0
