"""Lifecycle tests for the zero-copy shared CNF image (PR 7).

:class:`~repro.sat.cdcl.image.ArenaImage` is the worker-side half of the
zero-copy protocol: the leader freezes the post-``_init`` clause database
once, shares it through :mod:`multiprocessing.shared_memory`, and workers
attach read-only.  These tests pin the POSIX-segment semantics the protocol
relies on — attach/detach, double-close, unlink-while-attached, read-only
enforcement — and, most importantly, that no segment survives a run, even
when the scheduler injects worker crashes mid-flight.  Every test runs under
a sweeping fixture finalizer, so a leak is an assertion failure here rather
than silent ``/dev/shm`` garbage for the next suite.
"""

from __future__ import annotations

import pytest

from repro.sat.cdcl import CDCLSolver
from repro.sat.cdcl.config import CDCLConfig
from repro.sat.cdcl.image import (
    SEGMENT_PREFIX,
    ArenaImage,
    list_segments,
    sweep_segments,
)
from repro.sat.formula import CNF
from repro.sat.random_cnf import random_ksat
from repro.sat.solver import SolverStatus


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Every test must leave ``/dev/shm`` exactly as it found it.

    The finalizer sweeps (so one failure cannot poison the rest of the run)
    and then *fails* the test if the sweep actually reaped anything: a leaked
    ``repro-arena-*`` segment is a bug in the lifecycle under test, not
    acceptable residue.
    """
    before = list_segments()
    assert not before, f"pre-existing leaked segments: {before}"
    yield
    leaked = sweep_segments()
    assert not leaked, f"test leaked shared-memory segments: {leaked}"


def _cnf():
    return random_ksat(10, 42, k=3, seed=5)


class TestImageLifecycle:
    def test_freeze_is_private_and_round_trips_the_formula(self):
        cnf = _cnf()
        image = ArenaImage.freeze(cnf)
        assert image.name is None  # private buffer, nothing in /dev/shm
        assert image.num_vars == cnf.num_vars
        assert image.ok
        # The decoded formula is logically equivalent: same verdict and the
        # original formula accepts the model found on the decoded one.
        decoded = image.to_cnf()
        result = CDCLSolver().solve(decoded)
        assert result.status is CDCLSolver().solve(cnf).status is SolverStatus.SAT
        assert cnf.is_satisfied_by(result.model)

    def test_share_attach_and_load_image_are_bit_identical_to_load(self):
        cnf = _cnf()
        owner = ArenaImage.freeze(cnf).share()
        try:
            assert owner.name.startswith(SEGMENT_PREFIX)
            assert owner.name in list_segments()
            attached = ArenaImage.attach(owner.name)
            try:
                assert attached.arena() == owner.arena()
                assert attached.crefs() == owner.crefs()
                assert attached.root_units() == owner.root_units()
                # A solver rebuilt from the attachment must match load(cnf)
                # bit-for-bit on statuses *and* counters.
                rows = [(1, -2), (3,), (), (-1, -3, 5)]
                from_image = CDCLSolver().load_image(attached)
                from_cnf = CDCLSolver().load(cnf)
                for row in rows:
                    a = from_image.solve(cnf, assumptions=list(row))
                    b = from_cnf.solve(cnf, assumptions=list(row))
                    assert a.status is b.status
                    assert a.stats.propagations == b.stats.propagations
                    assert a.stats.conflicts == b.stats.conflicts
            finally:
                attached.close()
        finally:
            owner.unlink()

    def test_attached_buffer_is_read_only(self):
        owner = ArenaImage.freeze(_cnf()).share()
        try:
            attached = ArenaImage.attach(owner.name)
            try:
                with pytest.raises(TypeError):
                    attached.buffer[0] = 0
                with pytest.raises(TypeError):
                    owner.buffer[0] = 0
            finally:
                attached.close()
        finally:
            owner.unlink()

    def test_double_close_is_idempotent_and_closed_images_refuse_reads(self):
        owner = ArenaImage.freeze(_cnf()).share()
        name = owner.name
        attached = ArenaImage.attach(name)
        attached.close()
        attached.close()  # idempotent
        assert attached.closed
        with pytest.raises(ValueError, match="closed"):
            attached.arena()
        with pytest.raises(ValueError, match="closed"):
            _ = attached.buffer
        owner.unlink()
        owner.unlink()  # unlink implies close; second call is a no-op
        assert owner.closed

    def test_unlink_while_attached_keeps_existing_mappings_readable(self):
        cnf = _cnf()
        owner = ArenaImage.freeze(cnf).share()
        attached = ArenaImage.attach(owner.name)
        name = owner.name
        owner.unlink()
        # POSIX: the existing mapping survives the unlink untouched...
        assert attached.num_vars == cnf.num_vars
        assert attached.crefs() == ArenaImage.freeze(cnf).crefs()
        # ...but the name is gone, so new attachments fail.
        assert name not in list_segments()
        with pytest.raises(FileNotFoundError):
            ArenaImage.attach(name)
        attached.close()

    def test_context_managers_unlink_owner_and_close_attachment(self):
        with ArenaImage.freeze(_cnf()).share() as owner:
            name = owner.name
            with ArenaImage.attach(name) as attached:
                assert not attached.closed
            assert attached.closed  # plain close: segment still alive
            assert name in list_segments()
        assert name not in list_segments()  # owner exit unlinked it

    def test_freeze_rejects_simplifying_configs(self):
        with pytest.raises(ValueError, match="simplify"):
            ArenaImage.freeze(_cnf(), CDCLConfig(simplify=True))

    def test_root_refuted_formula_freezes_with_ok_false(self):
        cnf = CNF(clauses=[(1,), (-1,)], num_vars=1)  # x and not-x as root units
        image = ArenaImage.freeze(cnf)
        assert not image.ok
        assert CDCLSolver().load_image(image).solve(cnf).status is SolverStatus.UNSAT

    def test_validation_rejects_corrupt_buffers(self):
        from array import array

        good = ArenaImage.freeze(_cnf())
        words = array("q", good.buffer)
        words[0] ^= 1
        with pytest.raises(ValueError, match="magic"):
            ArenaImage(words)
        words[0] ^= 1
        words[1] += 1
        with pytest.raises(ValueError, match="version"):
            ArenaImage(words)
        words[1] -= 1
        with pytest.raises(ValueError, match="truncated"):
            ArenaImage(words[:-1])
        with pytest.raises(ValueError, match="too small"):
            ArenaImage(array("q", [1, 2, 3]))

    def test_sweep_segments_reaps_orphans(self):
        # Simulate a leader that died between share() and unlink().
        orphan = ArenaImage.freeze(_cnf()).share()
        name = orphan.name
        orphan.close()  # mapping gone, segment deliberately left behind
        assert name in list_segments()
        assert name in sweep_segments()
        assert name not in list_segments()


class TestRegistryFallback:
    """Enumeration without a listable ``/dev/shm`` (macOS/BSD portability).

    POSIX shared memory has no portable enumeration API, so off Linux the
    sweepers fall back to the per-user registry sidecar that ``share()``
    maintains.  These tests force that path by pointing ``_SHM_DIR`` at a
    nonexistent directory and the registry at a throwaway file.
    """

    @pytest.fixture()
    def registry_only(self, tmp_path, monkeypatch):
        from repro.sat.cdcl import image as image_module

        registry = tmp_path / "registry"
        monkeypatch.setattr(image_module, "_SHM_DIR", str(tmp_path / "no-such-dir"))
        monkeypatch.setattr(image_module, "_registry_path", lambda: registry)
        return registry

    def test_share_registers_and_unlink_unregisters(self, registry_only):
        owner = ArenaImage.freeze(_cnf()).share()
        name = owner.name
        try:
            assert name in registry_only.read_text().split()
            assert name in list_segments()
        finally:
            owner.unlink()
        assert name not in registry_only.read_text().split()
        assert name not in list_segments()

    def test_sweep_reaps_orphans_via_registry(self, registry_only):
        orphan = ArenaImage.freeze(_cnf()).share()
        name = orphan.name
        orphan.close()  # mapping gone, segment deliberately left behind
        assert list_segments() == [name]
        assert sweep_segments() == [name]
        assert list_segments() == []
        # The registry no longer mentions the reaped segment either.
        assert name not in registry_only.read_text().split()

    def test_dead_registry_entries_are_pruned_by_probing(self, registry_only):
        # A stale entry (owner crashed after unlink, or a reboot cleared the
        # segments) must not make list_segments() report a phantom leak.
        registry_only.write_text(f"{SEGMENT_PREFIX}deadbeef-000000000000\n")
        assert list_segments() == []
        assert registry_only.read_text().split() == []


class TestNoLeaksUnderTheScheduler:
    """The leader's try/finally owns the segment however the run ends."""

    def test_injected_worker_crashes_leak_nothing(self):
        # FailureModel crashes discard completed attempts, so the scheduler
        # re-dispatches and workers re-attach the same segment several times;
        # the segment must still die exactly once, in the leader's finally.
        from repro.runner.scheduler import (
            FailureModel,
            RetryPolicy,
            Scheduler,
            SimulatedGridExecutor,
            Task,
            TaskGraph,
        )

        cnf = _cnf()
        owner = ArenaImage.freeze(cnf).share()
        segment = owner.name

        def attach_and_solve(payload):
            name, row = payload
            with ArenaImage.attach(name) as image:
                result = CDCLSolver().load_image(image).solve(cnf, assumptions=list(row))
            return float(result.stats.propagations) + 1.0

        rows = [(v,) for v in range(1, 9)] + [(-v,) for v in range(1, 9)]
        graph = TaskGraph(
            Task(task_id=f"attach-{index:03d}", payload=(segment, row))
            for index, row in enumerate(rows)
        )
        executor = SimulatedGridExecutor(
            task_fn=attach_and_solve,
            workers=4,
            failures=FailureModel(crash_rate=0.4, seed=11),
        )
        try:
            run = Scheduler(graph, executor, retry=RetryPolicy(max_attempts=8)).run()
        finally:
            owner.unlink()
        assert not run.failed
        assert len(run.results) == len(rows)
        assert executor.injected_crashes > 0  # the fault injection really fired
        assert segment not in list_segments()

    def test_batched_process_pool_estimation_leaks_nothing(self):
        # End to end on real worker processes: the batched estimation path
        # freezes + shares an image internally and must unlink it on the way
        # out, matching the scalar path's statistics bit for bit.
        from repro.runner.estimation import estimate_family_scheduled

        cnf = _cnf()
        batched = estimate_family_scheduled(
            cnf, [1, 2, 3, 4], sample_size=24, seed=7,
            executor="process-pool", processes=2, batch_size=8,
        )
        assert not list_segments()
        scalar = estimate_family_scheduled(cnf, [1, 2, 3, 4], sample_size=24, seed=7)
        assert batched.costs == scalar.costs
        assert batched.statistics.mean == scalar.statistics.mean

    def test_interrupted_batched_run_still_unlinks_its_segment(self):
        # An interrupted run exits the scheduler early (pause-for-checkpoint);
        # the leader's finally must unlink the segment on that path too.
        from repro.runner.estimation import estimate_family_scheduled

        partial = estimate_family_scheduled(
            _cnf(), [1, 2, 3, 4], sample_size=24, seed=7,
            executor="process-pool", processes=2, batch_size=4,
            interrupt_after=2,
        )
        assert len(partial.costs) < 24
        assert not list_segments()
