"""Tests for unit propagation and pure-literal elimination."""

from __future__ import annotations

from repro.sat.formula import CNF
from repro.sat.preprocessing import pure_literal_elimination, simplify, unit_propagate


class TestUnitPropagation:
    def test_propagates_chain(self):
        cnf = CNF([(1,), (-1, 2), (-2, 3)])
        result = unit_propagate(cnf)
        assert not result.conflict
        assert result.assignment == {1: True, 2: True, 3: True}
        assert result.simplified.num_clauses == 0

    def test_detects_conflict(self):
        cnf = CNF([(1,), (-1, 2), (-2,)])
        result = unit_propagate(cnf)
        assert result.conflict

    def test_initial_assignment_is_used(self):
        cnf = CNF([(-1, 2)])
        result = unit_propagate(cnf, {1: True})
        assert result.assignment[2] is True

    def test_initial_assignment_kept_in_closure(self):
        cnf = CNF([(1, 2)])
        result = unit_propagate(cnf, {3: False})
        assert result.assignment[3] is False

    def test_no_units_leaves_formula_untouched(self):
        cnf = CNF([(1, 2), (-1, -2)])
        result = unit_propagate(cnf)
        assert not result.conflict
        assert result.assignment == {}
        assert result.simplified.clauses == [(1, 2), (-1, -2)]

    def test_satisfied_clauses_removed(self):
        cnf = CNF([(1,), (1, 2, 3), (-1, 2)])
        result = unit_propagate(cnf)
        assert result.assignment == {1: True, 2: True}
        assert result.simplified.num_clauses == 0

    def test_fixed_variables_property(self):
        cnf = CNF([(4,), (-4, 7)])
        result = unit_propagate(cnf)
        assert result.fixed_variables == {4, 7}


class TestPureLiterals:
    def test_pure_positive(self):
        cnf = CNF([(1, 2), (1, -2)])
        reduced, choices = pure_literal_elimination(cnf)
        assert choices[1] is True
        assert reduced.num_clauses == 0

    def test_pure_negative(self):
        cnf = CNF([(-3, 2), (-3, -2)])
        reduced, choices = pure_literal_elimination(cnf)
        assert choices[3] is False

    def test_mixed_polarity_not_pure(self):
        cnf = CNF([(1, 2), (-1, -2)])
        reduced, choices = pure_literal_elimination(cnf)
        assert choices == {}
        assert reduced.num_clauses == 2

    def test_cascading_purity(self):
        # After removing clauses satisfied by pure literal 1, variable 2 becomes pure.
        cnf = CNF([(1, -2), (2, 3), (2, -3)])
        reduced, choices = pure_literal_elimination(cnf)
        assert choices[1] is True
        assert reduced.num_clauses == 0 or 2 in choices


class TestSimplify:
    def test_combined_pipeline(self):
        cnf = CNF([(1,), (-1, 2), (3, 4), (3, -4)])
        reduced, forced, conflict = simplify(cnf)
        assert not conflict
        assert forced[1] is True
        assert forced[2] is True
        assert forced[3] is True
        assert reduced.num_clauses == 0

    def test_conflict_reported(self):
        cnf = CNF([(1,), (-1,)])
        _, forced, conflict = simplify(cnf)
        assert conflict

    def test_original_formula_not_mutated(self):
        cnf = CNF([(1,), (-1, 2)])
        simplify(cnf)
        assert cnf.num_clauses == 2
