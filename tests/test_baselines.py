"""Tests for the baseline decomposition strategies."""

from __future__ import annotations

import pytest

from repro.ciphers import Bivium
from repro.core.baselines import (
    first_register_cells,
    full_start_set,
    last_register_cells,
    most_active_variables,
    random_decomposition,
)
from repro.problems import make_inversion_instance


@pytest.fixture(scope="module")
def bivium_instance():
    return make_inversion_instance(Bivium.scaled("tiny"), keystream_length=24, seed=0)


class TestFixedStrategies:
    def test_last_register_cells_default_register(self, bivium_instance):
        chosen = last_register_cells(bivium_instance, 5)
        assert chosen == bivium_instance.register_vars["B"][-5:]

    def test_last_register_cells_explicit_register(self, bivium_instance):
        chosen = last_register_cells(bivium_instance, 4, register="A")
        assert chosen == bivium_instance.register_vars["A"][-4:]

    def test_last_register_cells_too_many(self, bivium_instance):
        with pytest.raises(ValueError):
            last_register_cells(bivium_instance, 100)

    def test_unknown_register(self, bivium_instance):
        with pytest.raises(KeyError):
            last_register_cells(bivium_instance, 2, register="Z")

    def test_first_register_cells(self, bivium_instance):
        chosen = first_register_cells(bivium_instance, 3)
        assert chosen == bivium_instance.register_vars["A"][:3]

    def test_first_register_cells_too_many(self, bivium_instance):
        with pytest.raises(ValueError):
            first_register_cells(bivium_instance, 100)

    def test_full_start_set(self, bivium_instance):
        assert full_start_set(bivium_instance) == bivium_instance.start_set

    def test_full_start_set_excludes_known(self):
        weakened = make_inversion_instance(
            Bivium.scaled("tiny"), keystream_length=24, seed=0, known_bits=4
        )
        chosen = full_start_set(weakened)
        assert len(chosen) == len(weakened.start_set) - 4
        assert not set(chosen) & set(weakened.known_assignment)


class TestRandomAndActivity:
    def test_random_decomposition_size_and_membership(self, bivium_instance):
        chosen = random_decomposition(bivium_instance.start_set, 6, seed=1)
        assert len(chosen) == 6
        assert set(chosen) <= set(bivium_instance.start_set)

    def test_random_decomposition_deterministic(self, bivium_instance):
        a = random_decomposition(bivium_instance.start_set, 6, seed=2)
        b = random_decomposition(bivium_instance.start_set, 6, seed=2)
        assert a == b

    def test_random_decomposition_too_large(self, bivium_instance):
        with pytest.raises(ValueError):
            random_decomposition(bivium_instance.start_set, 1000)

    def test_most_active_variables(self, bivium_instance):
        chosen = most_active_variables(
            bivium_instance.cnf, bivium_instance.start_set, 5, probe_conflicts=100
        )
        assert len(chosen) == 5
        assert set(chosen) <= set(bivium_instance.start_set)

    def test_most_active_variables_too_many(self, bivium_instance):
        with pytest.raises(ValueError):
            most_active_variables(bivium_instance.cnf, bivium_instance.start_set, 10_000)
