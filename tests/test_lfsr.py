"""Tests for the LFSR/NFSR building blocks."""

from __future__ import annotations

import pytest

from repro.ciphers.lfsr import LFSR, lfsr_step, nfsr_step


class TestLfsrStep:
    def test_output_is_last_cell(self):
        state = [0, 1, 0, 1]
        _, output = lfsr_step(state, [3])
        assert output == 1

    def test_feedback_enters_at_zero(self):
        state = [0, 0, 0, 1]
        new_state, _ = lfsr_step(state, [3])
        assert new_state == [1, 0, 0, 0]

    def test_feedback_is_xor_of_taps(self):
        state = [1, 1, 0, 1]
        new_state, _ = lfsr_step(state, [0, 1, 3])
        assert new_state[0] == (1 ^ 1 ^ 1)

    def test_nfsr_step_uses_feedback_function(self):
        state = [1, 0, 1]
        new_state, output = nfsr_step(state, lambda s: s[0] & s[2])
        assert output == 1
        assert new_state == [1, 1, 0]


class TestLFSRClass:
    def test_load_and_run(self):
        reg = LFSR(4, (3, 2))
        reg.load([1, 0, 0, 0])
        outputs = reg.run(4)
        assert len(outputs) == 4
        assert all(bit in (0, 1) for bit in outputs)

    def test_load_validates_length(self):
        reg = LFSR(4, (3,))
        with pytest.raises(ValueError):
            reg.load([1, 0])

    def test_taps_validated(self):
        with pytest.raises(ValueError):
            LFSR(4, (5,))

    def test_zero_state_stays_zero(self):
        reg = LFSR(5, (4, 2))
        reg.load([0] * 5)
        assert reg.run(10) == [0] * 10

    def test_maximal_period_register(self):
        # x^4 + x^3 + 1 is primitive: taps at cells 3 and 2 under our convention
        # give the full period 15 for any non-zero initial state.
        reg = LFSR(4, (3, 2))
        reg.load([1, 0, 0, 0])
        seen = set()
        for _ in range(20):
            seen.add(tuple(reg.state))
            reg.clock()
        assert len(seen) == 15
        assert reg.period_upper_bound() == 15

    def test_default_state_is_zero(self):
        reg = LFSR(3, (2,))
        assert reg.state == [0, 0, 0]

    def test_clock_returns_bits(self):
        reg = LFSR(3, (2, 1))
        reg.load([1, 1, 0])
        assert reg.clock() in (0, 1)
