"""Tests for the estimation-as-a-service layer (:mod:`repro.service`).

The suite drives real daemons over real unix sockets — the same code path as
``repro-sat serve`` — and covers the contracts the service makes:

* submit/status/result/cancel lifecycle, with progress streaming (``watch``);
* content-addressed caching: identical configs cost one solve, concurrent
  identical submissions coalesce onto one job;
* per-tenant quotas reject, priorities reorder;
* concurrent clients hammering one daemon stay consistent;
* a daemon killed mid-job (``stop_hard_for_tests``: the journal is left
  exactly as ``kill -9`` would leave it) restarts, resumes from the
  scheduler checkpoint and produces results bit-identical to an
  uninterrupted run.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.api import Experiment, ExperimentConfig, InstanceSpec, MinimizerSpec
from repro.service import (
    JobState,
    ServiceClient,
    ServiceConfig,
    ServiceDaemon,
    ServiceError,
    content_key,
)


def _estimate_config(seed: int = 1, evaluations: int = 3) -> dict:
    return ExperimentConfig(
        instance=InstanceSpec(cipher="bivium-tiny", seed=1),
        minimizer=MinimizerSpec(max_evaluations=evaluations),
        sample_size=5,
        seed=seed,
    ).to_dict()


def _solve_config(decomposition_bits: int = 8, seed: int = 1) -> dict:
    return ExperimentConfig(
        instance=InstanceSpec(cipher="geffe-tiny", seed=1),
        decomposition=tuple(range(1, decomposition_bits + 1)),
        seed=seed,
    ).to_dict()


@pytest.fixture()
def daemon_factory(tmp_path):
    """Build daemons on throwaway state dirs; always shut them down."""
    daemons: list[ServiceDaemon] = []

    def factory(state_dir="state", **config_kwargs) -> ServiceDaemon:
        config = ServiceConfig(
            state_dir=str(tmp_path / state_dir),
            sweep_shared_memory=False,  # don't race the shared-image suite
            **config_kwargs,
        )
        daemon = ServiceDaemon(config).start()
        daemons.append(daemon)
        return daemon

    yield factory
    for daemon in daemons:
        if daemon.started:
            daemon.shutdown()


class TestSubmitLifecycle:
    def test_submit_runs_and_result_matches_direct_facade_run(self, daemon_factory):
        daemon = daemon_factory(workers=1)
        client = ServiceClient(daemon.socket_path)
        assert client.ping()["ok"]

        outcome = client.submit("estimate", _estimate_config())
        assert outcome["state"] == "queued"
        assert not outcome["cached"] and not outcome["deduplicated"]

        job = client.wait(outcome["job_id"])
        assert job["state"] == "done"
        assert job["attempts"] == 1
        served = client.result(outcome["job_id"])

        direct = Experiment.from_config(
            ExperimentConfig.from_dict(_estimate_config())
        ).estimate()
        assert served["data"] == direct.to_dict()["data"]
        assert served["kind"] == "estimate"

    def test_watch_streams_progress_then_done(self, daemon_factory):
        daemon = daemon_factory(workers=1)
        client = ServiceClient(daemon.socket_path)
        outcome = client.submit("estimate", _estimate_config())
        messages = list(client.watch(outcome["job_id"]))
        assert messages[-1]["done"] and messages[-1]["state"] == "done"
        phases = [m["event"]["phase"] for m in messages if "event" in m]
        assert "estimate" in phases

    def test_result_of_unfinished_job_is_a_clean_error(self, daemon_factory):
        daemon = daemon_factory(workers=1)
        client = ServiceClient(daemon.socket_path)
        # Occupy the single worker so the probe job stays queued.
        client.submit("solve", _solve_config())
        probe = client.submit("estimate", _estimate_config(seed=99))
        with pytest.raises(ServiceError, match="not done"):
            client.result(probe["job_id"])
        with pytest.raises(ServiceError, match="unknown job id"):
            client.status("no-such-job")

    def test_failed_job_reports_its_error(self, daemon_factory):
        daemon = daemon_factory(workers=1)
        client = ServiceClient(daemon.socket_path)
        bad = dict(_estimate_config())
        bad["decomposition"] = [10_000]  # outside the formula -> ValueError
        outcome = client.submit("solve", bad)
        job = client.wait(outcome["job_id"])
        assert job["state"] == "failed"
        assert "outside" in job["error"]
        with pytest.raises(ServiceError, match="failed"):
            client.result(outcome["job_id"])


class TestContentAddressedCache:
    def test_identical_configs_cost_one_solve(self, daemon_factory):
        daemon = daemon_factory(workers=1)
        client = ServiceClient(daemon.socket_path)
        first = client.submit("estimate", _estimate_config())
        client.wait(first["job_id"])

        second = client.submit("estimate", _estimate_config())
        assert second["cached"] is True
        assert second["state"] == "done"
        assert second["key"] == first["key"]
        # The cached job never entered RUNNING: nothing was recomputed.
        assert client.status(second["job_id"])["attempts"] == 0
        assert client.result(second["job_id"]) == client.result(first["job_id"])
        assert daemon.stats()["store_entries"] == 1

    def test_active_duplicate_coalesces_onto_the_running_job(self, daemon_factory):
        daemon = daemon_factory(workers=1)
        client = ServiceClient(daemon.socket_path)
        first = client.submit("solve", _solve_config())
        duplicate = client.submit("solve", _solve_config())
        assert duplicate["deduplicated"] is True
        assert duplicate["job_id"] == first["job_id"]
        assert client.wait(first["job_id"])["state"] == "done"

    def test_key_ignores_journal_fields_but_not_semantics(self):
        base = ExperimentConfig.from_dict(_estimate_config())
        assert content_key("estimate", base) == content_key(
            "estimate", base.replace(checkpoint_path="x.ckpt", trace="x.trc")
        )
        assert content_key("estimate", base) != content_key("run", base)
        assert content_key("estimate", base) != content_key(
            "estimate", base.replace(seed=base.seed + 1)
        )


class TestQuotasAndPriorities:
    def test_tenant_quota_rejects_and_is_per_tenant(self, daemon_factory):
        daemon = daemon_factory(workers=1, max_active_per_tenant=2)
        client = ServiceClient(daemon.socket_path)
        # A long solve pins the single worker, so alice's two jobs stay
        # *active* (running + queued) no matter how fast the machine is.
        client.submit("solve", _solve_config(decomposition_bits=10), tenant="alice")
        client.submit("estimate", _estimate_config(seed=2), tenant="alice")
        with pytest.raises(ServiceError, match="quota"):
            client.submit("estimate", _estimate_config(seed=3), tenant="alice")
        # Another tenant is unaffected; terminal jobs free the quota.
        bob = client.submit("estimate", _estimate_config(seed=3), tenant="bob")
        client.wait(bob["job_id"])
        for job in client.jobs(tenant="alice"):
            client.wait(job["job_id"])
        assert client.submit("estimate", _estimate_config(seed=4), tenant="alice")

    def test_higher_priority_jobs_run_first(self, daemon_factory):
        daemon = daemon_factory(workers=1)
        client = ServiceClient(daemon.socket_path)
        blocker = client.submit("solve", _solve_config())  # occupies the worker
        low = client.submit("estimate", _estimate_config(seed=10), priority=0)
        high = client.submit("estimate", _estimate_config(seed=11), priority=5)
        for job_id in (blocker["job_id"], low["job_id"], high["job_id"]):
            client.wait(job_id)
        assert (
            client.status(high["job_id"])["started_at"]
            < client.status(low["job_id"])["started_at"]
        )


class TestCancellation:
    def test_cancel_queued_job_is_immediate(self, daemon_factory):
        daemon = daemon_factory(workers=1)
        client = ServiceClient(daemon.socket_path)
        client.submit("solve", _solve_config())  # occupies the worker
        queued = client.submit("estimate", _estimate_config(seed=7))
        outcome = client.cancel(queued["job_id"])
        assert outcome["state"] == "cancelled"
        assert client.status(queued["job_id"])["state"] == "cancelled"

    def test_cancel_running_job_stops_it_mid_family(self, daemon_factory):
        daemon = daemon_factory(workers=1)
        client = ServiceClient(daemon.socket_path)
        running = client.submit("solve", _solve_config(decomposition_bits=10))
        _wait_for_progress(client, running["job_id"])
        client.cancel(running["job_id"])
        job = client.wait(running["job_id"])
        assert job["state"] == "cancelled"
        assert daemon.stats()["store_entries"] == 0


class TestConcurrentClients:
    def test_many_clients_one_daemon(self, daemon_factory):
        daemon = daemon_factory(workers=2)
        outcomes: list[dict] = []
        errors: list[Exception] = []

        def one_client(seed: int) -> None:
            try:
                client = ServiceClient(daemon.socket_path)
                submitted = client.submit("estimate", _estimate_config(seed=seed % 3))
                outcomes.append(client.wait(submitted["job_id"], timeout=120.0))
            except Exception as error:  # noqa: BLE001 — surfaced below
                errors.append(error)

        threads = [threading.Thread(target=one_client, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(150.0)
        assert not errors
        assert len(outcomes) == 8
        assert all(job["state"] == "done" for job in outcomes)
        # 8 submissions over 3 distinct configs -> exactly 3 solves archived.
        assert daemon.stats()["store_entries"] == 3


def _wait_for_progress(
    client: ServiceClient, job_id: str, timeout: float = 60.0, min_completed: int = 1
) -> None:
    """Block until the job completed ``min_completed`` sub-problems (not all)."""
    deadline = time.time() + timeout
    while time.time() < deadline:
        job = client.status(job_id)
        events = job.get("events", [])
        solve_events = [
            e
            for e in events
            if e["phase"] == "solve"
            and e["total"]
            and min_completed <= e["completed"] < e["total"]
        ]
        if solve_events:
            return
        if job["state"] in ("done", "failed", "cancelled"):
            raise AssertionError(f"job finished ({job['state']}) before it could be interrupted")
        time.sleep(0.005)
    raise AssertionError("job never reported mid-family progress")


class TestKillAndResume:
    def test_killed_daemon_resumes_job_from_checkpoint(self, daemon_factory, tmp_path):
        config = _solve_config(decomposition_bits=10)  # 1024 sub-problems
        reference = Experiment.from_config(ExperimentConfig.from_dict(config)).solve()

        daemon = daemon_factory(workers=1)
        client = ServiceClient(daemon.socket_path)
        submitted = client.submit("solve", config)
        # The facade checkpoints every len(vectors)//256 = 4 sub-problems:
        # waiting for 32 guarantees a checkpoint is on disk before the kill.
        _wait_for_progress(client, submitted["job_id"], min_completed=32)
        daemon.stop_hard_for_tests()

        # The on-disk journal still says RUNNING — what a kill leaves behind.
        journal = json.loads((daemon.state_dir / "jobs.json").read_text())
        states = {job["job_id"]: job["state"] for job in journal["jobs"]}
        assert states[submitted["job_id"]] == "running"

        revived = daemon_factory(workers=1)  # same tmp_path -> same state dir
        client = ServiceClient(revived.socket_path)
        job = client.wait(submitted["job_id"], timeout=120.0)
        assert job["state"] == "done"
        assert job["attempts"] >= 2  # once before the kill, once after

        resumed = client.result(submitted["job_id"])
        assert resumed["data"]["resumed_subproblems"] > 0
        # Bit-identical to the uninterrupted reference run.
        assert resumed["data"]["statuses"] == reference.data["statuses"]
        assert resumed["data"]["costs"] == reference.data["costs"]
        assert resumed["status"] == reference.status

    def test_graceful_shutdown_requeues_in_flight_jobs(self, daemon_factory):
        daemon = daemon_factory(workers=1)
        client = ServiceClient(daemon.socket_path)
        submitted = client.submit("solve", _solve_config(decomposition_bits=10))
        _wait_for_progress(client, submitted["job_id"], min_completed=32)
        daemon.shutdown()

        journal = json.loads((daemon.state_dir / "jobs.json").read_text())
        states = {job["job_id"]: job["state"] for job in journal["jobs"]}
        assert states[submitted["job_id"]] == "queued"

        revived = daemon_factory(workers=1)
        client = ServiceClient(revived.socket_path)
        job = client.wait(submitted["job_id"], timeout=120.0)
        assert job["state"] == "done"
        assert client.result(submitted["job_id"])["data"]["resumed_subproblems"] > 0


class TestTraceAttachment:
    def test_attach_trace_records_a_readable_trace(self, daemon_factory):
        from repro.trace import read_trace

        daemon = daemon_factory(workers=1)
        client = ServiceClient(daemon.socket_path)
        submitted = client.submit("solve", _solve_config(), attach_trace=True)
        job = client.wait(submitted["job_id"])
        assert job["state"] == "done"
        trace_path = job["config"]["trace"]
        assert trace_path is not None
        header, events = read_trace(trace_path)
        assert header.kind == "experiment-solve"
        assert events

    def test_cached_hit_does_not_retrace(self, daemon_factory):
        daemon = daemon_factory(workers=1)
        client = ServiceClient(daemon.socket_path)
        first = client.submit("solve", _solve_config(seed=5))
        client.wait(first["job_id"])
        # Trace attachment does not change the content key: the re-submission
        # is a cache hit and honestly reports no fresh trace was recorded.
        second = client.submit("solve", _solve_config(seed=5), attach_trace=True)
        assert second["cached"] is True
        assert client.status(second["job_id"])["config"]["trace"] is None


class TestServeCLI:
    def test_serve_submit_status_result_cancel_round_trip(self, tmp_path):
        """The daemon the CLI starts is the daemon the CLI clients talk to."""
        from repro.cli import main

        state = tmp_path / "state"
        daemon = ServiceDaemon(
            ServiceConfig(state_dir=str(state), workers=1, sweep_shared_memory=False)
        ).start()
        try:
            config_path = tmp_path / "exp.json"
            config_path.write_text(json.dumps(_estimate_config()))
            socket = ["--socket", daemon.socket_path]
            assert main(["submit", "--config", str(config_path), "--mode", "estimate", *socket]) == 0
            job_id = daemon.jobs()[0]["job_id"]
            daemon.wait(job_id)
            assert main(["status", job_id, *socket]) == 0
            out = tmp_path / "result.json"
            assert main(["result", job_id, "--output", str(out), *socket]) == 0
            assert json.loads(out.read_text())["kind"] == "estimate"
            assert main(["cancel", job_id, *socket]) == 0  # terminal: no-op
            # Cached resubmission through the CLI.
            assert main(["submit", "--config", str(config_path), "--mode", "estimate", *socket]) == 0
            cached = [job for job in daemon.jobs() if job["cached"]]
            assert len(cached) == 1
        finally:
            daemon.shutdown()

    def test_journal_round_trips_job_records(self, tmp_path):
        from repro.service.jobs import JobRecord

        record = JobRecord(
            job_id="abc123", mode="estimate", config=_estimate_config(), key="00ff",
            tenant="alice", priority=3, state=JobState.QUEUED, attempts=1,
        )
        assert JobRecord.from_dict(record.to_dict()) == record

    def test_journal_round_trips_budget_and_requeue_fields(self):
        from repro.service.jobs import JobRecord

        record = JobRecord(
            job_id="def456", mode="solve", config=_solve_config(), key="ab01",
            tenant="alice", priority=0, state=JobState.TIMED_OUT, attempts=2,
            budget={"wall_seconds": 1.5, "max_conflicts": 100},
            budget_verdict="wall-clock budget exceeded: 2.0s elapsed > 1.5s",
            requeues=1,
        )
        revived = JobRecord.from_dict(record.to_dict())
        assert revived == record
        typed = revived.resource_budget()
        assert typed is not None
        assert typed.wall_seconds == 1.5 and typed.max_conflicts == 100


class TestCorruptStateRecovery:
    def test_corrupt_journal_quarantined_daemon_starts_empty(self, tmp_path):
        state = tmp_path / "state"
        state.mkdir()
        (state / "jobs.json").write_text('{"jobs": [{"job_id": "trunca')  # kill -9 artifact
        daemon = ServiceDaemon(
            ServiceConfig(state_dir=str(state), workers=1, sweep_shared_memory=False)
        ).start()
        try:
            assert daemon.jobs() == []
            assert (state / "jobs.json.corrupt").exists()
            # The daemon degraded to the no-state path but is fully functional.
            client = ServiceClient(daemon.socket_path)
            outcome = client.submit("estimate", _estimate_config())
            assert client.wait(outcome["job_id"])["state"] == "done"
        finally:
            daemon.shutdown()

    def test_undecodable_journal_record_is_skipped_valid_ones_kept(self, tmp_path):
        from repro.service.jobs import JobRecord

        keep = JobRecord(
            job_id="keepme", mode="estimate", config=_estimate_config(), key="00ff",
            tenant="t", priority=0, state=JobState.DONE,
        )
        state = tmp_path / "state"
        state.mkdir()
        (state / "jobs.json").write_text(
            json.dumps({"jobs": [keep.to_dict(), {"job_id": "no-mode-field"}]})
        )
        daemon = ServiceDaemon(
            ServiceConfig(state_dir=str(state), workers=1, sweep_shared_memory=False)
        ).start()
        try:
            ids = [job["job_id"] for job in daemon.jobs()]
            assert ids == ["keepme"]
        finally:
            daemon.shutdown()

    def test_corrupt_store_entry_reads_as_cache_miss(self, daemon_factory):
        daemon = daemon_factory(workers=1)
        client = ServiceClient(daemon.socket_path)
        first = client.submit("estimate", _estimate_config())
        client.wait(first["job_id"])
        reference = client.result(first["job_id"])

        entry = daemon.store._path(first["key"])
        entry.write_text(entry.read_text()[:40])  # torn write
        assert daemon.store.get(first["key"]) is None
        assert entry.with_name(entry.name + ".corrupt").exists()

        # The next identical submission recomputes instead of crashing, and
        # lands on the same bits.
        second = client.submit("estimate", _estimate_config())
        assert second["cached"] is False
        job = client.wait(second["job_id"])
        assert job["state"] == "done"
        assert client.result(second["job_id"])["data"] == reference["data"]

    def test_startup_sweeps_atomic_write_scratch_files(self, tmp_path):
        state = tmp_path / "state"
        (state / "results").mkdir(parents=True)
        residue = [
            state / "jobs.abc1.tmp",  # journal writer killed mid-replace
            state / "results" / f"{'0' * 64}.json.abc1.tmp",
        ]
        for path in residue:
            path.write_text("{half a json object")
        daemon = ServiceDaemon(
            ServiceConfig(state_dir=str(state), workers=1, sweep_shared_memory=False)
        ).start()
        try:
            assert not any(path.exists() for path in residue)
        finally:
            daemon.shutdown()


class TestResourceBudgets:
    def test_wall_budget_lands_in_timed_out_and_worker_survives(self, daemon_factory):
        daemon = daemon_factory(workers=1, watchdog_interval=0.05)
        client = ServiceClient(daemon.socket_path)
        doomed = client.submit(
            "solve",
            _solve_config(decomposition_bits=10),  # 1024 sub-problems: slow
            budget={"wall_seconds": 0.2},
        )
        job = client.wait(doomed["job_id"], timeout=60.0)
        assert job["state"] == "timed-out"
        assert "wall-clock" in job["budget_verdict"]
        assert "resource budget exceeded" in job["error"]
        # Nothing half-finished was archived under the job's key.
        assert daemon.store.get(doomed["key"]) is None

        # The worker survived the interrupt: a clean job still completes, and
        # no worker was written off.
        clean = client.submit("estimate", _estimate_config())
        assert client.wait(clean["job_id"])["state"] == "done"
        assert daemon.stats()["abandoned_workers"] == 0

    def test_invalid_budget_is_a_bad_request(self, daemon_factory):
        daemon = daemon_factory(workers=1)
        client = ServiceClient(daemon.socket_path)
        with pytest.raises(ServiceError, match="budget"):
            client.submit("estimate", _estimate_config(), budget={"wall_seconds": -1})
        with pytest.raises(ServiceError, match="budget"):
            client.submit("estimate", _estimate_config(), budget={"wall_years": 1})

    def test_conflict_budget_changes_the_content_key(self):
        from repro.service import ResourceBudget

        base = ExperimentConfig.from_dict(_estimate_config())
        unbudgeted = content_key("estimate", base)
        # Wall/RSS budgets never archive -> same key as unbudgeted.
        assert content_key("estimate", base, ResourceBudget(wall_seconds=5)) == unbudgeted
        # A conflict cap changes what the solver computes -> distinct key.
        assert content_key("estimate", base, ResourceBudget(max_conflicts=50)) != unbudgeted

    def test_default_budget_applies_to_unbudgeted_submissions(self, daemon_factory):
        from repro.service import ResourceBudget

        daemon = daemon_factory(
            workers=1,
            watchdog_interval=0.05,
            default_budget=ResourceBudget(wall_seconds=0.2),
        )
        client = ServiceClient(daemon.socket_path)
        outcome = client.submit("solve", _solve_config(decomposition_bits=10))
        job = client.wait(outcome["job_id"], timeout=60.0)
        assert job["state"] == "timed-out"
        assert job["budget"] == {"wall_seconds": 0.2}


class TestBackpressure:
    def test_full_queue_rejects_with_retriable_backpressure(self, daemon_factory):
        daemon = daemon_factory(workers=1, max_queue_depth=1)
        client = ServiceClient(daemon.socket_path)
        blocker = client.submit("solve", _solve_config(decomposition_bits=10))
        _wait_for_progress(client, blocker["job_id"])  # occupies the worker
        queued = client.submit("estimate", _estimate_config(seed=21))
        with pytest.raises(ServiceError) as excinfo:
            client.submit("estimate", _estimate_config(seed=22))
        assert excinfo.value.code == "backpressure"
        assert excinfo.value.retriable is True
        # Queued work was not lost.
        assert client.status(queued["job_id"])["state"] == "queued"
        for job_id in (blocker["job_id"], queued["job_id"]):
            assert client.wait(job_id, timeout=120.0)["state"] == "done"

    def test_client_submit_retries_through_backpressure(self, daemon_factory):
        daemon = daemon_factory(workers=1, max_queue_depth=1)
        client = ServiceClient(
            daemon.socket_path, backoff_base=0.05, backoff_cap=0.5
        )
        blocker = client.submit("solve", _solve_config(decomposition_bits=8))
        client.submit("estimate", _estimate_config(seed=31))  # fills the queue
        # Retries with jittered backoff until the queue drains, then lands.
        outcome = client.submit(
            "estimate", _estimate_config(seed=32), retries=100
        )
        assert client.wait(outcome["job_id"], timeout=120.0)["state"] == "done"
        assert client.wait(blocker["job_id"], timeout=120.0)["state"] == "done"

    def test_error_codes_round_trip_the_socket(self, daemon_factory):
        daemon = daemon_factory(workers=1, max_active_per_tenant=1)
        client = ServiceClient(daemon.socket_path)
        client.submit("solve", _solve_config(), tenant="carol")
        with pytest.raises(ServiceError) as excinfo:
            client.submit("estimate", _estimate_config(seed=41), tenant="carol")
        assert excinfo.value.code == "quota"
        assert excinfo.value.retriable is False
        with pytest.raises(ServiceError) as excinfo:
            client.submit("transmogrify", _estimate_config())
        assert excinfo.value.code == "bad-request"
