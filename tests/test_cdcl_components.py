"""Unit tests for the CDCL solver's building blocks: Luby sequence, activity heap, clauses."""

from __future__ import annotations

import pytest

from repro.sat.cdcl.clause import WatchedClause
from repro.sat.cdcl.heap import ActivityHeap
from repro.sat.cdcl.luby import luby, luby_sequence


class TestLuby:
    def test_known_prefix(self):
        expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]
        assert luby_sequence(15) == expected

    def test_values_are_powers_of_two(self):
        for i in range(1, 200):
            value = luby(i)
            assert value & (value - 1) == 0

    def test_positions_of_large_values(self):
        # The value 2^k first appears at index 2^(k+1) - 1.
        for k in range(6):
            assert luby((1 << (k + 1)) - 1) == 1 << k

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            luby(0)


class TestActivityHeap:
    def _make(self, activities):
        activity = [0.0] + list(activities)
        heap = ActivityHeap(activity)
        for var in range(1, len(activities) + 1):
            heap.push(var)
        return heap, activity

    def test_pop_returns_highest_activity(self):
        heap, _ = self._make([1.0, 5.0, 3.0])
        assert heap.pop() == 2

    def test_tie_break_by_index(self):
        heap, _ = self._make([2.0, 2.0, 2.0])
        assert heap.pop() == 1

    def test_push_is_idempotent(self):
        heap, _ = self._make([1.0, 2.0])
        heap.push(1)
        assert len(heap) == 2

    def test_pop_empties_heap(self):
        heap, _ = self._make([1.0, 2.0, 3.0])
        popped = [heap.pop() for _ in range(3)]
        assert sorted(popped) == [1, 2, 3]
        assert heap.is_empty()

    def test_pop_empty_raises(self):
        heap, _ = self._make([])
        with pytest.raises(IndexError):
            heap.pop()

    def test_update_after_bump(self):
        heap, activity = self._make([1.0, 2.0, 3.0])
        activity[1] = 10.0
        heap.update(1)
        assert heap.pop() == 1

    def test_membership(self):
        heap, _ = self._make([1.0, 2.0])
        assert 1 in heap
        heap.pop()
        heap.pop()
        assert 1 not in heap

    def test_rebuild(self):
        heap, activity = self._make([1.0, 2.0, 3.0])
        heap.pop()
        activity[1] = 99.0
        heap.rebuild([1, 2, 3])
        assert heap.pop() == 1

    def test_heap_order_is_total(self):
        heap, _ = self._make([5.0, 1.0, 4.0, 2.0, 3.0])
        order = [heap.pop() for _ in range(5)]
        assert order == [1, 3, 5, 4, 2]


class TestWatchedClause:
    def test_len_and_iter(self):
        clause = WatchedClause([1, -2, 3])
        assert len(clause) == 3
        assert list(clause) == [1, -2, 3]

    def test_defaults(self):
        clause = WatchedClause([1, 2])
        assert not clause.learnt
        assert clause.activity == 0.0

    def test_learnt_flag(self):
        assert WatchedClause([1], learnt=True).learnt
