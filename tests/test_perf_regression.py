"""Tests for the perf-regression harness (:mod:`repro.perf`).

The benchmark *numbers* live in ``benchmarks/BENCH_4.json`` and the CI
perf-smoke job; these tests cover the machinery — baseline I/O, the
ratio-based regression gate, and tiny smoke runs of each workload driver so a
refactor of the solver internals that breaks the drivers fails fast here
rather than in CI's timing job.
"""

from __future__ import annotations

import json

import pytest

from repro.api.registry import get_cipher
from repro.perf import (
    BenchProfile,
    compare_to_baseline,
    default_baseline_path,
    estimation_workload,
    format_comparison,
    incremental_solve_workload,
    load_baseline,
    propagation_core_workload,
    write_baseline,
)
from repro.perf.workloads import assumption_vectors
from repro.problems import make_inversion_instance


def _record(**speedups) -> dict:
    return {
        "kind": "propagation-core-bench",
        "schema": 1,
        "workloads": {name: {"speedup": value} for name, value in speedups.items()},
    }


class TestCompareToBaseline:
    def test_no_regressions_when_current_matches(self):
        baseline = _record(a=3.0, b=1.5)
        assert compare_to_baseline(_record(a=3.0, b=1.5), baseline) == []

    def test_improvements_pass(self):
        baseline = _record(a=3.0)
        assert compare_to_baseline(_record(a=4.5), baseline) == []

    def test_drop_beyond_tolerance_regresses(self):
        baseline = _record(a=3.0)
        regressions = compare_to_baseline(_record(a=2.0), baseline, tolerance=0.25)
        assert len(regressions) == 1
        assert "a" in regressions[0]

    def test_drop_within_tolerance_passes(self):
        baseline = _record(a=3.0)
        assert compare_to_baseline(_record(a=2.4), baseline, tolerance=0.25) == []

    def test_missing_workload_regresses_only_when_required(self):
        baseline = _record(a=3.0, b=1.5)
        current = _record(a=3.0)
        assert compare_to_baseline(current, baseline, require_all=True)
        assert compare_to_baseline(current, baseline, require_all=False) == []

    def test_unmeasured_speedup_in_current_run_regresses(self):
        baseline = _record(a=3.0)
        current = {"workloads": {"a": {"speedup": None}}}
        assert compare_to_baseline(current, baseline)

    def test_baseline_without_speedup_is_skipped(self):
        baseline = {"workloads": {"a": {"speedup": None}}}
        assert compare_to_baseline(_record(), baseline) == []

    def test_extra_current_workloads_are_ignored(self):
        baseline = _record(a=3.0)
        assert compare_to_baseline(_record(a=3.0, extra=0.1), baseline) == []

    def test_invalid_tolerance_raises(self):
        with pytest.raises(ValueError):
            compare_to_baseline(_record(), _record(), tolerance=1.5)

    def test_format_comparison_lists_every_baseline_workload(self):
        text = format_comparison(_record(a=3.1), _record(a=3.0, b=1.5))
        assert "x3.00" in text and "x3.10" in text and "b" in text


class TestBaselineIO:
    def test_round_trip(self, tmp_path):
        record = _record(a=3.0)
        path = write_baseline(record, tmp_path / "BENCH_4.json")
        assert load_baseline(path)["workloads"]["a"]["speedup"] == 3.0

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"kind": "something-else", "schema": 1}))
        with pytest.raises(ValueError, match="not a propagation-core"):
            load_baseline(path)

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps({"kind": "propagation-core-bench", "schema": 99, "workloads": {}})
        )
        with pytest.raises(ValueError, match="schema"):
            load_baseline(path)

    def test_missing_workloads_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"kind": "propagation-core-bench", "schema": 1}))
        with pytest.raises(ValueError, match="workloads"):
            load_baseline(path)

    def test_committed_baseline_exists_and_loads(self):
        path = default_baseline_path()
        assert path.exists(), "benchmarks/BENCH_4.json must be committed"
        document = load_baseline(path)
        # The PR's acceptance numbers: >= 3x propagation throughput on the
        # A5/1 microbenchmark, >= 1.5x end-to-end estimation speedup.
        assert document["workloads"]["propagation-core/a51-tiny-d8"]["speedup"] >= 3.0
        assert document["workloads"]["estimation/a51-tiny-d8"]["speedup"] >= 1.5


class TestWorkloadDrivers:
    """Tiny smoke runs: the drivers must keep working against solver internals."""

    @pytest.fixture(scope="class")
    def instance(self):
        return make_inversion_instance(get_cipher("geffe-tiny")(), seed=1)

    def test_assumption_vectors_are_deterministic(self, instance):
        first = assumption_vectors(list(instance.start_set), 4, 10, seed=5)
        second = assumption_vectors(list(instance.start_set), 4, 10, seed=5)
        assert first == second
        assert len(first) == 10
        assert all(len(vector) == 4 for vector in first)

    def test_propagation_core_workload_smoke(self, instance):
        vectors = assumption_vectors(list(instance.start_set), 4, 8, seed=5)
        workload = propagation_core_workload(instance.cnf, vectors, rounds=1)
        assert workload["metric"] == "propagations_per_sec"
        assert workload["arena"]["propagations_per_sec"] > 0
        assert workload["legacy"]["propagations_per_sec"] > 0
        assert workload["speedup"] is not None and workload["speedup"] > 0
        # Identical inputs -> near-identical propagation closures (counts
        # differ only on conflicting vectors, where the visit order decides
        # how many literals were dequeued before the conflict surfaced).
        arena_props = workload["arena"]["propagations"]
        legacy_props = workload["legacy"]["propagations"]
        assert abs(arena_props - legacy_props) <= max(8, 0.1 * legacy_props)

    def test_incremental_solve_workload_smoke(self, instance):
        vectors = assumption_vectors(list(instance.start_set), 4, 6, seed=5)
        workload = incremental_solve_workload(instance.cnf, vectors, rounds=1)
        assert workload["metric"] == "solves_per_sec"
        assert workload["arena"]["solves_per_sec"] > 0
        assert workload["speedup"] > 0

    def test_estimation_workload_smoke(self, instance):
        workload = estimation_workload(
            instance.cnf, list(instance.start_set[:4]), sample_size=5, seed=1, rounds=1
        )
        assert workload["metric"] == "wall_time"
        assert workload["arena"]["wall_time"] > 0
        assert workload["legacy"]["wall_time"] > 0
        assert workload["speedup"] > 0

    def test_profiles_are_consistent(self):
        full = BenchProfile.full()
        smoke = BenchProfile.smoke()
        assert full.name == "full" and smoke.name == "smoke"
        assert smoke.propagation_vectors < full.propagation_vectors
        # See BenchProfile.smoke: the estimation sample size must match the
        # full profile or the gate's estimation ratios are not comparable.
        assert smoke.estimation_samples == full.estimation_samples


class TestPreprocessingSuiteBaselines:
    """PR 5: the preprocessing suite shares the ratio-gate machinery."""

    def test_suite_kinds_are_registered(self):
        from repro.perf import SUITES

        assert SUITES["propagation"][0] == "propagation-core-bench"
        assert SUITES["preprocessing"][0] == "preprocessing-bench"

    def test_load_baseline_validates_the_suite_kind(self, tmp_path):
        path = tmp_path / "BENCH_5.json"
        path.write_text(json.dumps({"kind": "preprocessing-bench", "schema": 1,
                                    "workloads": {}}))
        assert load_baseline(path, suite="preprocessing")["workloads"] == {}
        with pytest.raises(ValueError, match="not a propagation-core-bench"):
            load_baseline(path)
        other = tmp_path / "BENCH_4.json"
        other.write_text(json.dumps({"kind": "propagation-core-bench", "schema": 1,
                                     "workloads": {}}))
        with pytest.raises(ValueError, match="not a preprocessing-bench"):
            load_baseline(other, suite="preprocessing")

    def test_committed_bench5_exists_and_carries_the_acceptance_numbers(self):
        path = default_baseline_path("preprocessing")
        assert path.exists(), "benchmarks/BENCH_5.json must be committed"
        document = load_baseline(path, suite="preprocessing")
        fresh = document["workloads"]["preprocessing-estimation-fresh/bivium-tiny-d10"]
        # The PR's acceptance number: >= 1.3x end-to-end estimation speedup
        # (simplified vs raw, preprocessing time included) on bivium-tiny.
        assert fresh["speedup"] >= 1.3
        assert fresh["statuses_agree"] is True

    def test_preprocessing_workload_driver_smoke(self):
        from repro.perf import preprocessing_estimation_workload
        from repro.sat.random_cnf import planted_ksat

        cnf, _ = planted_ksat(16, 55, seed=9)
        record = preprocessing_estimation_workload(
            cnf, frozenset([1, 2, 3, 4]), [(1, 2, 3, 4)], 10, rounds=1
        )
        assert record["statuses_agree"] is True
        assert record["speedup"] is not None and record["speedup"] > 0
        assert record["reduction"]["clauses_before"] == cnf.num_clauses

    def test_family_differential_driver_smoke(self):
        from repro.perf import preprocessing_family_differential
        from repro.sat.random_cnf import planted_ksat

        cnf, _ = planted_ksat(14, 46, seed=2)
        record = preprocessing_family_differential(cnf, frozenset([1, 2]), [1, 2])
        assert record["answers_identical"] is True
        assert record["models_verified"] is True
        assert record["num_subproblems"] == 4

    def test_disabled_differential_driver_smoke(self):
        from repro.perf import preprocessing_disabled_differential
        from repro.sat.random_cnf import planted_ksat

        cnf, _ = planted_ksat(14, 46, seed=2)
        assert preprocessing_disabled_differential(
            cnf, frozenset(range(1, 7)), [1, 2, 3], sample_size=8
        ) is True

    def test_differential_failures_flags_broken_evidence(self):
        from repro.perf import differential_failures

        clean = {
            "workloads": {"w": {"speedup": 1.4, "statuses_agree": True}},
            "differential": {
                "family/x": {"answers_identical": True, "models_verified": True},
                "xi-off": True,
            },
        }
        assert differential_failures(clean) == []
        broken = {
            "workloads": {"w": {"speedup": 9.9, "statuses_agree": False}},
            "differential": {
                "family/x": {"answers_identical": False, "models_verified": True},
                "xi-off": False,
            },
        }
        failures = differential_failures(broken)
        assert len(failures) == 3
        # BENCH_4-shaped records (no differential evidence) produce nothing.
        assert differential_failures({"workloads": {"w": {"speedup": 3.0}}}) == []
