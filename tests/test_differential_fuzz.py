"""Differential fuzzing of the solver stack on seeded random CNFs.

Roughly 200 random instances around (and off) the 3-SAT phase transition are
solved three ways — fresh CDCL, reference DPLL, and the incremental CDCL
``load()`` + ``solve(assumptions=...)`` path — and the answers must agree
exactly.  Every claimed model is additionally checked against the formula, so
a solver cannot "win" the agreement by being wrong in the same direction.

Since PR 4 the default ``CDCLSolver`` is the flat-array arena engine and the
pre-arena implementation survives as ``LegacyCDCLSolver``; the
``TestArenaVsLegacyEngines`` class runs both engines over the same corpus
(one-shot and under incremental assumption sequences) and requires
bit-identical SAT/UNSAT verdicts.

PR 10 adds the ``TestSharingPortfolio`` lane: the deterministic clause-sharing
portfolio (:mod:`repro.portfolio.sharing`) runs over the same 200+ instance
corpus with aggressively small slices — forcing many exchange rounds even on
tiny formulas — and must agree with fresh CDCL, reference DPLL and the
isolated (non-sharing) sliced portfolio everywhere, with and without
inprocessing.  On top of answer agreement, every clause that crossed the
exchange bus is independently checked *redundant*: solving the original
formula under the clause's negated literals must come back UNSAT, which is
exactly the "implied by the input formula" soundness contract of
:meth:`~repro.sat.cdcl.CDCLSolver.import_clauses`.
"""

from __future__ import annotations

import random

import pytest

from repro.portfolio import (
    PortfolioSolver,
    SharingPolicy,
    SharingPortfolioSolver,
    default_portfolio,
)
from repro.sat.cdcl import CDCLSolver, LegacyCDCLSolver
from repro.sat.dpll import DPLLSolver
from repro.sat.formula import CNF
from repro.sat.random_cnf import planted_ksat, random_ksat, random_unsat_core
from repro.sat.solver import SolverStatus, check_model

#: (num_vars, clause ratio) grid × seeds: 3 shapes × 60 seeds = 180 uniform
#: instances, plus 10 planted-SAT and 10 constructed-UNSAT ones below.
UNIFORM_GRID = [(8, 3.0), (10, 4.3), (12, 5.2)]
SEEDS_PER_SHAPE = 60


def _uniform_instances():
    for num_vars, ratio in UNIFORM_GRID:
        for seed in range(SEEDS_PER_SHAPE):
            yield random_ksat(num_vars, round(ratio * num_vars), k=3, seed=seed * 7 + num_vars)


def _assert_agreement(cnf: CNF, assumptions: list[int], results) -> None:
    statuses = {name: result.status for name, result in results.items()}
    assert len(set(statuses.values())) == 1, f"solvers disagree: {statuses}"
    for name, result in results.items():
        if result.status is SolverStatus.SAT:
            assert result.model is not None, f"{name} reported SAT without a model"
            assert check_model(cnf, result.model), f"{name} returned a falsifying model"
            for literal in assumptions:
                assert result.model[abs(literal)] == (literal > 0), (
                    f"{name} violated assumption {literal}"
                )


class TestUniformRandomAgreement:
    def test_cdcl_dpll_and_incremental_agree_on_180_instances(self):
        sat = unsat = 0
        for cnf in _uniform_instances():
            incremental = CDCLSolver().load(cnf)
            results = {
                "cdcl": CDCLSolver().solve(cnf),
                "dpll": DPLLSolver().solve(cnf),
                "incremental": incremental.solve(),
            }
            _assert_agreement(cnf, [], results)
            if results["cdcl"].status is SolverStatus.SAT:
                sat += 1
            else:
                unsat += 1
        # The grid straddles the phase transition, so both outcomes must occur.
        assert sat > 20 and unsat > 20

    def test_agreement_under_random_assumptions(self):
        # One shared incremental solver per shape: learned clauses accumulate
        # across unrelated assumption vectors and must never flip an answer.
        for num_vars, ratio in UNIFORM_GRID:
            for seed in range(20):
                cnf = random_ksat(num_vars, round(ratio * num_vars), k=3, seed=900 + seed)
                rng = random.Random(seed)
                variables = rng.sample(range(1, num_vars + 1), 2)
                assumptions = [v if rng.random() < 0.5 else -v for v in variables]
                incremental = CDCLSolver().load(cnf)
                results = {
                    "cdcl": CDCLSolver().solve(cnf, assumptions=assumptions),
                    "dpll": DPLLSolver().solve(cnf, assumptions=assumptions),
                    "incremental": incremental.solve(assumptions=assumptions),
                }
                _assert_agreement(cnf, assumptions, results)
                # A second incremental call on the same solver must agree with
                # a fresh solve as well (learned-clause soundness).
                flipped = [-lit for lit in assumptions]
                followup = {
                    "cdcl": CDCLSolver().solve(cnf, assumptions=flipped),
                    "incremental": incremental.solve(assumptions=flipped),
                }
                _assert_agreement(cnf, flipped, followup)


class TestConstructedInstances:
    def test_planted_instances_are_found_satisfiable(self):
        for seed in range(10):
            cnf, _planted = planted_ksat(10, 38, k=3, seed=seed)
            results = {
                "cdcl": CDCLSolver().solve(cnf),
                "dpll": DPLLSolver().solve(cnf),
                "incremental": CDCLSolver().load(cnf).solve(),
            }
            for name, result in results.items():
                assert result.status is SolverStatus.SAT, f"{name} missed planted model"
            _assert_agreement(cnf, [], results)

    def test_constructed_unsat_chains_are_refuted(self):
        for seed in range(10):
            cnf = random_unsat_core(6 + seed, seed=seed)
            results = {
                "cdcl": CDCLSolver().solve(cnf),
                "dpll": DPLLSolver().solve(cnf),
                "incremental": CDCLSolver().load(cnf).solve(),
            }
            for name, result in results.items():
                assert result.status is SolverStatus.UNSAT, f"{name} missed UNSAT"


class TestFuzzCorpusSize:
    def test_corpus_reaches_two_hundred_instances(self):
        uniform = len(UNIFORM_GRID) * SEEDS_PER_SHAPE
        assumption_runs = len(UNIFORM_GRID) * 20
        constructed = 10 + 10
        assert uniform + assumption_runs + constructed >= 200


class TestArenaVsLegacyEngines:
    """The arena rewrite must agree verdict-for-verdict with the old engine."""

    def test_engines_agree_on_the_uniform_corpus(self):
        decided = 0
        for cnf in _uniform_instances():
            results = {
                "arena": CDCLSolver().solve(cnf),
                "legacy": LegacyCDCLSolver().solve(cnf),
                "arena-incremental": CDCLSolver().load(cnf).solve(),
            }
            _assert_agreement(cnf, [], results)
            decided += 1
        assert decided == len(UNIFORM_GRID) * SEEDS_PER_SHAPE

    def test_engines_agree_under_incremental_assumption_sequences(self):
        # One persistent solver of each engine per instance: learned clauses
        # accumulate independently in two different clause databases and must
        # never make the engines disagree on any assumption vector.
        for num_vars, ratio in UNIFORM_GRID:
            for seed in range(10):
                cnf = random_ksat(num_vars, round(ratio * num_vars), k=3, seed=2500 + seed)
                arena = CDCLSolver().load(cnf)
                legacy = LegacyCDCLSolver().load(cnf)
                rng = random.Random(4000 + seed)
                for _ in range(6):
                    variables = rng.sample(range(1, num_vars + 1), rng.randint(0, 3))
                    assumptions = [v if rng.random() < 0.5 else -v for v in variables]
                    results = {
                        "arena": arena.solve(assumptions=assumptions),
                        "legacy": legacy.solve(assumptions=assumptions),
                    }
                    _assert_agreement(cnf, assumptions, results)

    def test_engines_agree_on_constructed_instances(self):
        for seed in range(10):
            cnf, _planted = planted_ksat(10, 38, k=3, seed=seed)
            assert CDCLSolver().solve(cnf).status is SolverStatus.SAT
            assert LegacyCDCLSolver().solve(cnf).status is SolverStatus.SAT
            core = random_unsat_core(6 + seed, seed=seed)
            assert CDCLSolver().solve(core).status is SolverStatus.UNSAT
            assert LegacyCDCLSolver().solve(core).status is SolverStatus.UNSAT

    def test_engines_agree_off_the_ternary_fast_path(self):
        # 4-SAT instances route through the arena engine's long-clause
        # (blocker-literal) path, which the ternary fast drain skips.
        for seed in range(12):
            cnf = random_ksat(14, 130, k=4, seed=seed)
            results = {
                "arena": CDCLSolver().solve(cnf),
                "legacy": LegacyCDCLSolver().solve(cnf),
            }
            _assert_agreement(cnf, [], results)

    def test_engine_propagation_counts_agree_on_conflict_free_closures(self):
        # Unit propagation is confluent: on a conflict-free assumption vector
        # both engines must assign the exact same closure, so their isolated
        # propagation counters agree *exactly* even though visit order
        # differs.  Vectors drawn from a model of the formula can never
        # conflict, which makes exact equality assertable.
        from repro.perf.workloads import _propagation_round

        cnf = random_ksat(30, 100, k=3, seed=9)  # under-constrained: SAT
        model = CDCLSolver().solve(cnf).model
        assert model is not None
        rng = random.Random(17)
        vectors = []
        for _ in range(25):
            variables = rng.sample(range(1, 31), rng.randint(1, 6))
            vectors.append([v if model[v] else -v for v in variables])
        arena_props, _ = _propagation_round("arena", cnf, vectors)
        legacy_props, _ = _propagation_round("legacy", cnf, vectors)
        assert arena_props == legacy_props
        assert arena_props > 0


class TestTraceStatsParity:
    """PR 6: event traces must agree exactly with each engine's own counters.

    A trace is only useful evidence if it cannot drift from the statistics the
    rest of the system reports, so for a slice of the fuzz corpus both engines
    are solved with tracing attached and the per-event totals are checked
    against ``result.stats`` — propagations (ENQUEUE), decisions, conflicts,
    restarts and non-unit learnt clauses — for the same engine.  The counters
    are also compared *across* engines where confluence makes that sound
    (nothing beyond verdicts is guaranteed to match under conflicts, so the
    cross-engine check stays on the conflict-free propagation counts already
    pinned above).
    """

    @staticmethod
    def _solve_traced(engine_cls, cnf):
        import io

        from repro.trace.format import TraceWriter, read_trace

        buffer = io.BytesIO()
        writer = TraceWriter(buffer)
        result = engine_cls().solve(cnf, trace=writer)
        writer.close()
        _, events = read_trace(io.BytesIO(buffer.getvalue()))
        return result, events

    def test_trace_event_counts_equal_stats_for_both_engines(self):
        corpus = list(_uniform_instances())[::9]  # every 9th: 20 instances
        assert len(corpus) >= 20
        for cnf in corpus:
            for name, engine_cls in (("arena", CDCLSolver), ("legacy", LegacyCDCLSolver)):
                result, events = self._solve_traced(engine_cls, cnf)
                counts: dict[str, int] = {}
                learned = 0
                for event in events:
                    counts[event.name] = counts.get(event.name, 0) + 1
                    if event.name == "LEARN" and event.args[1] > 1:
                        learned += 1
                stats = result.stats
                expected = {
                    "ENQUEUE": stats.propagations,
                    "DECIDE": stats.decisions,
                    "CONFLICT": stats.conflicts,
                    "RESTART": stats.restarts,
                }
                for event_name, counter in expected.items():
                    assert counts.get(event_name, 0) == counter, (
                        f"{name}: {event_name} events disagree with stats on {cnf}"
                    )
                assert learned == stats.learned_clauses, name

    def test_batched_trace_event_counts_equal_scalar_stats(self):
        # PR 7: the lockstep fast path synthesises its trace events after the
        # word-parallel propagation, so the per-row ENQUEUE/DECIDE/CONFLICT
        # totals must still equal both the batch result's own counters and the
        # counters of a genuine scalar solve of the same row.
        import io

        from repro.trace.format import TraceWriter, read_trace

        rng = random.Random(4242)
        for index, cnf in enumerate(list(_uniform_instances())[::11]):
            rows = []
            for _ in range(7):
                variables = rng.sample(range(1, cnf.num_vars + 1), rng.randint(0, 5))
                rows.append(tuple(v if rng.random() < 0.5 else -v for v in variables))
            buffer = io.BytesIO()
            writer = TraceWriter(buffer)
            results = CDCLSolver().load(cnf).solve_batch(rows, trace=writer)
            writer.close()
            _, events = read_trace(io.BytesIO(buffer.getvalue()))
            counts: dict[str, int] = {}
            for event in events:
                counts[event.name] = counts.get(event.name, 0) + 1
            scalar_solver = CDCLSolver()
            scalar_totals = {"ENQUEUE": 0, "DECIDE": 0, "CONFLICT": 0}
            batch_totals = dict(scalar_totals)
            for row, batch_result in zip(rows, results):
                scalar_stats = scalar_solver.solve(cnf, assumptions=list(row)).stats
                scalar_totals["ENQUEUE"] += scalar_stats.propagations
                scalar_totals["DECIDE"] += scalar_stats.decisions
                scalar_totals["CONFLICT"] += scalar_stats.conflicts
                batch_totals["ENQUEUE"] += batch_result.stats.propagations
                batch_totals["DECIDE"] += batch_result.stats.decisions
                batch_totals["CONFLICT"] += batch_result.stats.conflicts
            assert batch_totals == scalar_totals, (index, rows)
            for event_name, total in scalar_totals.items():
                assert counts.get(event_name, 0) == total, (index, event_name)

    def test_batched_estimate_traces_are_byte_identical_across_runs(self, tmp_path):
        # The trace-diff lane from PR 6 extends to batched runs: two
        # identically-seeded record_estimate(batch_size=7) recordings must be
        # byte-identical, and diff_traces must say so.
        from repro.trace.diff import diff_traces
        from repro.trace.record import record_estimate

        cnf = random_ksat(12, 52, k=3, seed=23)
        paths = [tmp_path / "a.trace", tmp_path / "b.trace"]
        for path in paths:
            with open(path, "wb") as handle:
                record_estimate(
                    cnf, [1, 2, 3, 4, 5], handle,
                    sample_size=30, seed=9, batch_size=7,
                )
        assert paths[0].read_bytes() == paths[1].read_bytes()
        diff = diff_traces(paths[0], paths[1])
        assert diff.identical


class TestBatchedVsScalar:
    """PR 7: ``solve_batch`` must be bit-identical to the scalar fresh loop.

    For 200+ seeded (CNF, assumption-row) pairs — the uniform grid at and off
    the phase transition, 4-SAT instances that exercise the long-clause
    occurrence path, planted-SAT and constructed-UNSAT formulas — the batch
    engine is run at batch sizes 1, 7 and 64 and every reported bit is pinned
    to a fresh scalar ``solve(cnf, assumptions=row)``: statuses, verified
    models, propagation/decision/conflict counters, and the estimator
    statistics folded from the per-row costs.
    """

    BATCH_SIZES = (1, 7, 64)

    @staticmethod
    def _rows_for(cnf: CNF, seed: int, count: int) -> list[tuple[int, ...]]:
        rng = random.Random(seed)
        rows = []
        for _ in range(count):
            width = rng.randint(0, min(6, cnf.num_vars))
            variables = rng.sample(range(1, cnf.num_vars + 1), width)
            rows.append(tuple(v if rng.random() < 0.5 else -v for v in variables))
        return rows

    @classmethod
    def _assert_batch_matches_scalar(cls, cnf: CNF, rows, batch_size: int) -> int:
        from repro.stats.montecarlo import OnlineStatistics

        solver = CDCLSolver().load(cnf)
        batched = []
        for begin in range(0, len(rows), batch_size):
            batched.extend(solver.solve_batch(rows[begin : begin + batch_size]))
        scalar_solver = CDCLSolver()
        batch_fold = OnlineStatistics()
        scalar_fold = OnlineStatistics()
        for row, batch_result in zip(rows, batched):
            scalar_result = scalar_solver.solve(cnf, assumptions=list(row))
            assert batch_result.status is scalar_result.status, (cnf, row)
            bs, ss = batch_result.stats, scalar_result.stats
            assert bs.propagations == ss.propagations, (cnf, row)
            assert bs.decisions == ss.decisions, (cnf, row)
            assert bs.conflicts == ss.conflicts, (cnf, row)
            assert bs.max_decision_level == ss.max_decision_level, (cnf, row)
            if batch_result.status is SolverStatus.SAT:
                assert check_model(cnf, batch_result.model), (cnf, row)
                for literal in row:
                    assert batch_result.model[abs(literal)] == (literal > 0)
            batch_fold.add(float(bs.propagations))
            scalar_fold.add(float(ss.propagations))
        assert batch_fold.mean == scalar_fold.mean
        assert batch_fold.estimate().half_width == scalar_fold.estimate().half_width
        return len(rows)

    def test_uniform_corpus_bit_identical_at_batch_sizes_1_and_7(self):
        checked = 0
        for index, cnf in enumerate(_uniform_instances()):
            if index % 2:
                continue  # 90 instances: every other one of the uniform grid
            rows = self._rows_for(cnf, seed=3100 + index, count=4)
            for batch_size in (1, 7):
                self._assert_batch_matches_scalar(cnf, rows, batch_size)
            checked += len(rows)
        assert checked >= 200

    def test_batch_64_and_long_clause_instances(self):
        # 4-SAT formulas route propagation through the long-clause occurrence
        # lists (the prefix/suffix AND-product path the ternary corpus never
        # touches); 70 rows per instance force multi-word 64-chunking too.
        for seed in range(4):
            cnf = random_ksat(14, 130, k=4, seed=seed)
            rows = self._rows_for(cnf, seed=5200 + seed, count=70)
            self._assert_batch_matches_scalar(cnf, rows, 64)
        cnf = random_ksat(12, 62, k=3, seed=31)
        rows = self._rows_for(cnf, seed=5300, count=70)
        self._assert_batch_matches_scalar(cnf, rows, 64)

    def test_planted_and_constructed_instances(self):
        for seed in range(6):
            cnf, _planted = planted_ksat(10, 38, k=3, seed=seed)
            rows = self._rows_for(cnf, seed=6100 + seed, count=6)
            self._assert_batch_matches_scalar(cnf, rows, 7)
        for seed in range(6):
            cnf = random_unsat_core(6 + seed, seed=seed)
            rows = self._rows_for(cnf, seed=6200 + seed, count=6)
            self._assert_batch_matches_scalar(cnf, rows, 7)

    def test_duplicate_and_contradictory_rows(self):
        # Duplicates within a batch, duplicate literals within a row, and
        # directly contradictory rows must all mirror the scalar placement
        # protocol (empty levels for repeats, placement-UNSAT for x & -x).
        cnf = random_ksat(10, 42, k=3, seed=77)
        rows = [(1, 1, 2), (1, -1), (2, 3), (2, 3), (), (-2, -3, -2)]
        for batch_size in self.BATCH_SIZES:
            self._assert_batch_matches_scalar(cnf, rows, batch_size)

    def test_lockstep_off_matches_lockstep_on(self):
        # config.batch_lockstep=False routes every row through the scalar
        # fallback — the A/B lever that isolates the lockstep engine.
        from repro.sat.cdcl.config import CDCLConfig

        cnf = random_ksat(12, 52, k=3, seed=13)
        rows = self._rows_for(cnf, seed=7100, count=20)
        on = CDCLSolver().load(cnf).solve_batch(rows)
        off_solver = CDCLSolver(CDCLConfig(batch_lockstep=False))
        off = off_solver.load(cnf).solve_batch(rows)
        for row, a, b in zip(rows, on, off):
            assert a.status is b.status, row
            assert a.stats.propagations == b.stats.propagations, row
            assert a.stats.decisions == b.stats.decisions, row
            assert a.stats.conflicts == b.stats.conflicts, row
            assert a.model == b.model, row

    def test_folded_estimator_statistics_identical_through_the_scheduler(self):
        from repro.runner.estimation import estimate_family_scheduled

        cnf = random_ksat(12, 52, k=3, seed=19)
        variables = [1, 2, 3, 4, 5, 6]
        scalar = estimate_family_scheduled(
            cnf, variables, sample_size=40, seed=5, batch_size=1
        )
        for batch_size in (7, 64):
            batched = estimate_family_scheduled(
                cnf, variables, sample_size=40, seed=5, batch_size=batch_size
            )
            assert batched.costs == scalar.costs
            assert batched.statuses == scalar.statuses
            assert batched.statistics.mean == scalar.statistics.mean
            assert (
                batched.statistics.estimate().half_width
                == scalar.statistics.estimate().half_width
            )


@pytest.mark.parametrize("seed", range(5))
def test_incremental_statuses_stable_across_call_order(seed):
    """Permuting the assumption vectors must not change any decided status."""
    cnf = random_ksat(10, 42, k=3, seed=1000 + seed)
    vectors = [[1], [-1], [2, 3], [-2, -3], []]
    forward = CDCLSolver().load(cnf)
    backward = CDCLSolver().load(cnf)
    first = [forward.solve(assumptions=v).status for v in vectors]
    second = list(
        reversed([backward.solve(assumptions=v).status for v in reversed(vectors)])
    )
    assert first == second


class TestPreprocessorDifferential:
    """PR 5: the preprocessing subsystem against the whole solver stack.

    Every instance of the seeded corpus (200+ CNFs: the uniform grid, the
    planted-SAT set and the constructed-UNSAT set) is preprocessed — with a
    couple of frozen variables, as the incremental contract prescribes — and
    the simplified formula is solved by fresh CDCL, the legacy engine and
    DPLL.  All three must agree with the raw formula's verdict, and every
    model of the simplified formula must, after reconstruction, satisfy the
    *original* formula.  A separate pass drives incremental assumption
    sequences through ``CDCLConfig.simplify`` and requires bit-identical
    statuses with the plain incremental engine.
    """

    @staticmethod
    def _preprocess(cnf: CNF, frozen):
        from repro.sat.simplify import Preprocessor

        return Preprocessor(max_growth=2, max_occurrences=30).preprocess(
            cnf, frozen=frozen
        )

    @classmethod
    def _check_instance(cls, cnf: CNF, frozen=()):
        raw = CDCLSolver().solve(cnf)
        presolve = cls._preprocess(cnf, frozen)
        if presolve.unsat:
            assert raw.status is SolverStatus.UNSAT
            return raw.status
        simplified = presolve.cnf
        results = {
            "cdcl": CDCLSolver().solve(simplified),
            "legacy": LegacyCDCLSolver().solve(simplified),
            "dpll": DPLLSolver().solve(simplified),
        }
        for name, result in results.items():
            assert result.status is raw.status, (
                f"{name} on the simplified formula disagrees with the raw verdict"
            )
            if result.status is SolverStatus.SAT:
                model = presolve.reconstruct(result.model)
                full = {v: model.get(v, False) for v in range(1, cnf.num_vars + 1)}
                assert check_model(cnf, full), (
                    f"{name}'s reconstructed model falsifies the original formula"
                )
        return raw.status

    def test_simplified_corpus_agreement_uniform_grid(self):
        sat = unsat = 0
        for index, cnf in enumerate(_uniform_instances()):
            frozen = [1 + index % cnf.num_vars]
            status = self._check_instance(cnf, frozen)
            if status is SolverStatus.SAT:
                sat += 1
            else:
                unsat += 1
        assert sat > 20 and unsat > 20

    def test_simplified_planted_and_constructed_instances(self):
        for seed in range(10):
            cnf, _planted = planted_ksat(10, 38, k=3, seed=seed)
            assert self._check_instance(cnf, [1, 2]) is SolverStatus.SAT
        for seed in range(10):
            cnf = random_unsat_core(6 + seed, seed=seed)
            assert self._check_instance(cnf) is SolverStatus.UNSAT

    def test_incremental_assumption_sequences_with_frozen_variables(self):
        from repro.sat.cdcl.config import CDCLConfig

        for num_vars, ratio in UNIFORM_GRID:
            for seed in range(10):
                cnf = random_ksat(num_vars, round(ratio * num_vars), k=3, seed=1700 + seed)
                rng = random.Random(seed)
                frozen = sorted(rng.sample(range(1, num_vars + 1), 4))
                plain = CDCLSolver().load(cnf)
                simplifying = CDCLSolver(CDCLConfig(simplify=True)).load(cnf, frozen=frozen)
                for _ in range(4):
                    chosen = rng.sample(frozen, rng.randint(1, 3))
                    assumptions = [v if rng.random() < 0.5 else -v for v in chosen]
                    expected = plain.solve(assumptions=assumptions)
                    got = simplifying.solve(assumptions=assumptions)
                    assert got.status is expected.status, (cnf, assumptions)
                    if got.status is SolverStatus.SAT:
                        assert check_model(cnf, got.model)
                        for literal in assumptions:
                            assert got.model[abs(literal)] == (literal > 0)

    def test_corpus_size_including_preprocessing_runs(self):
        uniform = len(UNIFORM_GRID) * SEEDS_PER_SHAPE
        constructed = 10 + 10
        incremental_sequences = len(UNIFORM_GRID) * 10
        assert uniform + constructed + incremental_sequences >= 200


# The sharing-fuzz knobs deliberately differ from anything the benchmarks use:
# slices of 8 propagations force multiple exchange rounds even on 8-variable
# formulas, and the tight policy (LBD <= 3, size <= 6, 8 clauses per member
# per round) keeps the bus busy without flooding the tiny databases.
SHARING_FUZZ_KNOBS = dict(
    cost_measure="propagations",
    slice_budget=8,
    max_rounds=64,
    policy=SharingPolicy(max_lbd=3, max_size=6, per_round=8),
    seed=11,
)


def _sharing_solver(**overrides) -> SharingPortfolioSolver:
    knobs = dict(SHARING_FUZZ_KNOBS)
    knobs.update(overrides)
    return SharingPortfolioSolver(default_portfolio()[:3], **knobs)


def _assert_shared_clauses_redundant(cnf: CNF, shared, limit: int = 5) -> None:
    """Solve-under-negation: each bus clause must be implied by ``cnf``."""
    checker = CDCLSolver().load(cnf)
    for clause in shared[:limit]:
        negation = [-literal for literal in clause]
        assert checker.solve(assumptions=negation).status is SolverStatus.UNSAT, (
            f"the exchange carried a clause the formula does not imply: {clause}"
        )


class TestSharingPortfolio:
    """The clause-sharing portfolio differential-fuzz lane (PR 10)."""

    def test_sharing_agrees_with_cdcl_and_dpll_on_180_instances(self):
        total_exported = 0
        for cnf in _uniform_instances():
            sharing = _sharing_solver().solve(cnf)
            results = {
                "sharing": sharing,
                "cdcl": CDCLSolver().solve(cnf),
                "dpll": DPLLSolver().solve(cnf),
            }
            _assert_agreement(cnf, [], results)
            total_exported += sharing.total_exported
        # The tiny slices must actually force clause traffic somewhere in the
        # corpus — otherwise this lane silently degrades to the isolated race.
        assert total_exported > 100

    def test_sharing_agrees_with_the_isolated_portfolio_under_assumptions(self):
        for num_vars, ratio in UNIFORM_GRID:
            for seed in range(10):
                cnf = random_ksat(num_vars, round(ratio * num_vars), k=3, seed=6100 + seed)
                rng = random.Random(7100 + seed)
                variables = rng.sample(range(1, num_vars + 1), 2)
                assumptions = [v if rng.random() < 0.5 else -v for v in variables]
                isolated = PortfolioSolver(
                    default_portfolio()[:3],
                    cost_measure="propagations",
                    slice_budget=8,
                    max_rounds=64,
                )
                isolated_result = isolated.solve(cnf, assumptions=assumptions)
                results = {
                    "sharing": _sharing_solver().solve(cnf, assumptions=assumptions),
                    # PortfolioResult has no model property: check the
                    # winning member's SolveResult, which carries one.
                    "isolated": isolated_result.winner.result,
                    "cdcl": CDCLSolver().solve(cnf, assumptions=assumptions),
                }
                _assert_agreement(cnf, assumptions, results)

    def test_every_shared_clause_is_implied_by_the_formula(self):
        # Every 6th uniform instance: re-derive each bus clause independently
        # by refuting its negation on the original formula.
        checked_clauses = 0
        for index, cnf in enumerate(_uniform_instances()):
            if index % 6:
                continue
            sharing = _sharing_solver().solve(cnf)
            _assert_shared_clauses_redundant(cnf, sharing.shared_clauses)
            checked_clauses += min(len(sharing.shared_clauses), 5)
        assert checked_clauses > 30

    def test_sharing_with_inprocessing_agrees_on_constructed_instances(self):
        # Planted-SAT and constructed-UNSAT instances, with the preprocessor
        # running as inprocessing every 4 rounds mid-race: answers, models and
        # the redundancy of every shared clause must all survive.
        for seed in range(10):
            cnf, _planted = planted_ksat(10, 38, k=3, seed=seed)
            sharing = _sharing_solver(inprocess_every=4).solve(cnf)
            results = {"sharing": sharing, "dpll": DPLLSolver().solve(cnf)}
            assert sharing.status is SolverStatus.SAT
            _assert_agreement(cnf, [], results)
            _assert_shared_clauses_redundant(cnf, sharing.shared_clauses)
        for seed in range(10):
            cnf = random_unsat_core(6 + seed, seed=seed)
            sharing = _sharing_solver(inprocess_every=4).solve(cnf)
            assert sharing.status is SolverStatus.UNSAT
            _assert_shared_clauses_redundant(cnf, sharing.shared_clauses)

    def test_sharing_corpus_reaches_two_hundred_instances(self):
        uniform = len(UNIFORM_GRID) * SEEDS_PER_SHAPE
        assumption_runs = len(UNIFORM_GRID) * 10
        inprocessing_runs = 10 + 10
        assert uniform + assumption_runs + inprocessing_runs >= 200
