"""Tests for the Monte Carlo statistics module."""

from __future__ import annotations

import math
import random

import pytest

from repro.stats.montecarlo import (
    MonteCarloEstimate,
    confidence_interval,
    estimate_mean,
    normal_cdf,
    normal_quantile,
    required_sample_size,
    sample_statistics,
)


class TestNormalDistribution:
    def test_cdf_symmetry(self):
        assert normal_cdf(0.0) == pytest.approx(0.5)
        assert normal_cdf(1.0) + normal_cdf(-1.0) == pytest.approx(1.0)

    def test_cdf_known_value(self):
        assert normal_cdf(1.96) == pytest.approx(0.975, abs=1e-3)

    def test_quantile_inverts_cdf(self):
        for p in (0.01, 0.1, 0.5, 0.9, 0.975, 0.999):
            assert normal_cdf(normal_quantile(p)) == pytest.approx(p, abs=1e-6)

    def test_quantile_known_values(self):
        assert normal_quantile(0.975) == pytest.approx(1.95996, abs=1e-4)
        assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-9)

    def test_quantile_domain(self):
        with pytest.raises(ValueError):
            normal_quantile(0.0)
        with pytest.raises(ValueError):
            normal_quantile(1.0)


class TestSampleStatistics:
    def test_mean_and_variance(self):
        est = sample_statistics([1.0, 2.0, 3.0, 4.0])
        assert est.mean == pytest.approx(2.5)
        assert est.variance == pytest.approx(5.0 / 3.0)

    def test_single_observation(self):
        est = sample_statistics([7.0])
        assert est.mean == 7.0
        assert est.variance == 0.0

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            sample_statistics([])

    def test_estimate_mean_helper(self):
        assert estimate_mean([2.0, 4.0]) == pytest.approx(3.0)

    def test_interval_contains_mean(self):
        low, high = confidence_interval([1.0, 2.0, 3.0, 4.0, 5.0])
        assert low <= 3.0 <= high

    def test_interval_narrows_with_sample_size(self):
        rng = random.Random(0)
        small = sample_statistics([rng.gauss(10, 2) for _ in range(20)])
        large = sample_statistics([rng.gauss(10, 2) for _ in range(2000)])
        assert large.half_width < small.half_width

    def test_constant_sample_has_zero_width(self):
        est = sample_statistics([5.0] * 10)
        assert est.half_width == 0.0
        assert est.relative_error == 0.0

    def test_relative_error_infinite_for_zero_mean(self):
        est = sample_statistics([-1.0, 1.0])
        assert est.relative_error == float("inf")

    def test_std_error(self):
        est = sample_statistics([1.0, 3.0, 5.0, 7.0])
        assert est.std_error == pytest.approx(est.std_dev / 2.0)


class TestScaling:
    def test_scaled_estimate(self):
        est = sample_statistics([1.0, 2.0, 3.0])
        scaled = est.scaled(8.0)
        assert scaled.mean == pytest.approx(est.mean * 8)
        assert scaled.std_dev == pytest.approx(est.std_dev * 8)
        assert scaled.half_width == pytest.approx(est.half_width * 8)

    def test_clt_coverage_on_synthetic_data(self):
        # The 95% interval should contain the true mean in roughly 95% of repetitions.
        rng = random.Random(42)
        true_mean = 5.0
        hits = 0
        repetitions = 200
        for _ in range(repetitions):
            sample = [rng.expovariate(1.0 / true_mean) for _ in range(100)]
            low, high = sample_statistics(sample).interval
            if low <= true_mean <= high:
                hits += 1
        assert hits / repetitions > 0.88


class TestRequiredSampleSize:
    def test_formula(self):
        n = required_sample_size(std_dev=2.0, absolute_error=0.5, confidence_level=0.95)
        expected = math.ceil((1.959964 * 2.0 / 0.5) ** 2)
        assert n == expected

    def test_zero_variance_needs_one_sample(self):
        assert required_sample_size(0.0, 0.1) == 1

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            required_sample_size(1.0, 0.0)
        with pytest.raises(ValueError):
            required_sample_size(-1.0, 0.5)

    def test_tighter_error_needs_more_samples(self):
        loose = required_sample_size(1.0, 0.2)
        tight = required_sample_size(1.0, 0.02)
        assert tight > loose
