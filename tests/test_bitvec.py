"""Tests for the bit-vector helpers."""

from __future__ import annotations

import pytest

from repro.encoder.bitvec import bits_to_int, int_to_bits, shift_append, shift_in, xor_taps
from repro.encoder.circuit import Circuit


class TestIntBits:
    def test_round_trip(self):
        for value in (0, 1, 5, 127, 200):
            assert bits_to_int(int_to_bits(value, 8)) == value

    def test_little_endian(self):
        assert int_to_bits(1, 4) == [1, 0, 0, 0]
        assert int_to_bits(8, 4) == [0, 0, 0, 1]

    def test_width_enforced(self):
        with pytest.raises(ValueError):
            int_to_bits(16, 4)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            int_to_bits(-1, 4)


class TestShifts:
    def test_shift_in(self):
        assert shift_in([1, 2, 3], 9) == [9, 1, 2]

    def test_shift_append(self):
        assert shift_append([1, 2, 3], 9) == [2, 3, 9]

    def test_shift_preserves_length(self):
        register = [0, 1, 0, 1]
        assert len(shift_in(register, 1)) == 4
        assert len(shift_append(register, 1)) == 4


class TestXorTaps:
    def test_single_tap_is_identity(self):
        circuit = Circuit()
        reg = circuit.add_input_group("r", 3)
        assert xor_taps(circuit, reg, [1]) == reg[1]

    def test_multi_tap_semantics(self):
        circuit = Circuit()
        reg = circuit.add_input_group("r", 4)
        out = xor_taps(circuit, reg, [0, 2, 3])
        values = circuit.evaluate({"r": [1, 0, 1, 1]})
        assert values[out] == (1 ^ 1 ^ 1 == 1)

    def test_empty_taps_rejected(self):
        circuit = Circuit()
        reg = circuit.add_input_group("r", 2)
        with pytest.raises(ValueError):
            xor_taps(circuit, reg, [])
