"""Integration tests: the full pipeline on scaled cryptanalysis instances.

These tests reproduce, at test scale, the qualitative claims of the paper:

* the Monte Carlo prediction of the total family cost agrees with the actual
  cost of processing the family (Table 3's ~8% deviation, loosened here because
  the samples are small);
* the metaheuristic search finds decomposition sets at least as good as the
  full-state SUPBS start point and competitive with fixed baselines (Table 2);
* the solving mode actually recovers the secret state (Section 4.2).
"""

from __future__ import annotations

import pytest

from repro.ciphers import A51, Bivium, Geffe, Grain
from repro.core.baselines import last_register_cells, random_decomposition
from repro.core.optimizer import StoppingCriteria
from repro.core.pdsat import PDSAT
from repro.core.predictive import PredictiveFunction
from repro.problems import make_instance_series, make_inversion_instance
from repro.runner.cluster import simulate_makespan


class TestPredictionAccuracy:
    @pytest.mark.parametrize(
        "generator,keystream_length",
        [
            pytest.param(Geffe.tiny(), 24, id="geffe"),
            pytest.param(Grain.scaled("tiny"), 20, id="grain"),
        ],
    )
    def test_prediction_matches_exhaustive_truth(self, generator, keystream_length):
        instance = make_inversion_instance(generator, keystream_length=keystream_length, seed=4)
        decomposition = instance.start_set[: min(7, len(instance.start_set))]
        evaluator = PredictiveFunction(instance.cnf, sample_size=60, seed=3)
        predicted = evaluator.evaluate(decomposition).value
        truth, costs = PredictiveFunction(instance.cnf, sample_size=1, seed=0).exhaustive_value(
            decomposition
        )
        assert truth > 0
        assert predicted == pytest.approx(truth, rel=0.6)

    def test_larger_samples_tighten_the_interval(self):
        instance = make_inversion_instance(Geffe.tiny(), keystream_length=24, seed=2)
        decomposition = instance.start_set[:6]
        small = PredictiveFunction(instance.cnf, sample_size=10, seed=1).evaluate(decomposition)
        large = PredictiveFunction(instance.cnf, sample_size=80, seed=1).evaluate(decomposition)
        assert large.estimate.std_error <= small.estimate.std_error


class TestSearchQuality:
    def test_tabu_beats_or_matches_random_baseline(self):
        instance = make_inversion_instance(Bivium.scaled("tiny"), keystream_length=26, seed=1)
        pdsat = PDSAT(instance, sample_size=20, seed=0)
        report = pdsat.estimate(method="tabu", stopping=StoppingCriteria(max_evaluations=40))
        random_set = random_decomposition(instance.start_set, len(report.best_decomposition), seed=9)
        random_value = pdsat.evaluate_decomposition(random_set).value
        assert report.best_value <= random_value * 1.5

    def test_tabu_beats_or_matches_start_point(self):
        instance = make_inversion_instance(Grain.scaled("tiny"), keystream_length=20, seed=0)
        pdsat = PDSAT(instance, sample_size=20, seed=1)
        start_value = pdsat.evaluate_decomposition(instance.start_set).value
        report = pdsat.estimate(method="tabu", stopping=StoppingCriteria(max_evaluations=40))
        assert report.best_value <= start_value

    def test_fixed_baseline_is_evaluable(self):
        instance = make_inversion_instance(Bivium.scaled("tiny"), keystream_length=26, seed=1)
        pdsat = PDSAT(instance, sample_size=15, seed=0)
        baseline = last_register_cells(instance, 8)
        result = pdsat.evaluate_decomposition(baseline)
        assert result.value > 0


class TestKeyRecovery:
    def test_solving_mode_recovers_secret_state_a51(self):
        instance = make_inversion_instance(A51.scaled("tiny"), keystream_length=30, seed=3)
        pdsat = PDSAT(instance, sample_size=15, seed=0)
        decomposition = instance.start_set[:7]
        report = pdsat.solve_family(decomposition)
        assert report.num_sat >= 1
        recovered = [
            instance.state_from_model(model)
            for model in report.satisfying_models
        ]
        assert any(instance.verify_state(state) for state in recovered)

    def test_weakened_series_solved_with_shared_decomposition(self):
        # The paper's Table 3 protocol: find a decomposition on instance 1 of a
        # weakened series, reuse it for the others.
        series = make_instance_series(
            Bivium.scaled("tiny"), count=2, keystream_length=26, known_bits=8, first_seed=5
        )
        first = PDSAT(series[0], sample_size=15, seed=2)
        estimation = first.estimate(method="tabu", stopping=StoppingCriteria(max_evaluations=25))
        decomposition = estimation.best_decomposition
        if len(decomposition) > 9:
            decomposition = decomposition[:9]
        for instance in series:
            runner = PDSAT(instance, sample_size=10, seed=2)
            report = runner.solve_family(decomposition)
            assert report.num_sat >= 1

    def test_cluster_extrapolation_matches_table3_structure(self):
        instance = make_inversion_instance(Geffe.tiny(), keystream_length=24, seed=6)
        pdsat = PDSAT(instance, sample_size=30, seed=1)
        estimation = pdsat.estimate(method="tabu", stopping=StoppingCriteria(max_evaluations=25))
        solving = pdsat.solve_family(estimation.best_decomposition)
        cores = 16
        predicted_parallel = estimation.predicted_on_cores(cores)
        actual_parallel = solving.makespan_on_cores(cores).makespan
        # Prediction and measured makespan must be on the same order of magnitude.
        assert actual_parallel > 0
        assert 0.1 <= predicted_parallel / max(actual_parallel, 1e-9) <= 10.0


class TestDimacsInterop:
    def test_instance_survives_dimacs_round_trip(self, tmp_path):
        from repro.sat.dimacs import parse_dimacs_file, write_dimacs_file

        instance = make_inversion_instance(Geffe.tiny(), keystream_length=24, seed=0)
        path = tmp_path / "geffe.cnf"
        write_dimacs_file(instance.cnf, path)
        loaded = parse_dimacs_file(path)
        evaluator = PredictiveFunction(loaded, sample_size=10, seed=0)
        original = PredictiveFunction(instance.cnf, sample_size=10, seed=0)
        decomposition = instance.start_set[:5]
        assert evaluator(decomposition) == original(decomposition)
