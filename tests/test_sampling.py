"""Tests for the bootstrap / sequential / stratified sampling extensions."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.montecarlo import sample_statistics
from repro.stats.sampling import (
    bootstrap_confidence_interval,
    sequential_estimate,
    stratified_estimate,
)


class TestBootstrap:
    def test_interval_contains_sample_mean(self):
        rng = random.Random(1)
        observations = [rng.expovariate(1.0) for _ in range(200)]
        low, high = bootstrap_confidence_interval(observations, seed=2)
        mean = sum(observations) / len(observations)
        assert low <= mean <= high

    def test_constant_sample_gives_degenerate_interval(self):
        low, high = bootstrap_confidence_interval([3.0] * 50)
        assert low == pytest.approx(3.0)
        assert high == pytest.approx(3.0)

    def test_interval_narrows_with_more_data(self):
        rng = random.Random(3)
        small = [rng.gauss(10.0, 2.0) for _ in range(20)]
        large = small * 20
        low_s, high_s = bootstrap_confidence_interval(small, seed=0)
        low_l, high_l = bootstrap_confidence_interval(large, seed=0)
        assert (high_l - low_l) < (high_s - low_s)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            bootstrap_confidence_interval([])
        with pytest.raises(ValueError):
            bootstrap_confidence_interval([1.0], confidence_level=1.5)
        with pytest.raises(ValueError):
            bootstrap_confidence_interval([1.0], num_resamples=2)

    def test_deterministic_given_seed(self):
        observations = [float(i % 7) for i in range(60)]
        assert bootstrap_confidence_interval(observations, seed=5) == bootstrap_confidence_interval(
            observations, seed=5
        )


class TestSequential:
    def test_stops_early_on_low_variance(self):
        result = sequential_estimate(lambda i: 5.0, target_relative_error=0.05, max_samples=500)
        assert result.converged
        assert result.sample_size <= 20
        assert result.estimate.mean == pytest.approx(5.0)

    def test_hits_max_samples_on_high_variance(self):
        rng = random.Random(0)
        result = sequential_estimate(
            lambda i: rng.expovariate(0.001),
            target_relative_error=0.001,
            max_samples=100,
        )
        assert not result.converged
        assert result.sample_size == 100

    def test_min_samples_respected(self):
        result = sequential_estimate(lambda i: 1.0, min_samples=30, max_samples=100)
        assert result.sample_size >= 30

    def test_draw_receives_consecutive_indices(self):
        seen = []

        def draw(i):
            seen.append(i)
            return float(i)

        sequential_estimate(draw, target_relative_error=10.0, min_samples=5, max_samples=20)
        assert seen[: len(seen)] == list(range(len(seen)))

    def test_input_validation(self):
        with pytest.raises(ValueError):
            sequential_estimate(lambda i: 1.0, target_relative_error=0)
        with pytest.raises(ValueError):
            sequential_estimate(lambda i: 1.0, min_samples=1)
        with pytest.raises(ValueError):
            sequential_estimate(lambda i: 1.0, min_samples=10, max_samples=5)
        with pytest.raises(ValueError):
            sequential_estimate(lambda i: 1.0, batch_size=0)


class TestStratified:
    def test_equal_strata_match_plain_mean(self):
        first = [1.0, 2.0, 3.0]
        second = [4.0, 5.0, 6.0]
        combined = stratified_estimate([first, second])
        assert combined.mean == pytest.approx((2.0 + 5.0) / 2)

    def test_variance_reduction_on_separated_strata(self):
        rng = random.Random(7)
        low_stratum = [rng.gauss(10.0, 1.0) for _ in range(100)]
        high_stratum = [rng.gauss(100.0, 1.0) for _ in range(100)]
        stratified = stratified_estimate([low_stratum, high_stratum])
        plain = sample_statistics(low_stratum + high_stratum)
        assert stratified.std_error < plain.std_error

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            stratified_estimate([[1.0], [2.0]], weights=[0.3, 0.3])

    def test_weights_length_checked(self):
        with pytest.raises(ValueError):
            stratified_estimate([[1.0], [2.0]], weights=[1.0])

    def test_empty_strata_rejected(self):
        with pytest.raises(ValueError):
            stratified_estimate([])

    def test_scaled_total(self):
        combined = stratified_estimate([[2.0, 2.0], [4.0, 4.0]])
        total = combined.scaled(8.0)
        assert total.mean == pytest.approx(8.0 * 3.0)


@settings(max_examples=30, deadline=None)
@given(
    data=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=2, max_size=80),
)
def test_property_bootstrap_interval_brackets_the_mean(data):
    low, high = bootstrap_confidence_interval(data, num_resamples=200, seed=1)
    mean = sum(data) / len(data)
    assert low <= mean + 1e-6
    assert high >= mean - 1e-6


@settings(max_examples=30, deadline=None)
@given(
    first=st.lists(st.floats(min_value=0.0, max_value=1e3), min_size=2, max_size=40),
    second=st.lists(st.floats(min_value=0.0, max_value=1e3), min_size=2, max_size=40),
)
def test_property_stratified_mean_is_weighted_average(first, second):
    combined = stratified_estimate([first, second], weights=[0.25, 0.75])
    expected = 0.25 * (sum(first) / len(first)) + 0.75 * (sum(second) / len(second))
    assert combined.mean == pytest.approx(expected, rel=1e-9, abs=1e-9)


class TestSeedSpawnDiscipline:
    """Regression pins for the parallel-estimation seed derivation.

    The exact child-seed and sample-bit sequences are part of the scheduler's
    reproducibility contract (parallel and serial estimation must sample the
    same trajectories), so they are pinned to literal values: any change to
    the spawn discipline is a breaking change and must fail here first.
    """

    def test_child_seeds_are_pinned(self):
        from repro.stats.sampling import derive_child_seeds

        assert derive_child_seeds(0, 4) == [
            7106521602475165645,
            16422101724900707500,
            746805015404516437,
            17809683713383489082,
        ]
        assert derive_child_seeds(42, 3) == [
            2053695854357871005,
            13679192365072849617,
            4517457392071889495,
        ]

    def test_child_seed_indexing_matches_the_sequence(self):
        from repro.stats.sampling import child_seed, derive_child_seeds

        seeds = derive_child_seeds(7, 6)
        assert [child_seed(7, index) for index in range(6)] == seeds
        with pytest.raises(ValueError):
            child_seed(7, -1)

    def test_sample_bits_are_pinned(self):
        from repro.stats.sampling import derive_child_seeds, sample_bits

        bits = [sample_bits(seed, 6) for seed in derive_child_seeds(7, 3)]
        assert bits == [
            (1, 1, 0, 1, 1, 1),
            (0, 0, 1, 0, 1, 0),
            (1, 1, 1, 0, 1, 0),
        ]

    def test_estimation_task_payloads_are_pinned(self):
        from repro.runner.estimation import estimation_tasks

        graph = estimation_tasks([3, 1, 8], 4, seed=7)
        payloads = [graph.task(task_id).payload for task_id in graph.task_ids]
        assert payloads == [(1, 3, -8), (-1, -3, 8), (1, 3, 8), (-1, 3, -8)]

    def test_child_streams_are_independent_of_consumption_order(self):
        from repro.stats.sampling import child_rng, derive_child_seeds

        seeds = derive_child_seeds(3, 5)
        forward = [child_rng(3, index).random() for index in range(5)]
        backward = [child_rng(3, index).random() for index in reversed(range(5))]
        assert forward == list(reversed(backward))
        # And re-deriving a prefix never changes earlier children.
        assert derive_child_seeds(3, 2) == seeds[:2]

    def test_validation(self):
        from repro.stats.sampling import derive_child_seeds, sample_bits

        with pytest.raises(ValueError):
            derive_child_seeds(0, -1)
        with pytest.raises(ValueError):
            sample_bits(0, -2)

    def test_merge_many_folds_in_given_order(self):
        from repro.stats.montecarlo import OnlineStatistics, merge_many

        batches = [[1.0, 2.0], [3.0], [4.0, 5.0, 6.0]]
        accumulators = [OnlineStatistics.from_observations(batch) for batch in batches]
        merged = merge_many(accumulators)
        assert merged.count == 6
        assert merged.mean == pytest.approx(3.5)
        reference = OnlineStatistics.from_observations([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        assert merged.variance == pytest.approx(reference.variance, rel=1e-12)
