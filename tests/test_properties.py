"""Property-based tests (hypothesis) for the core data structures and invariants."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decomposition import DecompositionSet
from repro.core.search_space import SearchSpace
from repro.encoder.bitvec import bits_to_int, int_to_bits
from repro.runner.cluster import simulate_makespan
from repro.sat.assignment import Assignment
from repro.sat.cdcl import CDCLSolver
from repro.sat.cdcl.luby import luby
from repro.sat.dimacs import parse_dimacs, write_dimacs
from repro.sat.dpll import DPLLSolver
from repro.sat.formula import CNF, normalize_clause
from repro.sat.preprocessing import unit_propagate
from repro.sat.random_cnf import random_ksat
from repro.sat.solver import check_model
from repro.stats.montecarlo import sample_statistics

# Keep hypothesis fast and deterministic for CI-style runs.
FAST = settings(max_examples=30, deadline=None)


# --------------------------------------------------------------------------- CNF
clauses_strategy = st.lists(
    st.lists(
        st.integers(min_value=-12, max_value=12).filter(lambda v: v != 0),
        min_size=1,
        max_size=5,
    ),
    min_size=0,
    max_size=40,
)


@FAST
@given(clauses=clauses_strategy)
def test_dimacs_round_trip(clauses):
    """Writing then parsing a CNF preserves clauses and variable count."""
    cnf = CNF([tuple(clause) for clause in clauses])
    parsed = parse_dimacs(write_dimacs(cnf), strict=True)
    assert parsed.clauses == cnf.clauses
    assert parsed.num_vars == cnf.num_vars


@FAST
@given(clauses=clauses_strategy, seed=st.integers(min_value=0, max_value=2**20))
def test_assign_preserves_models(clauses, seed):
    """If a total assignment satisfies C, it satisfies C restricted by any part of itself."""
    cnf = CNF([tuple(clause) for clause in clauses])
    if cnf.num_vars == 0:
        return
    rng = random.Random(seed)
    model = {v: rng.random() < 0.5 for v in range(1, cnf.num_vars + 1)}
    if not cnf.is_satisfied_by(model):
        return
    partial_vars = [v for v in model if rng.random() < 0.5]
    partial = {v: model[v] for v in partial_vars}
    assert cnf.assign(partial).is_satisfied_by(model)


@FAST
@given(
    lits=st.lists(
        st.integers(min_value=-9, max_value=9).filter(lambda v: v != 0), max_size=10
    )
)
def test_normalize_clause_idempotent(lits):
    """Normalisation is idempotent and never contains complementary literals."""
    normalized = normalize_clause(lits)
    if normalized is None:
        assert any(-l in lits for l in lits)
        return
    assert normalize_clause(normalized) == normalized
    assert not any(-l in normalized for l in normalized)


# ------------------------------------------------------------------------ solver
@FAST
@given(
    num_vars=st.integers(min_value=5, max_value=18),
    ratio=st.floats(min_value=1.0, max_value=5.0),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_cdcl_agrees_with_dpll(num_vars, ratio, seed):
    """CDCL and DPLL always agree on satisfiability of random instances."""
    cnf = random_ksat(num_vars, max(1, round(ratio * num_vars)), k=3, seed=seed)
    cdcl_result = CDCLSolver().solve(cnf)
    dpll_result = DPLLSolver().solve(cnf)
    assert cdcl_result.status == dpll_result.status
    if cdcl_result.is_sat:
        assert check_model(cnf, cdcl_result.model)


@FAST
@given(
    num_vars=st.integers(min_value=5, max_value=15),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_unit_propagation_closure_is_consistent(num_vars, seed):
    """The UP closure never assigns a variable both ways and only shrinks the formula."""
    cnf = random_ksat(num_vars, 3 * num_vars, seed=seed)
    result = unit_propagate(cnf)
    if result.conflict:
        return
    assert result.simplified.num_clauses <= cnf.num_clauses
    for clause in result.simplified.clauses:
        for lit in clause:
            assert abs(lit) not in result.assignment


# --------------------------------------------------------------- decompositions
@FAST
@given(
    variables=st.sets(st.integers(min_value=1, max_value=30), min_size=1, max_size=8),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_decomposition_sampling_stays_in_set(variables, seed):
    """Random samples only assign decomposition variables, with full coverage of the set."""
    dec = DecompositionSet.of(variables)
    rng = random.Random(seed)
    for assignment in dec.random_sample(5, rng):
        assert set(assignment.variables()) == set(dec.variables)
    assert dec.num_subproblems == 2 ** len(variables)


@FAST
@given(variables=st.sets(st.integers(min_value=1, max_value=25), min_size=1, max_size=6))
def test_decomposition_family_enumeration_is_exhaustive(variables):
    """all_assignments enumerates 2^d distinct assignments."""
    dec = DecompositionSet.of(variables)
    seen = {a.bits_for(list(dec.variables)) for a in dec.all_assignments()}
    assert len(seen) == dec.num_subproblems


@FAST
@given(
    base=st.sets(st.integers(min_value=1, max_value=40), min_size=2, max_size=10),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_neighborhood_is_symmetric(base, seed):
    """χ' ∈ N_1(χ) iff χ ∈ N_1(χ') (for non-empty points)."""
    space = SearchSpace(sorted(base))
    rng = random.Random(seed)
    point = frozenset(v for v in base if rng.random() < 0.5) or frozenset([next(iter(base))])
    for neighbor in space.neighborhood(point, 1):
        back = set(space.neighborhood(neighbor, 1))
        assert point in back


@FAST
@given(
    base=st.sets(st.integers(min_value=1, max_value=30), min_size=1, max_size=8),
)
def test_chi_vector_round_trip(base):
    """χ-vector encoding and decoding are mutually inverse."""
    space = SearchSpace(sorted(base))
    for point in [space.start_point(), frozenset([min(base)])]:
        assert space.from_chi_vector(space.to_chi_vector(point)) == point


# -------------------------------------------------------------------- assignment
@FAST
@given(
    data=st.dictionaries(
        st.integers(min_value=1, max_value=50), st.booleans(), min_size=0, max_size=12
    )
)
def test_assignment_literal_round_trip(data):
    """Assignment -> literals -> Assignment is the identity."""
    assignment = Assignment(dict(data))
    assert Assignment.from_literals(assignment.to_literals()).values == assignment.values


# ------------------------------------------------------------------------ bitvec
@FAST
@given(value=st.integers(min_value=0, max_value=2**16 - 1))
def test_bits_round_trip(value):
    """int -> bits -> int is the identity for values that fit the width."""
    assert bits_to_int(int_to_bits(value, 16)) == value


# ------------------------------------------------------------------------- stats
@FAST
@given(
    sample=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=2, max_size=50),
    factor=st.floats(min_value=0.1, max_value=100.0),
)
def test_estimate_scaling_is_linear(sample, factor):
    """Scaling the observations scales the mean estimate linearly."""
    base = sample_statistics(sample)
    scaled = sample_statistics([x * factor for x in sample])
    assert abs(scaled.mean - base.mean * factor) <= 1e-6 * max(1.0, abs(base.mean * factor))


@FAST
@given(
    costs=st.lists(st.floats(min_value=0.0, max_value=1e4), min_size=0, max_size=60),
    cores=st.integers(min_value=1, max_value=32),
)
def test_makespan_bounds(costs, cores):
    """Makespan is between total/cores (and the largest job) and the total work."""
    sim = simulate_makespan(costs, cores)
    total = sum(costs)
    longest = max(costs) if costs else 0.0
    assert sim.makespan <= total + 1e-9
    assert sim.makespan + 1e-9 >= total / cores
    assert sim.makespan + 1e-9 >= longest


# -------------------------------------------------------------------------- luby
@FAST
@given(i=st.integers(min_value=1, max_value=10_000))
def test_luby_values_are_powers_of_two(i):
    """Every Luby element is a power of two no larger than i."""
    value = luby(i)
    assert value & (value - 1) == 0
    assert 1 <= value <= i
