"""Tests for decomposition sets and decomposition families."""

from __future__ import annotations

import random

import pytest

from repro.core.decomposition import DecompositionFamily, DecompositionSet
from repro.sat.cdcl import CDCLSolver
from repro.sat.formula import CNF
from repro.sat.random_cnf import random_ksat


class TestDecompositionSet:
    def test_of_sorts_and_deduplicates(self):
        dec = DecompositionSet.of([5, 2, 2, 9])
        assert dec.variables == (2, 5, 9)

    def test_rejects_duplicates_in_constructor(self):
        with pytest.raises(ValueError):
            DecompositionSet((1, 1))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            DecompositionSet((0, 2))

    def test_d_and_num_subproblems(self):
        dec = DecompositionSet.of([1, 2, 3])
        assert dec.d == 3
        assert dec.num_subproblems == 8

    def test_membership_and_iteration(self):
        dec = DecompositionSet.of([4, 7])
        assert 4 in dec
        assert 5 not in dec
        assert list(dec) == [4, 7]
        assert len(dec) == 2

    def test_assignment_from_bits(self):
        dec = DecompositionSet.of([3, 8])
        assignment = dec.assignment_from_bits([1, 0])
        assert assignment.values == {3: True, 8: False}

    def test_random_assignment_uses_only_set_variables(self):
        dec = DecompositionSet.of([2, 5, 6])
        assignment = dec.random_assignment(random.Random(0))
        assert set(assignment.variables()) == {2, 5, 6}

    def test_random_sample_size(self):
        dec = DecompositionSet.of([1, 2])
        sample = dec.random_sample(10, random.Random(1))
        assert len(sample) == 10

    def test_all_assignments_enumeration(self):
        dec = DecompositionSet.of([1, 2])
        assignments = list(dec.all_assignments())
        assert len(assignments) == 4
        bit_vectors = {a.bits_for([1, 2]) for a in assignments}
        assert bit_vectors == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_with_and_without_variable(self):
        dec = DecompositionSet.of([1, 3])
        assert dec.with_variable(2).variables == (1, 2, 3)
        assert dec.with_variable(1) is dec
        assert dec.without_variable(3).variables == (1,)
        assert dec.without_variable(9) is dec

    def test_frozenset_view_and_str(self):
        dec = DecompositionSet.of([2, 1])
        assert dec.as_frozenset() == frozenset({1, 2})
        assert str(dec) == "{1, 2}"


class TestDecompositionFamily:
    def test_rejects_out_of_range_variables(self):
        cnf = CNF([(1, 2)])
        with pytest.raises(ValueError):
            DecompositionFamily(cnf, [5])

    def test_len_is_two_to_the_d(self):
        cnf = CNF([(1, 2, 3)])
        assert len(DecompositionFamily(cnf, [1, 2])) == 4

    def test_subproblem_as_units(self):
        cnf = CNF([(1, 2)])
        family = DecompositionFamily(cnf, [1])
        assignment = DecompositionSet.of([1]).assignment_from_bits([0])
        sub = family.subproblem(assignment, as_units=True)
        assert (-1,) in sub.clauses
        assert sub.num_clauses == 2

    def test_subproblem_syntactic(self):
        cnf = CNF([(1, 2)])
        family = DecompositionFamily(cnf, [1])
        assignment = DecompositionSet.of([1]).assignment_from_bits([0])
        sub = family.subproblem(assignment, as_units=False)
        assert sub.clauses == [(2,)]

    def test_subproblems_enumeration(self):
        cnf = CNF([(1, 2, 3)])
        family = DecompositionFamily(cnf, [1, 2])
        subs = list(family.subproblems())
        assert len(subs) == 4

    def test_partitioning_property_on_random_cnf(self):
        cnf = random_ksat(12, 40, seed=0)
        family = DecompositionFamily(cnf, [1, 2, 3])
        assert family.check_partitioning(CDCLSolver())

    def test_partitioning_property_on_unsat_cnf(self):
        cnf = CNF([(1, 2), (1, -2), (-1, 2), (-1, -2)])
        family = DecompositionFamily(cnf, [1])
        assert family.check_partitioning(CDCLSolver())

    def test_check_refuses_huge_families(self):
        cnf = random_ksat(40, 80, seed=0)
        family = DecompositionFamily(cnf, list(range(1, 31)))
        with pytest.raises(ValueError):
            family.check_partitioning(CDCLSolver(), max_subproblems=1024)

    def test_union_of_models_covers_original(self):
        # Every model of the original CNF appears in exactly one sub-problem.
        cnf = CNF([(1, 2), (-2, 3)])
        family = DecompositionFamily(cnf, [2])
        solver = CDCLSolver()
        sat_subproblems = [
            assignment for assignment, sub in family.subproblems() if solver.solve(sub).is_sat
        ]
        assert len(sat_subproblems) >= 1
