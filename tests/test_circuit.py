"""Tests for the Boolean circuit IR."""

from __future__ import annotations

import pytest

from repro.encoder.circuit import FALSE, TRUE, Circuit, Gate, GateKind


class TestGate:
    def test_not_arity_enforced(self):
        with pytest.raises(ValueError):
            Gate(GateKind.NOT, (1, 2))

    def test_maj_arity_enforced(self):
        with pytest.raises(ValueError):
            Gate(GateKind.MAJ, (1, 2))

    def test_and_needs_two_operands(self):
        with pytest.raises(ValueError):
            Gate(GateKind.AND, (1,))


class TestInputsOutputs:
    def test_input_group_allocates_signals(self):
        circuit = Circuit()
        signals = circuit.add_input_group("key", 4)
        assert len(signals) == 4
        assert circuit.input_groups == {"key": signals}

    def test_duplicate_group_rejected(self):
        circuit = Circuit()
        circuit.add_input_group("key", 2)
        with pytest.raises(ValueError):
            circuit.add_input_group("key", 2)

    def test_inputs_in_declaration_order(self):
        circuit = Circuit()
        a = circuit.add_input_group("a", 2)
        b = circuit.add_input_group("b", 1)
        assert circuit.inputs() == a + b

    def test_output_group_validates_signals(self):
        circuit = Circuit()
        with pytest.raises(ValueError):
            circuit.set_output_group("out", [99])

    def test_unknown_input_group_in_evaluate(self):
        circuit = Circuit()
        circuit.add_input_group("a", 1)
        with pytest.raises(KeyError):
            circuit.evaluate({"b": [0]})

    def test_wrong_width_in_evaluate(self):
        circuit = Circuit()
        circuit.add_input_group("a", 2)
        with pytest.raises(ValueError):
            circuit.evaluate({"a": [0]})


class TestConstantFolding:
    def test_not_of_constants(self):
        circuit = Circuit()
        assert circuit.not_(TRUE) == FALSE
        assert circuit.not_(FALSE) == TRUE

    def test_double_negation(self):
        circuit = Circuit()
        (a,) = circuit.add_input_group("a", 1)
        assert circuit.not_(circuit.not_(a)) == a

    def test_and_folding(self):
        circuit = Circuit()
        (a,) = circuit.add_input_group("a", 1)
        assert circuit.and_(a, TRUE) == a
        assert circuit.and_(a, FALSE) == FALSE
        assert circuit.and_(TRUE, TRUE) == TRUE

    def test_or_folding(self):
        circuit = Circuit()
        (a,) = circuit.add_input_group("a", 1)
        assert circuit.or_(a, FALSE) == a
        assert circuit.or_(a, TRUE) == TRUE
        assert circuit.or_(FALSE, FALSE) == FALSE

    def test_xor_folding(self):
        circuit = Circuit()
        (a,) = circuit.add_input_group("a", 1)
        assert circuit.xor(a, FALSE) == a
        assert circuit.xor(FALSE, FALSE) == FALSE
        assert circuit.xor(TRUE, FALSE) == TRUE
        # XOR with TRUE is a negation of the signal.
        negated = circuit.xor(a, TRUE)
        values = circuit.evaluate({"a": [1]})
        assert values[negated] is False

    def test_mux_folding(self):
        circuit = Circuit()
        a = circuit.add_input_group("a", 2)
        assert circuit.mux(TRUE, a[0], a[1]) == a[0]
        assert circuit.mux(FALSE, a[0], a[1]) == a[1]
        assert circuit.mux(a[0], a[1], a[1]) == a[1]

    def test_maj_folding_with_constants(self):
        circuit = Circuit()
        (a,) = circuit.add_input_group("a", 1)
        assert circuit.maj(TRUE, TRUE, a) == TRUE
        assert circuit.maj(FALSE, FALSE, a) == FALSE
        assert circuit.maj(TRUE, FALSE, a) == a


class TestEvaluation:
    def test_gate_semantics(self):
        circuit = Circuit()
        a, b, c = circuit.add_input_group("in", 3)
        gates = {
            "and": circuit.and_(a, b),
            "or": circuit.or_(a, b),
            "xor": circuit.xor(a, b),
            "not": circuit.not_(a),
            "maj": circuit.maj(a, b, c),
            "mux": circuit.mux(a, b, c),
        }
        for bits in ((0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 0)):
            values = circuit.evaluate({"in": bits})
            x, y, z = (bool(v) for v in bits)
            assert values[gates["and"]] == (x and y)
            assert values[gates["or"]] == (x or y)
            assert values[gates["xor"]] == (x != y)
            assert values[gates["not"]] == (not x)
            assert values[gates["maj"]] == (int(x) + int(y) + int(z) >= 2)
            assert values[gates["mux"]] == (y if x else z)

    def test_multi_operand_gates(self):
        circuit = Circuit()
        ins = circuit.add_input_group("in", 4)
        wide_xor = circuit.xor(*ins)
        wide_and = circuit.and_(*ins)
        values = circuit.evaluate({"in": [1, 1, 1, 0]})
        assert values[wide_xor] is True
        assert values[wide_and] is False

    def test_output_bits(self):
        circuit = Circuit()
        a, b = circuit.add_input_group("in", 2)
        circuit.set_output_group("out", [circuit.xor(a, b), circuit.and_(a, b)])
        assert circuit.output_bits("out", {"in": [1, 1]}) == [0, 1]

    def test_evaluate_by_signal_dict(self):
        circuit = Circuit()
        a, b = circuit.add_input_group("in", 2)
        g = circuit.or_(a, b)
        values = circuit.evaluate({a: True, b: False})
        assert values[g] is True

    def test_missing_input_raises(self):
        circuit = Circuit()
        a, b = circuit.add_input_group("in", 2)
        circuit.or_(a, b)
        with pytest.raises(ValueError):
            circuit.evaluate({a: True})

    def test_stats_counts_gates(self):
        circuit = Circuit()
        a, b = circuit.add_input_group("in", 2)
        circuit.and_(a, b)
        circuit.xor(a, b)
        stats = circuit.stats()
        assert stats["input"] == 2
        assert stats["and"] == 1
        assert stats["xor"] == 1
