"""Tests for the classical partitioning techniques (cubes, guiding path, scattering, cube-and-conquer)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ciphers import Geffe
from repro.partitioning import (
    Cube,
    CubeAndConquerConfig,
    CubePartitioning,
    GuidingPathConfig,
    ScatteringConfig,
    guiding_path_partitioning,
    lookahead_partitioning,
    scattering_partitioning,
)
from repro.problems import make_inversion_instance
from repro.sat.cdcl import CDCLSolver
from repro.sat.formula import CNF
from repro.sat.random_cnf import planted_ksat, random_ksat
from repro.sat.solver import SolverStatus


class TestCube:
    def test_canonical_order(self):
        assert Cube.of([3, -1, 2]).literals == (-1, 2, 3)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            Cube.of([0, 1])

    def test_rejects_contradictory_literals(self):
        with pytest.raises(ValueError):
            Cube.of([1, -1])

    def test_conflicts_with(self):
        assert Cube.of([1, 2]).conflicts_with(Cube.of([-1, 3]))
        assert not Cube.of([1, 2]).conflicts_with(Cube.of([2, 3]))

    def test_negation_clause(self):
        assert Cube.of([1, -2]).negation_clause() == (-1, 2)

    def test_extended(self):
        assert Cube.of([1]).extended(-3).literals == (1, -3)

    def test_empty_cube_prints_top(self):
        assert str(Cube.of([])) == "⊤"


class TestCubePartitioning:
    def test_minterm_partitioning_is_valid(self, cdcl):
        cnf = random_ksat(8, 30, seed=1)
        cubes = [
            Cube.of([s1 * 1, s2 * 2]) for s1 in (1, -1) for s2 in (1, -1)
        ]
        partitioning = CubePartitioning(cnf, cubes)
        assert partitioning.is_uniform
        assert partitioning.is_valid_partitioning(cdcl)

    def test_missing_cube_breaks_coverage(self, cdcl):
        cnf = CNF([(1, 2, 3)])
        partitioning = CubePartitioning(cnf, [Cube.of([1]), Cube.of([-1, 2])])
        assert partitioning.pairwise_inconsistent()
        assert not partitioning.covers_formula(cdcl)

    def test_overlapping_cubes_detected(self):
        cnf = CNF([(1, 2)])
        partitioning = CubePartitioning(cnf, [Cube.of([1]), Cube.of([2])])
        assert not partitioning.pairwise_inconsistent()

    def test_requires_at_least_one_cube(self):
        with pytest.raises(ValueError):
            CubePartitioning(CNF([(1,)]), [])

    def test_solve_all_counts_sat_cubes(self, cdcl):
        cnf, _ = planted_ksat(10, 30, seed=4)
        cubes = [Cube.of([1]), Cube.of([-1])]
        report = CubePartitioning(cnf, cubes).solve_all(cdcl)
        assert len(report.costs) == 2
        assert report.num_sat >= 1
        assert report.total_cost == pytest.approx(sum(report.costs))

    def test_solve_all_stop_on_sat(self, cdcl):
        cnf, _ = planted_ksat(10, 30, seed=4)
        cubes = [Cube.of([1]), Cube.of([-1])]
        report = CubePartitioning(cnf, cubes).solve_all(cdcl, stop_on_sat=True)
        assert len(report.costs) <= 2

    def test_estimate_total_cost_matches_exhaustive_on_uniform_cubes(self, cdcl):
        cnf = random_ksat(9, 34, seed=6)
        cubes = [
            Cube.of([s1 * 1, s2 * 2, s3 * 3])
            for s1 in (1, -1)
            for s2 in (1, -1)
            for s3 in (1, -1)
        ]
        partitioning = CubePartitioning(cnf, cubes)
        exhaustive = partitioning.solve_all(cdcl).total_cost
        estimate = partitioning.estimate_total_cost(cdcl, sample_size=64, seed=0)
        assert estimate.mean == pytest.approx(exhaustive, rel=0.5)

    def test_imbalance_of_constant_costs_is_one(self):
        from repro.partitioning.cubes import PartitioningCostReport

        report = PartitioningCostReport(costs=[5.0, 5.0, 5.0], statuses=[])
        assert report.imbalance == pytest.approx(1.0)
        assert report.max_cost == 5.0


class TestGuidingPath:
    def test_structure_is_staircase(self):
        cnf = random_ksat(12, 48, seed=2)
        partitioning = guiding_path_partitioning(cnf, GuidingPathConfig(path_length=5))
        lengths = sorted(partitioning.cube_lengths)
        assert lengths == [1, 2, 3, 4, 5, 5]

    def test_is_valid_partitioning(self, cdcl):
        cnf = random_ksat(12, 48, seed=2)
        partitioning = guiding_path_partitioning(cnf, GuidingPathConfig(path_length=4))
        assert partitioning.is_valid_partitioning(cdcl)

    def test_lookahead_heuristic(self, cdcl):
        cnf = random_ksat(12, 48, seed=3)
        partitioning = guiding_path_partitioning(
            cnf, GuidingPathConfig(path_length=4, heuristic="lookahead")
        )
        assert partitioning.is_valid_partitioning(cdcl)

    def test_path_never_uses_forced_variables(self):
        cnf = CNF([(1,), (-1, 2), (3, 4), (3, -4), (-3, 4), (5, 6)])
        partitioning = guiding_path_partitioning(cnf, GuidingPathConfig(path_length=3))
        path_vars = {abs(lit) for cube in partitioning for lit in cube}
        assert 1 not in path_vars
        assert 2 not in path_vars

    def test_degenerate_fully_forced_formula(self, cdcl):
        cnf = CNF([(1,), (-1, 2)])
        partitioning = guiding_path_partitioning(cnf, GuidingPathConfig(path_length=4))
        assert len(partitioning) == 2
        assert partitioning.is_valid_partitioning(cdcl)

    def test_sat_preserved_across_partitioning(self, cdcl):
        cnf, _ = planted_ksat(14, 50, seed=7)
        partitioning = guiding_path_partitioning(cnf, GuidingPathConfig(path_length=6))
        report = partitioning.solve_all(cdcl)
        assert report.num_sat >= 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GuidingPathConfig(path_length=0)
        with pytest.raises(ValueError):
            GuidingPathConfig(heuristic="nope")


class TestScattering:
    def test_part_count_and_fractions(self):
        cnf = random_ksat(20, 80, seed=5)
        partitioning = scattering_partitioning(cnf, ScatteringConfig(num_subproblems=6))
        assert len(partitioning) == 6
        fractions = partitioning.coverage_fractions()
        assert sum(fractions) == pytest.approx(1.0)
        assert all(f > 0 for f in fractions)

    def test_by_construction_disjointness(self):
        cnf = random_ksat(20, 80, seed=5)
        partitioning = scattering_partitioning(cnf, ScatteringConfig(num_subproblems=5))
        assert partitioning.pairwise_inconsistent()

    def test_coverage_check(self, cdcl):
        cnf = random_ksat(20, 80, seed=5)
        partitioning = scattering_partitioning(cnf, ScatteringConfig(num_subproblems=4))
        assert partitioning.covers_formula(cdcl)

    def test_sat_preserved(self, cdcl):
        cnf, _ = planted_ksat(16, 55, seed=8)
        partitioning = scattering_partitioning(cnf, ScatteringConfig(num_subproblems=4))
        report = partitioning.solve_all(cdcl)
        assert report.num_sat >= 1

    def test_unsat_preserved(self, cdcl):
        from repro.sat.random_cnf import pigeonhole

        cnf = pigeonhole(3)
        partitioning = scattering_partitioning(cnf, ScatteringConfig(num_subproblems=3))
        report = partitioning.solve_all(cdcl)
        assert report.num_sat == 0
        assert all(status is SolverStatus.UNSAT for status in report.statuses)

    def test_too_few_variables_degrades_gracefully(self, cdcl):
        cnf = CNF([(1, 2)])
        partitioning = scattering_partitioning(cnf, ScatteringConfig(num_subproblems=16))
        assert 2 <= len(partitioning) < 16
        assert partitioning.pairwise_inconsistent()
        assert partitioning.solve_all(cdcl).num_sat >= 1

    def test_lookahead_heuristic(self, cdcl):
        cnf = random_ksat(20, 80, seed=9)
        partitioning = scattering_partitioning(
            cnf, ScatteringConfig(num_subproblems=4, heuristic="lookahead")
        )
        assert partitioning.pairwise_inconsistent()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ScatteringConfig(num_subproblems=1)
        with pytest.raises(ValueError):
            ScatteringConfig(heuristic="best")


class TestCubeAndConquer:
    def test_produces_requested_cube_count(self):
        cnf = random_ksat(18, 70, seed=1)
        partitioning = lookahead_partitioning(cnf, CubeAndConquerConfig(max_cubes=16))
        assert 2 <= len(partitioning) <= 16

    def test_is_valid_partitioning(self, cdcl):
        cnf = random_ksat(14, 56, seed=2)
        partitioning = lookahead_partitioning(cnf, CubeAndConquerConfig(max_cubes=12))
        assert partitioning.is_valid_partitioning(cdcl)

    def test_sat_preserved(self, cdcl):
        cnf, _ = planted_ksat(16, 60, seed=3)
        partitioning = lookahead_partitioning(cnf, CubeAndConquerConfig(max_cubes=10))
        report = partitioning.solve_all(cdcl)
        assert report.num_sat >= 1

    def test_depth_limit_respected(self):
        cnf = random_ksat(18, 70, seed=4)
        partitioning = lookahead_partitioning(
            cnf, CubeAndConquerConfig(max_cubes=64, max_depth=3)
        )
        assert max(partitioning.cube_lengths) <= 3

    def test_cubes_need_not_share_variables(self):
        cnf = random_ksat(18, 70, seed=5)
        partitioning = lookahead_partitioning(cnf, CubeAndConquerConfig(max_cubes=16))
        variable_sets = {tuple(sorted(cube.variables)) for cube in partitioning}
        # Adaptive splitting typically produces at least two distinct variable
        # sets; equality would mean it degenerated into a decomposition family.
        assert len(variable_sets) >= 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CubeAndConquerConfig(max_cubes=1)
        with pytest.raises(ValueError):
            CubeAndConquerConfig(max_depth=0)
        with pytest.raises(ValueError):
            CubeAndConquerConfig(max_probe_variables=0)


class TestOnCryptanalysisInstance:
    def test_all_techniques_preserve_satisfiability(self, cdcl):
        instance = make_inversion_instance(Geffe.tiny(), keystream_length=20, seed=11)
        cnf = instance.cnf

        guiding = guiding_path_partitioning(cnf, GuidingPathConfig(path_length=4))
        scattering = scattering_partitioning(cnf, ScatteringConfig(num_subproblems=4))
        cubes = lookahead_partitioning(cnf, CubeAndConquerConfig(max_cubes=8, max_depth=6))

        assert guiding.solve_all(cdcl).num_sat >= 1
        assert scattering.solve_all(cdcl).num_sat >= 1
        assert cubes.solve_all(cdcl).num_sat >= 1


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    path_length=st.integers(min_value=1, max_value=6),
)
def test_property_guiding_path_is_always_a_valid_partitioning(seed, path_length):
    cnf = random_ksat(10, 40, seed=seed)
    partitioning = guiding_path_partitioning(cnf, GuidingPathConfig(path_length=path_length))
    assert partitioning.pairwise_inconsistent()
    assert partitioning.covers_formula(CDCLSolver())


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_subproblems=st.integers(min_value=2, max_value=8),
)
def test_property_scattering_preserves_satisfiability(seed, num_subproblems):
    cnf = random_ksat(12, 44, seed=seed)
    solver = CDCLSolver()
    reference = solver.solve(cnf)
    partitioning = scattering_partitioning(
        cnf, ScatteringConfig(num_subproblems=num_subproblems)
    )
    report = partitioning.solve_all(CDCLSolver())
    assert (report.num_sat >= 1) == reference.is_sat


class TestFromDecompositionSet:
    def test_builds_all_minterms(self, cdcl):
        cnf = random_ksat(8, 30, seed=12)
        partitioning = CubePartitioning.from_decomposition_set(cnf, [3, 1, 5])
        assert len(partitioning) == 8
        assert partitioning.is_uniform
        assert partitioning.is_valid_partitioning(cdcl)

    def test_deduplicates_and_sorts_variables(self):
        cnf = CNF([(1, 2, 3)])
        partitioning = CubePartitioning.from_decomposition_set(cnf, [2, 2, 1])
        assert len(partitioning) == 4
        assert all(set(cube.variables) == {1, 2} for cube in partitioning)

    def test_rejects_empty_set(self):
        with pytest.raises(ValueError):
            CubePartitioning.from_decomposition_set(CNF([(1,)]), [])

    def test_rejects_oversized_set(self):
        with pytest.raises(ValueError):
            CubePartitioning.from_decomposition_set(CNF([(1,)]), list(range(1, 30)))

    def test_matches_decomposition_family_subproblems(self, cdcl):
        from repro.core.decomposition import DecompositionSet

        cnf, _ = planted_ksat(10, 32, seed=13)
        variables = [2, 4, 7]
        partitioning = CubePartitioning.from_decomposition_set(cnf, variables)
        family = DecompositionSet.of(variables)
        family_bits = {assignment.bits_for(variables) for assignment in family.all_assignments()}
        cube_bits = {
            tuple(int(lit > 0) for lit in sorted(cube.literals, key=abs)) for cube in partitioning
        }
        assert family_bits == cube_bits
