"""Tests for the batched Monte Carlo estimation engine.

Covers the four pieces the engine is assembled from: the incremental mode of
:class:`~repro.core.predictive.PredictiveFunction`, the sample-result LRU
cache, the streaming statistics of :mod:`repro.stats.montecarlo`, the
:class:`~repro.api.EstimatorSpec` configuration layer, and the bit-sliced
batch keystream simulation.
"""

from __future__ import annotations

import random

import pytest

from repro.api import EstimatorSpec, ExperimentConfig
from repro.ciphers import A51, Geffe
from repro.ciphers.lfsr import LFSR, lfsr_run_batch, pack_state_columns, unpack_output_words
from repro.core.predictive import PredictiveFunction, supports_incremental_solving
from repro.problems import make_inversion_instance
from repro.sat.cdcl import CDCLSolver
from repro.sat.dpll import DPLLSolver
from repro.stats.montecarlo import OnlineStatistics, estimate_trajectory, sample_statistics


@pytest.fixture(scope="module")
def geffe_instance():
    return make_inversion_instance(Geffe.tiny(), keystream_length=24, seed=3)


class TestIncrementalEngine:
    def test_statuses_agree_with_fresh_baseline(self, geffe_instance):
        decomposition = geffe_instance.start_set[:6]
        engine = PredictiveFunction(
            geffe_instance.cnf, sample_size=30, seed=5, incremental=True
        )
        baseline = PredictiveFunction(
            geffe_instance.cnf,
            sample_size=30,
            seed=5,
            incremental=False,
            sample_cache_size=None,
        )
        engine_obs = engine.evaluate(decomposition).observations
        baseline_obs = baseline.evaluate(decomposition).observations
        assert [o.assignment_bits for o in engine_obs] == [
            o.assignment_bits for o in baseline_obs
        ]
        assert [o.status for o in engine_obs] == [o.status for o in baseline_obs]

    def test_engine_reuses_one_solver_state(self, geffe_instance):
        solver = CDCLSolver()
        engine = PredictiveFunction(
            geffe_instance.cnf, solver=solver, sample_size=10, seed=0, incremental=True
        )
        engine.evaluate(geffe_instance.start_set[:5])
        assert solver.loaded_cnf is geffe_instance.cnf

    def test_incremental_requires_capable_solver(self, geffe_instance):
        with pytest.raises(ValueError):
            PredictiveFunction(
                geffe_instance.cnf, solver=DPLLSolver(), incremental=True
            )
        with pytest.raises(ValueError):
            PredictiveFunction(
                geffe_instance.cnf, substitution_mode="units", incremental=True
            )

    def test_supports_incremental_solving_predicate(self):
        assert supports_incremental_solving(CDCLSolver())
        assert not supports_incremental_solving(DPLLSolver())
        assert not supports_incremental_solving(CDCLSolver(), "units")

    def test_engine_is_deterministic(self, geffe_instance):
        decomposition = geffe_instance.start_set[:6]
        runs = []
        for _ in range(2):
            engine = PredictiveFunction(
                geffe_instance.cnf, sample_size=20, seed=9, incremental=True
            )
            runs.append(engine.evaluate(decomposition))
        assert runs[0].value == runs[1].value
        assert [o.cost for o in runs[0].observations] == [
            o.cost for o in runs[1].observations
        ]


class TestSampleCache:
    def test_duplicate_assignments_are_replayed(self, geffe_instance):
        # d = 2 with N = 20 guarantees collisions: at most 4 distinct
        # assignments exist, so at least 16 samples must be cache replays.
        engine = PredictiveFunction(geffe_instance.cnf, sample_size=20, seed=1)
        result = engine.evaluate(geffe_instance.start_set[:2])
        assert engine.num_solver_calls <= 4
        assert engine.sample_cache_hits >= 16
        assert engine.num_subproblem_solves == 20  # logical solves, pre-cache
        assert sum(1 for obs in result.observations if obs.cached) == engine.sample_cache_hits

    def test_replayed_costs_match_fresh_costs(self, geffe_instance):
        # With a deterministic solver and fresh (non-incremental) solves, a
        # cache replay is bit-identical to re-solving, so the cached engine
        # must produce exactly the uncached estimate.
        decomposition = geffe_instance.start_set[:3]
        cached = PredictiveFunction(geffe_instance.cnf, sample_size=25, seed=2)
        uncached = PredictiveFunction(
            geffe_instance.cnf, sample_size=25, seed=2, sample_cache_size=None
        )
        cached_result = cached.evaluate(decomposition)
        uncached_result = uncached.evaluate(decomposition)
        assert cached.sample_cache_hits > 0
        assert [o.cost for o in cached_result.observations] == [
            o.cost for o in uncached_result.observations
        ]
        assert cached_result.value == uncached_result.value

    def test_lru_eviction_bounds_the_cache(self, geffe_instance):
        engine = PredictiveFunction(
            geffe_instance.cnf, sample_size=30, seed=3, sample_cache_size=4
        )
        engine.evaluate(geffe_instance.start_set[:6])
        assert len(engine._sample_cache) <= 4

    def test_cache_disabled(self, geffe_instance):
        engine = PredictiveFunction(
            geffe_instance.cnf, sample_size=15, seed=1, sample_cache_size=None
        )
        engine.evaluate(geffe_instance.start_set[:2])
        assert engine.sample_cache_hits == 0
        assert engine.num_solver_calls == 15

    def test_negative_cache_size_means_disabled(self, geffe_instance):
        engine = PredictiveFunction(
            geffe_instance.cnf, sample_size=8, seed=1, sample_cache_size=-1
        )
        assert engine.sample_cache_size == 0
        engine.evaluate(geffe_instance.start_set[:2])
        assert engine.sample_cache_hits == 0
        assert len(engine._sample_cache) == 0


class TestOnlineStatistics:
    def test_matches_two_pass_statistics(self):
        rng = random.Random(0)
        values = [rng.uniform(0, 100) for _ in range(257)]
        acc = OnlineStatistics()
        acc.add_many(values)
        reference = sample_statistics(values)
        assert acc.count == reference.sample_size
        assert acc.mean == pytest.approx(reference.mean, rel=1e-9)
        assert acc.variance == pytest.approx(reference.variance, rel=1e-9)

    def test_merge_equals_sequential(self):
        rng = random.Random(1)
        left = [rng.gauss(10, 3) for _ in range(40)]
        right = [rng.gauss(20, 5) for _ in range(17)]
        a, b, both = OnlineStatistics(), OnlineStatistics(), OnlineStatistics()
        a.add_many(left)
        b.add_many(right)
        both.add_many(left + right)
        merged = a.merge(b)
        assert merged.count == both.count
        assert merged.mean == pytest.approx(both.mean, rel=1e-9)
        assert merged.variance == pytest.approx(both.variance, rel=1e-9)

    def test_merge_with_empty(self):
        acc = OnlineStatistics()
        acc.add_many([1.0, 2.0, 3.0])
        assert OnlineStatistics().merge(acc).mean == acc.mean
        assert acc.merge(OnlineStatistics()).variance == acc.variance

    def test_empty_estimate_raises(self):
        with pytest.raises(ValueError):
            OnlineStatistics().estimate()

    def test_trajectory_prefixes(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0]
        trajectory = estimate_trajectory(values, [1, 3, 6])
        assert [est.sample_size for est in trajectory] == [1, 3, 6]
        assert trajectory[0].mean == 3.0
        assert trajectory[1].mean == pytest.approx(sum(values[:3]) / 3)
        assert trajectory[2].mean == pytest.approx(sum(values) / 6)
        # Default checkpoints: every prefix.
        assert len(estimate_trajectory(values)) == len(values)

    def test_trajectory_rejects_bad_checkpoints(self):
        with pytest.raises(ValueError):
            estimate_trajectory([1.0, 2.0], [3])


class TestEstimatorSpec:
    def test_round_trip(self):
        spec = EstimatorSpec(
            sample_size=32,
            cost_measure="conflicts",
            incremental=False,
            sample_cache_size=128,
            max_conflicts_per_sample=500,
        )
        assert EstimatorSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError):
            EstimatorSpec.from_dict({"sample_sizes": 10})

    def test_config_round_trip_with_estimator(self):
        cfg = ExperimentConfig(estimator=EstimatorSpec(sample_size=12))
        assert ExperimentConfig.from_dict(cfg.to_dict()) == cfg
        assert ExperimentConfig.from_json(cfg.to_json()) == cfg

    def test_effective_estimator_prefers_explicit_spec(self):
        explicit = EstimatorSpec(sample_size=7, cost_measure="conflicts")
        cfg = ExperimentConfig(estimator=explicit, sample_size=99)
        assert cfg.effective_estimator() is explicit
        legacy = ExperimentConfig(sample_size=99, cost_measure="decisions")
        derived = legacy.effective_estimator()
        assert derived.sample_size == 99
        assert derived.cost_measure == "decisions"
        assert derived.incremental  # the engine is on by default at this layer

    def test_build_uses_incremental_for_cdcl(self, geffe_instance):
        evaluator = EstimatorSpec(sample_size=5).build(geffe_instance.cnf, seed=1)
        assert evaluator.incremental

    def test_build_downgrades_for_incapable_solver(self, geffe_instance):
        evaluator = EstimatorSpec(sample_size=5).build(
            geffe_instance.cnf, solver=DPLLSolver(), seed=1
        )
        assert not evaluator.incremental

    def test_budget_construction(self):
        assert EstimatorSpec().budget() is None
        budget = EstimatorSpec(max_conflicts_per_sample=100).budget()
        assert budget is not None and budget.max_conflicts == 100

    def test_batch_downgrade_warns_and_is_recorded(self, geffe_instance):
        # A solver without solve_batch cannot honour batch_size > 1: the
        # downgrade must be loud (warning) and visible (requested vs actual).
        spec = EstimatorSpec(sample_size=5, batch_size=8)
        with pytest.warns(RuntimeWarning, match="no solve_batch"):
            evaluator = spec.build(geffe_instance.cnf, solver=DPLLSolver(), seed=1)
        assert evaluator.batch_size == 1
        assert evaluator.requested_batch_size == 8

    def test_batch_honoured_without_warning_for_capable_solver(
        self, geffe_instance, recwarn
    ):
        spec = EstimatorSpec(sample_size=5, batch_size=8)
        evaluator = spec.build(geffe_instance.cnf, solver=CDCLSolver(), seed=1)
        assert evaluator.batch_size == evaluator.requested_batch_size == 8
        assert not [w for w in recwarn if issubclass(w.category, RuntimeWarning)]

    def test_downgrade_surfaces_in_run_metadata(self):
        from repro.api import Experiment, InstanceSpec, MinimizerSpec, SolverSpec

        cfg = ExperimentConfig(
            instance=InstanceSpec(cipher="geffe-tiny", seed=1),
            solver=SolverSpec(name="dpll"),
            minimizer=MinimizerSpec(max_evaluations=2),
            estimator=EstimatorSpec(
                sample_size=3, batch_size=4, incremental=False
            ),
        )
        with pytest.warns(RuntimeWarning, match="no solve_batch"):
            result = Experiment.from_config(cfg).estimate()
        assert result.data["batching_downgraded"] is True
        assert result.data["requested_batch_size"] == 4
        assert result.data["batch_size"] == 1


class TestBatchKeystream:
    @pytest.mark.parametrize("size", ["tiny", "small"])
    def test_a51_batch_matches_scalar(self, size):
        generator = A51.scaled(size)
        states = generator.random_states(33, seed=4)
        length = generator.default_keystream_length()
        assert generator.keystream_batch(states, length) == [
            generator.keystream_from_state(state, length) for state in states
        ]

    def test_base_class_batch_matches_scalar(self):
        generator = Geffe.tiny()
        states = generator.random_states(9, seed=2)
        assert generator.keystream_batch(states, 20) == [
            generator.keystream_from_state(state, 20) for state in states
        ]

    def test_a51_batch_rejects_wrong_length_states(self):
        generator = A51.scaled("tiny")
        good = generator.random_state(0)
        with pytest.raises(ValueError):
            generator.keystream_batch([good, good + [1]], 5)
        with pytest.raises(ValueError):
            generator.keystream_batch([good[:-1]], 5)

    def test_random_states_match_random_state_seeds(self):
        generator = Geffe.tiny()
        assert generator.random_states(5, seed=10) == [
            generator.random_state(10 + k) for k in range(5)
        ]

    def test_lfsr_run_batch_matches_run(self):
        register = LFSR(7, (6, 5))
        states = [[(k >> i) & 1 for i in range(7)] for k in range(1, 20)]
        batch = register.run_batch(states, 30)
        for state, expected in zip(states, batch):
            register.load(state)
            assert register.run(30) == expected

    def test_pack_unpack_round_trip(self):
        states = [[1, 0, 1], [0, 1, 1], [0, 0, 0], [1, 1, 0]]
        words = pack_state_columns(states)
        # Transposing back via unpack over "steps" of the word list recovers
        # the columns.
        assert unpack_output_words(words, len(states)) == [
            [state[i] for i in range(3)] for state in states
        ]

    def test_pack_rejects_ragged_batches(self):
        with pytest.raises(ValueError):
            pack_state_columns([[1, 0], [1]])

    def test_empty_batch(self):
        assert lfsr_run_batch((0,), [], 5) == []
        assert A51.scaled("tiny").keystream_batch([], 4) == []
