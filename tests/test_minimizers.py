"""Tests for the simulated annealing and tabu search minimisers (Algorithms 1 and 2).

Besides exercising the two metaheuristics on real (tiny) cryptanalysis
instances, several tests use a *synthetic* predictive function with a known
landscape so that convergence claims are checked against ground truth instead
of solver behaviour.
"""

from __future__ import annotations

import pytest

from repro.ciphers import Geffe
from repro.core.annealing import AnnealingConfig, SimulatedAnnealingMinimizer
from repro.core.decomposition import DecompositionSet
from repro.core.optimizer import MinimizationResult, StoppingCriteria
from repro.core.predictive import PredictiveFunction
from repro.core.search_space import SearchSpace
from repro.core.tabu import TabuConfig, TabuSearchMinimizer
from repro.problems import make_inversion_instance


class SyntheticEvaluator:
    """A drop-in replacement for PredictiveFunction with a known optimum.

    The "value" of a point is ``2^|X̃|`` plus a penalty for every variable
    missing from the target set — so the unique global optimum is exactly the
    target set.  Mimics the real evaluator's public interface closely enough
    for the minimisers (evaluate / num_evaluations / num_subproblem_solves /
    accumulated_activity).
    """

    def __init__(self, target: set[int], base: list[int]):
        self.target = set(target)
        self.base = list(base)
        self._cache: dict[frozenset[int], object] = {}
        self.accumulated_activity = {v: float(v in self.target) for v in self.base}
        self.num_subproblem_solves = 0

    class _Result:
        def __init__(self, dec, value):
            self.decomposition = dec
            self.value = value
            self.conflict_activity: dict[int, float] = {}

    def evaluate(self, decomposition):
        dec = (
            decomposition
            if isinstance(decomposition, DecompositionSet)
            else DecompositionSet.of(decomposition)
        )
        key = dec.as_frozenset()
        if key not in self._cache:
            self.num_subproblem_solves += 1
            missing_penalty = 100.0 * len(self.target - set(dec.variables))
            value = float(2 ** dec.d) + missing_penalty
            self._cache[key] = self._Result(dec, value)
        return self._cache[key]

    @property
    def num_evaluations(self):
        return len(self._cache)


@pytest.fixture(scope="module")
def geffe_setup():
    instance = make_inversion_instance(Geffe.tiny(), keystream_length=24, seed=3)
    evaluator = PredictiveFunction(instance.cnf, sample_size=12, seed=1)
    space = SearchSpace(instance.start_set)
    return instance, evaluator, space


class TestSimulatedAnnealing:
    def test_converges_on_synthetic_landscape(self):
        base = list(range(1, 9))
        target = {1, 2, 3}
        evaluator = SyntheticEvaluator(target, base)
        space = SearchSpace(base)
        minimizer = SimulatedAnnealingMinimizer(
            evaluator,
            space,
            config=AnnealingConfig(seed=0, min_temperature=1e-6, cooling_factor=0.99),
            stopping=StoppingCriteria(max_evaluations=250),
        )
        result = minimizer.minimize()
        assert set(result.best_point) >= target
        assert result.best_value <= 2 ** len(base)

    def test_improves_over_start_point(self, geffe_setup):
        _, evaluator, space = geffe_setup
        minimizer = SimulatedAnnealingMinimizer(
            evaluator, space, config=AnnealingConfig(seed=2),
            stopping=StoppingCriteria(max_evaluations=40),
        )
        result = minimizer.minimize()
        start_value = evaluator.evaluate(space.to_decomposition(space.start_point())).value
        assert result.best_value <= start_value

    def test_result_fields(self, geffe_setup):
        _, evaluator, space = geffe_setup
        minimizer = SimulatedAnnealingMinimizer(
            evaluator, space, stopping=StoppingCriteria(max_evaluations=10)
        )
        result = minimizer.minimize()
        assert isinstance(result, MinimizationResult)
        assert result.num_evaluations <= 10
        assert result.trajectory[0].point == space.start_point()
        assert result.stop_reason
        assert sorted(result.best_point) == result.best_decomposition
        assert "best F" in result.summary()

    def test_respects_custom_start_point(self, geffe_setup):
        instance, evaluator, space = geffe_setup
        start = space.point(instance.start_set[:6])
        result = SimulatedAnnealingMinimizer(
            evaluator, space, stopping=StoppingCriteria(max_evaluations=5)
        ).minimize(start)
        assert result.trajectory[0].point == start

    def test_empty_start_rejected(self, geffe_setup):
        _, evaluator, space = geffe_setup
        with pytest.raises(ValueError):
            SimulatedAnnealingMinimizer(evaluator, space).minimize(frozenset())

    def test_temperature_limit_stops(self):
        base = list(range(1, 6))
        evaluator = SyntheticEvaluator({1}, base)
        minimizer = SimulatedAnnealingMinimizer(
            evaluator,
            SearchSpace(base),
            config=AnnealingConfig(initial_temperature=0.01, min_temperature=0.009,
                                   cooling_factor=0.5, seed=0),
            stopping=StoppingCriteria(max_evaluations=10_000),
        )
        result = minimizer.minimize()
        assert result.stop_reason == "temperature_limit"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AnnealingConfig(cooling_factor=1.5)
        with pytest.raises(ValueError):
            AnnealingConfig(temperature_mode="sideways")
        with pytest.raises(ValueError):
            AnnealingConfig(initial_temperature=0)

    def test_absolute_temperature_mode(self):
        base = list(range(1, 7))
        evaluator = SyntheticEvaluator({1, 2}, base)
        minimizer = SimulatedAnnealingMinimizer(
            evaluator,
            SearchSpace(base),
            config=AnnealingConfig(temperature_mode="absolute", initial_temperature=10.0, seed=1),
            stopping=StoppingCriteria(max_evaluations=100),
        )
        result = minimizer.minimize()
        assert result.best_value < float("inf")

    def test_deterministic_given_seed(self, geffe_setup):
        instance, _, _ = geffe_setup
        results = []
        for _ in range(2):
            evaluator = PredictiveFunction(instance.cnf, sample_size=10, seed=5)
            space = SearchSpace(instance.start_set)
            minimizer = SimulatedAnnealingMinimizer(
                evaluator, space, config=AnnealingConfig(seed=3),
                stopping=StoppingCriteria(max_evaluations=15),
            )
            results.append(minimizer.minimize())
        assert results[0].best_point == results[1].best_point
        assert results[0].best_value == results[1].best_value


class TestTabuSearch:
    def test_converges_on_synthetic_landscape(self):
        base = list(range(1, 9))
        target = {1, 2, 3}
        evaluator = SyntheticEvaluator(target, base)
        space = SearchSpace(base)
        minimizer = TabuSearchMinimizer(
            evaluator, space, stopping=StoppingCriteria(max_evaluations=300)
        )
        result = minimizer.minimize()
        assert set(result.best_point) >= target
        assert result.best_value <= 2 ** len(base)

    def test_never_reevaluates_points(self, geffe_setup):
        _, _, space = geffe_setup
        instance, _, _ = geffe_setup
        evaluator = PredictiveFunction(instance.cnf, sample_size=8, seed=0)
        minimizer = TabuSearchMinimizer(
            evaluator, space, stopping=StoppingCriteria(max_evaluations=25)
        )
        result = minimizer.minimize()
        visited = [v.point for v in result.trajectory]
        assert len(visited) == len(set(visited))

    def test_improves_over_start_point(self, geffe_setup):
        instance, _, space = geffe_setup
        evaluator = PredictiveFunction(instance.cnf, sample_size=10, seed=2)
        minimizer = TabuSearchMinimizer(
            evaluator, space, stopping=StoppingCriteria(max_evaluations=40)
        )
        result = minimizer.minimize()
        start_value = evaluator.evaluate(space.to_decomposition(space.start_point())).value
        assert result.best_value <= start_value

    def test_small_space_terminates_by_l2_exhaustion(self):
        base = [1, 2, 3]
        evaluator = SyntheticEvaluator({1}, base)
        minimizer = TabuSearchMinimizer(
            evaluator, SearchSpace(base), stopping=StoppingCriteria(max_evaluations=10_000)
        )
        result = minimizer.minimize()
        assert result.stop_reason == "l2_empty"
        # The whole space (except the empty set) has been evaluated.
        assert evaluator.num_evaluations == 2 ** len(base) - 1

    def test_exhaustive_search_finds_global_optimum(self):
        base = [1, 2, 3, 4]
        target = {2, 3}
        evaluator = SyntheticEvaluator(target, base)
        minimizer = TabuSearchMinimizer(
            evaluator, SearchSpace(base), stopping=StoppingCriteria(max_evaluations=10_000)
        )
        result = minimizer.minimize()
        assert set(result.best_point) == target

    @pytest.mark.parametrize("heuristic", ["activity", "best_value", "fifo"])
    def test_new_center_heuristics(self, heuristic):
        base = list(range(1, 7))
        evaluator = SyntheticEvaluator({1, 2}, base)
        minimizer = TabuSearchMinimizer(
            evaluator,
            SearchSpace(base),
            config=TabuConfig(new_center_heuristic=heuristic),
            stopping=StoppingCriteria(max_evaluations=120),
        )
        result = minimizer.minimize()
        assert set(result.best_point) >= {1, 2}

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TabuConfig(radius=0)
        with pytest.raises(ValueError):
            TabuConfig(new_center_heuristic="psychic")

    def test_stopping_by_subproblem_budget(self, geffe_setup):
        instance, _, space = geffe_setup
        evaluator = PredictiveFunction(instance.cnf, sample_size=10, seed=0)
        minimizer = TabuSearchMinimizer(
            evaluator, space, stopping=StoppingCriteria(max_evaluations=None, max_subproblem_solves=35)
        )
        result = minimizer.minimize()
        assert result.stop_reason == "max_subproblem_solves"

    def test_deterministic(self, geffe_setup):
        instance, _, _ = geffe_setup
        outcomes = []
        for _ in range(2):
            evaluator = PredictiveFunction(instance.cnf, sample_size=10, seed=4)
            minimizer = TabuSearchMinimizer(
                evaluator,
                SearchSpace(instance.start_set),
                stopping=StoppingCriteria(max_evaluations=20),
            )
            outcomes.append(minimizer.minimize())
        assert outcomes[0].best_point == outcomes[1].best_point
        assert outcomes[0].best_value == outcomes[1].best_value

    def test_tabu_visits_more_points_than_annealing_per_budget(self, geffe_setup):
        # The paper prefers tabu search because it traverses more points per
        # unit of work; with the same sub-problem budget tabu should evaluate
        # at least as many points.
        instance, _, _ = geffe_setup
        budget = StoppingCriteria(max_evaluations=None, max_subproblem_solves=200)
        tabu_eval = PredictiveFunction(instance.cnf, sample_size=10, seed=6)
        sa_eval = PredictiveFunction(instance.cnf, sample_size=10, seed=6)
        tabu = TabuSearchMinimizer(tabu_eval, SearchSpace(instance.start_set), stopping=budget)
        sa = SimulatedAnnealingMinimizer(
            sa_eval, SearchSpace(instance.start_set), config=AnnealingConfig(seed=6), stopping=budget
        )
        tabu_result = tabu.minimize()
        sa_result = sa.minimize()
        assert tabu_result.num_evaluations >= sa_result.num_evaluations
