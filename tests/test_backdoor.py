"""Tests for Strong Unit-Propagation Backdoor Set verification."""

from __future__ import annotations

from repro.ciphers import Geffe
from repro.problems import make_inversion_instance
from repro.sat.backdoor import greedy_backdoor_extension, is_strong_up_backdoor
from repro.sat.formula import CNF


class TestIsStrongUPBackdoor:
    def test_chain_formula_backdoor(self):
        # Fixing x1 decides the implication chain by unit propagation.
        cnf = CNF([(-1, 2), (-2, 3), (-3, 4)])
        result = is_strong_up_backdoor(cnf, [1])
        # x1 = False leaves non-unit clauses untouched, so {1} alone is NOT a backdoor.
        assert not result.is_backdoor
        assert result.counterexample is not None

    def test_full_variable_set_is_always_backdoor(self):
        cnf = CNF([(1, 2), (-1, 3), (2, -3)])
        result = is_strong_up_backdoor(cnf, [1, 2, 3])
        assert result.is_backdoor
        assert result.checked_assignments == 8

    def test_exhaustive_check_counts_assignments(self):
        cnf = CNF([(1, 2)])
        result = is_strong_up_backdoor(cnf, [1, 2], max_assignments=None)
        assert result.checked_assignments == 4

    def test_sampled_check_for_large_sets(self):
        cnf = CNF([tuple(range(1, 35))])
        result = is_strong_up_backdoor(cnf, list(range(1, 35)), max_assignments=64, seed=1)
        assert result.checked_assignments == 64

    def test_cipher_state_is_backdoor(self):
        instance = make_inversion_instance(Geffe.tiny(), keystream_length=20, seed=0)
        result = is_strong_up_backdoor(instance.cnf, instance.start_set, max_assignments=128)
        assert result.is_backdoor

    def test_counterexample_is_reported(self):
        cnf = CNF([(1, 2, 3)])
        result = is_strong_up_backdoor(cnf, [1])
        assert not result.is_backdoor
        assert set(result.counterexample) == {1}


class TestGreedyExtension:
    def test_extends_to_cover_chain(self):
        cnf = CNF([(1, 2, 3), (-1, -2), (-2, -3)])
        extended = greedy_backdoor_extension(cnf, [], max_size=3, samples_per_check=32, seed=0)
        assert 1 <= len(extended) <= 3
        assert set(extended) <= {1, 2, 3}

    def test_respects_max_size(self):
        cnf = CNF([(1, 2, 3, 4, 5)])
        extended = greedy_backdoor_extension(cnf, [], max_size=2, samples_per_check=16, seed=0)
        assert len(extended) <= 2

    def test_seed_variables_are_kept(self):
        cnf = CNF([(1, 2), (3, 4)])
        extended = greedy_backdoor_extension(cnf, [2], max_size=4, samples_per_check=16, seed=0)
        assert 2 in extended
