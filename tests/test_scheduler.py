"""Tests for the unified fault-tolerant scheduler and its simulation harness.

The deterministic simulation harness is the point of this suite: a
virtual-clock executor injects worker crashes, stragglers and duplicated
results from a seeded failure model, and the scheduler invariants — no lost
tasks, no double-counted results, statistics bit-identical to a serial run —
are asserted in fast unit tests, with no real concurrency involved.
"""

from __future__ import annotations

import pytest

from repro.runner.estimation import estimate_family_scheduled, estimation_tasks
from repro.runner.scheduler import (
    FailureModel,
    InlineExecutor,
    RetryPolicy,
    Scheduler,
    SchedulerCheckpoint,
    SimulatedGridExecutor,
    Task,
    TaskGraph,
    WorkerProfile,
    replay_serial,
)


def _jobs(durations):
    return [Task(task_id=f"t{i}", payload=float(d)) for i, d in enumerate(durations)]


def _identity_executor(**kwargs):
    return SimulatedGridExecutor(task_fn=lambda cost: cost, **kwargs)


class TestTaskGraph:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate task id"):
            TaskGraph([Task("a"), Task("a")])

    def test_unknown_dependency_rejected(self):
        with pytest.raises(ValueError, match="unknown task"):
            TaskGraph([Task("a", dependencies=("ghost",))])

    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            TaskGraph([Task("a", dependencies=("b",)), Task("b", dependencies=("a",))])

    def test_topological_order_respects_dependencies(self):
        graph = TaskGraph(
            [Task("late", dependencies=("early",)), Task("early"), Task("free")]
        )
        order = graph.topological_order()
        assert order.index("early") < order.index("late")
        assert set(order) == {"early", "late", "free"}


class TestValidation:
    def test_retry_policy_bounds(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)

    def test_failure_model_bounds(self):
        with pytest.raises(ValueError):
            FailureModel(crash_rate=1.0)
        with pytest.raises(ValueError):
            FailureModel(straggler_factor=0.5)

    def test_scheduler_argument_validation(self):
        graph = TaskGraph(_jobs([1.0]))
        executor = _identity_executor(workers=1)
        with pytest.raises(ValueError):
            Scheduler(graph, executor, queue="lifo")
        with pytest.raises(ValueError):
            Scheduler(graph, executor, replication=0)
        with pytest.raises(ValueError):
            Scheduler(graph, executor, quorum=0)
        with pytest.raises(ValueError):
            # quorum beyond replication needs unlimited retries
            Scheduler(graph, executor, replication=1, quorum=2)

    def test_simulated_executor_validation(self):
        with pytest.raises(ValueError):
            _identity_executor(workers=0)
        with pytest.raises(ValueError):
            _identity_executor(workers=2, dispatch_latency=-1.0)


class TestInlineScheduling:
    def test_results_in_task_order(self):
        graph = TaskGraph(Task(f"t{i}", payload=i) for i in range(10))
        run = Scheduler(graph, InlineExecutor(lambda x: x * x)).run()
        assert run.completed
        assert run.values_in_order() == [i * i for i in range(10)]
        run.assert_invariants()

    def test_task_error_is_retried_then_failed(self):
        def explode(payload):
            raise RuntimeError(f"boom {payload}")

        graph = TaskGraph([Task("bad", payload=1), ])
        run = Scheduler(graph, InlineExecutor(explode), retry=RetryPolicy(max_attempts=3)).run()
        assert not run.completed
        assert "bad" in run.failed
        assert "boom" in run.failed["bad"]
        assert run.metadata["dispatches"] == 3
        run.assert_invariants()

    def test_dependencies_run_before_dependants(self):
        seen = []
        graph = TaskGraph(
            [
                Task("consume", payload="consume", dependencies=("produce",)),
                Task("produce", payload="produce"),
            ]
        )
        run = Scheduler(graph, InlineExecutor(lambda p: seen.append(p) or p)).run()
        assert run.completed
        assert seen.index("produce") < seen.index("consume")


class TestVirtualCluster:
    def test_fifo_reproduces_greedy_list_scheduling(self):
        # Classic hand example: [1, 1, 1, 9] on 2 cores, FIFO makespan is 10.
        graph = TaskGraph(_jobs([1.0, 1.0, 1.0, 9.0]))
        run = Scheduler(
            graph, _identity_executor(workers=2), retry=RetryPolicy(max_attempts=1)
        ).run()
        assert run.makespan == 10.0
        assert sorted(run.worker_loads) == [2.0, 10.0]

    def test_heterogeneous_workers_finish_proportionally(self):
        profiles = [WorkerProfile(speed=1.0), WorkerProfile(speed=2.0)]
        graph = TaskGraph(_jobs([4.0, 4.0]))
        run = Scheduler(
            graph, _identity_executor(workers=profiles), retry=RetryPolicy(max_attempts=1)
        ).run()
        # The fast worker finishes its job in half the virtual time.
        assert run.makespan == 4.0
        assert sorted(run.worker_loads) == [2.0, 4.0]

    def test_dispatch_latency_extends_makespan(self):
        graph = TaskGraph(_jobs([1.0] * 4))
        plain = Scheduler(graph, _identity_executor(workers=2)).run()
        slow = Scheduler(
            TaskGraph(_jobs([1.0] * 4)),
            _identity_executor(workers=2, dispatch_latency=0.5),
        ).run()
        assert slow.makespan == plain.makespan + 2 * 0.5

    def test_work_stealing_drains_imbalanced_queues(self):
        # Round-robin placement gives worker 0 all the long jobs; stealing
        # lets worker 1 take them from the back once its own queue drains.
        durations = [8.0, 1.0] * 8
        graph = TaskGraph(_jobs(durations))
        run = Scheduler(
            graph,
            _identity_executor(workers=2),
            queue="work-stealing",
            retry=RetryPolicy(max_attempts=1),
        ).run()
        assert run.completed
        assert run.metadata["steals"] > 0
        assert run.values_in_order() == durations
        run.assert_invariants()


class TestFailureInjection:
    def _run_with(self, failures, retry=None, tasks=40, workers=4, **scheduler_kwargs):
        durations = [float(1 + (i % 7)) for i in range(tasks)]
        graph = TaskGraph(_jobs(durations))
        executor = _identity_executor(workers=workers, failures=failures)
        run = Scheduler(
            graph,
            executor,
            retry=retry or RetryPolicy(max_attempts=None, timeout=100.0),
            **scheduler_kwargs,
        ).run()
        return durations, run

    def test_crashes_are_retried_until_complete(self):
        durations, run = self._run_with(FailureModel(crash_rate=0.3, seed=5))
        assert run.completed
        assert run.metadata["injected_crashes"] > 0
        assert run.metadata["retries"] >= run.metadata["injected_crashes"]
        assert run.metadata["dispatches"] > len(durations)
        assert run.values_in_order() == durations
        run.assert_invariants()

    def test_crashes_do_not_change_results_vs_serial_replay(self):
        durations, run = self._run_with(FailureModel(crash_rate=0.25, seed=11))
        serial = replay_serial(TaskGraph(_jobs(durations)), lambda c: c)
        assert run.values_in_order() == serial.values_in_order()

    def test_duplicated_results_are_discarded_not_double_counted(self):
        durations, run = self._run_with(FailureModel(duplicate_rate=0.5, seed=3))
        assert run.completed
        assert run.metadata["injected_duplicates"] > 0
        assert run.metadata["duplicates_discarded"] > 0
        # Exactly one accepted result per task, whatever was delivered twice.
        assert len(run.results) == len(durations)
        assert run.values_in_order() == durations

    def test_stragglers_preempted_at_deadline_and_retried(self):
        durations = [1.0] * 30
        graph = TaskGraph(_jobs(durations))
        executor = SimulatedGridExecutor(
            task_fn=lambda cost: cost,
            workers=3,
            failures=FailureModel(straggler_rate=0.4, straggler_factor=50.0, seed=9),
            preempt_on_timeout=True,
        )
        run = Scheduler(
            graph, executor, retry=RetryPolicy(max_attempts=None, timeout=10.0)
        ).run()
        assert run.completed
        assert executor.injected_stragglers > 0
        assert run.metadata["timeouts"] > 0
        assert run.values_in_order() == durations
        run.assert_invariants()

    def test_everything_at_once_still_completes_identically(self):
        chaos = FailureModel(
            crash_rate=0.25, straggler_rate=0.2, straggler_factor=3.0,
            duplicate_rate=0.2, seed=42,
        )
        durations, run = self._run_with(chaos, workers=5)
        assert run.completed
        assert run.values_in_order() == durations
        run.assert_invariants()

    def test_simulation_is_deterministic_given_seed(self):
        model = FailureModel(crash_rate=0.3, duplicate_rate=0.2, seed=7)
        _, first = self._run_with(model)
        _, second = self._run_with(model)
        assert first.makespan == second.makespan
        assert first.metadata == second.metadata
        assert first.values_in_order() == second.values_in_order()


class TestReplicationQuorum:
    def test_replicated_tasks_reach_quorum_despite_crashes(self):
        durations = [2.0] * 20
        graph = TaskGraph(_jobs(durations))
        executor = _identity_executor(
            workers=6, failures=FailureModel(crash_rate=0.3, seed=1)
        )
        run = Scheduler(
            graph,
            executor,
            retry=RetryPolicy(max_attempts=None, timeout=50.0),
            replication=2,
            quorum=2,
        ).run()
        assert run.completed
        assert run.metadata["dispatches"] >= 2 * len(durations)
        assert len(run.results) == len(durations)
        run.assert_invariants()


class TestStopAndInterrupt:
    def test_stop_on_predicate_reports_prefix(self):
        graph = TaskGraph(Task(f"t{i}", payload=i) for i in range(20))
        run = Scheduler(
            graph, InlineExecutor(lambda x: x), stop_on=lambda tid, value: value == 5
        ).run()
        assert run.stopped_early
        assert not run.completed
        assert run.values_in_order() == list(range(6))
        run.assert_invariants()

    def test_interrupt_after_pauses_with_checkpointable_state(self):
        graph = TaskGraph(Task(f"t{i}", payload=i) for i in range(10))
        run = Scheduler(graph, InlineExecutor(lambda x: x), interrupt_after=4).run()
        assert run.interrupted and not run.completed
        checkpoint = run.checkpoint()
        assert len(checkpoint) == 4
        run.assert_invariants()


class TestCheckpointResume:
    def test_round_trip_matches_uninterrupted_run(self, tmp_path):
        durations = [float(i % 5 + 1) for i in range(16)]
        path = tmp_path / "sched.ckpt"

        first = Scheduler(
            TaskGraph(_jobs(durations)),
            InlineExecutor(lambda c: c),
            checkpoint_sink=lambda chk: chk.save(path),
            interrupt_after=7,
        ).run()
        assert first.interrupted and len(first.results) == 7

        resumed = Scheduler(
            TaskGraph(_jobs(durations)),
            InlineExecutor(lambda c: c),
            checkpoint=SchedulerCheckpoint.load(path),
        ).run()
        assert resumed.completed
        assert resumed.metadata["from_checkpoint"] == 7
        # Only the missing tasks were dispatched on resume.
        assert resumed.metadata["dispatches"] == len(durations) - 7
        serial = replay_serial(TaskGraph(_jobs(durations)), lambda c: c)
        assert resumed.values_in_order() == serial.values_in_order()

    def test_checkpoint_save_load_round_trip(self, tmp_path):
        checkpoint = SchedulerCheckpoint(results={"a": 1, "b": [2, 3]})
        path = tmp_path / "chk.json"
        checkpoint.save(path)
        loaded = SchedulerCheckpoint.load(path)
        assert loaded.results == {"a": 1, "b": [2, 3]}

    def test_load_rejects_foreign_documents(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"kind": "something-else"}')
        with pytest.raises(ValueError):
            SchedulerCheckpoint.load(path)


class TestScheduledEstimation:
    """The acceptance criteria of the scheduler issue, on a real instance."""

    SAMPLE_SIZE = 20

    @pytest.fixture(scope="class")
    def instance(self):
        from repro.ciphers import Geffe
        from repro.problems import make_inversion_instance

        return make_inversion_instance(Geffe.tiny(), keystream_length=24, seed=5)

    def _estimate(self, instance, **kwargs):
        return estimate_family_scheduled(
            instance.cnf,
            instance.start_set[:6],
            sample_size=self.SAMPLE_SIZE,
            seed=13,
            **kwargs,
        )

    def test_estimation_tasks_are_a_pure_function_of_the_seed(self):
        first = estimation_tasks([3, 1, 8], 5, seed=7)
        second = estimation_tasks([1, 8, 3], 5, seed=7)
        assert [first.task(t).payload for t in first.task_ids] == [
            second.task(t).payload for t in second.task_ids
        ]

    def test_simulated_cluster_statistics_bit_identical_to_serial(self, instance):
        serial = self._estimate(instance, executor="serial")
        cluster = self._estimate(instance, executor="simulated-cluster", cores=4)
        assert serial.statistics == cluster.statistics
        assert serial.costs == cluster.costs
        assert serial.statuses == cluster.statuses

    def test_thread_executor_statistics_bit_identical_to_serial(self, instance):
        serial = self._estimate(instance, executor="serial")
        threaded = self._estimate(instance, executor="thread", processes=3)
        assert serial.statistics == threaded.statistics

    def test_process_pool_statistics_bit_identical_to_serial(self, instance):
        serial = estimate_family_scheduled(
            instance.cnf, instance.start_set[:6], sample_size=8, seed=13,
            executor="serial",
        )
        pooled = estimate_family_scheduled(
            instance.cnf, instance.start_set[:6], sample_size=8, seed=13,
            executor="process-pool", processes=2,
        )
        assert serial.statistics == pooled.statistics

    def test_twenty_percent_crashes_still_bit_identical(self, instance):
        serial = self._estimate(instance, executor="serial")
        crashy = self._estimate(
            instance,
            executor="simulated-cluster",
            cores=4,
            failures=FailureModel(
                crash_rate=0.35, straggler_rate=0.1, duplicate_rate=0.1, seed=1
            ),
            retry=RetryPolicy(max_attempts=None, timeout=1e6),
        )
        run = crashy.run
        # The acceptance bar: at least 20% of the sample hit a worker crash.
        assert run.metadata["injected_crashes"] >= 0.2 * self.SAMPLE_SIZE
        assert run.completed
        assert serial.statistics == crashy.statistics
        assert serial.costs == crashy.costs
        run.assert_invariants()

    def test_checkpoint_resume_reproduces_full_trajectory(self, instance, tmp_path):
        path = tmp_path / "trajectory.ckpt"
        serial = self._estimate(instance, executor="serial")

        interrupted = self._estimate(
            instance,
            executor="serial",
            checkpoint_sink=lambda chk: chk.save(path),
            interrupt_after=8,
        )
        assert interrupted.run.interrupted
        assert len(interrupted.costs) == 8

        resumed = self._estimate(
            instance, executor="serial", checkpoint=SchedulerCheckpoint.load(path)
        )
        assert resumed.run.completed
        assert resumed.run.metadata["from_checkpoint"] == 8
        assert resumed.statistics == serial.statistics
        assert resumed.costs == serial.costs

    def test_unknown_executor_name_rejected(self, instance):
        with pytest.raises(ValueError, match="unknown estimation executor"):
            self._estimate(instance, executor="quantum")

    def test_pdsat_scheduled_estimation_entry_point(self, instance):
        from repro.core.pdsat import PDSAT

        pdsat = PDSAT(instance, sample_size=10, seed=13)
        serial = pdsat.estimate_samples_scheduled(instance.start_set[:6])
        cluster = pdsat.estimate_samples_scheduled(
            instance.start_set[:6], executor="simulated-cluster", cores=4
        )
        assert serial.statistics == cluster.statistics
        assert serial.value == cluster.value


class TestPDSATBackendRouting:
    def test_solve_family_through_backend_matches_inline_loop(self):
        from repro.api.backends import SimulatedClusterBackend
        from repro.ciphers import Geffe
        from repro.core.pdsat import PDSAT
        from repro.problems import make_inversion_instance

        instance = make_inversion_instance(Geffe.tiny(), keystream_length=24, seed=5)
        pdsat = PDSAT(instance, sample_size=10, seed=1)
        decomposition = instance.start_set[:5]
        inline = pdsat.solve_family(decomposition)
        routed = pdsat.solve_family(
            decomposition, backend=SimulatedClusterBackend(cores=4)
        )
        assert inline.statuses == routed.statuses
        assert inline.costs == routed.costs
        assert inline.num_sat == routed.num_sat


class TestReviewHardening:
    """Regressions for the code-review findings on the first cut."""

    def test_fatal_errors_fail_fast_without_retries(self):
        def picky(payload):
            raise ValueError(f"bad input {payload}")

        graph = TaskGraph([Task("bad", payload=1), Task("good", payload=2)])
        run = Scheduler(
            graph,
            InlineExecutor(lambda p: picky(p) if p == 1 else p),
            retry=RetryPolicy(max_attempts=5),
        ).run()
        assert "bad" in run.failed and "bad input 1" in run.failed["bad"]
        # One dispatch for the fatal task, one for the good one: no retries.
        assert run.metadata["dispatches"] == 2
        assert run.metadata["retries"] == 0
        assert run.results["good"].value == 2
        run.assert_invariants()

    def test_executor_closed_when_a_callback_raises(self):
        class ClosableExecutor(InlineExecutor):
            closed = False

            def close(self):
                ClosableExecutor.closed = True

        def bad_sink(_chk):
            raise OSError("disk full")

        graph = TaskGraph([Task("t0", payload=0)])
        with pytest.raises(OSError):
            Scheduler(
                graph, ClosableExecutor(lambda p: p), checkpoint_sink=bad_sink
            ).run()
        assert ClosableExecutor.closed

    def test_thread_estimation_uses_one_solver_per_thread(self):
        from repro.ciphers import Geffe
        from repro.problems import make_inversion_instance

        instance = make_inversion_instance(Geffe.tiny(), keystream_length=24, seed=5)
        serial = estimate_family_scheduled(
            instance.cnf, instance.start_set[:6], sample_size=24, seed=3,
            executor="serial",
        )
        for _ in range(3):  # racy code would flake across repeats
            threaded = estimate_family_scheduled(
                instance.cnf, instance.start_set[:6], sample_size=24, seed=3,
                executor="thread", processes=4,
            )
            assert threaded.statistics == serial.statistics
            assert threaded.costs == serial.costs

    def test_checkpoint_of_other_family_is_rejected(self, tmp_path):
        from repro.api.backends import SerialBackend
        from repro.ciphers import Geffe
        from repro.problems import make_inversion_instance
        from repro.runner.scheduler import SchedulerCheckpoint as Checkpoint

        instance = make_inversion_instance(Geffe.tiny(), keystream_length=24, seed=5)
        path = tmp_path / "family.ckpt"
        vectors_a = [[v] for v in instance.start_set[:2]]
        vectors_b = [[-v] for v in instance.start_set[:2]]
        SerialBackend().run(
            instance.cnf, vectors_a, checkpoint_sink=lambda chk: chk.save(path)
        )
        with pytest.raises(ValueError, match="different experiment"):
            SerialBackend().run(
                instance.cnf, vectors_b, checkpoint=Checkpoint.load(path)
            )

    def test_quorum_beyond_replication_completes_with_unlimited_retries(self):
        # Successful-but-below-quorum tasks must re-issue themselves: with
        # replication=1 and quorum=3 every acceptance needs three successes.
        graph = TaskGraph(_jobs([1.0] * 6))
        run = Scheduler(
            graph,
            _identity_executor(workers=2),
            retry=RetryPolicy(max_attempts=None),
            replication=1,
            quorum=3,
        ).run()
        assert run.completed
        assert run.metadata["dispatches"] >= 3 * 6
        run.assert_invariants()

    def test_stop_on_sat_prefix_is_contiguous_under_crashes(self):
        from repro.api.backends import SerialBackend, SimulatedClusterBackend
        from repro.ciphers import Geffe
        from repro.problems import make_inversion_instance

        instance = make_inversion_instance(Geffe.tiny(), keystream_length=24, seed=5)
        dec = instance.start_set[:4]
        from repro.core.decomposition import DecompositionSet

        vectors = [
            a.to_literals() for a in DecompositionSet.of(dec).all_assignments()
        ]
        serial = SerialBackend().run(instance.cnf, vectors, stop_on_sat=True)
        for seed in range(3):
            crashy = SimulatedClusterBackend(
                cores=2, crash_rate=0.5, failures_seed=seed, max_attempts=None,
                timeout=1e6,
            ).run(instance.cnf, vectors, stop_on_sat=True)
            assert [o.status for o in crashy.outcomes] == [
                o.status for o in serial.outcomes
            ]
            assert [o.cost for o in crashy.outcomes] == [o.cost for o in serial.outcomes]


# --------------------------------------------------------------------------
# PR 7: the process executor pickles each payload once, not once per attempt.

class _CountingPayload:
    """A payload that counts how many times the *leader* serialises it."""

    pickles = 0

    def __init__(self, value):
        self.value = value

    def __reduce__(self):
        type(self).pickles += 1
        return (_CountingPayload, (self.value,))


def _flaky_first_attempt(payload):
    """Fail the first attempt per sentinel file, succeed afterwards."""
    import os

    value, sentinel = payload.value
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as handle:
            handle.write("attempted")
        raise RuntimeError("injected first-attempt failure")
    return value


def _fatal_on_negative(payload):
    if payload.value < 0:
        raise ValueError(f"fatal payload {payload.value}")
    return payload.value


class TestProcessExecutorSerialization:
    """Task payloads ship as cached byte blobs: one pickle per task, ever.

    The zero-copy batching path (PR 7) shrinks payloads to (segment name,
    assumption bits) precisely so that per-task serialisation is cheap — but
    only if the executor does not quietly re-pickle on every retry attempt.
    These tests pin the blob-cache contract of ``ProcessExecutor``: pickle on
    first dispatch, reuse across retries, evict on success or fatal error,
    clear on close.
    """

    def test_payload_pickled_once_despite_retries(self, tmp_path):
        from repro.runner.scheduler import ProcessExecutor

        _CountingPayload.pickles = 0
        tasks = [
            Task(
                task_id=f"flaky-{i}",
                payload=_CountingPayload((i, str(tmp_path / f"sentinel-{i}"))),
            )
            for i in range(4)
        ]
        executor = ProcessExecutor(task_fn=_flaky_first_attempt, num_workers=2)
        run = Scheduler(
            TaskGraph(tasks), executor, retry=RetryPolicy(max_attempts=4)
        ).run()
        assert not run.failed
        assert run.values_in_order() == [0, 1, 2, 3]
        # Every task failed its first attempt, so dispatches > tasks ...
        assert run.metadata["retries"] >= len(tasks)
        # ... yet the leader serialised each payload exactly once.
        assert _CountingPayload.pickles == len(tasks)
        # Completed tasks evict their cached blobs (memory tracks in-flight).
        assert executor._payload_blobs == {}

    def test_blob_evicted_on_success_fatal_error_and_close(self):
        from repro.runner.scheduler import ProcessExecutor

        _CountingPayload.pickles = 0
        tasks = [
            Task(task_id="ok", payload=_CountingPayload(7)),
            Task(task_id="fatal", payload=_CountingPayload(-1)),
        ]
        executor = ProcessExecutor(task_fn=_fatal_on_negative, num_workers=1)
        try:
            run = Scheduler(
                TaskGraph(tasks), executor, retry=RetryPolicy(max_attempts=5)
            ).run()
        finally:
            executor.close()
        assert run.results["ok"].value == 7
        assert "fatal" in run.failed and "fatal payload -1" in run.failed["fatal"]
        # A fatal error never retries, so the one pickle per task stands and
        # both blobs — the successful and the fatally failed one — are gone.
        assert run.metadata["retries"] == 0
        assert _CountingPayload.pickles == len(tasks)
        assert executor._payload_blobs == {}


# --------------------------------------------------------------------------
# PR 9: corrupt-state recovery and executor degradation.

class TestCheckpointQuarantine:
    """``load_or_quarantine``: bad checkpoint files read as "no checkpoint"."""

    def test_missing_file_is_none_and_nothing_is_quarantined(self, tmp_path):
        assert SchedulerCheckpoint.load_or_quarantine(tmp_path / "none.ckpt") is None
        assert list(tmp_path.iterdir()) == []

    def test_truncated_json_is_quarantined(self, tmp_path):
        path = tmp_path / "run.ckpt"
        path.write_text('{"kind": "scheduler-checkpoint", "results": {"t0"')
        assert SchedulerCheckpoint.load_or_quarantine(path) is None
        assert not path.exists()
        assert (tmp_path / "run.ckpt.corrupt").exists()

    def test_valid_json_wrong_document_kind_is_quarantined(self, tmp_path):
        import json

        path = tmp_path / "run.ckpt"
        path.write_text(json.dumps({"kind": "not-a-checkpoint"}))
        assert SchedulerCheckpoint.load_or_quarantine(path) is None
        assert (tmp_path / "run.ckpt.corrupt").exists()

    def test_valid_checkpoint_round_trips(self, tmp_path):
        path = tmp_path / "run.ckpt"
        checkpoint = SchedulerCheckpoint(
            results={"t0": 1.0}, metadata={"fingerprint": "abc"}
        )
        checkpoint.save(path)
        loaded = SchedulerCheckpoint.load_or_quarantine(path)
        assert loaded is not None
        assert loaded.to_dict() == checkpoint.to_dict()
        assert path.exists()  # a good file is never quarantined

    def test_quarantine_keeps_distinct_corpses(self, tmp_path):
        """Repeated corruption never overwrites earlier quarantined evidence."""
        from repro.resilience import quarantine

        path = tmp_path / "run.ckpt"
        corpses = []
        for _ in range(3):
            path.write_text("garbage")
            corpses.append(quarantine(path))
        assert len({c.name for c in corpses}) == 3
        assert not path.exists()


def _double(payload):
    return payload * 2


class TestExecutorDegradation:
    """The process executor falls back to threads instead of failing the run."""

    def test_unbuildable_pool_degrades_to_threads(self, monkeypatch):
        import concurrent.futures

        from repro.runner.scheduler import ProcessExecutor

        def no_pool(*args, **kwargs):
            raise OSError("fork unavailable in this environment")

        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor", no_pool)
        tasks = [Task(task_id=f"t{i}", payload=i) for i in range(4)]
        executor = ProcessExecutor(task_fn=_double, num_workers=2)
        try:
            with pytest.warns(RuntimeWarning, match="degrading to a thread executor"):
                run = Scheduler(TaskGraph(tasks), executor).run()
        finally:
            executor.close()
        assert not run.failed
        assert run.values_in_order() == [0, 2, 4, 6]
        assert "cannot create process pool" in executor.degraded_reason
        # The run advertises that it did not get real process isolation.
        assert run.metadata["executor_fallback"] == executor.degraded_reason

    def test_degradation_runs_the_initializer_once_in_process(self, monkeypatch):
        import concurrent.futures

        from repro.runner.scheduler import ProcessExecutor

        monkeypatch.setattr(
            concurrent.futures,
            "ProcessPoolExecutor",
            lambda *a, **k: (_ for _ in ()).throw(OSError("no fork")),
        )
        calls = []
        executor = ProcessExecutor(
            task_fn=_double,
            num_workers=2,
            initializer=calls.append,
            initargs=("worker-state",),
        )
        try:
            with pytest.warns(RuntimeWarning):
                run = Scheduler(
                    TaskGraph([Task(task_id="t", payload=21)]), executor
                ).run()
        finally:
            executor.close()
        assert run.results["t"].value == 42
        # Thread workers share the process: the per-worker setup ran exactly
        # once, not once per worker.
        assert calls == ["worker-state"]

    def test_metadata_untouched_when_pool_is_healthy(self):
        from repro.runner.scheduler import ProcessExecutor

        tasks = [Task(task_id=f"t{i}", payload=i) for i in range(2)]
        executor = ProcessExecutor(task_fn=_double, num_workers=2)
        try:
            run = Scheduler(TaskGraph(tasks), executor).run()
        finally:
            executor.close()
        assert executor.degraded_reason is None
        assert "executor_fallback" not in run.metadata
