"""Tests for the WalkSAT local-search solver."""

from __future__ import annotations

import pytest

from repro.sat.formula import CNF
from repro.sat.random_cnf import planted_ksat
from repro.sat.solver import SolverStatus, check_model
from repro.sat.walksat import WalkSATSolver


class TestWalkSAT:
    def test_finds_model_on_easy_instance(self):
        cnf, _ = planted_ksat(20, 60, seed=0)
        result = WalkSATSolver(seed=1).solve(cnf)
        assert result.is_sat
        assert check_model(cnf, result.model)

    def test_never_reports_unsat(self, tiny_unsat_cnf):
        result = WalkSATSolver(max_flips=200, max_tries=2, seed=0).solve(tiny_unsat_cnf)
        assert result.status is SolverStatus.UNKNOWN

    def test_respects_assumptions(self):
        cnf = CNF([(1, 2)])
        result = WalkSATSolver(seed=3).solve(cnf, assumptions=[-1])
        assert result.is_sat
        assert result.model[1] is False

    def test_assumption_that_blocks_all_models(self):
        cnf = CNF([(1,)])
        result = WalkSATSolver(max_flips=50, max_tries=1, seed=0).solve(cnf, assumptions=[-1])
        assert result.status is SolverStatus.UNKNOWN

    def test_noise_validation(self):
        with pytest.raises(ValueError):
            WalkSATSolver(noise=1.5)

    def test_deterministic_given_seed(self):
        cnf, _ = planted_ksat(15, 45, seed=2)
        a = WalkSATSolver(seed=7).solve(cnf)
        b = WalkSATSolver(seed=7).solve(cnf)
        assert a.status == b.status
        assert a.stats.decisions == b.stats.decisions
