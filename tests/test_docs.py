"""Documentation checks: runnable snippets and internal links.

Two guarantees keep ``docs/`` from rotting:

* every fenced ``python`` block in ``docs/api-reference.md`` is executed, in
  order, in one shared namespace (doctest-style — later blocks may use names
  defined by earlier ones); an assertion failure or exception in a snippet
  fails the build;
* every relative markdown link in ``docs/`` and ``README.md`` must point at a
  file that exists in the repository.

The CI ``docs`` job runs exactly this module.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"

#: Markdown files whose links are checked.
LINKED_FILES = sorted(DOCS_DIR.glob("*.md")) + [REPO_ROOT / "README.md"]

#: Markdown files whose ``python`` blocks are executed.
EXECUTABLE_FILES = [DOCS_DIR / "api-reference.md"]

_FENCE_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)
# [text](target) links, excluding images; target captured up to ) or #anchor.
_LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)#\s]+)(?:#[^)\s]*)?\)")


def _python_blocks(path: Path) -> list[str]:
    return [match.group(1) for match in _FENCE_RE.finditer(path.read_text())]


class TestDocsTreeExists:
    @pytest.mark.parametrize(
        "page",
        ["index.md", "architecture.md", "paper-mapping.md", "performance.md", "api-reference.md"],
    )
    def test_page_present_and_titled(self, page):
        path = DOCS_DIR / page
        assert path.exists(), f"missing documentation page {page}"
        assert path.read_text().lstrip().startswith("#"), f"{page} lacks a title"


class TestInternalLinks:
    @pytest.mark.parametrize("path", LINKED_FILES, ids=lambda p: p.name)
    def test_relative_links_resolve(self, path):
        broken = []
        for target in _LINK_RE.findall(path.read_text()):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                broken.append(target)
        assert not broken, f"{path.name}: broken relative links {broken}"


class TestApiReferenceSnippets:
    def test_snippets_execute_in_order(self):
        blocks = _python_blocks(EXECUTABLE_FILES[0])
        assert len(blocks) >= 10, "api-reference.md lost its runnable snippets"
        namespace: dict[str, object] = {}
        try:
            for index, block in enumerate(blocks, start=1):
                try:
                    exec(compile(block, f"api-reference.md[block {index}]", "exec"), namespace)
                except Exception as error:  # pragma: no cover - failure reporting
                    pytest.fail(
                        f"api-reference.md snippet {index} failed: {error!r}\n---\n{block}"
                    )
        finally:
            # The snippets register demo components; keep the process-global
            # registries clean for the rest of the test session.
            from repro.api.registry import CIPHERS, COST_MEASURES

            CIPHERS.unregister("docs-demo-cipher")
            COST_MEASURES.unregister("docs-demo-measure")
