"""Documentation checks: runnable snippets, internal links, reachability.

Three guarantees keep ``docs/`` from rotting:

* every fenced ``python`` block in the executable pages
  (``api-reference.md``, ``preprocessing.md``, ``tutorial.md``) is executed,
  in order, in one shared per-file namespace (doctest-style — later blocks
  may use names defined by earlier ones); an assertion failure or exception
  in a snippet fails the build;
* every relative markdown link in ``docs/`` and ``README.md`` must point at a
  file that exists in the repository;
* every page in ``docs/`` must be **reachable from ``docs/index.md``** by
  following relative links — an orphan page is a page no reader can find, so
  it fails the build.

The CI ``docs`` job runs exactly this module.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"

#: Markdown files whose links are checked.
LINKED_FILES = sorted(DOCS_DIR.glob("*.md")) + [REPO_ROOT / "README.md"]

#: Markdown files whose ``python`` blocks are executed (each in its own
#: namespace).  The ``cleanup`` callable undoes process-global side effects
#: (demo registry entries) so the rest of the test session stays clean.
def _cleanup_api_reference() -> None:
    from repro.api.registry import CIPHERS, COST_MEASURES

    CIPHERS.unregister("docs-demo-cipher")
    COST_MEASURES.unregister("docs-demo-measure")


EXECUTABLE_FILES = {
    "api-reference.md": _cleanup_api_reference,
    "performance.md": None,
    "portfolio.md": None,
    "preprocessing.md": None,
    "robustness.md": None,
    "service.md": None,
    "tracing.md": None,
    "tutorial.md": None,
}

#: Every executable page must keep a non-trivial number of runnable blocks —
#: a page whose snippets were silently deleted would otherwise "pass".
MIN_SNIPPETS = {
    "api-reference.md": 10,
    "performance.md": 5,
    "portfolio.md": 8,
    "preprocessing.md": 8,
    "robustness.md": 5,
    "service.md": 8,
    "tracing.md": 8,
    "tutorial.md": 5,
}

_FENCE_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)
# [text](target) links, excluding images; target captured up to ) or #anchor.
_LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)#\s]+)(?:#[^)\s]*)?\)")


def _python_blocks(path: Path) -> list[str]:
    return [match.group(1) for match in _FENCE_RE.finditer(path.read_text())]


def _relative_links(path: Path) -> list[str]:
    return [
        target
        for target in _LINK_RE.findall(path.read_text())
        if not target.startswith(("http://", "https://", "mailto:"))
    ]


class TestDocsTreeExists:
    @pytest.mark.parametrize(
        "page",
        [
            "index.md",
            "architecture.md",
            "paper-mapping.md",
            "performance.md",
            "preprocessing.md",
            "robustness.md",
            "service.md",
            "tracing.md",
            "tutorial.md",
            "api-reference.md",
        ],
    )
    def test_page_present_and_titled(self, page):
        path = DOCS_DIR / page
        assert path.exists(), f"missing documentation page {page}"
        assert path.read_text().lstrip().startswith("#"), f"{page} lacks a title"


class TestInternalLinks:
    @pytest.mark.parametrize("path", LINKED_FILES, ids=lambda p: p.name)
    def test_relative_links_resolve(self, path):
        broken = []
        for target in _relative_links(path):
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                broken.append(target)
        assert not broken, f"{path.name}: broken relative links {broken}"

    def test_no_orphan_pages(self):
        """Every docs/*.md page must be reachable from docs/index.md."""
        reachable: set[Path] = set()
        frontier = [DOCS_DIR / "index.md"]
        while frontier:
            page = frontier.pop()
            if page in reachable or not page.exists():
                continue
            reachable.add(page)
            for target in _relative_links(page):
                resolved = (page.parent / target).resolve()
                if resolved.suffix == ".md" and resolved.is_relative_to(DOCS_DIR):
                    frontier.append(resolved)
        orphans = sorted(
            path.name for path in DOCS_DIR.glob("*.md") if path.resolve() not in reachable
        )
        assert not orphans, (
            f"orphan documentation pages (unreachable from index.md): {orphans}"
        )


class TestExecutableSnippets:
    @pytest.mark.parametrize("name", sorted(EXECUTABLE_FILES), ids=lambda n: n)
    def test_snippets_execute_in_order(self, name):
        path = DOCS_DIR / name
        blocks = _python_blocks(path)
        assert len(blocks) >= MIN_SNIPPETS[name], f"{name} lost its runnable snippets"
        namespace: dict[str, object] = {}
        cleanup = EXECUTABLE_FILES[name]
        try:
            for index, block in enumerate(blocks, start=1):
                try:
                    exec(compile(block, f"{name}[block {index}]", "exec"), namespace)
                except Exception as error:  # pragma: no cover - failure reporting
                    pytest.fail(f"{name} snippet {index} failed: {error!r}\n---\n{block}")
        finally:
            if cleanup is not None:
                cleanup()
