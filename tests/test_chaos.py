"""The cross-layer chaos suite (:mod:`repro.service.chaos`).

Every scenario stands up real daemons on a throwaway state dir, injects one
class of fault — worker crash, hung job, corrupt journal, truncated
checkpoint, dropped client connections, kill -9 + restart — and asserts the
service *converged*: all jobs terminal, completed results bit-identical to a
fault-free run, no leaked shared-memory segments, no stuck threads, a
journal that loads cleanly.  ``repro-sat chaos`` runs the same scenarios
from the command line (the CI ``chaos-smoke`` job).
"""

from __future__ import annotations

import pytest

from repro.service import ResourceBudget, ServiceConfig, ServiceDaemon
from repro.service.chaos import (
    SCENARIOS,
    ChaosPolicy,
    InjectedWorkerCrash,
    run_scenario,
)


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_scenario_converges(scenario, tmp_path):
    report = run_scenario(scenario, tmp_path, seed=1)
    assert report.passed, f"{scenario} failed: {report.failures}"


def test_cli_scenario_choices_match_the_harness():
    from repro.cli import _CHAOS_SCENARIOS

    assert _CHAOS_SCENARIOS == SCENARIOS


def test_chaos_cli_runs_one_scenario(tmp_path):
    from repro.cli import main

    assert main([
        "chaos", "--scenario", "corrupt-journal", "--seed", "3",
        "--state-dir", str(tmp_path),
    ]) == 0
    # --state-dir keeps the artifacts for inspection.
    assert (tmp_path / "corrupt-journal-3" / "jobs.json.corrupt").exists()


def test_policy_is_deterministic_per_seed():
    """Same seed, same job order -> same injection points (reproducible runs)."""
    from repro.service.jobs import JobRecord

    def drive(policy: ChaosPolicy) -> list[tuple[str, str]]:
        for job_id in ("job-a", "job-b"):
            job = JobRecord(
                job_id=job_id, mode="solve", config={}, key="00", tenant="t",
                priority=0,
            )
            for _ in range(10):
                try:
                    policy.progress_event(job)
                except InjectedWorkerCrash:
                    pass
        return list(policy.injected)

    first = drive(ChaosPolicy(seed=42, crash_workers=1))
    second = drive(ChaosPolicy(seed=42, crash_workers=1))
    assert first == second and first
    assert drive(ChaosPolicy(seed=43, crash_workers=1))  # other seeds fire too


class TestWatchdogForceAbandon:
    def test_wedged_job_is_abandoned_and_pool_keeps_serving(self, tmp_path):
        """A job that ignores every control flag cannot pin the worker pool.

        ``hang_ignores_flags`` wedges the job so hard that only the
        watchdog's force-abandon path can reclaim capacity: the job lands in
        TIMED_OUT, its worker thread is written off and replaced, and the
        next job runs on the replacement.
        """
        from repro.api import Experiment, ExperimentConfig
        from repro.service.chaos import _estimate_config, _solve_config

        daemon = ServiceDaemon(
            ServiceConfig(
                state_dir=str(tmp_path / "state"),
                workers=1,
                sweep_shared_memory=False,
                watchdog_interval=0.1,
                hang_grace=0.5,
            )
        ).start()
        daemon.chaos = ChaosPolicy(
            seed=5, hang_jobs=1, hang_ignores_flags=True, hang_timeout=30.0
        )
        try:
            wedged = daemon.submit(
                "solve", _solve_config(bits=6), budget=ResourceBudget(wall_seconds=0.3)
            )
            job = daemon.wait(wedged["job_id"], timeout=60.0)
            assert job["state"] == "timed-out"
            assert "unresponsive" in job["error"]
            assert daemon.stats()["abandoned_workers"] == 1

            clean_config = _estimate_config(seed=9)
            clean = daemon.submit("estimate", clean_config)
            assert daemon.wait(clean["job_id"], timeout=60.0)["state"] == "done"
            reference = Experiment.from_config(
                ExperimentConfig.from_dict(clean_config)
            ).estimate()
            served = daemon.result(clean["job_id"])
            assert served["data"] == reference.to_dict()["data"]
        finally:
            daemon.shutdown()
