"""A BOINC-style volunteer-computing grid simulation (the SAT@home substrate).

Section 4.2 of the paper solves ten A5/1 cryptanalysis instances in the
volunteer computing project SAT@home over about five months at an average
throughput of roughly two teraflops.  A volunteer grid differs from a dedicated
cluster in three ways that matter for processing a decomposition family:

* hosts are **heterogeneous** — their speeds span an order of magnitude;
* hosts are **unreliable** — they are only intermittently available and some
  work units are never returned, so the server re-issues them after a deadline;
* work units are **replicated** — each is sent to several hosts and accepted
  once a quorum of results agrees (BOINC's standard validation).

:func:`simulate_volunteer_grid` is a discrete-event simulation of exactly that
pull-style scheduling, driven by the measured per-sub-problem costs of a
decomposition family.  It produces campaign duration, effective throughput and
overhead factors that can be compared against the dedicated-cluster makespan of
:func:`repro.runner.cluster.simulate_makespan` — the reproduction of the
paper's "cluster vs. SAT@home" experiment pair.
"""

from __future__ import annotations

import heapq
import random
from collections.abc import Sequence
from dataclasses import dataclass, field


@dataclass
class VolunteerGridConfig:
    """Parameters of the simulated volunteer grid."""

    #: Number of volunteer hosts attached to the project.
    num_hosts: int = 100
    #: Mean host speed relative to the reference core that measured the costs.
    mean_speed: float = 1.0
    #: Spread of host speeds (log-uniform in [mean/spread, mean*spread]).
    speed_spread: float = 3.0
    #: Fraction of wall-clock time a host is actually crunching (duty cycle).
    availability: float = 0.4
    #: Probability that a dispatched work unit is never returned by the host.
    failure_rate: float = 0.1
    #: How many copies of each work unit are dispatched (BOINC replication).
    redundancy: int = 2
    #: How many returned results are needed to accept a work unit.
    quorum: int = 1
    #: Work-unit deadline, as a multiple of the mean work-unit cost; results
    #: later than this are treated as lost and the work unit is re-issued.
    deadline_factor: float = 20.0
    #: Seed of the grid's randomness (host speeds, failures).
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_hosts < 1:
            raise ValueError("num_hosts must be at least 1")
        if self.mean_speed <= 0:
            raise ValueError("mean_speed must be positive")
        if self.speed_spread < 1.0:
            raise ValueError("speed_spread must be at least 1")
        if not 0.0 < self.availability <= 1.0:
            raise ValueError("availability must be in (0, 1]")
        if not 0.0 <= self.failure_rate < 1.0:
            raise ValueError("failure_rate must be in [0, 1)")
        if self.redundancy < 1:
            raise ValueError("redundancy must be at least 1")
        if not 1 <= self.quorum <= self.redundancy:
            raise ValueError("quorum must be between 1 and redundancy")
        if self.deadline_factor <= 0:
            raise ValueError("deadline_factor must be positive")


@dataclass
class VolunteerHost:
    """One volunteer machine."""

    host_id: int
    speed: float
    availability: float

    def effective_rate(self) -> float:
        """Work units of cost per unit of wall-clock time this host delivers."""
        return self.speed * self.availability


@dataclass
class VolunteerSimulation:
    """Outcome of a volunteer-grid campaign over one decomposition family."""

    campaign_duration: float
    total_work: float
    dispatched_results: int
    lost_results: int
    reissued_work_units: int
    host_count: int
    config: VolunteerGridConfig
    completed_at: list[float] = field(default_factory=list)

    @property
    def effective_throughput(self) -> float:
        """Average useful work per unit of wall-clock time over the campaign."""
        if self.campaign_duration == 0:
            return float("inf")
        return self.total_work / self.campaign_duration

    @property
    def replication_overhead(self) -> float:
        """Dispatched results per work unit (≥ redundancy; grows with re-issues)."""
        work_units = len(self.completed_at) or 1
        return self.dispatched_results / work_units

    def summary(self) -> str:
        """One-line report used by the benchmark and examples."""
        return (
            f"volunteer grid: {self.host_count} hosts, campaign {self.campaign_duration:.3g}, "
            f"throughput {self.effective_throughput:.3g}, "
            f"overhead ×{self.replication_overhead:.2f}, {self.reissued_work_units} re-issues"
        )


def _build_hosts(config: VolunteerGridConfig, rng: random.Random) -> list[VolunteerHost]:
    """Draw the host population (log-uniform speeds, configured duty cycle)."""
    hosts = []
    for host_id in range(config.num_hosts):
        exponent = rng.uniform(-1.0, 1.0)
        speed = config.mean_speed * (config.speed_spread**exponent)
        hosts.append(VolunteerHost(host_id=host_id, speed=speed, availability=config.availability))
    return hosts


def simulate_volunteer_grid(
    costs: Sequence[float],
    config: VolunteerGridConfig | None = None,
) -> VolunteerSimulation:
    """Simulate processing one work unit per cost value on a volunteer grid.

    ``costs`` are per-sub-problem costs measured on the reference core (the
    same inputs :func:`repro.runner.cluster.simulate_makespan` takes).  The
    simulation is a discrete-event loop over host-completion events: idle hosts
    pull the next pending work-unit copy, results arrive after
    ``cost / (speed · availability)``, lost results are re-issued after the
    deadline.  The campaign ends when every work unit has reached its quorum.
    """
    config = config or VolunteerGridConfig()
    jobs = [float(c) for c in costs]
    if not jobs:
        raise ValueError("costs must not be empty")
    if any(cost < 0 for cost in jobs):
        raise ValueError("job costs must be non-negative")

    rng = random.Random(config.seed)
    hosts = _build_hosts(config, rng)
    mean_cost = sum(jobs) / len(jobs)
    deadline = config.deadline_factor * max(mean_cost, 1e-12)

    # Server-side state per work unit.
    successes = [0] * len(jobs)
    outstanding = [0] * len(jobs)
    completed = [False] * len(jobs)
    completed_at = [0.0] * len(jobs)
    pending: list[int] = []
    for index in range(len(jobs)):
        pending.extend([index] * config.redundancy)
        outstanding[index] = config.redundancy

    dispatched = 0
    lost = 0
    reissued = 0
    remaining = len(jobs)

    #: Event queue of (time, host_index) host-becomes-idle events.
    events: list[tuple[float, int]] = [(0.0, host.host_id) for host in hosts]
    heapq.heapify(events)
    #: Per-host in-flight work: (work unit index, will_succeed, finish_time).
    in_flight: dict[int, tuple[int, bool, float]] = {}
    now = 0.0

    def next_pending_index() -> int | None:
        while pending:
            index = pending.pop(0)
            if not completed[index]:
                return index
            outstanding[index] -= 1
        return None

    while remaining > 0 and events:
        now, host_id = heapq.heappop(events)
        host = hosts[host_id]

        # Deliver the host's previous result, if any.
        if host_id in in_flight:
            index, success, _finish = in_flight.pop(host_id)
            outstanding[index] -= 1
            if success and not completed[index]:
                successes[index] += 1
                if successes[index] >= config.quorum:
                    completed[index] = True
                    completed_at[index] = now
                    remaining -= 1
            elif not success:
                lost += 1
            if not completed[index] and successes[index] + outstanding[index] < config.quorum:
                # Not enough copies still in the field: re-issue.
                pending.append(index)
                outstanding[index] += 1
                reissued += 1

        if remaining == 0:
            break

        # The host asks the server for new work (BOINC pull model).
        index = next_pending_index()
        if index is None:
            # Nothing to hand out right now: the host checks back one deadline later.
            if any(not done for done in completed):
                heapq.heappush(events, (now + deadline * 0.1, host_id))
            continue
        dispatched += 1
        will_succeed = rng.random() >= config.failure_rate
        duration = jobs[index] / max(host.effective_rate(), 1e-12)
        if not will_succeed:
            duration = deadline  # the server only notices at the deadline
        in_flight[host_id] = (index, will_succeed, now + duration)
        heapq.heappush(events, (now + duration, host_id))

    campaign = max((t for t, done in zip(completed_at, completed) if done), default=now)
    return VolunteerSimulation(
        campaign_duration=campaign,
        total_work=sum(jobs),
        dispatched_results=dispatched,
        lost_results=lost,
        reissued_work_units=reissued,
        host_count=config.num_hosts,
        config=config,
        completed_at=[t for t, done in zip(completed_at, completed) if done],
    )
