"""A BOINC-style volunteer-computing grid simulation (the SAT@home substrate).

Section 4.2 of the paper solves ten A5/1 cryptanalysis instances in the
volunteer computing project SAT@home over about five months at an average
throughput of roughly two teraflops.  A volunteer grid differs from a dedicated
cluster in three ways that matter for processing a decomposition family:

* hosts are **heterogeneous** — their speeds span an order of magnitude;
* hosts are **unreliable** — they are only intermittently available and some
  work units are never returned, so the server re-issues them after a deadline;
* work units are **replicated** — each is sent to several hosts and accepted
  once a quorum of results agrees (BOINC's standard validation).

All three are native features of the unified scheduler
(:mod:`repro.runner.scheduler`), so this module is a thin policy over it:
hosts become :class:`~repro.runner.scheduler.WorkerProfile` entries
(log-uniform speeds, the configured duty cycle), unreliability is the
:class:`~repro.runner.scheduler.FailureModel` crash injection with the BOINC
deadline as the crash-detection delay (an unlimited retry budget reproduces
the server's re-issue policy), and replication/quorum map one-to-one onto the
scheduler's replication and quorum parameters.

:func:`simulate_volunteer_grid` produces campaign duration, effective
throughput and overhead factors that can be compared against the
dedicated-cluster makespan of :func:`repro.runner.cluster.simulate_makespan` —
the reproduction of the paper's "cluster vs. SAT@home" experiment pair.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.runner.scheduler import (
    FailureModel,
    RetryPolicy,
    Scheduler,
    SimulatedGridExecutor,
    Task,
    TaskGraph,
    WorkerProfile,
)


@dataclass
class VolunteerGridConfig:
    """Parameters of the simulated volunteer grid."""

    #: Number of volunteer hosts attached to the project.
    num_hosts: int = 100
    #: Mean host speed relative to the reference core that measured the costs.
    mean_speed: float = 1.0
    #: Spread of host speeds (log-uniform in [mean/spread, mean*spread]).
    speed_spread: float = 3.0
    #: Fraction of wall-clock time a host is actually crunching (duty cycle).
    availability: float = 0.4
    #: Probability that a dispatched work unit is never returned by the host.
    failure_rate: float = 0.1
    #: How many copies of each work unit are dispatched (BOINC replication).
    redundancy: int = 2
    #: How many returned results are needed to accept a work unit.
    quorum: int = 1
    #: Work-unit deadline, as a multiple of the mean work-unit cost; lost
    #: results are only noticed (and the work unit re-issued) at the deadline.
    deadline_factor: float = 20.0
    #: Seed of the grid's randomness (host speeds, failures).
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_hosts < 1:
            raise ValueError("num_hosts must be at least 1")
        if self.mean_speed <= 0:
            raise ValueError("mean_speed must be positive")
        if self.speed_spread < 1.0:
            raise ValueError("speed_spread must be at least 1")
        if not 0.0 < self.availability <= 1.0:
            raise ValueError("availability must be in (0, 1]")
        if not 0.0 <= self.failure_rate < 1.0:
            raise ValueError("failure_rate must be in [0, 1)")
        if self.redundancy < 1:
            raise ValueError("redundancy must be at least 1")
        if not 1 <= self.quorum <= self.redundancy:
            raise ValueError("quorum must be between 1 and redundancy")
        if self.deadline_factor <= 0:
            raise ValueError("deadline_factor must be positive")


@dataclass
class VolunteerHost:
    """One volunteer machine."""

    host_id: int
    speed: float
    availability: float

    def effective_rate(self) -> float:
        """Work units of cost per unit of wall-clock time this host delivers."""
        return self.speed * self.availability


@dataclass
class VolunteerSimulation:
    """Outcome of a volunteer-grid campaign over one decomposition family."""

    campaign_duration: float
    total_work: float
    dispatched_results: int
    lost_results: int
    reissued_work_units: int
    host_count: int
    config: VolunteerGridConfig
    completed_at: list[float] = field(default_factory=list)

    @property
    def effective_throughput(self) -> float:
        """Average useful work per unit of wall-clock time over the campaign."""
        if self.campaign_duration == 0:
            return float("inf")
        return self.total_work / self.campaign_duration

    @property
    def replication_overhead(self) -> float:
        """Dispatched results per work unit (≥ redundancy; grows with re-issues)."""
        work_units = len(self.completed_at) or 1
        return self.dispatched_results / work_units

    def summary(self) -> str:
        """One-line report used by the benchmark and examples."""
        return (
            f"volunteer grid: {self.host_count} hosts, campaign {self.campaign_duration:.3g}, "
            f"throughput {self.effective_throughput:.3g}, "
            f"overhead ×{self.replication_overhead:.2f}, {self.reissued_work_units} re-issues"
        )


def _build_hosts(config: VolunteerGridConfig, rng: random.Random) -> list[VolunteerHost]:
    """Draw the host population (log-uniform speeds, configured duty cycle)."""
    hosts = []
    for host_id in range(config.num_hosts):
        exponent = rng.uniform(-1.0, 1.0)
        speed = config.mean_speed * (config.speed_spread**exponent)
        hosts.append(VolunteerHost(host_id=host_id, speed=speed, availability=config.availability))
    return hosts


def simulate_volunteer_grid(
    costs: Sequence[float],
    config: VolunteerGridConfig | None = None,
) -> VolunteerSimulation:
    """Simulate processing one work unit per cost value on a volunteer grid.

    ``costs`` are per-sub-problem costs measured on the reference core (the
    same inputs :func:`repro.runner.cluster.simulate_makespan` takes).  Each
    cost becomes one scheduler task dispatched ``redundancy`` times; idle
    hosts pull the next pending copy (BOINC's pull model is the scheduler's
    FIFO queue), results arrive after ``cost / (speed · availability)`` on the
    virtual clock, and lost results are noticed — and the work unit re-issued —
    at the deadline.  The campaign ends when every work unit reaches quorum.
    """
    config = config or VolunteerGridConfig()
    jobs = [float(c) for c in costs]
    if not jobs:
        raise ValueError("costs must not be empty")
    if any(cost < 0 for cost in jobs):
        raise ValueError("job costs must be non-negative")

    rng = random.Random(config.seed)
    hosts = _build_hosts(config, rng)
    mean_cost = sum(jobs) / len(jobs)
    deadline = config.deadline_factor * max(mean_cost, 1e-12)

    graph = TaskGraph(
        Task(task_id=f"wu-{index:06d}", payload=cost) for index, cost in enumerate(jobs)
    )
    executor = SimulatedGridExecutor(
        task_fn=lambda cost: cost,
        workers=[WorkerProfile(host.speed, host.availability) for host in hosts],
        failures=FailureModel(crash_rate=config.failure_rate, seed=rng.getrandbits(64)),
    )
    run = Scheduler(
        graph,
        executor,
        # The BOINC server re-issues forever; the deadline is the per-attempt
        # budget after which a lost result is noticed.
        retry=RetryPolicy(max_attempts=None, timeout=deadline),
        queue="fifo",
        replication=config.redundancy,
        quorum=config.quorum,
    ).run()

    completed_at = sorted(record.finished_at for record in run.results.values())
    return VolunteerSimulation(
        campaign_duration=max(completed_at, default=0.0),
        total_work=sum(jobs),
        dispatched_results=run.metadata["dispatches"],
        lost_results=run.metadata["crashes"],
        reissued_work_units=run.metadata["retries"],
        host_count=config.num_hosts,
        config=config,
        completed_at=completed_at,
    )
