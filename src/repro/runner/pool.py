"""Real parallel solving of decomposition families with ``multiprocessing``.

The simulated cluster (:mod:`repro.runner.cluster`) is what the benchmarks use
— it is deterministic and does not depend on the local core count — but users
who want to actually burn their cores on a family can use
:func:`solve_family_parallel`.  Workers receive the CNF once (via the process
fork / pickling) and solve one assumption vector per task, exactly like PDSAT's
computing processes receive sub-problems from the leader.
"""

from __future__ import annotations

import multiprocessing
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.api.registry import get_cost_measure, get_solver
from repro.sat.formula import CNF
from repro.sat.solver import Solver, SolverBudget, SolverStatus


@dataclass
class ParallelSolveOutcome:
    """Outcome of solving one sub-problem in a worker process."""

    assumptions: tuple[int, ...]
    status: SolverStatus
    cost: float
    wall_time: float
    model: dict[int, bool] | None = None


_WORKER_STATE: dict[str, object] = {}


def _init_worker(
    cnf: CNF,
    cost_measure: str,
    keep_models: bool,
    solver: str,
    solver_options: Mapping[str, object],
    budget: SolverBudget | None,
) -> None:
    _WORKER_STATE["cnf"] = cnf
    _WORKER_STATE["cost_measure"] = cost_measure
    _WORKER_STATE["keep_models"] = keep_models
    _WORKER_STATE["solver"] = get_solver(solver)(**dict(solver_options))
    _WORKER_STATE["budget"] = budget


def _solve_one(assumptions: tuple[int, ...]) -> ParallelSolveOutcome:
    cnf: CNF = _WORKER_STATE["cnf"]  # type: ignore[assignment]
    solver: Solver = _WORKER_STATE["solver"]  # type: ignore[assignment]
    cost_measure: str = _WORKER_STATE["cost_measure"]  # type: ignore[assignment]
    keep_models: bool = _WORKER_STATE["keep_models"]  # type: ignore[assignment]
    budget: SolverBudget | None = _WORKER_STATE["budget"]  # type: ignore[assignment]
    result = solver.solve(cnf, assumptions=list(assumptions), budget=budget)
    return ParallelSolveOutcome(
        assumptions=tuple(assumptions),
        status=result.status,
        cost=result.stats.cost(cost_measure),
        wall_time=result.stats.wall_time,
        model=result.model if (keep_models and result.is_sat) else None,
    )


def solve_family_parallel(
    cnf: CNF,
    assumption_vectors: Sequence[Sequence[int]],
    processes: int | None = None,
    cost_measure: str = "propagations",
    keep_models: bool = True,
    solver: str = "cdcl",
    solver_options: Mapping[str, object] | None = None,
    budget: SolverBudget | None = None,
) -> list[ParallelSolveOutcome]:
    """Solve ``cnf`` under each assumption vector using a process pool.

    Results are returned in the order of ``assumption_vectors``.  With
    ``processes=1`` everything runs in the calling process (useful in tests and
    on platforms where spawning is expensive).  ``solver`` is a solver-registry
    name; each worker builds its own instance from ``solver_options``, exactly
    like PDSAT's computing processes each ran their own MiniSat.
    """
    tasks = [tuple(int(lit) for lit in vec) for vec in assumption_vectors]
    if processes is not None and processes < 1:
        raise ValueError("processes must be at least 1")
    get_cost_measure(cost_measure)  # fail fast in the parent, not in the workers
    options = dict(solver_options or {})
    if processes == 1 or len(tasks) <= 1:
        _init_worker(cnf, cost_measure, keep_models, solver, options, budget)
        return [_solve_one(task) for task in tasks]

    with multiprocessing.Pool(
        processes=processes,
        initializer=_init_worker,
        initargs=(cnf, cost_measure, keep_models, solver, options, budget),
    ) as pool:
        return pool.map(_solve_one, tasks)
