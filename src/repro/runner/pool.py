"""Real parallel solving of decomposition families with ``multiprocessing``.

The simulated cluster (:mod:`repro.runner.cluster`) is what the benchmarks use
— it is deterministic and does not depend on the local core count — but users
who want to actually burn their cores on a family can use
:func:`solve_family_parallel`.  Workers receive the CNF once (via the process
fork / pickling) and solve one assumption vector per task, exactly like PDSAT's
computing processes receive sub-problems from the leader.
"""

from __future__ import annotations

import multiprocessing
from collections.abc import Sequence
from dataclasses import dataclass

from repro.sat.cdcl import CDCLConfig, CDCLSolver
from repro.sat.formula import CNF
from repro.sat.solver import SolverStatus


@dataclass
class ParallelSolveOutcome:
    """Outcome of solving one sub-problem in a worker process."""

    assumptions: tuple[int, ...]
    status: SolverStatus
    cost: float
    wall_time: float
    model: dict[int, bool] | None = None


_WORKER_STATE: dict[str, object] = {}


def _init_worker(cnf: CNF, cost_measure: str, keep_models: bool) -> None:
    _WORKER_STATE["cnf"] = cnf
    _WORKER_STATE["cost_measure"] = cost_measure
    _WORKER_STATE["keep_models"] = keep_models
    _WORKER_STATE["solver"] = CDCLSolver(CDCLConfig())


def _solve_one(assumptions: tuple[int, ...]) -> ParallelSolveOutcome:
    cnf: CNF = _WORKER_STATE["cnf"]  # type: ignore[assignment]
    solver: CDCLSolver = _WORKER_STATE["solver"]  # type: ignore[assignment]
    cost_measure: str = _WORKER_STATE["cost_measure"]  # type: ignore[assignment]
    keep_models: bool = _WORKER_STATE["keep_models"]  # type: ignore[assignment]
    result = solver.solve(cnf, assumptions=list(assumptions))
    return ParallelSolveOutcome(
        assumptions=tuple(assumptions),
        status=result.status,
        cost=result.stats.cost(cost_measure),
        wall_time=result.stats.wall_time,
        model=result.model if (keep_models and result.is_sat) else None,
    )


def solve_family_parallel(
    cnf: CNF,
    assumption_vectors: Sequence[Sequence[int]],
    processes: int | None = None,
    cost_measure: str = "propagations",
    keep_models: bool = True,
) -> list[ParallelSolveOutcome]:
    """Solve ``cnf`` under each assumption vector using a process pool.

    Results are returned in the order of ``assumption_vectors``.  With
    ``processes=1`` everything runs in the calling process (useful in tests and
    on platforms where spawning is expensive).
    """
    tasks = [tuple(int(lit) for lit in vec) for vec in assumption_vectors]
    if processes is not None and processes < 1:
        raise ValueError("processes must be at least 1")
    if processes == 1 or len(tasks) <= 1:
        _init_worker(cnf, cost_measure, keep_models)
        return [_solve_one(task) for task in tasks]

    with multiprocessing.Pool(
        processes=processes,
        initializer=_init_worker,
        initargs=(cnf, cost_measure, keep_models),
    ) as pool:
        return pool.map(_solve_one, tasks)
