"""Real parallel solving of decomposition families on worker processes.

The simulated cluster (:mod:`repro.runner.cluster`) is what the benchmarks use
— it is deterministic and does not depend on the local core count — but users
who want to actually burn their cores on a family can use
:func:`solve_family_parallel`.  Workers receive the CNF once (via the process
initializer) and solve one assumption vector per task, exactly like PDSAT's
computing processes receive sub-problems from the leader.

This module is the process policy of the unified scheduler
(:mod:`repro.runner.scheduler`): :func:`family_executor` primes a
:class:`~repro.runner.scheduler.ProcessExecutor` with the worker state (CNF,
solver, cost measure), and :func:`solve_family_parallel` runs the family task
graph through the :class:`~repro.runner.scheduler.Scheduler`, which adds what
the old bespoke pool never had — retry budgets for dying workers and results
that are reported in task order regardless of completion order.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.api.registry import get_cost_measure, get_solver
from repro.runner.scheduler import (
    InlineExecutor,
    ProcessExecutor,
    RetryPolicy,
    Scheduler,
    Task,
    TaskGraph,
)
from repro.sat.formula import CNF
from repro.sat.solver import Solver, SolverBudget, SolverStatus


@dataclass
class ParallelSolveOutcome:
    """Outcome of solving one sub-problem in a worker process."""

    assumptions: tuple[int, ...]
    status: SolverStatus
    cost: float
    wall_time: float
    model: dict[int, bool] | None = None


_WORKER_STATE: dict[str, object] = {}


def _init_worker(
    cnf: CNF,
    cost_measure: str,
    keep_models: bool,
    solver: str,
    solver_options: Mapping[str, object],
    budget: SolverBudget | None,
) -> None:
    _WORKER_STATE["cnf"] = cnf
    _WORKER_STATE["cost_measure"] = cost_measure
    _WORKER_STATE["keep_models"] = keep_models
    _WORKER_STATE["solver"] = get_solver(solver)(**dict(solver_options))
    _WORKER_STATE["budget"] = budget
    # Re-priming invalidates any batch solver loaded for the previous formula.
    _WORKER_STATE.pop("batch_key", None)
    _WORKER_STATE.pop("batch_image", None)


def _solve_one(assumptions: tuple[int, ...]) -> ParallelSolveOutcome:
    cnf: CNF = _WORKER_STATE["cnf"]  # type: ignore[assignment]
    solver: Solver = _WORKER_STATE["solver"]  # type: ignore[assignment]
    cost_measure: str = _WORKER_STATE["cost_measure"]  # type: ignore[assignment]
    keep_models: bool = _WORKER_STATE["keep_models"]  # type: ignore[assignment]
    budget: SolverBudget | None = _WORKER_STATE["budget"]  # type: ignore[assignment]
    result = solver.solve(cnf, assumptions=list(assumptions), budget=budget)
    return ParallelSolveOutcome(
        assumptions=tuple(assumptions),
        status=result.status,
        cost=result.stats.cost(cost_measure),
        wall_time=result.stats.wall_time,
        model=result.model if (keep_models and result.is_sat) else None,
    )


def _batch_solver(segment: str | None):
    """The worker's batch solver, loaded once per formula (zero-copy protocol).

    ``segment`` names a :class:`~repro.sat.cdcl.image.ArenaImage` shared-memory
    segment to attach read-only (the leader froze the clause database once;
    every worker maps the same physical pages and rebuilds from them via
    ``load_image`` — no CNF pickling, no per-clause normalisation).  ``None``
    falls back to loading the CNF the initializer installed, which is what the
    serial/simulated executors use.  The loaded solver is cached per key, so a
    worker pays the load exactly once however many batch tasks it runs; the
    attachment is held for the worker's lifetime (an attachment does not keep
    an unlinked segment's name alive, so this cannot leak segments).
    """
    solver = _WORKER_STATE["solver"]
    key = segment if segment is not None else "<initializer-cnf>"
    if _WORKER_STATE.get("batch_key") != key:
        if segment is not None:
            from repro.sat.cdcl.image import ArenaImage

            image = ArenaImage.attach(segment)
            _WORKER_STATE["batch_image"] = image
            solver.load_image(image)
        else:
            solver.load(_WORKER_STATE["cnf"])
        _WORKER_STATE["batch_key"] = key
    return solver


def _solve_batch(payload: tuple[str | None, tuple[tuple[int, ...], ...]]) -> list[dict]:
    """Solve one batch of assumption rows in the primed worker (JSON-plain rows).

    The payload is ``(segment name or None, rows)`` — with a shared image the
    whole formula rides in the segment name, shrinking per-task pickles to the
    assumption bits.  Results come back in row order as the same plain dicts
    the scalar sample task produces, so the leader's fold is unchanged.
    """
    segment, rows = payload
    solver = _batch_solver(segment)
    cost_measure: str = _WORKER_STATE["cost_measure"]  # type: ignore[assignment]
    budget: SolverBudget | None = _WORKER_STATE["budget"]  # type: ignore[assignment]
    results = solver.solve_batch([tuple(row) for row in rows], budget=budget)
    return [
        {
            "assumptions": [int(lit) for lit in row],
            "cost": result.stats.cost(cost_measure),
            "status": result.status.value,
            "wall_time": result.stats.wall_time,
        }
        for row, result in zip(rows, results)
    ]


def family_task_id(index: int) -> str:
    """The scheduler task id of the ``index``-th sub-problem of a family.

    The single source of the id format: checkpoints key results by these ids,
    so every site that builds or looks up family tasks must go through here.
    """
    return f"sub-{index:06d}"


def family_tasks(assumption_vectors: Sequence[Sequence[int]]) -> TaskGraph:
    """One scheduler task per assumption vector (payload: the literal tuple)."""
    return TaskGraph(
        Task(task_id=family_task_id(index), payload=tuple(int(lit) for lit in vector))
        for index, vector in enumerate(assumption_vectors)
    )


def family_executor(
    cnf: CNF,
    processes: int | None = None,
    cost_measure: str = "propagations",
    keep_models: bool = True,
    solver: str = "cdcl",
    solver_options: Mapping[str, object] | None = None,
    budget: SolverBudget | None = None,
    inline: bool = False,
):
    """The executor for family/estimation tasks: real processes or inline.

    ``inline=True`` (or ``processes=1``) primes the worker state in the
    calling process and returns an :class:`InlineExecutor` — bit-identical
    results without the spawn cost, the serial policy of the scheduler.
    """
    initargs = (
        cnf, cost_measure, keep_models, solver, dict(solver_options or {}), budget,
    )
    if inline or processes == 1:
        _init_worker(*initargs)
        return InlineExecutor(task_fn=_solve_one)
    import multiprocessing

    return ProcessExecutor(
        task_fn=_solve_one,
        num_workers=processes or multiprocessing.cpu_count(),
        initializer=_init_worker,
        initargs=initargs,
    )


def solve_family_parallel(
    cnf: CNF,
    assumption_vectors: Sequence[Sequence[int]],
    processes: int | None = None,
    cost_measure: str = "propagations",
    keep_models: bool = True,
    solver: str = "cdcl",
    solver_options: Mapping[str, object] | None = None,
    budget: SolverBudget | None = None,
    retry: RetryPolicy | None = None,
) -> list[ParallelSolveOutcome]:
    """Solve ``cnf`` under each assumption vector using the process scheduler.

    Results are returned in the order of ``assumption_vectors``.  With
    ``processes=1`` everything runs in the calling process (useful in tests and
    on platforms where spawning is expensive).  ``solver`` is a solver-registry
    name; each worker builds its own instance from ``solver_options``, exactly
    like PDSAT's computing processes each ran their own MiniSat.  Attempts on
    workers that die are retried up to ``retry.max_attempts`` (default 3);
    a task that exhausts its budget raises ``RuntimeError``.
    """
    graph = family_tasks(assumption_vectors)
    if processes is not None and processes < 1:
        raise ValueError("processes must be at least 1")
    get_cost_measure(cost_measure)  # fail fast in the parent, not in the workers
    executor = family_executor(
        cnf,
        processes=processes,
        cost_measure=cost_measure,
        keep_models=keep_models,
        solver=solver,
        solver_options=solver_options,
        budget=budget,
        inline=processes == 1 or len(graph) <= 1,
    )
    run = Scheduler(graph, executor, retry=retry or RetryPolicy(max_attempts=3)).run()
    if run.failed:
        task_id, error = next(iter(run.failed.items()))
        raise RuntimeError(
            f"{len(run.failed)} sub-problems failed after retries "
            f"(first: {task_id}: {error})"
        )
    return run.values_in_order()
