"""Parallel processing of decomposition families.

The paper processed decomposition families on an MPI cluster (PDSAT) and in the
SAT@home volunteer project.  This subpackage provides one unified scheduler and
the thin policies that reproduce both substrates (plus a real local pool):

* :mod:`repro.runner.scheduler` — the fault-tolerant core: task graphs,
  pluggable executors (inline / thread / process / simulated virtual-clock
  grid with latency and failure models), work-stealing queues, retry/timeout
  budgets, replication with quorum, checkpoint/resume, and deterministic
  serial replay of any parallel run.
* :mod:`repro.runner.estimation` — Monte Carlo estimation on the scheduler:
  per-sample child seeds (spawn discipline) and task-order folding make the
  statistics bit-identical across every executor, crashes included.
* :mod:`repro.runner.cluster` — the *simulated* cluster policy: greedy list
  scheduling of measured per-sub-problem costs on ``M`` virtual cores (how the
  "480 cores" columns of Table 3 are reproduced without 480 physical cores).
* :mod:`repro.runner.volunteer` — the *simulated* BOINC-style volunteer-grid
  policy (heterogeneous, intermittently available, replicated hosts), the
  analogue of SAT@home used to reproduce the Section 4.2 experiments.
* :mod:`repro.runner.pool` — the real-process policy for actually solving many
  sub-problems in parallel on the local machine.
"""

from repro.runner.cluster import ClusterSimulation, simulate_makespan
from repro.runner.estimation import (
    ScheduledEstimation,
    estimate_family_scheduled,
    estimation_tasks,
)
from repro.runner.pool import solve_family_parallel
from repro.runner.scheduler import (
    Completion,
    Executor,
    FailureModel,
    InlineExecutor,
    ProcessExecutor,
    RetryPolicy,
    Scheduler,
    SchedulerCheckpoint,
    SchedulerRun,
    SimulatedGridExecutor,
    Task,
    TaskGraph,
    TaskRecord,
    ThreadExecutor,
    WorkerProfile,
    replay_serial,
)
from repro.runner.volunteer import (
    VolunteerGridConfig,
    VolunteerHost,
    VolunteerSimulation,
    simulate_volunteer_grid,
)

__all__ = [
    "ClusterSimulation",
    "simulate_makespan",
    "ScheduledEstimation",
    "estimate_family_scheduled",
    "estimation_tasks",
    "solve_family_parallel",
    "Completion",
    "Executor",
    "FailureModel",
    "InlineExecutor",
    "ProcessExecutor",
    "RetryPolicy",
    "Scheduler",
    "SchedulerCheckpoint",
    "SchedulerRun",
    "SimulatedGridExecutor",
    "Task",
    "TaskGraph",
    "TaskRecord",
    "ThreadExecutor",
    "WorkerProfile",
    "replay_serial",
    "VolunteerGridConfig",
    "VolunteerHost",
    "VolunteerSimulation",
    "simulate_volunteer_grid",
]
