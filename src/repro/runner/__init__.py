"""Parallel processing of decomposition families.

The paper processed decomposition families on an MPI cluster (PDSAT) and in the
SAT@home volunteer project.  This subpackage provides the local analogues:

* :mod:`repro.runner.cluster` — a *simulated* cluster: given the measured
  per-sub-problem costs, compute the makespan on ``M`` virtual cores under a
  dynamic (FIFO work-queue) or LPT scheduler.  This is how the "480 cores"
  columns of Table 3 are reproduced without 480 physical cores.
* :mod:`repro.runner.volunteer` — a *simulated* BOINC-style volunteer grid
  (heterogeneous, intermittently available, replicated hosts), the analogue of
  SAT@home used to reproduce the Section 4.2 experiments.
* :mod:`repro.runner.pool` — a real ``multiprocessing`` pool for actually
  solving many sub-problems in parallel on the local machine.
"""

from repro.runner.cluster import ClusterSimulation, simulate_makespan
from repro.runner.pool import solve_family_parallel
from repro.runner.volunteer import (
    VolunteerGridConfig,
    VolunteerHost,
    VolunteerSimulation,
    simulate_volunteer_grid,
)

__all__ = [
    "ClusterSimulation",
    "simulate_makespan",
    "solve_family_parallel",
    "VolunteerGridConfig",
    "VolunteerHost",
    "VolunteerSimulation",
    "simulate_volunteer_grid",
]
