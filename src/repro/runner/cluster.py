"""Simulated cluster: makespan of a set of independent jobs on ``M`` cores.

Processing a decomposition family is embarrassingly parallel: each sub-problem
is an independent job.  Given the per-job costs (measured on one core), the
wall-clock time on an ``M``-core cluster is the *makespan* of a scheduling of
the jobs onto the cores.  PDSAT used a dynamic work queue (the leader hands the
next sub-problem to whichever worker becomes idle), which corresponds to greedy
list scheduling in job order; the classical LPT (longest processing time first)
rule is also provided as the near-optimal reference.

The simulation reproduces the structure of the paper's Table 3: the predicted
time on 480 cores is ``F / 480`` and the "real" time is the makespan of the
actual per-sub-problem costs on 480 simulated cores.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence
from dataclasses import dataclass


@dataclass
class ClusterSimulation:
    """Result of scheduling a job list onto ``num_cores`` virtual cores."""

    num_cores: int
    makespan: float
    total_work: float
    core_loads: list[float]
    scheduler: str

    @property
    def ideal_makespan(self) -> float:
        """The perfect-speed-up lower bound ``total_work / num_cores``."""
        return self.total_work / self.num_cores

    @property
    def efficiency(self) -> float:
        """Parallel efficiency: ideal makespan divided by the achieved makespan."""
        if self.makespan == 0:
            return 1.0
        return self.ideal_makespan / self.makespan


def simulate_makespan(
    costs: Sequence[float],
    num_cores: int,
    scheduler: str = "dynamic",
) -> ClusterSimulation:
    """Schedule jobs with the given costs onto ``num_cores`` cores.

    ``scheduler`` is ``"dynamic"`` (greedy list scheduling in the given job
    order — PDSAT's work queue) or ``"lpt"`` (longest processing time first).
    """
    if num_cores < 1:
        raise ValueError("num_cores must be at least 1")
    if scheduler not in ("dynamic", "lpt"):
        raise ValueError("scheduler must be 'dynamic' or 'lpt'")
    jobs = [float(c) for c in costs]
    if any(cost < 0 for cost in jobs):
        raise ValueError("job costs must be non-negative")
    if scheduler == "lpt":
        jobs = sorted(jobs, reverse=True)

    # Greedy list scheduling with a min-heap of core finish times.
    loads = [0.0] * num_cores
    finish_times = [0.0] * num_cores
    core_heap = [(0.0, i) for i in range(num_cores)]
    heapq.heapify(core_heap)
    for cost in jobs:
        finish, core = heapq.heappop(core_heap)
        finish += cost
        loads[core] += cost
        finish_times[core] = finish
        heapq.heappush(core_heap, (finish, core))

    makespan = max(finish_times) if jobs else 0.0
    return ClusterSimulation(
        num_cores=num_cores,
        makespan=makespan,
        total_work=sum(jobs),
        core_loads=loads,
        scheduler=scheduler,
    )
