"""Simulated cluster: makespan of a set of independent jobs on ``M`` cores.

Processing a decomposition family is embarrassingly parallel: each sub-problem
is an independent job.  Given the per-job costs (measured on one core), the
wall-clock time on an ``M``-core cluster is the *makespan* of a scheduling of
the jobs onto the cores.  PDSAT used a dynamic work queue (the leader hands the
next sub-problem to whichever worker becomes idle), which corresponds to greedy
list scheduling in job order; the classical LPT (longest processing time first)
rule is also provided as the near-optimal reference.

This module is a thin policy over the unified scheduler
(:mod:`repro.runner.scheduler`): jobs become tasks whose payload is their
cost, and a :class:`~repro.runner.scheduler.SimulatedGridExecutor` with ``M``
unit-speed workers, a FIFO pull queue and no failure injection *is* greedy
list scheduling — the virtual makespan it reports reproduces the classical
min-heap computation bit for bit (ties broken by core index).

The simulation reproduces the structure of the paper's Table 3: the predicted
time on 480 cores is ``F / 480`` and the "real" time is the makespan of the
actual per-sub-problem costs on 480 simulated cores.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.runner.scheduler import (
    RetryPolicy,
    Scheduler,
    SimulatedGridExecutor,
    Task,
    TaskGraph,
)


@dataclass
class ClusterSimulation:
    """Result of scheduling a job list onto ``num_cores`` virtual cores."""

    num_cores: int
    makespan: float
    total_work: float
    core_loads: list[float]
    scheduler: str

    @property
    def ideal_makespan(self) -> float:
        """The perfect-speed-up lower bound ``total_work / num_cores``."""
        return self.total_work / self.num_cores

    @property
    def efficiency(self) -> float:
        """Parallel efficiency: ideal makespan divided by the achieved makespan."""
        if self.makespan == 0:
            return 1.0
        return self.ideal_makespan / self.makespan


def simulate_makespan(
    costs: Sequence[float],
    num_cores: int,
    scheduler: str = "dynamic",
) -> ClusterSimulation:
    """Schedule jobs with the given costs onto ``num_cores`` cores.

    ``scheduler`` is ``"dynamic"`` (greedy list scheduling in the given job
    order — PDSAT's work queue) or ``"lpt"`` (longest processing time first).
    """
    if num_cores < 1:
        raise ValueError("num_cores must be at least 1")
    if scheduler not in ("dynamic", "lpt"):
        raise ValueError("scheduler must be 'dynamic' or 'lpt'")
    jobs = [float(c) for c in costs]
    if any(cost < 0 for cost in jobs):
        raise ValueError("job costs must be non-negative")
    if scheduler == "lpt":
        jobs = sorted(jobs, reverse=True)

    graph = TaskGraph(
        Task(task_id=f"job-{index:06d}", payload=cost) for index, cost in enumerate(jobs)
    )
    executor = SimulatedGridExecutor(task_fn=lambda cost: cost, workers=num_cores)
    run = Scheduler(
        graph, executor, retry=RetryPolicy(max_attempts=1), queue="fifo"
    ).run()

    # With no failure injection the virtual clock stops at the last completion,
    # which is exactly the makespan; worker loads are the per-core cost sums.
    return ClusterSimulation(
        num_cores=num_cores,
        makespan=run.makespan if jobs else 0.0,
        total_work=sum(jobs),
        core_loads=run.worker_loads or [0.0] * num_cores,
        scheduler=scheduler,
    )
