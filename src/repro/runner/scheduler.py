"""Unified fault-tolerant scheduler for decomposition-family workloads.

PDSAT's leader process, the SAT@home server and the library's own
``multiprocessing`` pool are all instances of one scheduling problem: a set of
independent (or dependency-ordered) tasks — estimation samples, partition
sub-problems — must be dispatched to unreliable workers, retried on failure,
deduplicated on replication, and folded into results that do not depend on the
execution interleaving.  This module is that one scheduler; the historical
modules :mod:`repro.runner.pool`, :mod:`repro.runner.cluster` and
:mod:`repro.runner.volunteer` are thin policies over it.

Architecture
------------

* :class:`Task` / :class:`TaskGraph` — the unit of work (an opaque picklable
  payload plus optional dependency edges) and the validated DAG of them.
* :class:`Executor` implementations — where attempts actually run:
  :class:`InlineExecutor` (calling thread), :class:`ThreadExecutor`,
  :class:`ProcessExecutor` (real processes, built in
  :mod:`repro.runner.pool`), and :class:`SimulatedGridExecutor` — a
  deterministic virtual-clock cluster with configurable worker speeds,
  dispatch latency and a seeded :class:`FailureModel` injecting worker
  crashes, stragglers and duplicated results.
* :class:`Scheduler` — the leader loop: per-worker queues with optional
  work-stealing, per-task retry/timeout budgets (:class:`RetryPolicy`),
  replication/quorum (the BOINC substrate), checkpoint/resume
  (:class:`SchedulerCheckpoint`) and early stop.

Determinism contract
--------------------

Task payloads are static and task functions are pure (for the bundled solvers:
deterministic), so an attempt's value depends only on its task — never on the
worker, the attempt number or the virtual time.  The scheduler records exactly
one result per task (duplicates are discarded, retries re-run the same pure
function) and :meth:`SchedulerRun.values_in_order` reports them in task-graph
order.  Any parallel run is therefore reproduced bit-for-bit by
:func:`replay_serial`, and statistics folded from ``values_in_order`` are
identical across the inline, thread, process and simulated executors — the
invariant the deterministic simulation tests assert under ≥20% injected
crashes.
"""

from __future__ import annotations

import heapq
import json
import random
import time
from collections import deque
from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Protocol, runtime_checkable


# --------------------------------------------------------------------- tasks
@dataclass(frozen=True)
class Task:
    """One schedulable unit of work.

    ``payload`` is opaque to the scheduler; the executor's task function
    receives it verbatim (it must be picklable for the process executor).
    ``dependencies`` are ordering edges only: a task becomes dispatchable when
    every dependency has completed, but no values flow along the edges.
    """

    task_id: str
    payload: Any = None
    dependencies: tuple[str, ...] = ()


class TaskGraph:
    """A validated DAG of tasks, iterated in insertion order."""

    def __init__(self, tasks: Iterable[Task]):
        self._tasks: dict[str, Task] = {}
        for task in tasks:
            if task.task_id in self._tasks:
                raise ValueError(f"duplicate task id {task.task_id!r}")
            self._tasks[task.task_id] = task
        for task in self._tasks.values():
            for dep in task.dependencies:
                if dep not in self._tasks:
                    raise ValueError(
                        f"task {task.task_id!r} depends on unknown task {dep!r}"
                    )
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        # Kahn's algorithm; stable in insertion order so the topological order
        # of an edge-free graph is exactly the insertion order.
        indegree = {tid: len(task.dependencies) for tid, task in self._tasks.items()}
        dependants: dict[str, list[str]] = {tid: [] for tid in self._tasks}
        for tid, task in self._tasks.items():
            for dep in task.dependencies:
                dependants[dep].append(tid)
        ready = deque(tid for tid, degree in indegree.items() if degree == 0)
        seen = 0
        order: list[str] = []
        while ready:
            tid = ready.popleft()
            order.append(tid)
            seen += 1
            for nxt in dependants[tid]:
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    ready.append(nxt)
        if seen != len(self._tasks):
            raise ValueError("task graph contains a dependency cycle")
        self._topological = order

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self):
        return iter(self._tasks.values())

    def __contains__(self, task_id: str) -> bool:
        return task_id in self._tasks

    def task(self, task_id: str) -> Task:
        """Look up one task by id."""
        return self._tasks[task_id]

    @property
    def task_ids(self) -> list[str]:
        """Task ids in insertion (result-reporting) order."""
        return list(self._tasks)

    def topological_order(self) -> list[str]:
        """A dependency-respecting order (insertion-stable)."""
        return list(self._topological)


@dataclass(frozen=True)
class RetryPolicy:
    """Per-task retry/timeout budget.

    ``max_attempts`` bounds the total dispatches of one task (replicated
    copies included); ``None`` means retry forever — the volunteer-grid
    policy, where the server re-issues until a quorum is reached.  ``timeout``
    is a *virtual-time* deadline per attempt, interpreted by the simulated
    executor (crashed attempts are only noticed at the deadline, exactly like
    a BOINC work unit); real executors bound their attempts with solver
    budgets instead, so they ignore it.
    """

    max_attempts: int | None = 3
    timeout: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts is not None and self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1 (or None for unlimited)")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive")


# ---------------------------------------------------------------- completions
#: Attempt outcomes an executor can report.
OUTCOME_SUCCESS = "success"
OUTCOME_CRASH = "crash"  # worker died / result never returned
OUTCOME_TIMEOUT = "timeout"  # attempt exceeded its virtual deadline
OUTCOME_ERROR = "error"  # the task function raised


@dataclass
class Completion:
    """One attempt's terminal event, as reported by an executor."""

    task_id: str
    worker: int
    outcome: str
    value: Any = None
    error: str | None = None
    #: Event time: virtual seconds for the simulated executor, wall-clock
    #: seconds since run start otherwise.
    time: float = 0.0
    #: Busy time the attempt occupied its worker.
    duration: float = 0.0
    #: False for injected duplicate deliveries, which do not free a worker.
    frees_worker: bool = True
    #: True for deterministic task errors (``ValueError``/``TypeError``):
    #: re-running a pure function on bad input cannot succeed, so the
    #: scheduler fails the task immediately instead of burning retries.
    fatal: bool = False


@runtime_checkable
class Executor(Protocol):
    """Where task attempts physically (or virtually) run.

    The scheduler calls :meth:`start` only for workers it believes idle and
    then blocks in :meth:`wait` for at least one :class:`Completion`.  An
    executor owns the mapping from payloads to values (its task function) and
    the clock its completions are stamped with.
    """

    name: str
    num_workers: int

    def start(self, task: Task, worker: int, timeout: float | None = None) -> None:
        """Begin one attempt of ``task`` on ``worker``."""
        ...  # pragma: no cover

    def wait(self) -> list[Completion]:
        """Block until at least one attempt finishes; return its completion(s)."""
        ...  # pragma: no cover

    def close(self) -> None:
        """Release executor resources (pools, threads)."""
        ...  # pragma: no cover


class InlineExecutor:
    """Run every attempt immediately in the calling thread (the serial policy)."""

    name = "inline"
    num_workers = 1

    def __init__(self, task_fn: Callable[[Any], Any]):
        self.task_fn = task_fn
        self._pending: deque[Completion] = deque()
        self._started = time.perf_counter()
        self._busy_time = 0.0

    def start(self, task: Task, worker: int, timeout: float | None = None) -> None:
        """Execute the attempt synchronously and queue its completion."""
        begun = time.perf_counter()
        fatal = False
        try:
            value = self.task_fn(task.payload)
            outcome, error = OUTCOME_SUCCESS, None
        except Exception as exc:  # noqa: BLE001 - converted into a retryable event
            value, outcome, error = None, OUTCOME_ERROR, f"{type(exc).__name__}: {exc}"
            fatal = isinstance(exc, (ValueError, TypeError))
        duration = time.perf_counter() - begun
        self._busy_time += duration
        self._pending.append(
            Completion(
                task_id=task.task_id,
                worker=worker,
                outcome=outcome,
                value=value,
                error=error,
                time=time.perf_counter() - self._started,
                duration=duration,
                fatal=fatal,
            )
        )

    def wait(self) -> list[Completion]:
        """Return the completions produced by the preceding :meth:`start` calls."""
        if not self._pending:
            raise RuntimeError("wait() called with no attempt in flight")
        events = list(self._pending)
        self._pending.clear()
        return events

    def close(self) -> None:
        """Nothing to release."""


class ThreadExecutor:
    """Attempts run on a thread pool (useful for I/O-bound task functions)."""

    name = "thread"

    def __init__(self, task_fn: Callable[[Any], Any], num_workers: int = 4):
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        from concurrent.futures import ThreadPoolExecutor

        self.task_fn = task_fn
        self.num_workers = num_workers
        self._pool = ThreadPoolExecutor(max_workers=num_workers)
        self._futures: dict[Any, tuple[str, int, float]] = {}
        self._started = time.perf_counter()

    def start(self, task: Task, worker: int, timeout: float | None = None) -> None:
        """Submit the attempt to the thread pool."""
        future = self._pool.submit(self.task_fn, task.payload)
        self._futures[future] = (task.task_id, worker, time.perf_counter())

    def wait(self) -> list[Completion]:
        """Block for the first finished future(s)."""
        from concurrent.futures import FIRST_COMPLETED, wait

        if not self._futures:
            raise RuntimeError("wait() called with no attempt in flight")
        done, _ = wait(list(self._futures), return_when=FIRST_COMPLETED)
        events = []
        now = time.perf_counter()
        for future in done:
            task_id, worker, begun = self._futures.pop(future)
            error = future.exception()
            events.append(
                Completion(
                    task_id=task_id,
                    worker=worker,
                    outcome=OUTCOME_SUCCESS if error is None else OUTCOME_ERROR,
                    value=future.result() if error is None else None,
                    error=None if error is None else f"{type(error).__name__}: {error}",
                    time=now - self._started,
                    duration=now - begun,
                    fatal=isinstance(error, (ValueError, TypeError)),
                )
            )
        return events

    def close(self) -> None:
        """Shut the thread pool down."""
        self._pool.shutdown(wait=True)


def _run_pickled_payload(task_fn: Callable[[Any], Any], blob: bytes) -> Any:
    """Unpickle a pre-serialized task payload in the worker and run ``task_fn``.

    The indirection lets :class:`ProcessExecutor` serialize each payload
    exactly once per *task* instead of once per *attempt*: retries resubmit
    the cached byte blob (pickling ``bytes`` is a cheap passthrough), so a
    crashing worker never re-pays the payload serialization cost.
    """
    import pickle

    return task_fn(pickle.loads(blob))


class ProcessExecutor:
    """Attempts run in real worker processes (the PDSAT computing processes).

    ``task_fn`` must be a module-level (picklable) function; per-worker state
    (the CNF, the solver) is installed by ``initializer(*initargs)`` exactly
    like :mod:`repro.runner.pool` primes its workers.  A worker process dying
    mid-attempt surfaces as a ``crash`` completion and the pool is rebuilt, so
    the scheduler's retry budget covers real worker loss, not only exceptions.

    Payloads are pickled once per task (not per attempt) and shipped as byte
    blobs via :func:`_run_pickled_payload`; the blob cache is dropped as soon
    as a task completes for good (success or fatal error), so memory tracks
    the in-flight set, not the whole graph.

    **Degradation:** when the process pool cannot be created at all (no
    ``fork``/semaphores in the environment) or keeps breaking
    (``MAX_POOL_BREAKS`` consecutive rebuild-worthy crashes), the executor
    falls back to an in-process thread pool: slower (the GIL) but it keeps
    serving.  The fallback emits a ``RuntimeWarning`` and is recorded in
    ``degraded_reason``, which :meth:`Scheduler.run` copies into
    ``run.metadata["executor_fallback"]`` so callers can see the run did not
    get real process isolation.
    """

    name = "process-pool"
    #: Pool breaks tolerated before degrading to the thread fallback.
    MAX_POOL_BREAKS = 3

    def __init__(
        self,
        task_fn: Callable[[Any], Any],
        num_workers: int,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
    ):
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        self.task_fn = task_fn
        self.num_workers = num_workers
        self._initializer = initializer
        self._initargs = initargs
        self._pool = None
        self._futures: dict[Any, tuple[str, int, float]] = {}
        self._payload_blobs: dict[str, bytes] = {}
        self._started = time.perf_counter()
        self._pool_breaks = 0
        #: Why the executor degraded to threads (``None``: real processes).
        self.degraded_reason: str | None = None

    def _degrade(self, reason: str):
        """Swap in a thread pool after the process pool proved unusable."""
        import warnings
        from concurrent.futures import ThreadPoolExecutor

        self.degraded_reason = reason
        warnings.warn(
            f"process pool unusable ({reason}); degrading to a thread executor "
            "— results are identical but run without process isolation",
            RuntimeWarning,
            stacklevel=3,
        )
        if self._initializer is not None:
            # Thread workers share this process: install the per-worker
            # state (CNF, solver) exactly once, in-process.
            self._initializer(*self._initargs)
        self._pool = ThreadPoolExecutor(max_workers=self.num_workers)
        return self._pool

    def _ensure_pool(self):
        if self._pool is None:
            if self.degraded_reason is not None:
                return self._degrade(self.degraded_reason)
            from concurrent.futures import ProcessPoolExecutor

            try:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.num_workers,
                    initializer=self._initializer,
                    initargs=self._initargs,
                )
            except (OSError, ValueError, ImportError, NotImplementedError) as exc:
                return self._degrade(f"cannot create process pool: {exc}")
        return self._pool

    def start(self, task: Task, worker: int, timeout: float | None = None) -> None:
        """Submit the attempt to the process pool (payload pickled at most once)."""
        import pickle

        blob = self._payload_blobs.get(task.task_id)
        if blob is None:
            blob = pickle.dumps(task.payload, protocol=pickle.HIGHEST_PROTOCOL)
            self._payload_blobs[task.task_id] = blob
        future = self._ensure_pool().submit(_run_pickled_payload, self.task_fn, blob)
        self._futures[future] = (task.task_id, worker, time.perf_counter())

    def wait(self) -> list[Completion]:
        """Block for the first finished future(s); broken pools become crashes."""
        from concurrent.futures import FIRST_COMPLETED, wait
        from concurrent.futures.process import BrokenProcessPool

        if not self._futures:
            raise RuntimeError("wait() called with no attempt in flight")
        done, _ = wait(list(self._futures), return_when=FIRST_COMPLETED)
        events = []
        now = time.perf_counter()
        for future in done:
            if future not in self._futures:
                # Already failed as a crash when an earlier future's
                # BrokenProcessPool handler drained the whole in-flight set.
                continue
            task_id, worker, begun = self._futures.pop(future)
            fatal = False
            try:
                value = future.result()
                outcome, error = OUTCOME_SUCCESS, None
            except BrokenProcessPool as exc:
                # The worker process died: every in-flight future is doomed,
                # so fail them all as crashes and rebuild the pool lazily.
                value, outcome, error = None, OUTCOME_CRASH, f"worker process died: {exc}"
                for other in list(self._futures):
                    other_id, other_worker, other_begun = self._futures.pop(other)
                    events.append(
                        Completion(
                            task_id=other_id,
                            worker=other_worker,
                            outcome=OUTCOME_CRASH,
                            error=error,
                            time=now - self._started,
                            duration=now - other_begun,
                        )
                    )
                self._pool.shutdown(wait=False)
                self._pool = None
                self._pool_breaks += 1
                if self._pool_breaks >= self.MAX_POOL_BREAKS:
                    # The pool keeps dying (fork bombs out, shm exhausted...):
                    # stop rebuilding and finish the run on threads.
                    self._degrade(
                        f"{self._pool_breaks} consecutive pool breaks, last: {exc}"
                    )
            except Exception as exc:  # noqa: BLE001 - retryable task error
                value, outcome, error = None, OUTCOME_ERROR, f"{type(exc).__name__}: {exc}"
                fatal = isinstance(exc, (ValueError, TypeError))
            if outcome == OUTCOME_SUCCESS or fatal:
                # The task will never be resubmitted: drop its cached payload.
                self._payload_blobs.pop(task_id, None)
            events.append(
                Completion(
                    task_id=task_id,
                    worker=worker,
                    outcome=outcome,
                    value=value,
                    error=error,
                    time=now - self._started,
                    duration=now - begun,
                    fatal=fatal,
                )
            )
        return events

    def close(self) -> None:
        """Shut the process pool down."""
        self._payload_blobs.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


# ------------------------------------------------------- simulated execution
@dataclass(frozen=True)
class WorkerProfile:
    """Speed/availability of one simulated worker (a cluster core or a host)."""

    speed: float = 1.0
    availability: float = 1.0

    def effective_rate(self) -> float:
        """Work per unit of virtual time this worker delivers."""
        return self.speed * self.availability


@dataclass(frozen=True)
class FailureModel:
    """Seeded fault injection of the deterministic simulation harness.

    Faults are drawn per *attempt* from one ``random.Random(seed)`` stream in
    dispatch order, so a simulated run is a pure function of (task graph,
    worker profiles, failure model) — reruns reproduce the exact same crash,
    straggler and duplicate pattern.
    """

    #: Probability an attempt crashes: the result is never returned and the
    #: loss is only noticed at the retry deadline (BOINC semantics).
    crash_rate: float = 0.0
    #: Probability an attempt runs ``straggler_factor`` times slower.
    straggler_rate: float = 0.0
    straggler_factor: float = 4.0
    #: Probability a successful result is delivered twice (duplicated result).
    duplicate_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("crash_rate", "straggler_rate", "duplicate_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"{name} must be in [0, 1)")
        if self.straggler_factor < 1.0:
            raise ValueError("straggler_factor must be at least 1")


class SimulatedGridExecutor:
    """A deterministic virtual-clock cluster/grid.

    Attempts *execute* the task function eagerly (the bundled solvers are
    deterministic, so re-execution on retry reproduces the same value) but
    *complete* on a virtual clock: the attempt occupies its worker for
    ``duration_of(value) / worker.effective_rate() + dispatch_latency``
    virtual seconds, stretched for injected stragglers.  Crashed attempts
    return no value and are noticed at the retry deadline (or at the would-be
    finish time when no deadline is set); duplicated results deliver the same
    success twice.  With no failure model and unit-speed workers this executor
    *is* the greedy list scheduling of the paper's cluster makespan model.
    """

    name = "simulated-grid"

    def __init__(
        self,
        task_fn: Callable[[Any], Any],
        workers: int | Sequence[WorkerProfile] = 1,
        duration_of: Callable[[Any], float] | None = None,
        dispatch_latency: float = 0.0,
        failures: FailureModel | None = None,
        preempt_on_timeout: bool = False,
    ):
        if isinstance(workers, int):
            if workers < 1:
                raise ValueError("workers must be at least 1")
            profiles = [WorkerProfile() for _ in range(workers)]
        else:
            profiles = list(workers)
            if not profiles:
                raise ValueError("at least one worker profile is required")
        if dispatch_latency < 0:
            raise ValueError("dispatch_latency must be non-negative")
        self.task_fn = task_fn
        self.profiles = profiles
        self.num_workers = len(profiles)
        #: Virtual duration of a finished attempt; defaults to the value
        #: itself (which must then be numeric, e.g. a per-job cost).
        self.duration_of = duration_of or (lambda value: float(value))
        self.dispatch_latency = dispatch_latency
        self.failures = failures or FailureModel()
        self.preempt_on_timeout = preempt_on_timeout
        self._rng = random.Random(self.failures.seed)
        self.now = 0.0
        self._events: list[tuple[float, int, Completion]] = []
        self._sequence = 0
        self.worker_loads = [0.0] * self.num_workers
        self.injected_crashes = 0
        self.injected_stragglers = 0
        self.injected_duplicates = 0

    def _push(self, at: float, completion: Completion) -> None:
        self._sequence += 1
        heapq.heappush(self._events, (at, self._sequence, completion))

    def start(self, task: Task, worker: int, timeout: float | None = None) -> None:
        """Run the attempt eagerly; schedule its completion on the virtual clock."""
        rng = self._rng
        crashed = self.failures.crash_rate > 0 and rng.random() < self.failures.crash_rate
        straggles = (
            self.failures.straggler_rate > 0
            and rng.random() < self.failures.straggler_rate
        )
        duplicated = (
            self.failures.duplicate_rate > 0
            and rng.random() < self.failures.duplicate_rate
        )

        fatal = False
        try:
            value = self.task_fn(task.payload)
            failure_free = OUTCOME_SUCCESS
            error = None
            duration = self.duration_of(value)
        except Exception as exc:  # noqa: BLE001 - converted into a retryable event
            value, error = None, f"{type(exc).__name__}: {exc}"
            failure_free = OUTCOME_ERROR
            duration = 0.0
            fatal = isinstance(exc, (ValueError, TypeError))
        rate = max(self.profiles[worker].effective_rate(), 1e-12)
        duration = self.dispatch_latency + duration / rate
        if straggles:
            self.injected_stragglers += 1
            duration *= self.failures.straggler_factor

        outcome = failure_free
        if crashed and failure_free is OUTCOME_SUCCESS:
            self.injected_crashes += 1
            outcome, value, error = OUTCOME_CRASH, None, "injected worker crash"
            # The loss is only noticed at the deadline (the server's view).
            duration = timeout if timeout is not None else duration
        elif (
            self.preempt_on_timeout
            and timeout is not None
            and duration > timeout
            and failure_free is OUTCOME_SUCCESS
        ):
            outcome, value, error = OUTCOME_TIMEOUT, None, "attempt exceeded its deadline"
            duration = timeout

        finish = self.now + duration
        self.worker_loads[worker] += duration
        self._push(
            finish,
            Completion(
                task_id=task.task_id,
                worker=worker,
                outcome=outcome,
                value=value,
                error=error,
                time=finish,
                duration=duration,
                fatal=fatal,
            ),
        )
        if duplicated and outcome is OUTCOME_SUCCESS:
            self.injected_duplicates += 1
            self._push(
                finish + 1e-9,
                Completion(
                    task_id=task.task_id,
                    worker=worker,
                    outcome=OUTCOME_SUCCESS,
                    value=value,
                    time=finish + 1e-9,
                    duration=0.0,
                    frees_worker=False,
                ),
            )

    def wait(self) -> list[Completion]:
        """Advance the virtual clock to the earliest event time; return its events."""
        if not self._events:
            raise RuntimeError("wait() called with no attempt in flight")
        at = self._events[0][0]
        self.now = at
        events = []
        while self._events and self._events[0][0] == at:
            events.append(heapq.heappop(self._events)[2])
        return events

    def close(self) -> None:
        """Nothing to release."""


# ------------------------------------------------------------- checkpointing
@dataclass
class SchedulerCheckpoint:
    """A JSON-serialisable snapshot of completed task results.

    ``results`` maps task id to the *encoded* task value (whatever the run's
    ``result_encoder`` produced — JSON-plain by contract).  A checkpoint knows
    nothing about queues or in-flight attempts: resuming re-dispatches exactly
    the tasks that are missing, which is safe because task functions are pure.
    """

    results: dict[str, Any] = field(default_factory=dict)
    metadata: dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.results)

    def __contains__(self, task_id: str) -> bool:
        return task_id in self.results

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict representation."""
        return {"kind": "scheduler-checkpoint", "results": dict(self.results),
                "metadata": dict(self.metadata)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SchedulerCheckpoint":
        """Inverse of :meth:`to_dict`."""
        if data.get("kind") != "scheduler-checkpoint":
            raise ValueError("not a scheduler checkpoint document")
        return cls(results=dict(data.get("results", {})),
                   metadata=dict(data.get("metadata", {})))

    def save(self, path: str | Path) -> None:
        """Write the checkpoint as a JSON document (atomically via a temp file)."""
        target = Path(path)
        scratch = target.with_suffix(target.suffix + ".tmp")
        scratch.write_text(json.dumps(self.to_dict(), indent=2))
        scratch.replace(target)

    @classmethod
    def load(cls, path: str | Path) -> "SchedulerCheckpoint":
        """Read a checkpoint written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))

    @classmethod
    def load_or_quarantine(cls, path: str | Path) -> "SchedulerCheckpoint | None":
        """Like :meth:`load`, but a bad file reads as "no checkpoint".

        ``None`` means the file is missing, truncated, garbled, or not a
        checkpoint document at all — in the latter cases it is renamed to
        ``<name>.corrupt`` (see :mod:`repro.resilience`) and a warning
        logged, so the caller starts fresh instead of crashing on state a
        killed process left half-written.
        """
        from repro.resilience import load_json_or_quarantine, logger, quarantine

        target = Path(path)
        data = load_json_or_quarantine(target, kind="scheduler checkpoint")
        if data is None:
            return None
        try:
            return cls.from_dict(data)
        except (ValueError, TypeError, AttributeError) as error:
            moved = quarantine(target)
            logger.warning(
                "invalid scheduler checkpoint at %s (%s); quarantined to %s",
                target,
                error,
                moved,
            )
            return None


# ------------------------------------------------------------------- results
@dataclass
class TaskRecord:
    """The accepted result of one task."""

    task_id: str
    value: Any
    attempts: int
    worker: int | None
    finished_at: float
    from_checkpoint: bool = False


@dataclass
class SchedulerRun:
    """Everything one :meth:`Scheduler.run` reports."""

    graph_order: list[str]
    results: dict[str, TaskRecord] = field(default_factory=dict)
    failed: dict[str, str] = field(default_factory=dict)
    #: True when every task of the graph has an accepted result.
    completed: bool = False
    #: True when a ``stop_on`` predicate ended dispatch early.
    stopped_early: bool = False
    #: True when ``interrupt_after`` paused the run (resume via checkpoint).
    interrupted: bool = False
    #: Virtual makespan for simulated executors, wall-clock seconds otherwise.
    makespan: float = 0.0
    wall_time: float = 0.0
    worker_loads: list[float] = field(default_factory=list)
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def completed_ids(self) -> list[str]:
        """Ids with an accepted result, in task-graph order."""
        return [tid for tid in self.graph_order if tid in self.results]

    def values_in_order(self) -> list[Any]:
        """Accepted values in task-graph order — the deterministic fold order."""
        return [self.results[tid].value for tid in self.graph_order if tid in self.results]

    def checkpoint(
        self, result_encoder: Callable[[Any], Any] | None = None
    ) -> SchedulerCheckpoint:
        """Snapshot the accepted results (encoded JSON-plain) for later resume."""
        encode = result_encoder or (lambda value: value)
        return SchedulerCheckpoint(
            results={tid: encode(record.value) for tid, record in self.results.items()},
            metadata={"completed": self.completed, "tasks": len(self.graph_order)},
        )

    def assert_invariants(self) -> None:
        """Scheduler safety net: no lost tasks, no double-counted results.

        * every graph task is accounted for: accepted, failed, or explicitly
          left behind by an early stop/interrupt;
        * no task is both accepted and failed;
        * results carry no ids outside the graph (nothing invented).
        """
        ids = set(self.graph_order)
        accepted = set(self.results)
        failures = set(self.failed)
        if not accepted <= ids or not failures <= ids:
            raise AssertionError("scheduler reported results for unknown tasks")
        if accepted & failures:
            raise AssertionError("a task is both accepted and failed")
        unaccounted = ids - accepted - failures
        if unaccounted and not (self.stopped_early or self.interrupted):
            raise AssertionError(f"lost tasks: {sorted(unaccounted)[:5]}...")
        if self.completed and (failures or unaccounted):
            raise AssertionError("run marked completed with missing tasks")


# ----------------------------------------------------------------- scheduler
class Scheduler:
    """The leader loop: dispatch, retry, dedupe, checkpoint.

    Parameters
    ----------
    graph:
        The tasks (a :class:`TaskGraph` or any iterable of :class:`Task`).
    executor:
        Where attempts run.  Defaults are wired by the policy layers; the
        scheduler itself only needs the :class:`Executor` protocol.
    retry:
        The per-task retry/timeout budget (:class:`RetryPolicy`).
    queue:
        ``"fifo"`` — one global pull queue, which with a simulated executor
        reproduces PDSAT's dynamic work queue (greedy list scheduling) exactly;
        ``"work-stealing"`` — per-worker deques with round-robin placement,
        idle workers stealing from the back of the longest queue.
    replication / quorum:
        Dispatch every task ``replication`` times and accept it once
        ``quorum`` successful results arrived (BOINC validation).  Surplus
        deliveries are discarded — never double-counted.
    checkpoint / result_decoder:
        Resume from a :class:`SchedulerCheckpoint`: its tasks are completed
        immediately (decoded by ``result_decoder``) and never dispatched.
    checkpoint_sink / result_encoder / checkpoint_every:
        Stream checkpoints out while running: after every
        ``checkpoint_every``-th newly accepted result the sink receives a
        fresh snapshot (e.g. ``lambda chk: chk.save(path)``).
    stop_on:
        Early-stop predicate ``fn(task_id, value) -> bool`` evaluated on each
        accepted result; on True, dispatch stops and in-flight work drains.
    interrupt_after:
        Pause after this many newly accepted results (checkpoint/resume
        round-trip testing; the run reports ``interrupted=True``).
    """

    def __init__(
        self,
        graph: TaskGraph | Iterable[Task],
        executor: Executor,
        retry: RetryPolicy | None = None,
        queue: str = "fifo",
        replication: int = 1,
        quorum: int = 1,
        checkpoint: SchedulerCheckpoint | None = None,
        result_decoder: Callable[[Any], Any] | None = None,
        checkpoint_sink: Callable[[SchedulerCheckpoint], None] | None = None,
        result_encoder: Callable[[Any], Any] | None = None,
        checkpoint_every: int = 1,
        stop_on: Callable[[str, Any], bool] | None = None,
        interrupt_after: int | None = None,
        on_result: Callable[[str, Any], None] | None = None,
        trace=None,
    ):
        self.graph = graph if isinstance(graph, TaskGraph) else TaskGraph(graph)
        self.executor = executor
        self.retry = retry or RetryPolicy()
        if queue not in ("fifo", "work-stealing"):
            raise ValueError("queue must be 'fifo' or 'work-stealing'")
        self.queue_mode = queue
        if replication < 1:
            raise ValueError("replication must be at least 1")
        if quorum < 1:
            raise ValueError("quorum must be at least 1")
        if quorum > replication and self.retry.max_attempts is not None:
            # With unlimited retries the scheduler keeps re-issuing until the
            # quorum is met, so quorum > replication is then satisfiable.
            raise ValueError("quorum must not exceed replication unless retries are unlimited")
        self.replication = replication
        self.quorum = quorum
        self.checkpoint_in = checkpoint
        self.result_decoder = result_decoder or (lambda value: value)
        self.checkpoint_sink = checkpoint_sink
        self.result_encoder = result_encoder
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be at least 1")
        self.checkpoint_every = checkpoint_every
        self.stop_on = stop_on
        self.interrupt_after = interrupt_after
        self.on_result = on_result
        #: Optional :class:`repro.trace.format.TraceWriter` receiving the task
        #: lifecycle (``TASK_DISPATCH`` / ``TASK_COMPLETE`` / ``TASK_RETRY``).
        self.trace = trace

    def _reissue_if_short(
        self, tid, accepted_count, in_flight, queued, attempts, enqueue, stats, run,
        failure_reason: str,
    ) -> None:
        """Re-issue a task whose surviving copies cannot reach the quorum.

        Called after any non-completing event (failure, or a success still
        below quorum): if accepted + in-flight + queued copies fall short of
        the quorum and the retry budget allows, a fresh copy is enqueued;
        with copies exhausted and no budget left the task is failed.
        """
        shortfall = accepted_count[tid] + in_flight[tid] + queued[tid] < self.quorum
        budget_left = (
            self.retry.max_attempts is None
            or attempts[tid] + queued[tid] < self.retry.max_attempts
        )
        if shortfall and budget_left:
            enqueue(tid)
            stats["retries"] += 1
            if self.trace is not None:
                self.trace.task_retry(tid, attempts[tid] + queued[tid])
        elif shortfall and in_flight[tid] == 0 and queued[tid] == 0:
            run.failed[tid] = failure_reason

    # ------------------------------------------------------------------- run
    def run(self) -> SchedulerRun:
        """Process the task graph to completion (or early stop / interrupt)."""
        graph = self.graph
        executor = self.executor
        run = SchedulerRun(graph_order=graph.task_ids)
        started = time.perf_counter()

        waiting: dict[str, set[str]] = {}  # task -> unmet dependencies
        dependants: dict[str, list[str]] = {tid: [] for tid in graph.task_ids}
        attempts: dict[str, int] = {tid: 0 for tid in graph.task_ids}
        accepted_count: dict[str, int] = {tid: 0 for tid in graph.task_ids}
        in_flight: dict[str, int] = {tid: 0 for tid in graph.task_ids}
        queued: dict[str, int] = {tid: 0 for tid in graph.task_ids}
        busy: dict[int, str] = {}
        stats = {
            "dispatches": 0, "crashes": 0, "timeouts": 0, "errors": 0,
            "retries": 0, "duplicates_discarded": 0, "steals": 0,
            "from_checkpoint": 0,
        }
        stop_requested = False
        fresh_results = 0

        # Per-worker queues (work-stealing) or one shared queue (fifo).
        num_queues = executor.num_workers if self.queue_mode == "work-stealing" else 1
        queues: list[deque[str]] = [deque() for _ in range(num_queues)]
        next_queue = 0

        def enqueue(task_id: str) -> None:
            nonlocal next_queue
            queues[next_queue % num_queues].append(task_id)
            next_queue += 1
            queued[task_id] += 1

        def pop_for(worker: int) -> str | None:
            own = queues[worker % num_queues]
            if own:
                task_id = own.popleft()
            else:
                donor = max(
                    (q for q in queues if q), key=len, default=None
                )
                if donor is None:
                    return None
                task_id = donor.pop()  # steal from the back
                stats["steals"] += 1
            queued[task_id] -= 1
            return task_id

        def complete(task_id: str, value: Any, worker: int | None, at: float,
                     from_checkpoint: bool = False) -> None:
            nonlocal fresh_results, stop_requested
            run.results[task_id] = TaskRecord(
                task_id=task_id,
                value=value,
                attempts=attempts[task_id],
                worker=worker,
                finished_at=at,
                from_checkpoint=from_checkpoint,
            )
            for nxt in dependants[task_id]:
                pending = waiting.get(nxt)
                if pending is not None:
                    pending.discard(task_id)
                    if not pending:
                        del waiting[nxt]
                        for _ in range(self.replication):
                            enqueue(nxt)
            if self.on_result is not None:
                self.on_result(task_id, value)
            if not from_checkpoint:
                fresh_results += 1
                if self.checkpoint_sink is not None and (
                    fresh_results % self.checkpoint_every == 0
                ):
                    self.checkpoint_sink(run.checkpoint(self.result_encoder))
            if self.stop_on is not None and self.stop_on(task_id, value):
                stop_requested = True
                run.stopped_early = True
            if (
                self.interrupt_after is not None
                and fresh_results >= self.interrupt_after
            ):
                stop_requested = True
                run.interrupted = True

        # Seed dependency bookkeeping, restore the checkpoint, fill the queues.
        for task in graph:
            for dep in task.dependencies:
                dependants[dep].append(task.task_id)
        for task in graph:
            tid = task.task_id
            if self.checkpoint_in is not None and tid in self.checkpoint_in:
                attempts[tid] = 0
                stats["from_checkpoint"] += 1
                complete(
                    tid,
                    self.result_decoder(self.checkpoint_in.results[tid]),
                    worker=None,
                    at=0.0,
                    from_checkpoint=True,
                )
                continue
            unmet = {
                dep for dep in task.dependencies
                if dep not in run.results
            }
            if unmet:
                waiting[tid] = unmet
            else:
                for _ in range(self.replication):
                    enqueue(tid)

        # ------------------------------------------------------- leader loop
        try:
            while True:
                # Dispatch to idle workers in index order (matches the min-heap
                # tie-break of classical greedy list scheduling).
                if not stop_requested:
                    for worker in range(executor.num_workers):
                        if worker in busy:
                            continue
                        while True:
                            task_id = pop_for(worker)
                            if task_id is None:
                                break
                            # Skip stale queue entries: replicated copies of a
                            # task that completed (or fatally failed) meanwhile.
                            if task_id in run.results or task_id in run.failed:
                                continue
                            break
                        if task_id is None:
                            continue
                        attempts[task_id] += 1
                        in_flight[task_id] += 1
                        stats["dispatches"] += 1
                        if self.trace is not None:
                            self.trace.task_dispatch(task_id, stats["dispatches"])
                        busy[worker] = task_id
                        executor.start(graph.task(task_id), worker, timeout=self.retry.timeout)
                if not busy:
                    break

                for event in executor.wait():
                    if event.frees_worker:
                        busy.pop(event.worker, None)
                    tid = event.task_id
                    if self.trace is not None:
                        self.trace.task_complete(
                            tid, event.outcome, event.time, event.duration
                        )
                    if event.frees_worker:
                        in_flight[tid] = max(0, in_flight[tid] - 1)
                    if tid in run.results:
                        stats["duplicates_discarded"] += 1
                        continue
                    if event.outcome == OUTCOME_SUCCESS:
                        accepted_count[tid] += 1
                        if accepted_count[tid] >= self.quorum:
                            complete(tid, event.value, event.worker, event.time)
                        elif not stop_requested and tid not in run.failed:
                            # Below quorum with too few copies still in the
                            # field (e.g. quorum > replication): re-issue, or
                            # the task would silently never complete.
                            self._reissue_if_short(
                                tid, accepted_count, in_flight, queued, attempts,
                                enqueue, stats, run, "quorum not reached within the retry budget",
                            )
                        continue
                    # Failed attempt: crash / timeout / error.
                    key = {
                        OUTCOME_CRASH: "crashes",
                        OUTCOME_TIMEOUT: "timeouts",
                        OUTCOME_ERROR: "errors",
                    }.get(event.outcome, "errors")
                    stats[key] += 1
                    if event.fatal and tid not in run.failed:
                        # Deterministic error on a pure task function: retrying
                        # the same input cannot succeed, fail the task now.
                        run.failed[tid] = event.error or event.outcome
                        continue
                    if stop_requested or tid in run.failed:
                        continue
                    self._reissue_if_short(
                        tid, accepted_count, in_flight, queued, attempts,
                        enqueue, stats, run, event.error or event.outcome,
                    )
        finally:
            executor.close()
        run.wall_time = time.perf_counter() - started
        run.makespan = getattr(executor, "now", run.wall_time)
        run.worker_loads = list(getattr(executor, "worker_loads", []))
        run.completed = len(run.results) == len(graph)
        stats["injected_crashes"] = getattr(executor, "injected_crashes", 0)
        stats["injected_stragglers"] = getattr(executor, "injected_stragglers", 0)
        stats["injected_duplicates"] = getattr(executor, "injected_duplicates", 0)
        degraded = getattr(executor, "degraded_reason", None)
        if degraded:
            stats["executor_fallback"] = degraded
        run.metadata = stats
        if self.checkpoint_sink is not None and fresh_results % self.checkpoint_every:
            self.checkpoint_sink(run.checkpoint(self.result_encoder))
        run.assert_invariants()
        return run


def replay_serial(
    graph: TaskGraph | Iterable[Task], task_fn: Callable[[Any], Any]
) -> SchedulerRun:
    """Reproduce any parallel run serially, bit for bit.

    Runs every task of ``graph`` inline, in topological (insertion-stable)
    order, with no retries and no failure injection.  Because task functions
    are pure, ``replay_serial(graph, fn).values_in_order()`` equals the
    ``values_in_order()`` of every fault-injected parallel run of the same
    graph — the property the simulation harness tests pin down.
    """
    graph = graph if isinstance(graph, TaskGraph) else TaskGraph(graph)
    ordered = TaskGraph(graph.task(tid) for tid in graph.topological_order())
    return Scheduler(ordered, InlineExecutor(task_fn), retry=RetryPolicy(max_attempts=1)).run()
