"""Monte Carlo estimation on the unified scheduler.

The estimating mode's inner loop — solve ``N`` sampled sub-instances, fold the
costs into :class:`~repro.stats.montecarlo.OnlineStatistics` — is exactly the
workload the paper farmed out to MPI computing processes and SAT@home hosts.
This module runs it on the scheduler (:mod:`repro.runner.scheduler`) with any
executor, and guarantees the one property a distributed estimator must have:

**the statistics are a pure function of (instance, decomposition, seed).**

Two mechanisms deliver that:

* every sample task draws its assignment from a private child seed spawned by
  the discipline of :func:`repro.stats.sampling.derive_child_seeds`, so sample
  ``j`` never depends on scheduling order or the worker count;
* costs are folded into the accumulator in *task order* (not completion
  order), so the floating-point fold is the serial fold.

Consequently the inline, thread, process-pool and simulated-cluster executors
produce bit-identical :class:`~repro.stats.montecarlo.OnlineStatistics` — even
with injected worker crashes, stragglers and duplicated results — and a run
interrupted mid-trajectory resumes from its checkpoint to the same statistics
it would have produced uninterrupted.

Each sample task solves with the registry's default ``"cdcl"`` solver — since
PR 4 the flat-array arena engine (:mod:`repro.sat.cdcl.solver`), whose ~3x
propagation throughput is a CI-gated invariant (:mod:`repro.perf`,
``benchmarks/BENCH_4.json``).  Statuses — and therefore these statistics with
a status-independent cost measure and no per-sample budget — are
engine-independent; pinned cost sequences are per-engine (the frozen
``"cdcl-legacy"`` engine reproduces the pre-arena numbers).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.runner import pool as _pool
from repro.runner.scheduler import (
    Executor,
    FailureModel,
    RetryPolicy,
    Scheduler,
    SchedulerCheckpoint,
    SchedulerRun,
    SimulatedGridExecutor,
    Task,
    TaskGraph,
)
from repro.sat.formula import CNF
from repro.sat.solver import SolverBudget
from repro.stats.montecarlo import MonteCarloEstimate, OnlineStatistics
from repro.stats.sampling import derive_child_seeds, sample_bits

#: Executor names accepted by :func:`estimate_family_scheduled`.
ESTIMATION_EXECUTORS = ("serial", "thread", "process-pool", "simulated-cluster")


def _sample_task(payload: tuple[int, ...]) -> dict[str, Any]:
    """Solve one sampled sub-instance in the primed worker (JSON-plain result)."""
    outcome = _pool._solve_one(payload)
    return {
        "assumptions": list(outcome.assumptions),
        "cost": outcome.cost,
        "status": outcome.status.value,
        "wall_time": outcome.wall_time,
    }


def _batch_task(payload: tuple[str | None, tuple[tuple[int, ...], ...]]) -> list[dict]:
    """Solve one batch of sampled rows in the primed worker (JSON-plain rows)."""
    return _pool._solve_batch(payload)


def _thread_safe_batch_fn(
    cnf: CNF,
    cost_measure: str,
    solver: str,
    solver_options: Mapping[str, object] | None,
    budget: SolverBudget | None,
) -> Callable[[tuple[str | None, tuple[tuple[int, ...], ...]]], list[dict]]:
    """A batch task function with one loaded solver *per thread* (see
    :func:`_thread_safe_sample_fn` for why sharing one would race)."""
    import threading

    from repro.api.registry import get_solver

    options = dict(solver_options or {})
    factory = get_solver(solver)
    local = threading.local()

    def solve_batch(payload: tuple[str | None, tuple[tuple[int, ...], ...]]) -> list[dict]:
        _segment, rows = payload  # threads share the parent's memory: no segment
        worker_solver = getattr(local, "solver", None)
        if worker_solver is None:
            worker_solver = factory(**options).load(cnf)
            local.solver = worker_solver
        results = worker_solver.solve_batch([tuple(row) for row in rows], budget=budget)
        return [
            {
                "assumptions": [int(lit) for lit in row],
                "cost": result.stats.cost(cost_measure),
                "status": result.status.value,
                "wall_time": result.stats.wall_time,
            }
            for row, result in zip(rows, results)
        ]

    return solve_batch


def _thread_safe_sample_fn(
    cnf: CNF,
    cost_measure: str,
    solver: str,
    solver_options: Mapping[str, object] | None,
    budget: SolverBudget | None,
) -> Callable[[tuple[int, ...]], dict[str, Any]]:
    """A sample task function with one solver *per thread*.

    A :class:`~repro.runner.scheduler.ThreadExecutor` runs attempts
    concurrently, and a CDCL solver is stateful during ``solve`` — sharing one
    instance across threads would race.  The CNF itself is only read, so it is
    shared; each worker thread lazily builds its own solver from the spec, and
    fresh-solve determinism keeps the per-sample results identical to the
    serial executor's.
    """
    import threading

    from repro.api.registry import get_solver

    options = dict(solver_options or {})
    factory = get_solver(solver)
    local = threading.local()

    def sample(literals: tuple[int, ...]) -> dict[str, Any]:
        worker_solver = getattr(local, "solver", None)
        if worker_solver is None:
            worker_solver = factory(**options)
            local.solver = worker_solver
        result = worker_solver.solve(cnf, assumptions=list(literals), budget=budget)
        return {
            "assumptions": [int(lit) for lit in literals],
            "cost": result.stats.cost(cost_measure),
            "status": result.status.value,
            "wall_time": result.stats.wall_time,
        }

    return sample


def _sample_literals(
    variables: Sequence[int], sample_size: int, seed: int
) -> tuple[tuple[int, ...], ...]:
    """The sampled assumption rows, in sample order (the single source).

    Sample ``j``'s assignment bits come from child seed ``j`` of ``seed``
    (spawn discipline), so the rows — and therefore every trajectory computed
    from them — are independent of how tasks are later scheduled *and* of
    whether they are shipped one per task or batched.
    """
    ordered = tuple(sorted(set(int(v) for v in variables)))
    if not ordered:
        raise ValueError("cannot estimate over an empty decomposition set")
    if sample_size < 1:
        raise ValueError("sample_size must be at least 1")
    rows = []
    for child in derive_child_seeds(seed, sample_size):
        bits = sample_bits(child, len(ordered))
        rows.append(tuple(var if bit else -var for var, bit in zip(ordered, bits)))
    return tuple(rows)


def estimation_tasks(
    variables: Sequence[int], sample_size: int, seed: int
) -> TaskGraph:
    """The task graph of one predictive-function evaluation (one sample per task)."""
    return TaskGraph(
        Task(task_id=f"sample-{index:06d}", payload=literals)
        for index, literals in enumerate(_sample_literals(variables, sample_size, seed))
    )


def estimation_batch_tasks(
    variables: Sequence[int],
    sample_size: int,
    seed: int,
    batch_size: int,
    segment: str | None = None,
) -> TaskGraph:
    """The batched task graph: ``ceil(N / batch_size)`` tasks of up to
    ``batch_size`` assumption rows each, in sample order.

    ``segment`` optionally names a shared :class:`~repro.sat.cdcl.image
    .ArenaImage` segment; with it, a task payload is just
    ``(segment name, assumption rows)`` — the zero-copy worker protocol.
    Concatenating the per-task result lists in task order reproduces sample
    order exactly, so the leader's fold is the serial fold.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")
    rows = _sample_literals(variables, sample_size, seed)
    tasks = []
    for index, begin in enumerate(range(0, len(rows), batch_size)):
        chunk = rows[begin : begin + batch_size]
        tasks.append(Task(task_id=f"batch-{index:06d}", payload=(segment, chunk)))
    return TaskGraph(tasks)


@dataclass
class ScheduledEstimation:
    """Result of one scheduler-driven predictive-function evaluation."""

    variables: tuple[int, ...]
    sample_size: int
    cost_measure: str
    seed: int
    statistics: OnlineStatistics
    #: Per-sample costs in sample order (the serial fold order).
    costs: list[float] = field(default_factory=list)
    #: Per-sample statuses ("SAT"/"UNSAT"/"UNKNOWN") in sample order.
    statuses: list[str] = field(default_factory=list)
    run: SchedulerRun | None = None

    @property
    def value(self) -> float:
        """``F = 2^d · mean`` — the predicted total sequential cost."""
        return float(1 << len(self.variables)) * self.statistics.mean

    def estimate(self, confidence_level: float = 0.95) -> MonteCarloEstimate:
        """The accumulated statistics as a :class:`MonteCarloEstimate`."""
        return self.statistics.estimate(confidence_level)


def _resolve_executor(
    executor: str | Executor,
    cnf: CNF,
    cost_measure: str,
    solver: str,
    solver_options: Mapping[str, object] | None,
    budget: SolverBudget | None,
    processes: int | None,
    cores: int,
    failures: FailureModel | None,
) -> Executor:
    if not isinstance(executor, str):
        return executor
    if executor not in ESTIMATION_EXECUTORS:
        raise ValueError(
            f"unknown estimation executor {executor!r}; expected one of "
            f"{ESTIMATION_EXECUTORS} or an Executor instance"
        )
    if executor in ("serial", "simulated-cluster"):
        # Prime the in-process worker state once; these executors run the
        # sample task function sequentially in this process.
        _pool._init_worker(cnf, cost_measure, False, solver, dict(solver_options or {}), budget)
    if executor == "serial":
        from repro.runner.scheduler import InlineExecutor

        return InlineExecutor(task_fn=_sample_task)
    if executor == "thread":
        from repro.runner.scheduler import ThreadExecutor

        # One solver per thread — attempts run concurrently, and sharing the
        # module-level worker state across threads would race.
        return ThreadExecutor(
            task_fn=_thread_safe_sample_fn(cnf, cost_measure, solver, solver_options, budget),
            num_workers=processes or 4,
        )
    if executor == "simulated-cluster":
        return SimulatedGridExecutor(
            task_fn=_sample_task,
            workers=cores,
            duration_of=lambda result: result["cost"],
            failures=failures,
        )
    # process-pool: the worker state is installed by the pool initializer.
    import multiprocessing

    from repro.runner.scheduler import ProcessExecutor

    return ProcessExecutor(
        task_fn=_sample_task,
        num_workers=processes or multiprocessing.cpu_count(),
        initializer=_pool._init_worker,
        initargs=(cnf, cost_measure, False, solver, dict(solver_options or {}), budget),
    )


def _resolve_batch_executor(
    executor: str | Executor,
    cnf: CNF,
    cost_measure: str,
    solver: str,
    solver_options: Mapping[str, object] | None,
    budget: SolverBudget | None,
    processes: int | None,
    cores: int,
    failures: FailureModel | None,
):
    """Resolve the executor for batched tasks; returns ``(executor, shared image)``.

    Only the process-pool path builds a shared image: the leader freezes the
    clause database once (:meth:`~repro.sat.cdcl.image.ArenaImage.freeze`) and
    shares it, workers attach read-only, and task payloads shrink to (segment
    name, assumption rows).  The caller owns the returned image and must
    ``unlink`` it when the run completes.  In-process executors pass the CNF
    through the worker state instead — same results, no segment to leak.
    """
    if not isinstance(executor, str):
        return executor, None
    if executor not in ESTIMATION_EXECUTORS:
        raise ValueError(
            f"unknown estimation executor {executor!r}; expected one of "
            f"{ESTIMATION_EXECUTORS} or an Executor instance"
        )
    options = dict(solver_options or {})
    if executor in ("serial", "simulated-cluster"):
        _pool._init_worker(cnf, cost_measure, False, solver, options, budget)
    if executor == "serial":
        from repro.runner.scheduler import InlineExecutor

        return InlineExecutor(task_fn=_batch_task), None
    if executor == "thread":
        from repro.runner.scheduler import ThreadExecutor

        return (
            ThreadExecutor(
                task_fn=_thread_safe_batch_fn(cnf, cost_measure, solver, solver_options, budget),
                num_workers=processes or 4,
            ),
            None,
        )
    if executor == "simulated-cluster":
        return (
            SimulatedGridExecutor(
                task_fn=_batch_task,
                workers=cores,
                duration_of=lambda result: sum(row["cost"] for row in result),
                failures=failures,
            ),
            None,
        )
    import multiprocessing

    from repro.runner.scheduler import ProcessExecutor

    shared = None
    if solver == "cdcl" and not options.get("simplify"):
        from repro.sat.cdcl.config import CDCLConfig
        from repro.sat.cdcl.image import ArenaImage

        shared = ArenaImage.freeze(cnf, CDCLConfig(**options)).share()
    # With a shared image the initializer ships no CNF at all; without one
    # (non-arena solver) the CNF rides in the initializer exactly once per
    # worker, like the scalar path.
    initargs = (
        None if shared is not None else cnf,
        cost_measure, False, solver, options, budget,
    )
    return (
        ProcessExecutor(
            task_fn=_batch_task,
            num_workers=processes or multiprocessing.cpu_count(),
            initializer=_pool._init_worker,
            initargs=initargs,
        ),
        shared,
    )


def estimate_family_scheduled(
    cnf: CNF,
    variables: Sequence[int],
    sample_size: int = 100,
    seed: int = 0,
    executor: str | Executor = "serial",
    cost_measure: str = "propagations",
    solver: str = "cdcl",
    solver_options: Mapping[str, object] | None = None,
    budget: SolverBudget | None = None,
    processes: int | None = None,
    cores: int = 8,
    failures: FailureModel | None = None,
    retry: RetryPolicy | None = None,
    checkpoint: SchedulerCheckpoint | None = None,
    checkpoint_sink: Callable[[SchedulerCheckpoint], None] | None = None,
    checkpoint_every: int = 1,
    interrupt_after: int | None = None,
    trace=None,
    batch_size: int = 1,
) -> ScheduledEstimation:
    """Evaluate the predictive function's sample through a scheduler executor.

    ``executor`` is ``"serial"``, ``"thread"``, ``"process-pool"``,
    ``"simulated-cluster"`` or any :class:`~repro.runner.scheduler.Executor`.
    For a fixed ``(cnf, variables, sample_size, seed)`` every executor returns
    bit-identical statistics; the simulated executor additionally accepts a
    :class:`~repro.runner.scheduler.FailureModel` whose injected faults change
    the virtual makespan but never the statistics.  ``checkpoint`` /
    ``checkpoint_sink`` resume and persist partial trajectories;
    ``interrupt_after`` pauses the run after that many fresh samples (the
    checkpoint/resume round-trip the tests exercise).  ``trace`` is an
    optional :class:`repro.trace.format.TraceWriter` receiving the
    scheduler's task-lifecycle events.

    ``batch_size > 1`` ships up to that many sampled rows per task and solves
    them with :meth:`~repro.sat.cdcl.CDCLSolver.solve_batch` (requires a
    solver exposing it): the root propagation prefix is shared within each
    batch, and on the process-pool the formula travels as one shared
    read-only :class:`~repro.sat.cdcl.image.ArenaImage` segment instead of a
    pickled CNF per worker.  Per-sample costs and statuses — and therefore
    the folded statistics — are bit-identical to ``batch_size=1``; the
    statistics stay a pure function of (instance, decomposition, seed).
    """
    ordered = tuple(sorted(set(int(v) for v in variables)))
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")
    shared = None
    if batch_size == 1:
        graph = estimation_tasks(ordered, sample_size, seed)
        resolved = _resolve_executor(
            executor, cnf, cost_measure, solver, solver_options, budget,
            processes, cores, failures,
        )
    else:
        if isinstance(executor, str):
            from repro.api.registry import get_solver

            probe = get_solver(solver)(**dict(solver_options or {}))
            if not hasattr(probe, "solve_batch"):
                raise ValueError(
                    f"batch_size={batch_size} requires a solver with solve_batch "
                    f"(the arena 'cdcl' engine); {solver!r} does not expose it"
                )
        resolved, shared = _resolve_batch_executor(
            executor, cnf, cost_measure, solver, solver_options, budget,
            processes, cores, failures,
        )
        graph = estimation_batch_tasks(
            ordered, sample_size, seed, batch_size,
            segment=shared.name if shared is not None else None,
        )
    try:
        run = Scheduler(
            graph,
            resolved,
            retry=retry or RetryPolicy(max_attempts=5),
            checkpoint=checkpoint,
            checkpoint_sink=checkpoint_sink,
            checkpoint_every=checkpoint_every,
            interrupt_after=interrupt_after,
            trace=trace,
        ).run()
    finally:
        if shared is not None:
            # The leader owns the segment: destroy it however the run ended.
            # Workers keep their existing mappings (POSIX), so in-flight
            # attempts cannot crash on the unlink.
            shared.unlink()
    if run.failed:
        task_id, error = next(iter(run.failed.items()))
        raise RuntimeError(
            f"{len(run.failed)} estimation samples failed after retries "
            f"(first: {task_id}: {error})"
        )

    values = run.values_in_order()
    if batch_size > 1:
        # Task order × within-task row order == sample order: flattening
        # reproduces the serial fold exactly.
        values = [row for chunk in values for row in chunk]
    statistics = OnlineStatistics()
    costs: list[float] = []
    statuses: list[str] = []
    for value in values:
        costs.append(float(value["cost"]))
        statuses.append(str(value["status"]))
        statistics.add(float(value["cost"]))
    return ScheduledEstimation(
        variables=ordered,
        sample_size=sample_size,
        cost_measure=cost_measure,
        seed=seed,
        statistics=statistics,
        costs=costs,
        statuses=statuses,
        run=run,
    )
