"""Classical Monte Carlo estimation of an expected value (Metropolis & Ulam).

Section 2 of the paper bases the predictive function on the main formula of the
Monte Carlo method: for i.i.d. observations ``ζ_1..ζ_N`` of a random variable
``ξ`` with finite mean and variance,

    Pr[ | (1/N)·Σ ζ_j − E[ξ] | < δ_γ·σ/√N ] = γ,      γ = Φ(δ_γ),

where ``Φ`` is the normal CDF.  This module provides the sample statistics, the
CLT confidence interval, and the inverse question ("how many observations are
needed for a target relative accuracy?"), independent of anything SAT-specific.
The normal quantile is computed with a rational approximation so the module has
no dependency beyond the standard library.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass


def normal_cdf(x: float) -> float:
    """Standard normal cumulative distribution function Φ."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


def normal_quantile(p: float) -> float:
    """Inverse of Φ (the probit function) via the Acklam rational approximation.

    Accurate to about 1.15e-9 over (0, 1), which is far more than the
    sample-size calculations here need.
    """
    if not 0.0 < p < 1.0:
        raise ValueError("p must be strictly between 0 and 1")
    # Coefficients of Acklam's approximation.
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    if p > 1.0 - p_low:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
    )


@dataclass
class MonteCarloEstimate:
    """Sample statistics of a Monte Carlo experiment."""

    sample_size: int
    mean: float
    variance: float
    confidence_level: float = 0.95

    @property
    def std_dev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def std_error(self) -> float:
        """Standard error of the mean, ``σ/√N``."""
        if self.sample_size == 0:
            return float("inf")
        return self.std_dev / math.sqrt(self.sample_size)

    @property
    def half_width(self) -> float:
        """Half-width of the CLT confidence interval at ``confidence_level``."""
        if self.sample_size == 0:
            return float("inf")
        delta = normal_quantile(0.5 + self.confidence_level / 2.0)
        return delta * self.std_error

    @property
    def interval(self) -> tuple[float, float]:
        """The CLT confidence interval for the expected value."""
        return self.mean - self.half_width, self.mean + self.half_width

    @property
    def relative_error(self) -> float:
        """Half-width divided by the mean (∞ when the mean is 0)."""
        if self.mean == 0:
            return float("inf")
        return self.half_width / abs(self.mean)

    def scaled(self, factor: float) -> "MonteCarloEstimate":
        """Estimate of ``factor · ξ`` (mean and std scale linearly, variance quadratically)."""
        return MonteCarloEstimate(
            sample_size=self.sample_size,
            mean=self.mean * factor,
            variance=self.variance * factor * factor,
            confidence_level=self.confidence_level,
        )


def sample_statistics(observations: Sequence[float], confidence_level: float = 0.95) -> MonteCarloEstimate:
    """Compute mean and (unbiased) variance of a sample."""
    n = len(observations)
    if n == 0:
        raise ValueError("cannot compute statistics of an empty sample")
    mean = sum(observations) / n
    if n == 1:
        variance = 0.0
    else:
        variance = sum((x - mean) ** 2 for x in observations) / (n - 1)
    return MonteCarloEstimate(n, mean, variance, confidence_level)


def estimate_mean(observations: Sequence[float], confidence_level: float = 0.95) -> float:
    """Point estimate of the expected value (the sample mean)."""
    return sample_statistics(observations, confidence_level).mean


def confidence_interval(
    observations: Sequence[float], confidence_level: float = 0.95
) -> tuple[float, float]:
    """CLT confidence interval for the expected value from a sample."""
    return sample_statistics(observations, confidence_level).interval


def required_sample_size(
    std_dev: float,
    absolute_error: float,
    confidence_level: float = 0.95,
) -> int:
    """Observations needed so the CLT half-width is below ``absolute_error``.

    Derived from ``δ_γ·σ/√N ≤ ε``, i.e. ``N ≥ (δ_γ·σ/ε)²``.
    """
    if absolute_error <= 0:
        raise ValueError("absolute_error must be positive")
    if std_dev < 0:
        raise ValueError("std_dev must be non-negative")
    if std_dev == 0:
        return 1
    delta = normal_quantile(0.5 + confidence_level / 2.0)
    return max(1, math.ceil((delta * std_dev / absolute_error) ** 2))
