"""Classical Monte Carlo estimation of an expected value (Metropolis & Ulam).

Section 2 of the paper bases the predictive function on the main formula of the
Monte Carlo method: for i.i.d. observations ``ζ_1..ζ_N`` of a random variable
``ξ`` with finite mean and variance,

    Pr[ | (1/N)·Σ ζ_j − E[ξ] | < δ_γ·σ/√N ] = γ,      γ = Φ(δ_γ),

where ``Φ`` is the normal CDF.  This module provides the sample statistics, the
CLT confidence interval, and the inverse question ("how many observations are
needed for a target relative accuracy?"), independent of anything SAT-specific.
The normal quantile is computed with a rational approximation so the module has
no dependency beyond the standard library.

Contract of the batched estimation engine
-----------------------------------------

The Monte Carlo engine in :mod:`repro.core.predictive` consumes observations as
a *stream* — one cost value per incremental-assumption solver call — so this
module also provides :class:`OnlineStatistics`, a Welford accumulator that
maintains mean and variance in O(1) per observation without storing the sample.
Accumulators from independent batches (e.g. parallel workers, or checkpoints of
one run) combine exactly with :meth:`OnlineStatistics.merge`, and
:func:`estimate_trajectory` replays a recorded cost stream into the sequence of
prefix estimates that ``BENCH_*.json`` convergence files report.  For any fixed
sample the streaming and the two-pass statistics agree up to floating-point
rounding; tests pin them to within ``1e-9`` relative error.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass


def normal_cdf(x: float) -> float:
    """Standard normal cumulative distribution function Φ."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


def normal_quantile(p: float) -> float:
    """Inverse of Φ (the probit function) via the Acklam rational approximation.

    Accurate to about 1.15e-9 over (0, 1), which is far more than the
    sample-size calculations here need.
    """
    if not 0.0 < p < 1.0:
        raise ValueError("p must be strictly between 0 and 1")
    # Coefficients of Acklam's approximation.
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    if p > 1.0 - p_low:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
    )


@dataclass
class MonteCarloEstimate:
    """Sample statistics of a Monte Carlo experiment."""

    sample_size: int
    mean: float
    variance: float
    confidence_level: float = 0.95

    @property
    def std_dev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def std_error(self) -> float:
        """Standard error of the mean, ``σ/√N``."""
        if self.sample_size == 0:
            return float("inf")
        return self.std_dev / math.sqrt(self.sample_size)

    @property
    def half_width(self) -> float:
        """Half-width of the CLT confidence interval at ``confidence_level``."""
        if self.sample_size == 0:
            return float("inf")
        delta = normal_quantile(0.5 + self.confidence_level / 2.0)
        return delta * self.std_error

    @property
    def interval(self) -> tuple[float, float]:
        """The CLT confidence interval for the expected value."""
        return self.mean - self.half_width, self.mean + self.half_width

    @property
    def relative_error(self) -> float:
        """Half-width divided by the mean (∞ when the mean is 0)."""
        if self.mean == 0:
            return float("inf")
        return self.half_width / abs(self.mean)

    def scaled(self, factor: float) -> "MonteCarloEstimate":
        """Estimate of ``factor · ξ`` (mean and std scale linearly, variance quadratically)."""
        return MonteCarloEstimate(
            sample_size=self.sample_size,
            mean=self.mean * factor,
            variance=self.variance * factor * factor,
            confidence_level=self.confidence_level,
        )


@dataclass
class OnlineStatistics:
    """Welford's streaming mean/variance accumulator.

    Numerically stable single-pass statistics: ``add`` folds one observation in
    O(1); ``merge`` combines two independent accumulators exactly (the
    parallel-batch update of Chan, Golub & LeVeque).  ``estimate()`` converts
    the accumulated state into a :class:`MonteCarloEstimate` at any point, so
    the batched engine can report intermediate confidence intervals without
    keeping the observation list.
    """

    count: int = 0
    mean: float = 0.0
    #: Sum of squared deviations from the running mean (Welford's ``M2``).
    sum_squared_deviations: float = 0.0

    def add(self, value: float) -> None:
        """Fold one observation into the running statistics."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.sum_squared_deviations += delta * (value - self.mean)

    def add_many(self, values: Sequence[float]) -> None:
        """Fold a batch of observations (equivalent to repeated :meth:`add`)."""
        for value in values:
            self.add(value)

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0 for fewer than two observations)."""
        if self.count < 2:
            return 0.0
        return self.sum_squared_deviations / (self.count - 1)

    def merge(self, other: "OnlineStatistics") -> "OnlineStatistics":
        """Exact combination of two independent accumulators (new object)."""
        if self.count == 0:
            return OnlineStatistics(other.count, other.mean, other.sum_squared_deviations)
        if other.count == 0:
            return OnlineStatistics(self.count, self.mean, self.sum_squared_deviations)
        count = self.count + other.count
        delta = other.mean - self.mean
        mean = self.mean + delta * other.count / count
        m2 = (
            self.sum_squared_deviations
            + other.sum_squared_deviations
            + delta * delta * self.count * other.count / count
        )
        return OnlineStatistics(count, mean, m2)

    def estimate(self, confidence_level: float = 0.95) -> MonteCarloEstimate:
        """The accumulated statistics as a :class:`MonteCarloEstimate`."""
        if self.count == 0:
            raise ValueError("cannot compute statistics of an empty sample")
        return MonteCarloEstimate(self.count, self.mean, self.variance, confidence_level)

    @classmethod
    def from_observations(cls, observations: Sequence[float]) -> "OnlineStatistics":
        """An accumulator fed the observations in the given (serial) order.

        This is the reference fold the parallel scheduler reproduces: whatever
        order results arrive in, the accumulator is rebuilt by folding the
        per-task observations in *task order*, so the parallel statistics are
        bit-for-bit those of the serial run.
        """
        acc = cls()
        acc.add_many(observations)
        return acc


def merge_many(accumulators: Sequence[OnlineStatistics]) -> OnlineStatistics:
    """Left-fold a fixed sequence of accumulators into one.

    Floating-point merging is not associative, so parallel batches must always
    be combined in one agreed order (here: the order given, which callers keep
    equal to batch index).  Folding per-worker accumulators in worker order
    gives a deterministic result for any completion interleaving — though only
    :meth:`OnlineStatistics.from_observations` in task order is bit-identical
    to the serial stream; use ``merge_many`` when batch boundaries are stable.
    """
    merged = OnlineStatistics()
    for accumulator in accumulators:
        merged = merged.merge(accumulator)
    return merged


def estimate_trajectory(
    observations: Sequence[float],
    checkpoints: Sequence[int] | None = None,
    confidence_level: float = 0.95,
) -> list[MonteCarloEstimate]:
    """Prefix estimates of a cost stream at the given sample-size checkpoints.

    ``checkpoints`` defaults to every prefix length ``1..N``.  This is how the
    ``bench`` CLI turns one recorded run of ``N`` observations into the
    convergence trajectory stored in ``BENCH_*.json``: the estimate at
    checkpoint ``n`` uses exactly the first ``n`` observations.
    """
    if checkpoints is None:
        checkpoints = range(1, len(observations) + 1)
    marks = sorted(set(int(n) for n in checkpoints))
    if any(n < 1 or n > len(observations) for n in marks):
        raise ValueError(
            f"checkpoints must lie in 1..{len(observations)} (the observed sample size)"
        )
    acc = OnlineStatistics()
    trajectory: list[MonteCarloEstimate] = []
    next_mark = 0
    for index, value in enumerate(observations, start=1):
        acc.add(value)
        if next_mark < len(marks) and index == marks[next_mark]:
            trajectory.append(acc.estimate(confidence_level))
            next_mark += 1
    return trajectory


def sample_statistics(observations: Sequence[float], confidence_level: float = 0.95) -> MonteCarloEstimate:
    """Compute mean and (unbiased) variance of a sample."""
    n = len(observations)
    if n == 0:
        raise ValueError("cannot compute statistics of an empty sample")
    mean = sum(observations) / n
    if n == 1:
        variance = 0.0
    else:
        variance = sum((x - mean) ** 2 for x in observations) / (n - 1)
    return MonteCarloEstimate(n, mean, variance, confidence_level)


def estimate_mean(observations: Sequence[float], confidence_level: float = 0.95) -> float:
    """Point estimate of the expected value (the sample mean)."""
    return sample_statistics(observations, confidence_level).mean


def confidence_interval(
    observations: Sequence[float], confidence_level: float = 0.95
) -> tuple[float, float]:
    """CLT confidence interval for the expected value from a sample."""
    return sample_statistics(observations, confidence_level).interval


def required_sample_size(
    std_dev: float,
    absolute_error: float,
    confidence_level: float = 0.95,
) -> int:
    """Observations needed so the CLT half-width is below ``absolute_error``.

    Derived from ``δ_γ·σ/√N ≤ ε``, i.e. ``N ≥ (δ_γ·σ/ε)²``.
    """
    if absolute_error <= 0:
        raise ValueError("absolute_error must be positive")
    if std_dev < 0:
        raise ValueError("std_dev must be non-negative")
    if std_dev == 0:
        return 1
    delta = normal_quantile(0.5 + confidence_level / 2.0)
    return max(1, math.ceil((delta * std_dev / absolute_error) ** 2))
