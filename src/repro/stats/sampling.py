"""Sampling strategies beyond the paper's plain Monte Carlo estimator.

The paper draws a fixed-size uniform random sample for every point of the
search space.  Three practical refinements are implemented here (they are used
by the sample-size ablation benchmark and available through the public API):

* **bootstrap confidence intervals** — percentile intervals that do not lean on
  the CLT normality assumption, useful because sub-problem solving times are
  heavily right-skewed;
* **sequential (adaptive) estimation** — keep drawing observations until the
  relative half-width of the confidence interval falls below a target, instead
  of fixing ``N`` in advance; Section 2's discussion of choosing ``N`` "large
  enough" is exactly this trade-off;
* **stratified sampling over a decomposition variable** — split the assignment
  space on the values of one chosen variable and sample each stratum
  separately; with proportional allocation the estimator's variance never
  exceeds plain Monte Carlo and shrinks when the strata differ.

Seed spawn discipline
---------------------

Parallel Monte Carlo estimation must not thread one RNG through concurrently
executing tasks: the ``j``-th draw would then depend on how many draws every
other worker has already made, so the sampled trajectory would change with the
execution interleaving (and with the worker count).  The functions
:func:`derive_child_seeds` and :func:`child_rng` implement the spawn
discipline the scheduler (:mod:`repro.runner.scheduler`) relies on instead:
every task receives its own child seed, derived deterministically from the
root seed via ``random.Random(seed).getrandbits(64)``, and draws from a
private ``random.Random(child_seed)``.  Sample ``j`` therefore depends only on
``(seed, j)`` — never on scheduling order — which is what makes parallel and
serial estimation produce bit-identical trajectories.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.stats.montecarlo import MonteCarloEstimate, sample_statistics

#: Bit width of spawned child seeds.  64 bits keeps the collision probability
#: over any realistic task count negligible (~2^-24 at a billion tasks).
CHILD_SEED_BITS = 64


def derive_child_seeds(seed: int, count: int) -> list[int]:
    """Spawn ``count`` independent child seeds from one root seed.

    The spawn discipline is ``random.Random(seed).getrandbits(64)`` repeated:
    child ``j`` is the ``j``-th 64-bit draw from a generator seeded with the
    root seed alone, so the sequence is a pure function of ``seed`` —
    independent of ``PYTHONHASHSEED``, platform, and of whichever child
    streams are actually consumed, in which order, by which worker.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    root = random.Random(seed)
    return [root.getrandbits(CHILD_SEED_BITS) for _ in range(count)]


def child_seed(seed: int, index: int) -> int:
    """The ``index``-th child seed of ``seed`` (see :func:`derive_child_seeds`)."""
    if index < 0:
        raise ValueError("index must be non-negative")
    return derive_child_seeds(seed, index + 1)[index]


def child_rng(seed: int, index: int) -> random.Random:
    """A private RNG for task ``index``, seeded by the spawn discipline."""
    return random.Random(child_seed(seed, index))


def sample_bits(task_seed: int, width: int) -> tuple[int, ...]:
    """Draw one task's uniform bit vector of length ``width`` from its child seed.

    This is the per-task replacement for threading one RNG through
    ``DecompositionSet.random_sample``: the bits of sample ``j`` are a pure
    function of its child seed (``derive_child_seeds(root, n)[j]``), so a
    parallel run samples exactly the assignments a serial run would,
    regardless of completion order or worker count.
    """
    if width < 0:
        raise ValueError("width must be non-negative")
    rng = random.Random(task_seed)
    return tuple(rng.randint(0, 1) for _ in range(width))


def bootstrap_confidence_interval(
    observations: Sequence[float],
    confidence_level: float = 0.95,
    num_resamples: int = 1000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval for the mean of ``observations``."""
    if not observations:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence_level < 1.0:
        raise ValueError("confidence_level must be in (0, 1)")
    if num_resamples < 10:
        raise ValueError("num_resamples must be at least 10")
    rng = random.Random(seed)
    n = len(observations)
    means = []
    for _ in range(num_resamples):
        resample = [observations[rng.randrange(n)] for _ in range(n)]
        means.append(sum(resample) / n)
    means.sort()
    alpha = (1.0 - confidence_level) / 2.0
    low_index = max(0, int(alpha * num_resamples))
    high_index = min(num_resamples - 1, int((1.0 - alpha) * num_resamples))
    return means[low_index], means[high_index]


@dataclass
class SequentialEstimate:
    """Result of sequential (adaptive) Monte Carlo estimation."""

    estimate: MonteCarloEstimate
    observations: list[float]
    converged: bool

    @property
    def sample_size(self) -> int:
        """Number of observations actually drawn."""
        return len(self.observations)


def sequential_estimate(
    draw: Callable[[int], float],
    target_relative_error: float = 0.1,
    confidence_level: float = 0.95,
    min_samples: int = 10,
    max_samples: int = 10_000,
    batch_size: int = 10,
) -> SequentialEstimate:
    """Draw observations until the CLT relative error drops below the target.

    ``draw(i)`` returns the ``i``-th observation (e.g. the cost of solving the
    ``i``-th random sub-problem).  Sampling always performs at least
    ``min_samples`` draws and stops at ``max_samples`` even without
    convergence (``converged`` is False in that case).
    """
    if target_relative_error <= 0:
        raise ValueError("target_relative_error must be positive")
    if min_samples < 2:
        raise ValueError("min_samples must be at least 2")
    if max_samples < min_samples:
        raise ValueError("max_samples must be at least min_samples")
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")

    observations: list[float] = []
    converged = False
    while len(observations) < max_samples:
        take = min(batch_size, max_samples - len(observations))
        for _ in range(take):
            observations.append(float(draw(len(observations))))
        if len(observations) < min_samples:
            continue
        estimate = sample_statistics(observations, confidence_level)
        if estimate.relative_error <= target_relative_error:
            converged = True
            break
    estimate = sample_statistics(observations, confidence_level)
    return SequentialEstimate(estimate=estimate, observations=observations, converged=converged)


@dataclass
class StratifiedEstimate:
    """Combined estimate of a two-stratum stratified sampling experiment."""

    strata: list[MonteCarloEstimate]
    weights: list[float]
    confidence_level: float = 0.95

    @property
    def mean(self) -> float:
        """Weighted combination of the stratum means."""
        return sum(w * s.mean for w, s in zip(self.weights, self.strata))

    @property
    def variance_of_mean(self) -> float:
        """Variance of the stratified estimator of the mean."""
        total = 0.0
        for weight, stratum in zip(self.weights, self.strata):
            if stratum.sample_size > 0:
                total += (weight**2) * stratum.variance / stratum.sample_size
        return total

    @property
    def std_error(self) -> float:
        """Standard error of the stratified mean."""
        return self.variance_of_mean**0.5

    def scaled(self, factor: float) -> "StratifiedEstimate":
        """The estimate of ``factor · ξ`` (used to turn means into totals)."""
        return StratifiedEstimate(
            strata=[s.scaled(factor) for s in self.strata],
            weights=list(self.weights),
            confidence_level=self.confidence_level,
        )


def stratified_estimate(
    samples_per_stratum: Sequence[Sequence[float]],
    weights: Sequence[float] | None = None,
    confidence_level: float = 0.95,
) -> StratifiedEstimate:
    """Combine per-stratum observations into a stratified estimate.

    ``weights`` are the probabilities of the strata (they must sum to 1); the
    default assigns equal weights, which matches stratifying on the value of a
    single uniformly distributed decomposition variable.
    """
    if not samples_per_stratum:
        raise ValueError("at least one stratum is required")
    if weights is None:
        weights = [1.0 / len(samples_per_stratum)] * len(samples_per_stratum)
    if len(weights) != len(samples_per_stratum):
        raise ValueError("weights and strata must have the same length")
    if abs(sum(weights) - 1.0) > 1e-9:
        raise ValueError("weights must sum to 1")
    strata = [sample_statistics(obs, confidence_level) for obs in samples_per_stratum]
    return StratifiedEstimate(strata=strata, weights=list(weights), confidence_level=confidence_level)
