"""Monte Carlo estimation statistics.

:mod:`repro.stats.montecarlo` implements the classical fixed-``N`` machinery
the paper uses (sample statistics, CLT confidence intervals, required sample
size); :mod:`repro.stats.sampling` adds bootstrap intervals, sequential
(adaptive) estimation and stratified sampling as practical refinements.
"""

from repro.stats.montecarlo import (
    MonteCarloEstimate,
    OnlineStatistics,
    confidence_interval,
    estimate_mean,
    estimate_trajectory,
    merge_many,
    normal_cdf,
    normal_quantile,
    required_sample_size,
    sample_statistics,
)
from repro.stats.sampling import (
    SequentialEstimate,
    StratifiedEstimate,
    bootstrap_confidence_interval,
    child_rng,
    child_seed,
    derive_child_seeds,
    sample_bits,
    sequential_estimate,
    stratified_estimate,
)

__all__ = [
    "MonteCarloEstimate",
    "OnlineStatistics",
    "confidence_interval",
    "estimate_mean",
    "estimate_trajectory",
    "merge_many",
    "normal_cdf",
    "normal_quantile",
    "required_sample_size",
    "sample_statistics",
    "SequentialEstimate",
    "sequential_estimate",
    "StratifiedEstimate",
    "stratified_estimate",
    "bootstrap_confidence_interval",
    "child_rng",
    "child_seed",
    "derive_child_seeds",
    "sample_bits",
]
