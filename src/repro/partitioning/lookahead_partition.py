"""Cube-and-conquer style partitioning driven by lookahead splitting.

The cube-and-conquer paradigm (Heule, Kullmann, Wieringa & Biere) splits a SAT
instance into cubes with a lookahead solver and hands the cubes to a CDCL
solver.  The partitioning phase is reproduced here: starting from the empty
cube, the formula is recursively split on the variable with the best lookahead
score until either a target number of cubes is reached or the residual
sub-formula looks easy (few unresolved clauses or strong propagation).  Leaves
of the split tree become the cubes of the partitioning.

Where the split tree branches on different variables along different paths the
resulting cubes assign *different* variable sets — the fundamental difference
from the paper's decomposition families (all-minterm partitionings over one
set).  Lookahead cubes adapt to the formula's structure but their solving-time
distribution is much harder to estimate from a uniform sample, which is the
trade-off the comparison benchmark exhibits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.partitioning.cubes import Cube, CubePartitioning
from repro.sat.formula import CNF
from repro.sat.lookahead import lookahead_scores
from repro.sat.preprocessing import unit_propagate


@dataclass
class CubeAndConquerConfig:
    """Parameters of the lookahead cube generation."""

    #: Stop splitting once this many cubes exist.
    max_cubes: int = 64
    #: Do not split nodes deeper than this many decision literals.
    max_depth: int = 12
    #: A node whose residual formula has at most this many clauses is a leaf.
    easy_clause_threshold: int = 0
    #: Probe at most this many candidate variables per node.
    max_probe_variables: int = 32

    def __post_init__(self) -> None:
        if self.max_cubes < 2:
            raise ValueError("max_cubes must be at least 2")
        if self.max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        if self.max_probe_variables < 1:
            raise ValueError("max_probe_variables must be at least 1")


def _residual(cnf: CNF, cube_literals: list[int]) -> CNF | None:
    """The formula under the cube's propagation closure (``None`` on conflict)."""
    assignment = {abs(lit): lit > 0 for lit in cube_literals}
    propagation = unit_propagate(cnf, assignment)
    if propagation.conflict:
        return None
    return propagation.simplified


def _candidate_variables(residual: CNF, limit: int) -> list[int]:
    """Most frequently occurring variables of the residual formula."""
    counts: dict[int, int] = {}
    for clause in residual.clauses:
        for lit in clause:
            counts[abs(lit)] = counts.get(abs(lit), 0) + 1
    ranked = sorted(counts, key=lambda v: (-counts[v], v))
    return ranked[:limit]


def lookahead_partitioning(
    cnf: CNF, config: CubeAndConquerConfig | None = None
) -> CubePartitioning:
    """Build a cube-and-conquer partitioning of ``cnf`` by recursive lookahead splits.

    Refuted branches are *kept* as (trivially unsatisfiable) cubes so that the
    produced cube set always covers the full assignment space — cube-and-conquer
    implementations drop them, but keeping them makes the partitioning property
    checkable with :meth:`repro.partitioning.cubes.CubePartitioning.is_valid_partitioning`
    and costs one immediately-conflicting solver call per refuted cube.
    """
    config = config or CubeAndConquerConfig()
    open_nodes: list[list[int]] = [[]]
    leaves: list[list[int]] = []

    while open_nodes and len(open_nodes) + len(leaves) < config.max_cubes:
        # Split the shallowest open node first (breadth-first keeps the tree balanced).
        open_nodes.sort(key=len)
        cube_literals = open_nodes.pop(0)
        residual = _residual(cnf, cube_literals)
        if residual is None or len(cube_literals) >= config.max_depth:
            leaves.append(cube_literals)
            continue
        if len(residual.clauses) <= config.easy_clause_threshold:
            leaves.append(cube_literals)
            continue

        candidates = _candidate_variables(residual, config.max_probe_variables)
        if not candidates:
            leaves.append(cube_literals)
            continue
        probes = lookahead_scores(residual, candidates)
        if not probes:
            leaves.append(cube_literals)
            continue
        best = max(probes, key=lambda p: (p.combined_score, -p.variable))
        open_nodes.append(cube_literals + [best.variable])
        open_nodes.append(cube_literals + [-best.variable])

    leaves.extend(open_nodes)
    if len(leaves) == 1 and not leaves[0]:
        # The formula was never split (e.g. everything propagates): produce the
        # smallest non-trivial partitioning so downstream code sees >= 2 cubes.
        variables = sorted(cnf.variables()) or [1]
        first = variables[0]
        return CubePartitioning(
            cnf, [Cube.of([first]), Cube.of([-first])], technique="cube_and_conquer"
        )
    return CubePartitioning(
        cnf, [Cube.of(literals) for literals in leaves], technique="cube_and_conquer"
    )


# --------------------------------------------------------------- registry wiring
from repro.api.registry import register_partitioner  # noqa: E402  (import-time registration)


@register_partitioner("cube-and-conquer", description="recursive lookahead splitting")
def _cube_and_conquer_factory(cnf: CNF, parts: int, **options) -> CubePartitioning:
    """Build a cube-and-conquer partitioning with at most ``parts`` cubes."""
    return lookahead_partitioning(cnf, CubeAndConquerConfig(max_cubes=parts, **options))
