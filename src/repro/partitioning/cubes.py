"""Cube partitionings: the common representation of classical partitioning techniques.

A *cube* is a conjunction of literals; a *cube partitioning* of a CNF ``C`` is a
set of cubes ``G_1, ..., G_s`` such that any two cubes are mutually inconsistent
and ``C`` is equivalent to ``(C ∧ G_1) ∨ ... ∨ (C ∧ G_s)`` — exactly the
definition at the start of Section 2 of the paper.  The decomposition families
of :mod:`repro.core.decomposition` are the special case where every cube is a
minterm over the same decomposition set; guiding-path, scattering and
cube-and-conquer partitionings produce cubes of varying length, which is what
makes their total solving time hard to estimate by uniform sampling.
"""

from __future__ import annotations

import random
import time
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field

from repro.sat.formula import CNF
from repro.sat.solver import Solver, SolverBudget, SolverStatus
from repro.stats.montecarlo import MonteCarloEstimate, sample_statistics


@dataclass(frozen=True)
class Cube:
    """A conjunction of literals (one branch of a partitioning)."""

    literals: tuple[int, ...]

    def __post_init__(self) -> None:
        seen: dict[int, int] = {}
        for lit in self.literals:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            var = abs(lit)
            if var in seen and seen[var] != lit:
                raise ValueError(f"cube assigns variable {var} both polarities")
            seen[var] = lit

    @classmethod
    def of(cls, literals: Iterable[int]) -> "Cube":
        """Build a cube, sorting literals by variable for a canonical form."""
        return cls(tuple(sorted(set(literals), key=abs)))

    @property
    def variables(self) -> tuple[int, ...]:
        """Variables constrained by the cube."""
        return tuple(abs(lit) for lit in self.literals)

    def __len__(self) -> int:
        return len(self.literals)

    def __iter__(self) -> Iterator[int]:
        return iter(self.literals)

    def conflicts_with(self, other: "Cube") -> bool:
        """True when the two cubes assign some variable opposite values."""
        mine = {abs(lit): lit for lit in self.literals}
        return any(mine.get(abs(lit), lit) != lit for lit in other.literals)

    def negation_clause(self) -> tuple[int, ...]:
        """The clause ``¬cube`` (used for coverage checking and scattering)."""
        return tuple(-lit for lit in self.literals)

    def extended(self, literal: int) -> "Cube":
        """The cube extended by one more literal."""
        return Cube.of(self.literals + (literal,))

    def __str__(self) -> str:
        return " ∧ ".join(str(lit) for lit in self.literals) if self.literals else "⊤"


@dataclass
class PartitioningCostReport:
    """Measured cost of processing every cube of a partitioning."""

    costs: list[float] = field(default_factory=list)
    statuses: list[SolverStatus] = field(default_factory=list)
    cost_measure: str = "propagations"
    wall_time: float = 0.0

    @property
    def total_cost(self) -> float:
        """Total sequential cost over all cubes (the quantity the paper estimates)."""
        return sum(self.costs)

    @property
    def num_sat(self) -> int:
        """Number of satisfiable cubes."""
        return sum(1 for status in self.statuses if status is SolverStatus.SAT)

    @property
    def max_cost(self) -> float:
        """Cost of the hardest cube (a lower bound on any parallel makespan)."""
        return max(self.costs) if self.costs else 0.0

    @property
    def imbalance(self) -> float:
        """Ratio of the hardest cube to the mean cube cost (1.0 = perfectly balanced)."""
        if not self.costs or self.total_cost == 0:
            return 1.0
        return self.max_cost / (self.total_cost / len(self.costs))


class CubePartitioning:
    """A partitioning of a CNF into cubes, with checking, solving and estimation."""

    def __init__(self, cnf: CNF, cubes: Sequence[Cube | Iterable[int]], technique: str = ""):
        self.cnf = cnf
        self.cubes: list[Cube] = [
            cube if isinstance(cube, Cube) else Cube.of(cube) for cube in cubes
        ]
        if not self.cubes:
            raise ValueError("a partitioning must contain at least one cube")
        self.technique = technique

    @classmethod
    def from_decomposition_set(
        cls, cnf: CNF, variables: Iterable[int]
    ) -> "CubePartitioning":
        """The paper's decomposition family Δ_C(X̃) expressed as a cube partitioning.

        Every cube is a minterm over ``variables`` (so the partitioning is
        uniform by construction); the number of cubes is ``2^d``, which bounds
        the practical size of ``variables`` to ~20.
        """
        ordered = sorted(set(int(v) for v in variables))
        if not ordered:
            raise ValueError("the decomposition set must not be empty")
        if len(ordered) > 24:
            raise ValueError(
                f"2^{len(ordered)} cubes is too large to materialise explicitly"
            )
        cubes = []
        for bits in range(1 << len(ordered)):
            cubes.append(
                Cube.of(
                    var if (bits >> position) & 1 else -var
                    for position, var in enumerate(ordered)
                )
            )
        return cls(cnf, cubes, technique="decomposition family")

    def __len__(self) -> int:
        return len(self.cubes)

    def __iter__(self) -> Iterator[Cube]:
        return iter(self.cubes)

    @property
    def cube_lengths(self) -> list[int]:
        """Number of literals per cube (constant for decomposition families)."""
        return [len(cube) for cube in self.cubes]

    @property
    def is_uniform(self) -> bool:
        """True when every cube assigns the same set of variables (paper's case)."""
        first = set(self.cubes[0].variables)
        return all(set(cube.variables) == first for cube in self.cubes)

    # ------------------------------------------------------------------ validity
    def pairwise_inconsistent(self) -> bool:
        """Check that any two distinct cubes conflict on some variable.

        Quadratic in the number of cubes; intended for the moderate cube counts
        produced by the techniques in this package.
        """
        for i, first in enumerate(self.cubes):
            for second in self.cubes[i + 1 :]:
                if not first.conflicts_with(second):
                    return False
        return True

    def covers_formula(self, solver: Solver) -> bool:
        """Check that every model of ``C`` satisfies some cube.

        Equivalent to ``C ∧ ¬G_1 ∧ ... ∧ ¬G_s`` being unsatisfiable, which is
        what is checked (one solver call on the augmented formula).
        """
        augmented = self.cnf.copy()
        for cube in self.cubes:
            clause = cube.negation_clause()
            if not clause:
                return True  # the empty cube covers everything
            augmented.add_clause(clause)
        result = solver.solve(augmented)
        if not result.is_decided:
            raise RuntimeError("solver returned UNKNOWN during the coverage check")
        return result.is_unsat

    def is_valid_partitioning(self, solver: Solver) -> bool:
        """Both partitioning properties of Section 2: disjointness and coverage."""
        return self.pairwise_inconsistent() and self.covers_formula(solver)

    # ------------------------------------------------------------------- solving
    def solve_all(
        self,
        solver: Solver,
        cost_measure: str = "propagations",
        budget: SolverBudget | None = None,
        stop_on_sat: bool = False,
    ) -> PartitioningCostReport:
        """Solve every cube and record the per-cube cost (the ground truth ``t_{C,A}``)."""
        report = PartitioningCostReport(cost_measure=cost_measure)
        start = time.perf_counter()
        for cube in self.cubes:
            result = solver.solve(self.cnf, assumptions=list(cube), budget=budget)
            report.costs.append(result.stats.cost(cost_measure))
            report.statuses.append(result.status)
            if stop_on_sat and result.is_sat:
                break
        report.wall_time = time.perf_counter() - start
        return report

    # ---------------------------------------------------------------- estimation
    def estimate_total_cost(
        self,
        solver: Solver,
        sample_size: int,
        cost_measure: str = "propagations",
        seed: int = 0,
        budget: SolverBudget | None = None,
        confidence_level: float = 0.95,
    ) -> MonteCarloEstimate:
        """Monte Carlo estimate of the total cost by uniform sampling of *cubes*.

        For a uniform (decomposition-family) partitioning this is exactly the
        paper's estimator ``F``.  For irregular partitionings the estimator is
        still unbiased for ``s · E[cost of a uniformly chosen cube]`` — but the
        variance is typically much larger because cube costs vary over orders of
        magnitude with the cube length, which is the quantitative content of the
        paper's remark that such partitionings are hard to estimate.  The
        benchmark ``bench_partitioning_techniques.py`` measures this effect.
        """
        if sample_size < 1:
            raise ValueError("sample_size must be at least 1")
        rng = random.Random(seed)
        costs: list[float] = []
        for _ in range(sample_size):
            cube = self.cubes[rng.randrange(len(self.cubes))]
            result = solver.solve(self.cnf, assumptions=list(cube), budget=budget)
            costs.append(result.stats.cost(cost_measure))
        per_cube = sample_statistics(costs, confidence_level)
        return per_cube.scaled(float(len(self.cubes)))

    def summary(self) -> str:
        """One-line description used by benchmarks."""
        lengths = self.cube_lengths
        return (
            f"{self.technique or 'partitioning'}: {len(self.cubes)} cubes, "
            f"length min/mean/max = {min(lengths)}/{sum(lengths) / len(lengths):.1f}/{max(lengths)}"
        )
