"""Guiding-path partitioning.

The guiding-path scheme (Zhang's PSATO, later grid solvers) splits a SAT
instance along the decision path of a sequential solver: if the solver's
current path assigns the decision literals ``l_1, ..., l_k``, the untried
branches form the partitioning

    ¬l_1,   l_1 ∧ ¬l_2,   l_1 ∧ l_2 ∧ ¬l_3,   ...,   l_1 ∧ ... ∧ l_k.

Each cube hands one "remaining" branch of the search tree to a different
worker.  The cubes are pairwise inconsistent by construction and cover the
whole assignment space, so they always form a valid partitioning — but their
lengths (and therefore their difficulty) differ wildly, which is precisely why
the paper's uniform-sampling time estimation does not transfer to them.

The decision literals are chosen here the same way a simple solver would pick
them: either by occurrence count (``heuristic="occurrences"``) or by lookahead
scores (``heuristic="lookahead"``), always after closing the formula under unit
propagation so the path does not waste splits on forced variables.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.partitioning.cubes import Cube, CubePartitioning
from repro.sat.formula import CNF
from repro.sat.lookahead import rank_variables_by_lookahead
from repro.sat.preprocessing import unit_propagate


@dataclass
class GuidingPathConfig:
    """Parameters of the guiding-path construction."""

    #: Length of the guiding path (the partitioning has ``path_length + 1`` cubes).
    path_length: int = 8
    #: ``"occurrences"`` or ``"lookahead"``.
    heuristic: str = "occurrences"
    #: Polarity given to the decision literals along the path.
    positive_branch_first: bool = True

    def __post_init__(self) -> None:
        if self.path_length < 1:
            raise ValueError("path_length must be at least 1")
        if self.heuristic not in ("occurrences", "lookahead"):
            raise ValueError("heuristic must be 'occurrences' or 'lookahead'")


def _occurrence_ranking(cnf: CNF, forbidden: set[int]) -> list[int]:
    """Free variables ranked by how many clauses mention them."""
    counts: dict[int, int] = {}
    for clause in cnf.clauses:
        for lit in clause:
            var = abs(lit)
            if var not in forbidden:
                counts[var] = counts.get(var, 0) + 1
    return sorted(counts, key=lambda v: (-counts[v], v))


def guiding_path_partitioning(
    cnf: CNF, config: GuidingPathConfig | None = None
) -> CubePartitioning:
    """Build a guiding-path partitioning of ``cnf``.

    The decision path follows the configured branching heuristic on the
    unit-propagated formula; variables fixed by propagation never appear on the
    path.  If fewer free variables remain than ``path_length``, the path is
    truncated accordingly.
    """
    config = config or GuidingPathConfig()
    propagation = unit_propagate(cnf)
    if propagation.conflict or propagation.simplified is None:
        # Trivially unsatisfiable formula: any two complementary cubes are a
        # valid (if pointless) partitioning.
        first_var = min(cnf.variables() or {1})
        return CubePartitioning(
            cnf, [Cube.of([first_var]), Cube.of([-first_var])], technique="guiding_path"
        )
    simplified = propagation.simplified
    forbidden = propagation.fixed_variables

    if config.heuristic == "lookahead":
        ranked = rank_variables_by_lookahead(simplified)
        ranked = [v for v in ranked if v not in forbidden]
    else:
        ranked = _occurrence_ranking(simplified, forbidden)
    path_vars = ranked[: config.path_length]
    if not path_vars:
        # Degenerate instance: everything is forced; a single empty-prefix cube
        # (split on the first variable) keeps the partitioning well-formed.
        first_var = min(cnf.variables() or {1})
        return CubePartitioning(
            cnf, [Cube.of([first_var]), Cube.of([-first_var])], technique="guiding_path"
        )

    sign = 1 if config.positive_branch_first else -1
    path = [sign * var for var in path_vars]

    cubes: list[Cube] = []
    for depth, literal in enumerate(path):
        cubes.append(Cube.of(path[:depth] + [-literal]))
    cubes.append(Cube.of(path))
    return CubePartitioning(cnf, cubes, technique="guiding_path")


# --------------------------------------------------------------- registry wiring
from repro.api.registry import register_partitioner  # noqa: E402  (import-time registration)


@register_partitioner("guiding-path", description="untried branches of a decision path")
def _guiding_path_factory(cnf: CNF, parts: int, **options) -> CubePartitioning:
    """Build a guiding-path partitioning with ``parts`` cubes."""
    return guiding_path_partitioning(cnf, GuidingPathConfig(path_length=parts - 1, **options))
