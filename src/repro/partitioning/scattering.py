"""The scattering procedure for constructing SAT partitionings.

Scattering (Hyvärinen, Junttila & Niemelä) builds a partitioning of ``C`` into
``s`` sub-formulas by peeling off constrained slices one at a time.  At step
``i`` a conjunction of literals ``K_i = l_{i,1} ∧ ... ∧ l_{i,k_i}`` is chosen
and the ``i``-th subproblem becomes

    C ∧ ¬K_1 ∧ ... ∧ ¬K_{i-1} ∧ K_i,

while the last (``s``-th) subproblem carries all the negations and no positive
slice.  With ``k_i`` literals the slice covers a ``2^{-k_i}`` fraction of the
remaining assignment space, so ``k_i`` is chosen to make subproblem ``i`` cover
roughly ``1/(s - i + 1)`` of what is left — the classical scattering ratio.

Unlike a decomposition family, the parts are not plain cubes: the carried
negations ``¬K_j`` are *clauses*, so a part is "the original formula plus some
clauses plus some assumptions".  :class:`ScatteringPartitioning` represents
exactly that.  The parts differ wildly in how constrained they are, which is
why the paper's uniform-sampling runtime estimator does not transfer to
scattering partitionings; ``bench_partitioning_techniques.py`` measures the
consequences.
"""

from __future__ import annotations

import math
import time
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.partitioning.cubes import PartitioningCostReport
from repro.sat.formula import CNF, Clause
from repro.sat.lookahead import rank_variables_by_lookahead
from repro.sat.preprocessing import unit_propagate
from repro.sat.solver import Solver, SolverBudget


@dataclass
class ScatteringConfig:
    """Parameters of the scattering construction."""

    #: Number of subproblems to produce.
    num_subproblems: int = 8
    #: ``"occurrences"`` or ``"lookahead"`` — how slice literals are chosen.
    heuristic: str = "occurrences"
    #: Polarity of the slice literals.
    positive_literals: bool = True

    def __post_init__(self) -> None:
        if self.num_subproblems < 2:
            raise ValueError("num_subproblems must be at least 2")
        if self.heuristic not in ("occurrences", "lookahead"):
            raise ValueError("heuristic must be 'occurrences' or 'lookahead'")


@dataclass(frozen=True)
class ScatteringPart:
    """One subproblem of a scattering partitioning.

    The subproblem is ``C`` extended with ``extra_clauses`` (the negations of
    earlier slices) under the assumption literals ``slice_literals`` (this
    part's own slice; empty for the final part).
    """

    index: int
    slice_literals: tuple[int, ...]
    extra_clauses: tuple[Clause, ...]

    def formula(self, cnf: CNF) -> CNF:
        """The part's formula: ``cnf`` plus the carried negation clauses."""
        part = cnf.copy()
        for clause in self.extra_clauses:
            part.add_clause(clause)
        return part

    def __str__(self) -> str:
        positive = " ∧ ".join(str(lit) for lit in self.slice_literals) or "⊤"
        return f"part {self.index}: {len(self.extra_clauses)} negation clauses ∧ {positive}"


@dataclass
class ScatteringPartitioning:
    """A scattering partitioning: ordered parts that are disjoint and exhaustive.

    Validity holds by construction: part ``i`` asserts ``K_i`` while every later
    part carries the clause ``¬K_i``, so two distinct parts are mutually
    inconsistent, and the union of "``K_1``", "``¬K_1 ∧ K_2``", ...,
    "``¬K_1 ∧ ... ∧ ¬K_{s-1}``" covers every assignment.
    """

    cnf: CNF
    parts: list[ScatteringPart] = field(default_factory=list)
    technique: str = "scattering"

    def __len__(self) -> int:
        return len(self.parts)

    def __iter__(self) -> Iterator[ScatteringPart]:
        return iter(self.parts)

    @property
    def slice_sizes(self) -> list[int]:
        """Number of slice literals per part (0 for the final remainder part)."""
        return [len(part.slice_literals) for part in self.parts]

    def coverage_fractions(self) -> list[float]:
        """Nominal fraction of the assignment space each part covers."""
        fractions: list[float] = []
        remaining = 1.0
        for part in self.parts[:-1]:
            fraction = remaining * 2.0 ** (-len(part.slice_literals))
            fractions.append(fraction)
            remaining -= fraction
        fractions.append(remaining)
        return fractions

    def pairwise_inconsistent(self) -> bool:
        """Explicitly re-check the by-construction disjointness (used in tests)."""
        for i, earlier in enumerate(self.parts):
            if not earlier.slice_literals:
                continue
            negation = tuple(-lit for lit in earlier.slice_literals)
            for later in self.parts[i + 1 :]:
                if negation not in later.extra_clauses:
                    return False
        return True

    def covers_formula(self, solver: Solver | None = None) -> bool:
        """Check that every assignment belongs to some part.

        Coverage is unconditional for a well-formed scattering: an assignment
        belongs to the part of the *first* slice it satisfies, or to the final
        remainder part when it satisfies none.  What can break it is a
        malformed construction — a sliced part whose negation clause is missing
        from every later part, or a final part that does not carry all the
        negations — so that is what is verified structurally.  The ``solver``
        argument is accepted for API symmetry with
        :meth:`repro.partitioning.cubes.CubePartitioning.covers_formula` and is
        not needed.
        """
        del solver  # structural check only; see the docstring
        if self.parts[-1].slice_literals:
            return False
        expected: list[Clause] = []
        for part in self.parts:
            if tuple(part.extra_clauses) != tuple(expected):
                return False
            if part.slice_literals:
                expected.append(tuple(-lit for lit in part.slice_literals))
        return True

    # ------------------------------------------------------------------- solving
    def solve_all(
        self,
        solver: Solver,
        cost_measure: str = "propagations",
        budget: SolverBudget | None = None,
        stop_on_sat: bool = False,
    ) -> PartitioningCostReport:
        """Solve every part and record per-part costs."""
        report = PartitioningCostReport(cost_measure=cost_measure)
        start = time.perf_counter()
        for part in self.parts:
            result = solver.solve(
                part.formula(self.cnf),
                assumptions=list(part.slice_literals),
                budget=budget,
            )
            report.costs.append(result.stats.cost(cost_measure))
            report.statuses.append(result.status)
            if stop_on_sat and result.is_sat:
                break
        report.wall_time = time.perf_counter() - start
        return report

    def summary(self) -> str:
        """One-line description used by benchmarks."""
        sizes = self.slice_sizes
        return (
            f"scattering: {len(self.parts)} parts, slice sizes "
            f"{sizes} (fractions {[f'{f:.2f}' for f in self.coverage_fractions()]})"
        )


def _slice_sizes(num_subproblems: int) -> list[int]:
    """Number of literals per slice so part ``i`` covers ~1/(s-i+1) of what remains."""
    sizes: list[int] = []
    for index in range(num_subproblems - 1):
        remaining = num_subproblems - index
        sizes.append(max(1, round(math.log2(remaining))))
    return sizes


def _ranked_variables(cnf: CNF, heuristic: str, exclude: set[int]) -> list[int]:
    """Free variables of ``cnf`` ranked by the configured heuristic."""
    if heuristic == "lookahead":
        ranked = rank_variables_by_lookahead(cnf)
    else:
        counts: dict[int, int] = {}
        for clause in cnf.clauses:
            for lit in clause:
                counts[abs(lit)] = counts.get(abs(lit), 0) + 1
        ranked = sorted(counts, key=lambda v: (-counts[v], v))
    return [v for v in ranked if v not in exclude]


def scattering_partitioning(
    cnf: CNF, config: ScatteringConfig | None = None
) -> ScatteringPartitioning:
    """Build a scattering partitioning of ``cnf`` with ``config.num_subproblems`` parts."""
    config = config or ScatteringConfig()
    propagation = unit_propagate(cnf)
    if propagation.conflict or propagation.simplified is None:
        first_var = min(cnf.variables() or {1})
        parts = [
            ScatteringPart(index=0, slice_literals=(first_var,), extra_clauses=()),
            ScatteringPart(index=1, slice_literals=(), extra_clauses=((-first_var,),)),
        ]
        return ScatteringPartitioning(cnf, parts)

    simplified = propagation.simplified
    exclude = set(propagation.fixed_variables)
    ranked = _ranked_variables(simplified, config.heuristic, exclude)
    if not ranked:
        first_var = min(cnf.variables() or {1})
        parts = [
            ScatteringPart(index=0, slice_literals=(first_var,), extra_clauses=()),
            ScatteringPart(index=1, slice_literals=(), extra_clauses=((-first_var,),)),
        ]
        return ScatteringPartitioning(cnf, parts)

    # Degrade gracefully when the formula has fewer free variables than the
    # requested fan-out needs (grid schedulers do the same: they produce as many
    # parts as the formula supports).
    num_subproblems = config.num_subproblems
    sizes = _slice_sizes(num_subproblems)
    while num_subproblems > 2 and sum(sizes) > len(ranked):
        num_subproblems -= 1
        sizes = _slice_sizes(num_subproblems)
    sizes = sizes if sum(sizes) <= len(ranked) else [1] * min(len(ranked), num_subproblems - 1)

    sign = 1 if config.positive_literals else -1
    parts: list[ScatteringPart] = []
    negation_clauses: list[Clause] = []
    cursor = 0
    for index, size in enumerate(sizes):
        slice_literals = tuple(sign * var for var in ranked[cursor : cursor + size])
        cursor += size
        parts.append(
            ScatteringPart(
                index=index,
                slice_literals=slice_literals,
                extra_clauses=tuple(negation_clauses),
            )
        )
        negation_clauses.append(tuple(-lit for lit in slice_literals))
    parts.append(
        ScatteringPart(
            index=len(sizes),
            slice_literals=(),
            extra_clauses=tuple(negation_clauses),
        )
    )
    return ScatteringPartitioning(cnf, parts)


# --------------------------------------------------------------- registry wiring
from repro.api.registry import register_partitioner  # noqa: E402  (import-time registration)


@register_partitioner("scattering", description="scattering procedure (search-space peeling)")
def _scattering_factory(cnf: CNF, parts: int, **options) -> ScatteringPartitioning:
    """Build a scattering partitioning with ``parts`` sub-problems."""
    return scattering_partitioning(cnf, ScatteringConfig(num_subproblems=parts, **options))
