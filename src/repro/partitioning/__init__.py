"""Classical SAT-partitioning techniques the paper compares its approach against.

Section 2 of the paper lists the established ways of constructing a
partitioning of a SAT instance — "a scattering procedure, a guiding path
solver, lookahead solver and a number of other techniques" (citing Hyvärinen's
thesis) — and argues that, unlike the decomposition-family partitionings built
from a decomposition set, these make it *hard to estimate the total solving
time in advance*.  This package implements those classical techniques so the
claim can be examined experimentally:

* :mod:`repro.partitioning.cubes` — the common representation: a partitioning
  as a set of *cubes* (partial assignments), with validity checking, solving
  and Monte Carlo cost estimation;
* :mod:`repro.partitioning.guiding_path` — guiding-path partitionings obtained
  by splitting off the untried branches of a sequential solver's decision path;
* :mod:`repro.partitioning.scattering` — the scattering procedure, which peels
  off sub-formulas covering a prescribed fraction of the search space;
* :mod:`repro.partitioning.lookahead_partition` — cube-and-conquer style
  partitionings built by recursive lookahead splitting.

The decomposition-family partitioning of the paper corresponds to the special
case where every cube assigns the *same* set of variables; that regularity is
exactly what makes the uniform-sampling estimator of
:mod:`repro.core.predictive` unbiased.  The benchmark
``benchmarks/bench_partitioning_techniques.py`` compares the techniques on the
scaled cryptanalysis instances.
"""

from repro.partitioning.cubes import Cube, CubePartitioning, PartitioningCostReport
from repro.partitioning.guiding_path import GuidingPathConfig, guiding_path_partitioning
from repro.partitioning.lookahead_partition import (
    CubeAndConquerConfig,
    lookahead_partitioning,
)
from repro.partitioning.scattering import (
    ScatteringConfig,
    ScatteringPart,
    ScatteringPartitioning,
    scattering_partitioning,
)

__all__ = [
    "Cube",
    "CubePartitioning",
    "PartitioningCostReport",
    "guiding_path_partitioning",
    "GuidingPathConfig",
    "scattering_partitioning",
    "ScatteringConfig",
    "ScatteringPart",
    "ScatteringPartitioning",
    "lookahead_partitioning",
    "CubeAndConquerConfig",
]
