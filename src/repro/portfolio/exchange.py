"""The deterministic clause-exchange bus of the sharing portfolio.

HordeSat-style clause sharing (Balyo et al.) lets every portfolio member
profit from what the others learn: members *export* their best learned
clauses (low LBD, short) and *import* everyone else's at restart boundaries.
Done naively — concurrent queues drained whenever a worker polls — the
result depends on thread timing and is impossible to replay.  This module
makes the exchange a **virtual-round-stamped bus** instead:

* the portfolio advances in synchronous virtual rounds (one solver slice per
  member per round, budgeted in cost-measure units, see
  :mod:`repro.portfolio.sharing`);
* clauses exported during round ``r`` are stamped with ``r`` and become
  visible to the *other* members only in round ``r + 1`` — never earlier, no
  matter how the executor interleaves the slices;
* exports are folded into the bus in member order at the round barrier, and
  each member's import order is fixed by ``(export round, exporting member,
  canonical clause order)`` with a seeded deterministic rotation, so the
  whole exchange schedule is a pure function of ``(members, policy, seed,
  exported clauses)``.

The bus also keeps the audit trail the test battery replays: an exchange
log of ``(round, member, direction, count)`` entries plus per-member
export/import counters, all bit-identical across runs, executors and
``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

Clause = tuple[int, ...]


@dataclass(frozen=True)
class SharingPolicy:
    """The export-quality and volume budgets of the exchange.

    ``max_lbd`` / ``max_size`` are the classical clause-quality filters (a
    clause must pass both to leave its solver); ``per_round`` caps how many
    clauses one member may export per virtual round (the best ones win —
    candidates are ranked by ``(lbd, size, literals)``, the canonical order
    of :meth:`~repro.sat.cdcl.CDCLSolver.exportable_clauses`).
    """

    max_lbd: int = 4
    max_size: int = 8
    per_round: int = 32

    def __post_init__(self) -> None:
        if self.max_lbd < 1:
            raise ValueError("max_lbd must be at least 1")
        if self.max_size < 1:
            raise ValueError("max_size must be at least 1")
        if self.per_round < 1:
            raise ValueError("per_round must be at least 1")


@dataclass
class ExchangeRecord:
    """One exported clause on the bus: who exported it, when, how good."""

    clause: Clause
    lbd: int
    round: int
    exporter: int  # member index


@dataclass
class ExchangeLogEntry:
    """One audit-log line; the determinism tests compare these verbatim."""

    round: int
    member: str
    direction: str  # "export" | "import"
    count: int

    def as_tuple(self) -> tuple[int, str, str, int]:
        return (self.round, self.member, self.direction, self.count)


@dataclass
class ClauseExchange:
    """The seeded, round-stamped in-process clause bus.

    One instance serves one sharing-portfolio run.  The driver calls
    :meth:`export` once per member at each round barrier (in member order)
    and :meth:`imports_for` when preparing the next round's slices; both are
    pure bookkeeping — no locks, because the barrier discipline of
    :class:`~repro.portfolio.sharing.SharingPortfolioSolver` guarantees
    single-threaded access.
    """

    members: list[str]
    policy: SharingPolicy = field(default_factory=SharingPolicy)
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("a clause exchange needs at least one member")
        if len(set(self.members)) != len(self.members):
            raise ValueError("exchange member names must be unique")
        #: Every clause accepted onto the bus, in acceptance order.
        self.records: list[ExchangeRecord] = []
        #: Canonical clause -> index into :attr:`records` (dedup: the first
        #: exporter wins; re-exports of a known clause are dropped).
        self._seen: dict[Clause, int] = {}
        #: Per-member count of records already delivered (records are
        #: delivered in bus order, so one cursor per member suffices).
        self._cursors: dict[str, int] = {name: 0 for name in self.members}
        #: Per-member counters, audit log, and totals.
        self.exported: dict[str, int] = {name: 0 for name in self.members}
        self.imported: dict[str, int] = {name: 0 for name in self.members}
        self.dropped: dict[str, int] = {name: 0 for name in self.members}
        self.log: list[ExchangeLogEntry] = []

    # ------------------------------------------------------------------ export
    def export(
        self,
        member: str,
        round_index: int,
        candidates: list[tuple[Clause, int]],
    ) -> int:
        """Offer ``candidates`` (``(clause, lbd)`` pairs) to the bus.

        Applies the policy filters, ranks survivors by ``(lbd, size,
        literals)``, truncates to the per-round budget, and accepts only
        clauses the bus has not seen before (first exporter wins).  Returns
        the number of clauses accepted; the rest count as ``dropped``.
        Records are stamped with ``round_index`` — they become importable by
        other members from round ``round_index + 1`` on.
        """
        exporter = self.members.index(member)
        policy = self.policy
        ranked = sorted(
            (
                (clause, lbd)
                for clause, lbd in candidates
                if lbd <= policy.max_lbd and len(clause) <= policy.max_size
            ),
            key=lambda pair: (pair[1], len(pair[0]), pair[0]),
        )
        accepted = 0
        offered = 0
        for clause, lbd in ranked:
            if accepted >= policy.per_round:
                break
            offered += 1
            if clause in self._seen:
                continue
            self._seen[clause] = len(self.records)
            self.records.append(
                ExchangeRecord(clause=clause, lbd=lbd, round=round_index, exporter=exporter)
            )
            accepted += 1
        self.exported[member] += accepted
        self.dropped[member] += len(candidates) - accepted
        self.log.append(ExchangeLogEntry(round_index, member, "export", accepted))
        return accepted

    # ------------------------------------------------------------------ import
    def imports_for(self, member: str, round_index: int) -> list[Clause]:
        """The clauses ``member`` must import before its ``round_index`` slice.

        Delivers every record stamped with an earlier round that the member
        has not received yet, excluding its own exports, ordered by ``(export
        round, exporter, bus order)`` and rotated by a seeded offset — the
        rotation is a pure function of ``(seed, member, round_index)``, so
        the full import schedule is replayable from the run's seed alone.
        Advances the member's cursor; the caller must invoke this exactly
        once per member per round (the sharing driver's barrier does).
        """
        me = self.members.index(member)
        cursor = self._cursors[member]
        deliverable: list[ExchangeRecord] = []
        consumed = cursor
        for index in range(cursor, len(self.records)):
            record = self.records[index]
            if record.round >= round_index:
                break  # later records are stamped no earlier: stop scanning
            consumed = index + 1
            if record.exporter != me:
                deliverable.append(record)
        self._cursors[member] = consumed
        deliverable.sort(key=lambda r: (r.round, r.exporter, r.clause))
        if len(deliverable) > 1:
            # A string seed hashes via SHA-512 inside random.Random — stable
            # across processes and PYTHONHASHSEED values.
            offset = random.Random(f"{self.seed}:{me}:{round_index}").randrange(len(deliverable))
            deliverable = deliverable[offset:] + deliverable[:offset]
        clauses = [record.clause for record in deliverable]
        self.imported[member] += len(clauses)
        self.log.append(ExchangeLogEntry(round_index, member, "import", len(clauses)))
        return clauses

    # ----------------------------------------------------------------- reports
    @property
    def total_exported(self) -> int:
        return sum(self.exported.values())

    @property
    def total_imported(self) -> int:
        return sum(self.imported.values())

    def log_tuples(self) -> list[tuple[int, str, str, int]]:
        """The audit log as plain tuples (what the determinism tests compare)."""
        return [entry.as_tuple() for entry in self.log]

    def schedule_fingerprint(self) -> tuple:
        """A hashable digest of the full exchange schedule.

        Two runs with identical members, policy, seed and solver behaviour
        produce identical fingerprints — the replay tests' one-line check.
        """
        return (
            tuple(self.members),
            (self.policy.max_lbd, self.policy.max_size, self.policy.per_round),
            self.seed,
            tuple(self.log_tuples()),
            tuple((r.clause, r.lbd, r.round, r.exporter) for r in self.records),
        )
