"""Deterministic clause-sharing parallel portfolio with inprocessing.

The paper's introduction contrasts partitioning with portfolios in which
solver copies "share conflict clauses".  :class:`SharingPortfolioSolver` is
that second half, HordeSat-style (Balyo et al.): diversified CDCL members
race on the *same* instance, periodically export their best learned clauses
through the :class:`~repro.portfolio.exchange.ClauseExchange` bus, import
everyone else's at restart boundaries via
:meth:`~repro.sat.cdcl.CDCLSolver.import_clauses`, and every few rounds
re-simplify their live clause databases with the SatELite-style rules as
*inprocessing* (:meth:`~repro.sat.cdcl.CDCLSolver.inprocess`) under the
frozen-variable contract, so assumption literals stay assumable throughout.

Sharing is sound even across inprocessed members: a learned clause is a
resolvent of database clauses only, hence implied by the input formula ``F``
regardless of the assumptions in force when it was derived; and a member's
simplified database contains only ``F``-implied clauses (originals,
resolvents, strengthenings), so adding any ``F``-implied clause to it
preserves equisatisfiability and model reconstruction.

Determinism contract
--------------------

The run is a synchronous-round simulation driven by one scheduler task
graph: round ``r`` holds one *slice* task per member (an incremental
``solve`` call budgeted in **cost-measure units** — conflicts, decisions or
propagations, never wall-clock) plus one *exchange barrier* task depending
on all of them; round ``r + 1`` slices depend on the barrier.  All state
mutation outside a member's own solver happens inside barrier tasks, which
the dependency edges serialise, and inside a barrier everything is folded in
member order.  Consequently the winner, the per-member costs, the exchange
schedule, every counter and every trace byte are a pure function of
``(cnf, assumptions, configurations, knobs, seed)`` — identical across the
inline, thread and simulated-grid executors and across repeated runs, and
:func:`~repro.runner.scheduler.replay_serial` reproduces any parallel run
bit for bit (``replay=True``).  The determinism tests in
``tests/test_sharing.py`` and the differential-fuzz lane pin this down.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.portfolio.exchange import ClauseExchange, SharingPolicy
from repro.portfolio.portfolio import (
    PortfolioMemberRun,
    SolverConfiguration,
    default_portfolio,
    slice_budget_for,
)
from repro.sat.formula import CNF
from repro.sat.solver import SolveResult, SolverStatus

#: Virtual seconds per cost-measure unit in the emitted trace events (the
#: trace format stamps times in microseconds, so one unit of work is 1 µs).
_VIRTUAL_SECONDS_PER_UNIT = 1e-6


@dataclass
class SharingMemberRun(PortfolioMemberRun):
    """One member's journey through the sliced, sharing race."""

    #: Solver slices this member executed (rounds before the decision).
    rounds: int = 0
    #: Round in which this member decided the instance (``None``: never).
    decided_round: int | None = None
    #: Clauses the exchange accepted from / delivered to this member.
    exported: int = 0
    imported: int = 0
    #: Imported clauses actually added to the database (not root-satisfied).
    imported_added: int = 0
    #: Inprocessing passes applied to this member's database.
    inprocessings: int = 0


@dataclass
class SharingPortfolioResult:
    """Outcome of a sharing-portfolio run, exchange audit trail included."""

    runs: list[SharingMemberRun] = field(default_factory=list)
    cost_measure: str = "propagations"
    #: Virtual rounds actually executed (decision round + 1, or the cap).
    rounds_executed: int = 0
    #: Round whose barrier observed the first decision (``None``: none did).
    decided_round: int | None = None
    #: The exchange audit log as ``(round, member, direction, count)`` tuples.
    exchange_log: list[tuple[int, str, str, int]] = field(default_factory=list)
    #: Per-member exchange counters (also on the individual runs).
    exported: dict[str, int] = field(default_factory=dict)
    imported: dict[str, int] = field(default_factory=dict)
    #: Every clause that crossed the bus, in acceptance order — the audit
    #: surface of the redundancy checks (each must be implied by the input).
    shared_clauses: tuple[tuple[int, ...], ...] = ()
    #: Hashable digest of the full exchange schedule (see
    #: :meth:`~repro.portfolio.exchange.ClauseExchange.schedule_fingerprint`).
    exchange_fingerprint: tuple = ()
    executor: str = "inline"
    replay: bool = False
    wall_time: float = 0.0

    @property
    def status(self) -> SolverStatus:
        """The portfolio's answer: the answer of any decided member."""
        for run in self.runs:
            if run.result is not None and run.result.is_decided:
                return run.result.status
        return SolverStatus.UNKNOWN

    @property
    def winner(self) -> SharingMemberRun | None:
        """The member that decided first (earliest round, then cost, then name)."""
        decided = [run for run in self.runs if run.decided_round is not None]
        if not decided:
            return None
        return min(decided, key=lambda run: (run.decided_round, run.cost, run.configuration.name))

    @property
    def model(self) -> dict[int, bool] | None:
        """The winner's model when the instance is SAT (original variables)."""
        winner = self.winner
        if winner is None or winner.result is None:
            return None
        return winner.result.model

    @property
    def virtual_parallel_cost(self) -> float:
        """Cost until the winner finishes when all members run in parallel."""
        winner = self.winner
        return winner.cost if winner is not None else float("inf")

    @property
    def total_work(self) -> float:
        """Work burned by all members across the executed rounds."""
        return sum(run.cost for run in self.runs)

    @property
    def total_exported(self) -> int:
        return sum(self.exported.values())

    @property
    def total_imported(self) -> int:
        return sum(self.imported.values())

    def summary(self) -> str:
        """One-line report used by benchmarks and examples."""
        winner = self.winner
        name = winner.configuration.name if winner else "none"
        return (
            f"sharing portfolio of {len(self.runs)}: {self.status.value} by {name} "
            f"in round {self.decided_round if self.decided_round is not None else '-'}, "
            f"virtual parallel cost {self.virtual_parallel_cost:.4g} "
            f"({self.cost_measure}), {self.total_exported} exported / "
            f"{self.total_imported} imported"
        )


@dataclass
class _MemberState:
    """Private per-member mutable state (touched by exactly one task at a time)."""

    configuration: SolverConfiguration
    solver: object = None
    cost: float = 0.0
    rounds: int = 0
    decided_round: int | None = None
    last: SolveResult | None = None
    #: ``(round, status string, slice cost, cumulative cost)`` per slice —
    #: what the barrier replays into the trace, in member order.
    slices: list[tuple[int, str, float, float]] = field(default_factory=list)
    imported_added: int = 0
    inprocessings: int = 0


class _RunState:
    """Cross-member run state; written only inside barrier tasks."""

    __slots__ = ("decided_round", "trace_seq", "rounds_executed")

    def __init__(self) -> None:
        self.decided_round: int | None = None
        self.trace_seq = 0
        self.rounds_executed = 0


class SharingPortfolioSolver:
    """Races diversified CDCL members that share clauses through a seeded bus.

    Parameters
    ----------
    configurations:
        The portfolio members (defaults to :func:`default_portfolio`).  Names
        must be unique — they key the exchange.
    cost_measure:
        The deterministic work measure slices are budgeted and costs are
        reported in (``"conflicts"``, ``"decisions"`` or ``"propagations"``;
        wall-clock measures are rejected — see :func:`slice_budget_for`).
    slice_budget:
        Cost-measure units each member may spend per virtual round.
    max_rounds:
        Hard round cap; an undecided race reports UNKNOWN at the cap.
    policy:
        The :class:`~repro.portfolio.exchange.SharingPolicy` quality/volume
        filters of the exchange.
    inprocess_every:
        Run the PR 5 preprocessor rules over every member's live database
        after this many rounds (0 disables inprocessing).  Assumption
        variables are frozen, so they are never eliminated mid-run.
    seed:
        Seeds the exchange's deterministic import-order rotation.
    executor:
        ``"inline"`` (serial), ``"threads"`` (a thread pool) or
        ``"simulated-grid"`` (virtual-clock cluster).  All three produce
        bit-identical results; see the module determinism contract.
    threads:
        Worker count for the thread / simulated-grid executors (defaults to
        the member count).
    """

    def __init__(
        self,
        configurations: Sequence[SolverConfiguration] | None = None,
        cost_measure: str = "propagations",
        slice_budget: int = 4096,
        max_rounds: int = 32,
        policy: SharingPolicy | None = None,
        inprocess_every: int = 0,
        seed: int = 0,
        executor: str = "inline",
        threads: int | None = None,
    ):
        self.configurations = (
            default_portfolio() if configurations is None else list(configurations)
        )
        if not self.configurations:
            raise ValueError("a portfolio needs at least one configuration")
        names = [configuration.name for configuration in self.configurations]
        if len(set(names)) != len(names):
            raise ValueError("portfolio member names must be unique")
        # Validates the measure is sliceable before any solver work starts.
        slice_budget_for(cost_measure, slice_budget)
        if max_rounds < 1:
            raise ValueError("max_rounds must be at least 1")
        if inprocess_every < 0:
            raise ValueError("inprocess_every must be non-negative")
        if executor not in ("inline", "threads", "simulated-grid"):
            raise ValueError("executor must be 'inline', 'threads' or 'simulated-grid'")
        if threads is not None and threads < 1:
            raise ValueError("threads must be at least 1")
        self.cost_measure = cost_measure
        self.slice_budget = slice_budget
        self.max_rounds = max_rounds
        self.policy = policy or SharingPolicy()
        self.inprocess_every = inprocess_every
        self.seed = seed
        self.executor = executor
        self.threads = threads

    # ------------------------------------------------------------------- solve
    def solve(
        self,
        cnf: CNF,
        assumptions: Sequence[int] = (),
        replay: bool = False,
        trace=None,
    ) -> SharingPortfolioResult:
        """Run the sharing race on ``cnf`` through the scheduler.

        ``replay=True`` reruns the exact task graph serially via
        :func:`~repro.runner.scheduler.replay_serial` — every task in
        topological order, no early stop — and still reports bit-identical
        results, because post-decision tasks are no-ops by construction.
        ``trace`` attaches a :class:`~repro.trace.format.TraceWriter`: the
        driver itself emits TASK-level events at every barrier, in member
        order, stamped with *virtual* times (cumulative cost-measure units),
        so trace bytes are deterministic too — the scheduler's own wall-clock
        trace hook is deliberately not used.
        """
        from repro.runner.scheduler import (
            InlineExecutor,
            RetryPolicy,
            Scheduler,
            SimulatedGridExecutor,
            Task,
            TaskGraph,
            ThreadExecutor,
        )
        from repro.sat.simplify import Preprocessor

        started = time.perf_counter()
        literals = list(assumptions)
        frozen = frozenset(abs(literal) for literal in literals)
        names = [configuration.name for configuration in self.configurations]
        exchange = ClauseExchange(members=list(names), policy=self.policy, seed=self.seed)
        states: dict[str, _MemberState] = {}
        for configuration in self.configurations:
            solver = configuration.build_solver()
            solver.load(cnf, frozen=frozen)
            states[configuration.name] = _MemberState(configuration=configuration, solver=solver)
        shared = _RunState()
        preprocessor = Preprocessor()
        policy = self.policy

        def run_slice(round_index: int, name: str) -> dict:
            state = states[name]
            if shared.decided_round is not None:
                return {"kind": "slice", "round": round_index, "member": name,
                        "status": "skipped", "cost": 0.0}
            budget = slice_budget_for(self.cost_measure, self.slice_budget)
            result = state.solver.solve(None, literals, budget=budget)
            cost = result.stats.cost(self.cost_measure)
            state.cost += cost
            state.rounds += 1
            state.last = result
            status = result.status.value.lower()
            state.slices.append((round_index, status, cost, state.cost))
            if result.is_decided and state.decided_round is None:
                state.decided_round = round_index
            return {"kind": "slice", "round": round_index, "member": name,
                    "status": status, "cost": cost}

        def run_exchange(round_index: int) -> dict:
            if shared.decided_round is not None:
                # A barrier after the decision round: replay mode still visits
                # it, but it must leave no mark (no log, no trace, no state).
                return {"kind": "exchange", "round": round_index,
                        "decided": True, "active": False, "cost": 0.0}
            shared.rounds_executed = round_index + 1
            if trace is not None:
                for name in names:
                    state = states[name]
                    _, status, cost, cumulative = state.slices[-1]
                    shared.trace_seq += 1
                    task_id = f"slice/{round_index}/{name}"
                    trace.task_dispatch(task_id, shared.trace_seq)
                    trace.task_complete(
                        task_id,
                        status,
                        cumulative * _VIRTUAL_SECONDS_PER_UNIT,
                        cost * _VIRTUAL_SECONDS_PER_UNIT,
                    )
            barrier_time = max(states[name].cost for name in names)
            decided = [name for name in names if states[name].decided_round == round_index]
            if decided:
                answers = {states[name].last.status for name in decided}
                if len(answers) > 1:
                    raise RuntimeError(
                        f"sharing portfolio members disagree in round {round_index}: "
                        + ", ".join(
                            f"{name}={states[name].last.status.value}" for name in decided
                        )
                    )
                shared.decided_round = round_index
                if trace is not None:
                    shared.trace_seq += 1
                    task_id = f"exchange/{round_index}"
                    trace.task_dispatch(task_id, shared.trace_seq)
                    trace.task_complete(
                        task_id,
                        f"decided:{states[decided[0]].last.status.value.lower()}",
                        barrier_time * _VIRTUAL_SECONDS_PER_UNIT,
                        0.0,
                    )
                return {"kind": "exchange", "round": round_index,
                        "decided": True, "active": True, "cost": 0.0}
            # Fold exports onto the bus in member order, then deliver the
            # accumulated imports (everything exported in rounds <= this one
            # by other members) at each member's restart boundary.
            exported_now = 0
            for name in names:
                candidates = states[name].solver.exportable_clauses(
                    max_lbd=policy.max_lbd, max_size=policy.max_size
                )
                exported_now += exchange.export(name, round_index, candidates)
            imported_now = 0
            for name in names:
                state = states[name]
                clauses = exchange.imports_for(name, round_index + 1)
                if clauses:
                    state.imported_added += state.solver.import_clauses(clauses)
                imported_now += len(clauses)
            if self.inprocess_every and (round_index + 1) % self.inprocess_every == 0:
                for name in names:
                    state = states[name]
                    state.solver.inprocess(preprocessor)
                    state.inprocessings += 1
            if trace is not None:
                shared.trace_seq += 1
                task_id = f"exchange/{round_index}"
                trace.task_dispatch(task_id, shared.trace_seq)
                trace.task_complete(
                    task_id,
                    f"exp={exported_now}:imp={imported_now}",
                    barrier_time * _VIRTUAL_SECONDS_PER_UNIT,
                    0.0,
                )
            return {"kind": "exchange", "round": round_index, "decided": False,
                    "active": True, "exported": exported_now,
                    "imported": imported_now, "cost": 0.0}

        def task_fn(payload) -> dict:
            kind, round_index, name = payload
            if kind == "slice":
                return run_slice(round_index, name)
            return run_exchange(round_index)

        tasks = []
        for round_index in range(self.max_rounds):
            slice_deps = (f"exchange/{round_index - 1}",) if round_index else ()
            for name in names:
                tasks.append(
                    Task(
                        task_id=f"slice/{round_index}/{name}",
                        payload=("slice", round_index, name),
                        dependencies=slice_deps,
                    )
                )
            tasks.append(
                Task(
                    task_id=f"exchange/{round_index}",
                    payload=("exchange", round_index, None),
                    dependencies=tuple(f"slice/{round_index}/{name}" for name in names),
                )
            )
        graph = TaskGraph(tasks)

        if replay:
            from repro.runner.scheduler import replay_serial

            run = replay_serial(graph, task_fn)
        else:
            workers = self.threads if self.threads is not None else len(names)
            if self.executor == "threads":
                scheduler_executor = ThreadExecutor(task_fn=task_fn, num_workers=workers)
            elif self.executor == "simulated-grid":
                scheduler_executor = SimulatedGridExecutor(
                    task_fn=task_fn,
                    workers=workers,
                    duration_of=lambda value: float(value.get("cost", 0.0)),
                )
            else:
                scheduler_executor = InlineExecutor(task_fn=task_fn)
            run = Scheduler(
                graph,
                scheduler_executor,
                # Slice tasks mutate their member's solver: an attempt must
                # never be re-run, so retries are disabled outright.
                retry=RetryPolicy(max_attempts=1),
                stop_on=lambda task_id, value: bool(value.get("decided")),
            ).run()
        if run.failed:
            task_id, error = next(iter(run.failed.items()))
            raise RuntimeError(f"sharing portfolio task {task_id} failed: {error}")

        outcome = SharingPortfolioResult(
            runs=[
                SharingMemberRun(
                    configuration=states[name].configuration,
                    result=states[name].last,
                    cost=states[name].cost,
                    rounds=states[name].rounds,
                    decided_round=states[name].decided_round,
                    exported=exchange.exported[name],
                    imported=exchange.imported[name],
                    imported_added=states[name].imported_added,
                    inprocessings=states[name].inprocessings,
                )
                for name in names
            ],
            cost_measure=self.cost_measure,
            rounds_executed=shared.rounds_executed,
            decided_round=shared.decided_round,
            exchange_log=exchange.log_tuples(),
            shared_clauses=tuple(record.clause for record in exchange.records),
            exported=dict(exchange.exported),
            imported=dict(exchange.imported),
            exchange_fingerprint=exchange.schedule_fingerprint(),
            executor="replay" if replay else self.executor,
            replay=replay,
        )
        outcome.wall_time = time.perf_counter() - started
        return outcome
