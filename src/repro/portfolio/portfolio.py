"""A diversified solver portfolio and its comparison against partitioning.

A parallel portfolio runs ``M`` differently-configured copies of a sequential
solver on the *same* instance and stops as soon as one of them finishes.  With
deterministic solvers and a deterministic cost measure the parallel run can be
simulated exactly: run every configuration to completion (or to a budget),
record its cost, and the portfolio's virtual wall-clock on ``M`` cores is the
*minimum* cost over the configurations, while the work it burned is the sum of
what every copy executed before that point.

This is the counterpart the paper's introduction positions partitioning
against: a portfolio helps only as much as its most lucky member, whereas a
partitioning divides the work.  The comparison function at the bottom runs both
on the same instance and the same virtual core count.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.api.registry import register_portfolio
from repro.core.decomposition import DecompositionSet
from repro.runner.cluster import simulate_makespan
from repro.sat.cdcl import CDCLConfig, CDCLSolver
from repro.sat.formula import CNF
from repro.sat.solver import SolveResult, SolverBudget, SolverStatus


#: Cost measure -> the :class:`SolverBudget` field that charges it.  Only
#: deterministic work counters appear here: slicing by ``max_seconds`` would
#: make the virtual-portfolio simulation machine-dependent (the latent flake
#: the BENCH_7 gate must not inherit), so wall-clock measures are rejected.
_SLICEABLE_MEASURES = {
    "conflicts": "max_conflicts",
    "decisions": "max_decisions",
    "propagations": "max_propagations",
}


def slice_budget_for(cost_measure: str, units: int) -> SolverBudget:
    """A per-slice :class:`SolverBudget` of ``units`` cost-measure units.

    The round-robin time-slicing of the (sharing) portfolio charges each
    member's virtual round in the *cost measure* — deterministic solver work
    counters — never in wall-clock seconds, so a sliced run is bit-identical
    across machines.  Measures without a matching deterministic budget field
    (``wall_time``, ``weighted``) raise :class:`ValueError`.
    """
    budget_field = _SLICEABLE_MEASURES.get(cost_measure)
    if budget_field is None:
        raise ValueError(
            f"cost measure {cost_measure!r} cannot budget a deterministic "
            f"slice; use one of {sorted(_SLICEABLE_MEASURES)}"
        )
    if units < 1:
        raise ValueError("a slice budget must be at least 1 unit")
    return SolverBudget(**{budget_field: units})


@dataclass(frozen=True)
class SolverConfiguration:
    """One member of the portfolio: a name plus a CDCL configuration."""

    name: str
    config: CDCLConfig

    def build_solver(self) -> CDCLSolver:
        """Instantiate a fresh solver for this configuration."""
        return CDCLSolver(config=self.config)


@register_portfolio("default-8", description="restart/phase/decay-diversified 8 members")
def default_portfolio() -> list[SolverConfiguration]:
    """A standard 8-member portfolio diversified on restarts, phase and decay."""
    return [
        SolverConfiguration("luby-false", CDCLConfig(use_luby_restarts=True, default_phase=False)),
        SolverConfiguration("luby-true", CDCLConfig(use_luby_restarts=True, default_phase=True)),
        SolverConfiguration(
            "geometric-false", CDCLConfig(use_luby_restarts=False, default_phase=False)
        ),
        SolverConfiguration(
            "geometric-true", CDCLConfig(use_luby_restarts=False, default_phase=True)
        ),
        SolverConfiguration("fast-decay", CDCLConfig(var_decay=0.85)),
        SolverConfiguration("slow-decay", CDCLConfig(var_decay=0.99)),
        SolverConfiguration("rapid-restarts", CDCLConfig(restart_base=16)),
        SolverConfiguration("no-minimization", CDCLConfig(clause_minimization=False)),
    ]


@register_portfolio("tiny-4", description="first four default members (tests, fuzzing)")
def tiny_portfolio() -> list[SolverConfiguration]:
    """The first four default members — the cheap preset tests and fuzz lanes use."""
    return default_portfolio()[:4]


@dataclass
class PortfolioMemberRun:
    """Result of one portfolio member on the instance."""

    configuration: SolverConfiguration
    result: SolveResult
    cost: float


@dataclass
class PortfolioResult:
    """Outcome of a (simulated parallel) portfolio run."""

    runs: list[PortfolioMemberRun] = field(default_factory=list)
    cost_measure: str = "propagations"
    wall_time: float = 0.0

    @property
    def status(self) -> SolverStatus:
        """The portfolio's answer: the answer of any decided member."""
        for run in self.runs:
            if run.result.is_decided:
                return run.result.status
        return SolverStatus.UNKNOWN

    @property
    def winner(self) -> PortfolioMemberRun | None:
        """The decided member with the smallest cost (the virtual first finisher)."""
        decided = [run for run in self.runs if run.result.is_decided]
        if not decided:
            return None
        return min(decided, key=lambda run: (run.cost, run.configuration.name))

    @property
    def virtual_parallel_cost(self) -> float:
        """Cost until the first member finishes when all run in parallel."""
        winner = self.winner
        return winner.cost if winner is not None else float("inf")

    @property
    def total_work(self) -> float:
        """Work burned by all members up to the winner's finish time."""
        cap = self.virtual_parallel_cost
        return sum(min(run.cost, cap) for run in self.runs)

    def summary(self) -> str:
        """One-line report used by benchmarks and examples."""
        winner = self.winner
        name = winner.configuration.name if winner else "none"
        return (
            f"portfolio of {len(self.runs)}: {self.status.value} by {name}, "
            f"virtual parallel cost {self.virtual_parallel_cost:.4g} ({self.cost_measure})"
        )


class PortfolioSolver:
    """Runs every configuration on the instance and simulates the parallel race.

    The member runs are dispatched as tasks of the unified scheduler
    (:mod:`repro.runner.scheduler`): the default inline executor reproduces
    the historical sequential loop bit for bit, while ``threads`` runs the
    members on a thread pool — results are folded in member order either way,
    so the reported portfolio is independent of the execution interleaving.

    With ``slice_budget`` set, each member runs *round-robin time-slicing*
    instead of one uninterrupted call: repeated incremental ``solve`` slices,
    each charged ``slice_budget`` **cost-measure units** (never wall-clock —
    see :func:`slice_budget_for`), up to ``max_rounds`` slices.  This is the
    isolated twin of the sliced simulation in
    :mod:`repro.portfolio.sharing`, and the fair baseline the BENCH_7 suite
    compares clause sharing against: identical slicing, no exchange.
    """

    def __init__(
        self,
        configurations: Sequence[SolverConfiguration] | None = None,
        cost_measure: str = "propagations",
        threads: int | None = None,
        slice_budget: int | None = None,
        max_rounds: int = 32,
    ):
        self.configurations = (
            default_portfolio() if configurations is None else list(configurations)
        )
        if not self.configurations:
            raise ValueError("a portfolio needs at least one configuration")
        if threads is not None and threads < 1:
            raise ValueError("threads must be at least 1")
        if slice_budget is not None:
            # Validate both the amount and that the measure is sliceable in
            # deterministic units before any solver work starts.
            slice_budget_for(cost_measure, slice_budget)
        if max_rounds < 1:
            raise ValueError("max_rounds must be at least 1")
        self.cost_measure = cost_measure
        self.threads = threads
        self.slice_budget = slice_budget
        self.max_rounds = max_rounds

    def solve(
        self,
        cnf: CNF,
        assumptions: Sequence[int] = (),
        budget: SolverBudget | None = None,
    ) -> PortfolioResult:
        """Race the portfolio on ``cnf`` through the scheduler."""
        from repro.runner.scheduler import (
            InlineExecutor,
            RetryPolicy,
            Scheduler,
            Task,
            TaskGraph,
            ThreadExecutor,
        )

        started = time.perf_counter()
        members = {
            f"member-{index:03d}": configuration
            for index, configuration in enumerate(self.configurations)
        }
        literals = list(assumptions)

        def race_member(member_id: str) -> PortfolioMemberRun:
            configuration = members[member_id]
            solver = configuration.build_solver()
            if self.slice_budget is None:
                result = solver.solve(cnf, assumptions=literals, budget=budget)
                return PortfolioMemberRun(
                    configuration=configuration,
                    result=result,
                    cost=result.stats.cost(self.cost_measure),
                )
            # Round-robin time-slicing, charged in deterministic cost-measure
            # units (never wall-clock): the sequential simulation of a
            # preempted parallel member, bit-identical across machines.
            solver.load(cnf, frozen=frozenset(abs(lit) for lit in literals))
            cost = 0.0
            result = None
            for _ in range(self.max_rounds):
                result = solver.solve(
                    None,
                    assumptions=literals,
                    budget=slice_budget_for(self.cost_measure, self.slice_budget),
                )
                cost += result.stats.cost(self.cost_measure)
                if result.is_decided:
                    break
            return PortfolioMemberRun(configuration=configuration, result=result, cost=cost)

        graph = TaskGraph(Task(task_id=member_id, payload=member_id) for member_id in members)
        executor = (
            ThreadExecutor(task_fn=race_member, num_workers=self.threads)
            if self.threads is not None and self.threads > 1
            else InlineExecutor(task_fn=race_member)
        )
        run = Scheduler(graph, executor, retry=RetryPolicy(max_attempts=2)).run()
        if run.failed:
            member_id, error = next(iter(run.failed.items()))
            raise RuntimeError(f"portfolio member {member_id} failed: {error}")
        outcome = PortfolioResult(
            runs=run.values_in_order(), cost_measure=self.cost_measure
        )
        outcome.wall_time = time.perf_counter() - started
        return outcome


@dataclass
class PortfolioComparison:
    """Head-to-head numbers for the portfolio-vs-partitioning benchmark."""

    num_cores: int
    portfolio: PortfolioResult
    partitioning_makespan: float
    partitioning_total_work: float
    cost_measure: str

    @property
    def portfolio_wall_clock(self) -> float:
        """Virtual wall-clock of the portfolio on ``num_cores`` cores."""
        return self.portfolio.virtual_parallel_cost

    @property
    def speedup_of_partitioning(self) -> float:
        """How much faster the partitioned run finishes (> 1 favours partitioning)."""
        if self.partitioning_makespan == 0:
            return float("inf")
        return self.portfolio_wall_clock / self.partitioning_makespan


def compare_with_partitioning(
    cnf: CNF,
    decomposition: Sequence[int] | DecompositionSet,
    num_cores: int,
    configurations: Sequence[SolverConfiguration] | None = None,
    cost_measure: str = "propagations",
    budget: SolverBudget | None = None,
) -> PortfolioComparison:
    """Compare a portfolio against processing the decomposition family of ``decomposition``.

    The portfolio gets ``num_cores`` member configurations (its list is truncated
    or reused as-is); the partitioning side solves all ``2^d`` sub-problems and
    schedules them on ``num_cores`` virtual cores with the dynamic scheduler.
    """
    members = list(configurations) if configurations is not None else default_portfolio()
    portfolio = PortfolioSolver(members[:num_cores] or members, cost_measure=cost_measure)
    portfolio_result = portfolio.solve(cnf, budget=budget)

    dec = (
        decomposition
        if isinstance(decomposition, DecompositionSet)
        else DecompositionSet.of(decomposition)
    )
    solver = CDCLSolver()
    costs = []
    for assignment in dec.all_assignments():
        result = solver.solve(cnf, assumptions=assignment.to_literals(), budget=budget)
        costs.append(result.stats.cost(cost_measure))
    cluster = simulate_makespan(costs, num_cores)

    return PortfolioComparison(
        num_cores=num_cores,
        portfolio=portfolio_result,
        partitioning_makespan=cluster.makespan,
        partitioning_total_work=cluster.total_work,
        cost_measure=cost_measure,
    )
