"""The portfolio approach to parallel SAT solving (the paper's counterpart).

The introduction of the paper contrasts two families of parallel SAT solving:
the *portfolio* approach — "one SAT instance is solved using different SAT
solvers or by the same SAT solver with different settings", optionally sharing
conflict clauses — and the *partitioning* approach the paper develops.  This
subpackage implements the portfolio side so the two can be compared on the same
instances:

* :class:`repro.portfolio.portfolio.SolverConfiguration` — a named, diversified
  solver configuration (restart policy, decision phase, decay, branching
  order);
* :class:`repro.portfolio.portfolio.PortfolioSolver` — runs every configuration
  on the whole instance (optionally with round-robin time-slicing charged in
  deterministic cost-measure units, the sequential simulation of a parallel
  portfolio) and reports which configuration finishes first;
* :class:`repro.portfolio.sharing.SharingPortfolioSolver` — the clause-sharing
  half of the paper's contrast (HordeSat-style): members export/import learned
  clauses through the seeded, virtual-round-stamped
  :class:`repro.portfolio.exchange.ClauseExchange` bus and periodically
  inprocess their databases, all bit-for-bit replayable;
* :func:`repro.portfolio.portfolio.compare_with_partitioning` — the head-to-head
  experiment used by ``bench_portfolio_vs_partitioning.py``: wall-clock of the
  virtual portfolio versus the makespan of a decomposition family on the same
  number of cores.
"""

from repro.portfolio.exchange import ClauseExchange, SharingPolicy
from repro.portfolio.portfolio import (
    PortfolioResult,
    PortfolioSolver,
    SolverConfiguration,
    compare_with_partitioning,
    default_portfolio,
    slice_budget_for,
)
from repro.portfolio.sharing import (
    SharingMemberRun,
    SharingPortfolioResult,
    SharingPortfolioSolver,
)

__all__ = [
    "SolverConfiguration",
    "PortfolioSolver",
    "PortfolioResult",
    "default_portfolio",
    "compare_with_partitioning",
    "slice_budget_for",
    "ClauseExchange",
    "SharingPolicy",
    "SharingPortfolioSolver",
    "SharingPortfolioResult",
    "SharingMemberRun",
]
