"""Cryptanalysis problem generation (keystream inversion as SAT)."""

from repro.problems.inversion import (
    InversionInstance,
    make_instance_series,
    make_inversion_instance,
    make_random_keystream_instance,
    weaken_instance,
)

__all__ = [
    "InversionInstance",
    "make_inversion_instance",
    "make_instance_series",
    "make_random_keystream_instance",
    "weaken_instance",
]
