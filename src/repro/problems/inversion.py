"""Keystream-inversion SAT instances.

An *inversion instance* for a keystream generator is the SAT question "which
internal state produces this observed keystream fragment?".  This module turns
a :class:`~repro.ciphers.keystream.KeystreamGenerator` plus a secret state into
such an instance:

* the generator circuit is Tseitin-encoded,
* the keystream output variables are fixed to the observed bits,
* the state variables (the paper's ``X̃_start``, a Strong UP Backdoor Set) are
  recorded as the natural starting decomposition set,
* optionally, some state variables are fixed to their true values — the paper's
  *weakened* problems BiviumK / GrainK, where K trailing cells of the second
  register are known.

Instances remember the secret state so tests and experiments can verify
recovered keys, but nothing in the solving pipeline reads it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.ciphers.keystream import KeystreamGenerator
from repro.encoder.encoding import Encoding
from repro.sat.assignment import Assignment
from repro.sat.formula import CNF


@dataclass
class InversionInstance:
    """A keystream-inversion SAT instance with its metadata."""

    generator: KeystreamGenerator
    encoding: Encoding
    cnf: CNF
    keystream: list[int]
    start_set: list[int]
    register_vars: dict[str, list[int]] = field(default_factory=dict)
    known_assignment: Assignment = field(default_factory=Assignment)
    secret_state: list[int] | None = None
    name: str = "inversion"

    @property
    def free_start_variables(self) -> list[int]:
        """Start-set variables that are not fixed by the weakening."""
        return [v for v in self.start_set if v not in self.known_assignment]

    def state_from_model(self, model: dict[int, bool]) -> list[int]:
        """Extract the recovered register state (flat bit list) from a SAT model."""
        bits: list[int] = []
        for name in self.generator.registers():
            bits.extend(int(model[v]) for v in self.register_vars[name])
        return bits

    def verify_state(self, state: list[int]) -> bool:
        """Check that ``state`` reproduces the observed keystream."""
        produced = self.generator.keystream_from_state(state, len(self.keystream))
        return produced == self.keystream

    def summary(self) -> str:
        """One-line description used by the CLI and benchmark reports."""
        return (
            f"{self.name}: {self.cnf.num_vars} vars, {self.cnf.num_clauses} clauses, "
            f"|start set| = {len(self.start_set)}, known = {len(self.known_assignment)}, "
            f"keystream = {len(self.keystream)} bits"
        )


def make_inversion_instance(
    generator: KeystreamGenerator,
    keystream_length: int | None = None,
    seed: int = 0,
    known_bits: int = 0,
    known_register: str | None = None,
    known_from_end: bool = True,
    name: str | None = None,
) -> InversionInstance:
    """Build an inversion instance from a random secret state.

    Parameters
    ----------
    generator:
        The keystream generator under attack.
    keystream_length:
        Number of observed keystream bits (defaults to the generator's
        :meth:`~repro.ciphers.keystream.KeystreamGenerator.default_keystream_length`).
    seed:
        Seed of the secret state (instances with different seeds form a series).
    known_bits:
        Number of state bits revealed to the attacker (the ``K`` of the paper's
        weakened BiviumK / GrainK problems).  ``0`` gives the unweakened
        problem.
    known_register:
        Which register the known bits come from.  Defaults to the *last*
        declared register (for Bivium that is the second shift register, as in
        the paper).
    known_from_end:
        Reveal the trailing cells of the chosen register (paper's convention)
        rather than the leading ones.
    """
    length = keystream_length if keystream_length is not None else generator.default_keystream_length()
    secret_state = generator.random_state(seed)
    keystream = generator.keystream_from_state(secret_state, length)

    encoding = generator.encode(length)
    cnf = encoding.fix_group("keystream", keystream)

    register_vars = {reg: encoding.vars_of_group(reg) for reg in generator.registers()}
    start_set = [v for reg in generator.registers() for v in register_vars[reg]]

    known = Assignment()
    if known_bits:
        split_state = generator.split_state(secret_state)
        reg_names = list(generator.registers())
        reg = known_register if known_register is not None else reg_names[-1]
        if reg not in register_vars:
            raise KeyError(f"unknown register {reg!r}")
        reg_vars = register_vars[reg]
        reg_bits = split_state[reg]
        if known_bits > len(reg_vars):
            raise ValueError(
                f"register {reg!r} has only {len(reg_vars)} cells, cannot reveal {known_bits}"
            )
        if known_from_end:
            chosen_vars = reg_vars[-known_bits:]
            chosen_bits = reg_bits[-known_bits:]
        else:
            chosen_vars = reg_vars[:known_bits]
            chosen_bits = reg_bits[:known_bits]
        known = Assignment.from_bits(chosen_vars, chosen_bits)
        cnf = cnf.with_unit_clauses(known.values)

    instance_name = name or _default_name(generator, known_bits, seed)
    return InversionInstance(
        generator=generator,
        encoding=encoding,
        cnf=cnf,
        keystream=list(keystream),
        start_set=start_set,
        register_vars=register_vars,
        known_assignment=known,
        secret_state=list(secret_state),
        name=instance_name,
    )


def weaken_instance(instance: InversionInstance, known_bits: int, known_register: str | None = None) -> InversionInstance:
    """Return a weakened copy of ``instance`` with ``known_bits`` revealed state bits.

    The secret state, keystream and encoding are reused; only the unit clauses
    revealing state bits change.  Revealing bits of an already-weakened
    instance re-derives the weakening from scratch (it is not cumulative).
    """
    if instance.secret_state is None:
        raise ValueError("cannot weaken an instance whose secret state is unknown")
    generator = instance.generator
    split_state = generator.split_state(instance.secret_state)
    reg_names = list(generator.registers())
    reg = known_register if known_register is not None else reg_names[-1]
    reg_vars = instance.register_vars[reg]
    reg_bits = split_state[reg]
    if known_bits > len(reg_vars):
        raise ValueError(
            f"register {reg!r} has only {len(reg_vars)} cells, cannot reveal {known_bits}"
        )
    chosen_vars = reg_vars[-known_bits:] if known_bits else []
    chosen_bits = reg_bits[-known_bits:] if known_bits else []
    known = Assignment.from_bits(chosen_vars, chosen_bits)
    cnf = instance.encoding.fix_group("keystream", instance.keystream)
    cnf = cnf.with_unit_clauses(known.values)
    return InversionInstance(
        generator=generator,
        encoding=instance.encoding,
        cnf=cnf,
        keystream=list(instance.keystream),
        start_set=list(instance.start_set),
        register_vars=dict(instance.register_vars),
        known_assignment=known,
        secret_state=list(instance.secret_state),
        name=f"{instance.name} [K={known_bits}]",
    )


def make_random_keystream_instance(
    generator: KeystreamGenerator,
    keystream_length: int | None = None,
    seed: int = 0,
    name: str | None = None,
) -> InversionInstance:
    """Build an inversion instance for a *uniformly random* keystream fragment.

    Unlike :func:`make_inversion_instance`, the keystream is not produced by any
    secret state, so when the fragment is longer than the generator's state the
    instance is unsatisfiable with overwhelming probability.  This is the
    "wrong key guess" regime that dominates the work of processing a
    decomposition family, and the natural input for experiments that need a
    hard refutation (e.g. the portfolio-vs-partitioning comparison).
    ``secret_state`` is ``None`` on the returned instance.
    """
    length = keystream_length if keystream_length is not None else generator.default_keystream_length()
    rng = random.Random(seed)
    keystream = [rng.randint(0, 1) for _ in range(length)]

    encoding = generator.encode(length)
    cnf = encoding.fix_group("keystream", keystream)
    register_vars = {reg: encoding.vars_of_group(reg) for reg in generator.registers()}
    start_set = [v for reg in generator.registers() for v in register_vars[reg]]
    instance_name = name or f"{_default_name(generator, 0, seed)} (random keystream)"
    return InversionInstance(
        generator=generator,
        encoding=encoding,
        cnf=cnf,
        keystream=keystream,
        start_set=start_set,
        register_vars=register_vars,
        known_assignment=Assignment(),
        secret_state=None,
        name=instance_name,
    )


def make_instance_series(
    generator: KeystreamGenerator,
    count: int,
    keystream_length: int | None = None,
    known_bits: int = 0,
    first_seed: int = 0,
) -> list[InversionInstance]:
    """Build ``count`` instances differing only in the secret state.

    This mirrors the paper's protocol of solving three instances per weakened
    problem (Table 3): the decomposition set is searched on instance 1 and then
    reused for the whole series.
    """
    return [
        make_inversion_instance(
            generator,
            keystream_length=keystream_length,
            seed=first_seed + i,
            known_bits=known_bits,
            name=f"{_default_name(generator, known_bits, first_seed + i)} (inst. {i + 1})",
        )
        for i in range(count)
    ]


def _default_name(
    generator: KeystreamGenerator,
    known_bits: int,
    seed: int | None,
    base: str | None = None,
) -> str:
    stem = base or generator.name
    if known_bits:
        stem = f"{stem}{known_bits}"
    if seed is not None:
        stem = f"{stem} seed={seed}"
    return stem
