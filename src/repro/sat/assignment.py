"""Assignments (models) over Boolean variables.

An :class:`Assignment` is a thin wrapper over ``dict[int, bool]`` with helpers
for the operations the partitioning machinery needs: conversion to unit
clauses, restriction to a variable subset, bit-tuple round trips (the paper's
``α ∈ {0,1}^d`` vectors) and pretty printing.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field


@dataclass
class Assignment:
    """A (partial or total) assignment of Boolean variables."""

    values: dict[int, bool] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for var in self.values:
            if var <= 0:
                raise ValueError(f"variables must be positive, got {var}")

    # -------------------------------------------------------------- factories
    @classmethod
    def from_literals(cls, literals: Iterable[int]) -> "Assignment":
        """Build an assignment from signed literals (``+v`` -> True, ``-v`` -> False)."""
        values: dict[int, bool] = {}
        for lit in literals:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            var = abs(lit)
            value = lit > 0
            if var in values and values[var] != value:
                raise ValueError(f"conflicting literals for variable {var}")
            values[var] = value
        return cls(values)

    @classmethod
    def from_bits(cls, variables: Sequence[int], bits: Sequence[int | bool]) -> "Assignment":
        """Build an assignment that maps ``variables[i]`` to ``bool(bits[i])``.

        This is the paper's ``X̃ / (α_1, ..., α_d)`` substitution.
        """
        if len(variables) != len(bits):
            raise ValueError(
                f"got {len(variables)} variables but {len(bits)} bits"
            )
        return cls({var: bool(bit) for var, bit in zip(variables, bits)})

    @classmethod
    def from_model(cls, model: Sequence[bool]) -> "Assignment":
        """Build a total assignment from a model indexed by ``var - 1``."""
        return cls({i + 1: bool(v) for i, v in enumerate(model)})

    # ------------------------------------------------------------------ views
    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[int]:
        return iter(self.values)

    def __contains__(self, var: int) -> bool:
        return var in self.values

    def __getitem__(self, var: int) -> bool:
        return self.values[var]

    def get(self, var: int, default: bool | None = None) -> bool | None:
        """Value of ``var`` or ``default`` when unassigned."""
        return self.values.get(var, default)

    def items(self):
        """Iterate over ``(var, value)`` pairs."""
        return self.values.items()

    def variables(self) -> list[int]:
        """Sorted list of assigned variables."""
        return sorted(self.values)

    # ------------------------------------------------------------ conversions
    def to_literals(self) -> list[int]:
        """Signed-literal view, sorted by variable index."""
        return [var if value else -var for var, value in sorted(self.values.items())]

    def to_unit_clauses(self) -> list[tuple[int]]:
        """Unit clauses encoding the assignment (for CDCL assumptions/decomposition)."""
        return [(lit,) for lit in self.to_literals()]

    def bits_for(self, variables: Sequence[int]) -> tuple[int, ...]:
        """Project onto ``variables`` and return the 0/1 tuple (paper's α vector)."""
        try:
            return tuple(int(self.values[var]) for var in variables)
        except KeyError as exc:
            raise KeyError(f"variable {exc.args[0]} is not assigned") from exc

    def restrict(self, variables: Iterable[int]) -> "Assignment":
        """Restriction of the assignment to the given variable subset."""
        keep = set(variables)
        return Assignment({var: val for var, val in self.values.items() if var in keep})

    def update(self, other: Mapping[int, bool] | "Assignment") -> "Assignment":
        """Return a new assignment extended/overridden by ``other``."""
        merged = dict(self.values)
        items = other.items() if isinstance(other, Assignment) else other.items()
        for var, value in items:
            merged[int(var)] = bool(value)
        return Assignment(merged)

    def agrees_with(self, other: "Assignment") -> bool:
        """True when the two assignments assign no variable opposite values."""
        small, big = (self, other) if len(self) <= len(other) else (other, self)
        return all(big.get(var, val) == val for var, val in small.items())

    def __str__(self) -> str:
        return "{" + ", ".join(f"{v}={int(b)}" for v, b in sorted(self.values.items())) + "}"
