"""WalkSAT stochastic local search.

WalkSAT is *incomplete*: it can find satisfying assignments quickly but can
never prove unsatisfiability, and it is randomised.  The paper explicitly
requires the sub-solver ``A`` to be complete and deterministic, so WalkSAT is
**not** used by the predictive-function machinery; it exists as a contrast
solver for the ablation study ("what goes wrong if A is randomised?") and as a
quick model finder in tests.
"""

from __future__ import annotations

import random
import time
from collections.abc import Sequence

from repro.sat.formula import CNF
from repro.sat.solver import SolveResult, SolverBudget, SolverStats, SolverStatus


class WalkSATSolver:
    """WalkSAT with the classic noise parameter (Selman, Kautz & Cohen)."""

    def __init__(self, noise: float = 0.5, max_flips: int = 100_000, max_tries: int = 10, seed: int = 0):
        if not 0.0 <= noise <= 1.0:
            raise ValueError("noise must be within [0, 1]")
        self.noise = noise
        self.max_flips = max_flips
        self.max_tries = max_tries
        self.seed = seed

    def solve(
        self,
        cnf: CNF,
        assumptions: Sequence[int] = (),
        budget: SolverBudget | None = None,
    ) -> SolveResult:
        """Search for a model; returns SAT or UNKNOWN (never UNSAT)."""
        start = time.perf_counter()
        rng = random.Random(self.seed)
        stats = SolverStats()
        budget = budget or SolverBudget()

        clauses = [tuple(c) for c in cnf.clauses]
        forced = {abs(lit): lit > 0 for lit in assumptions}
        num_vars = cnf.num_vars

        for _ in range(self.max_tries):
            assignment = {
                v: forced.get(v, rng.random() < 0.5) for v in range(1, num_vars + 1)
            }
            for _ in range(self.max_flips):
                if budget.max_seconds is not None and time.perf_counter() - start > budget.max_seconds:
                    stats.wall_time = time.perf_counter() - start
                    return SolveResult(SolverStatus.UNKNOWN, stats=stats)
                unsat = [c for c in clauses if not _clause_satisfied(c, assignment)]
                if not unsat:
                    stats.wall_time = time.perf_counter() - start
                    return SolveResult(SolverStatus.SAT, model=assignment, stats=stats)
                clause = rng.choice(unsat)
                flippable = [lit for lit in clause if abs(lit) not in forced]
                if not flippable:
                    break  # the forced assumptions falsify this clause permanently
                if rng.random() < self.noise:
                    lit = rng.choice(flippable)
                else:
                    lit = min(
                        flippable,
                        key=lambda l: _break_count(abs(l), clauses, assignment),
                    )
                var = abs(lit)
                assignment[var] = not assignment[var]
                stats.decisions += 1
        stats.wall_time = time.perf_counter() - start
        return SolveResult(SolverStatus.UNKNOWN, stats=stats)


def _clause_satisfied(clause: tuple[int, ...], assignment: dict[int, bool]) -> bool:
    return any(assignment[abs(lit)] == (lit > 0) for lit in clause)


def _break_count(var: int, clauses: list[tuple[int, ...]], assignment: dict[int, bool]) -> int:
    """Number of currently satisfied clauses that flipping ``var`` would break."""
    flipped = dict(assignment)
    flipped[var] = not flipped[var]
    broken = 0
    for clause in clauses:
        if any(abs(lit) == var for lit in clause):
            if _clause_satisfied(clause, assignment) and not _clause_satisfied(clause, flipped):
                broken += 1
    return broken


# --------------------------------------------------------------- registry wiring
from repro.api.registry import register_solver  # noqa: E402  (import-time registration)


@register_solver("walksat", description="WalkSAT local search (incomplete)")
def _walksat_factory(**options) -> WalkSATSolver:
    """Build a WalkSAT solver; keyword options are constructor arguments."""
    return WalkSATSolver(**options)
