"""Formula preprocessing: unit propagation closure and pure-literal elimination.

These transformations are used in three places:

* the backdoor-set verifier (:mod:`repro.sat.backdoor`) needs the unit
  propagation closure to check the Strong Unit-Propagation Backdoor property;
* the decomposition machinery simplifies sub-instances before handing them to
  the solver, mirroring what MiniSat's preprocessing did for PDSAT;
* tests use them as small, independently verifiable building blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sat.formula import CNF


@dataclass
class PropagationResult:
    """Outcome of running unit propagation to a fixed point."""

    conflict: bool
    assignment: dict[int, bool] = field(default_factory=dict)
    simplified: CNF | None = None

    @property
    def fixed_variables(self) -> set[int]:
        """Variables whose value is forced by unit propagation."""
        return set(self.assignment)


def unit_propagate(cnf: CNF, assignment: dict[int, bool] | None = None) -> PropagationResult:
    """Run Boolean constraint propagation to a fixed point.

    Parameters
    ----------
    cnf:
        Input formula.
    assignment:
        Optional initial partial assignment (e.g. a decomposition-set
        substitution); it is included in the returned closure.

    Returns
    -------
    PropagationResult
        ``conflict`` is True when propagation derives the empty clause.  When
        there is no conflict, ``assignment`` holds the propagation closure and
        ``simplified`` the residual formula (satisfied clauses removed,
        falsified literals deleted).
    """
    values: dict[int, bool] = dict(assignment or {})
    clauses = [tuple(c) for c in cnf.clauses]

    changed = True
    while changed:
        changed = False
        residual: list[tuple[int, ...]] = []
        for clause in clauses:
            satisfied = False
            remaining: list[int] = []
            for lit in clause:
                var = abs(lit)
                if var in values:
                    if values[var] == (lit > 0):
                        satisfied = True
                        break
                else:
                    remaining.append(lit)
            if satisfied:
                continue
            if not remaining:
                return PropagationResult(conflict=True, assignment=values)
            if len(remaining) == 1:
                lit = remaining[0]
                values[abs(lit)] = lit > 0
                changed = True
            else:
                residual.append(tuple(remaining))
        clauses = residual

    simplified = CNF(list(clauses), cnf.num_vars)
    return PropagationResult(conflict=False, assignment=values, simplified=simplified)


def pure_literal_elimination(cnf: CNF) -> tuple[CNF, dict[int, bool]]:
    """Repeatedly satisfy pure literals; returns the reduced CNF and the choices made.

    A literal is pure when its variable occurs with a single polarity; setting
    it to satisfy all its clauses preserves satisfiability.
    """
    clauses = [tuple(c) for c in cnf.clauses]
    choices: dict[int, bool] = {}
    while True:
        polarity: dict[int, int] = {}
        for clause in clauses:
            for lit in clause:
                var = abs(lit)
                polarity[var] = polarity.get(var, 0) | (1 if lit > 0 else 2)
        pure = {var: mask == 1 for var, mask in polarity.items() if mask in (1, 2)}
        if not pure:
            break
        choices.update(pure)
        clauses = [
            clause
            for clause in clauses
            if not any(abs(lit) in pure and pure[abs(lit)] == (lit > 0) for lit in clause)
        ]
    return CNF(list(clauses), cnf.num_vars), choices


def simplify(cnf: CNF) -> tuple[CNF, dict[int, bool], bool]:
    """Unit propagation followed by pure-literal elimination.

    Returns ``(reduced_cnf, forced_assignment, conflict)``.
    """
    prop = unit_propagate(cnf)
    if prop.conflict:
        return cnf, prop.assignment, True
    assert prop.simplified is not None
    reduced, pure = pure_literal_elimination(prop.simplified)
    forced = dict(prop.assignment)
    forced.update(pure)
    return reduced, forced, False
