"""A lookahead SAT solver and lookahead-based variable scoring.

Lookahead solvers (march, OKsolver, the lookahead part of cube-and-conquer) pick
branching variables by *probing*: for every candidate variable ``v`` they
propagate both ``v = 0`` and ``v = 1`` and measure how much each propagation
simplifies the formula.  Variables whose both branches simplify the formula a
lot make good splitting variables; variables for which one branch fails
immediately are *failed literals* and can be assigned outright.

The paper mentions lookahead solvers as one of the classical ways of
constructing SAT partitionings (Section 2, citing Hyvärinen's thesis).  This
module provides

* :class:`LookaheadSolver` — a complete DPLL-style solver whose branching rule
  is the lookahead measure below (it implements the common
  :class:`repro.sat.solver.Solver` protocol, so it can serve as the algorithm
  ``A`` of the predictive function in ablations), and
* :func:`lookahead_scores` / :func:`rank_variables_by_lookahead` — the scoring
  primitive reused by :mod:`repro.partitioning.lookahead_partition` to build
  cube-and-conquer style partitionings that the Monte Carlo approach is
  compared against.

The measure is the classic weighted count of clauses shortened by each branch,
combined with the product rule ``score(v) = left · right + left + right`` so
that variables simplifying *both* branches are preferred.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass

from repro.sat.formula import CNF, normalize_clause
from repro.sat.solver import SolveResult, SolverBudget, SolverStats, SolverStatus

#: Weight of a clause reduced to length ``k`` during a lookahead probe.  Shorter
#: clauses constrain the search more, so they get exponentially larger weights
#: (the march_eq weighting scheme, truncated at length 5).
_REDUCTION_WEIGHTS = {0: 64.0, 1: 32.0, 2: 8.0, 3: 2.0, 4: 1.0}


class _Conflict(Exception):
    """Internal: raised when propagation derives the empty clause."""


class _BudgetExhausted(Exception):
    """Internal: raised when the solver budget is spent."""


@dataclass
class LookaheadProbe:
    """Outcome of probing one variable at the current node.

    ``positive_score`` / ``negative_score`` measure how much assigning the
    variable true / false simplifies the formula; ``failed_positive`` /
    ``failed_negative`` flag branches that are refuted by unit propagation
    alone.  A variable with both branches failed proves the node unsatisfiable.
    """

    variable: int
    positive_score: float
    negative_score: float
    failed_positive: bool = False
    failed_negative: bool = False

    @property
    def is_failed_literal(self) -> bool:
        """True when at least one branch is refuted by propagation."""
        return self.failed_positive or self.failed_negative

    @property
    def is_contradiction(self) -> bool:
        """True when both branches are refuted (the node is UNSAT)."""
        return self.failed_positive and self.failed_negative

    @property
    def combined_score(self) -> float:
        """The product-rule score used to rank branching variables."""
        return (
            self.positive_score * self.negative_score
            + self.positive_score
            + self.negative_score
        )


class _Propagator:
    """Clause database with counter-based unit propagation for lookahead probing.

    The representation favours cheap copies of the assignment (propagation
    trails are undone explicitly), because lookahead probes assign and retract
    the same variables over and over.
    """

    def __init__(self, cnf: CNF, stats: SolverStats):
        self.stats = stats
        self.clauses: list[tuple[int, ...]] = []
        self.occurrences: dict[int, list[int]] = {}
        self.assignment: dict[int, bool] = {}
        self.trail: list[int] = []
        self.num_vars = cnf.num_vars
        self._contradictory = False

        units: list[int] = []
        for clause in cnf.clauses:
            norm = normalize_clause(clause)
            if norm is None:
                continue
            if not norm:
                self._contradictory = True
                return
            if len(norm) == 1:
                units.append(norm[0])
            index = len(self.clauses)
            self.clauses.append(norm)
            for lit in norm:
                self.occurrences.setdefault(lit, []).append(index)
        try:
            for lit in units:
                self.enqueue(lit)
        except _Conflict:
            self._contradictory = True

    @property
    def contradictory(self) -> bool:
        """True when the root level is already refuted."""
        return self._contradictory

    # ------------------------------------------------------------------ queries
    def value(self, lit: int) -> bool | None:
        """Value of a literal under the current assignment (``None`` = unassigned)."""
        assigned = self.assignment.get(abs(lit))
        if assigned is None:
            return None
        return assigned if lit > 0 else not assigned

    def unassigned_variables(self) -> list[int]:
        """Variables that occur in some clause and are still unassigned."""
        seen: set[int] = set()
        for clause in self.clauses:
            for lit in clause:
                var = abs(lit)
                if var not in self.assignment:
                    seen.add(var)
        return sorted(seen)

    def all_clauses_satisfied(self) -> bool:
        """True when every clause contains a literal assigned true."""
        return all(
            any(self.value(lit) is True for lit in clause) for clause in self.clauses
        )

    # ------------------------------------------------------------- trail control
    def mark(self) -> int:
        """Return a trail position to rewind to."""
        return len(self.trail)

    def backtrack(self, mark: int) -> None:
        """Undo every assignment made after ``mark``."""
        while len(self.trail) > mark:
            var = self.trail.pop()
            del self.assignment[var]

    def enqueue(self, lit: int, reduction_score: list[float] | None = None) -> None:
        """Assign a literal true and propagate to a fixed point.

        ``reduction_score`` — when given, accumulates the weighted count of
        clause shortenings caused by this propagation (the lookahead measure).
        Raises :class:`_Conflict` if the propagation derives the empty clause.
        """
        queue = [lit]
        while queue:
            current = queue.pop()
            value = self.value(current)
            if value is True:
                continue
            if value is False:
                raise _Conflict
            var = abs(current)
            self.assignment[var] = current > 0
            self.trail.append(var)
            self.stats.propagations += 1
            # Clauses containing the falsified literal may shrink or become unit.
            for index in self.occurrences.get(-current, ()):
                clause = self.clauses[index]
                unassigned: list[int] = []
                satisfied = False
                for other in clause:
                    other_value = self.value(other)
                    if other_value is True:
                        satisfied = True
                        break
                    if other_value is None:
                        unassigned.append(other)
                if satisfied:
                    continue
                if reduction_score is not None:
                    weight = _REDUCTION_WEIGHTS.get(len(unassigned), 0.5)
                    reduction_score[0] += weight
                if not unassigned:
                    self.stats.conflicts += 1
                    raise _Conflict
                if len(unassigned) == 1:
                    queue.append(unassigned[0])


def _probe_variable(propagator: _Propagator, variable: int) -> LookaheadProbe:
    """Probe both polarities of ``variable`` at the propagator's current node."""
    scores: list[float] = []
    failed: list[bool] = []
    for positive in (True, False):
        mark = propagator.mark()
        accumulator = [0.0]
        try:
            propagator.enqueue(variable if positive else -variable, accumulator)
            failed.append(False)
        except _Conflict:
            failed.append(True)
        finally:
            propagator.backtrack(mark)
        scores.append(accumulator[0])
    return LookaheadProbe(
        variable=variable,
        positive_score=scores[0],
        negative_score=scores[1],
        failed_positive=failed[0],
        failed_negative=failed[1],
    )


def lookahead_scores(
    cnf: CNF,
    candidates: Sequence[int] | None = None,
    assumptions: Sequence[int] = (),
) -> list[LookaheadProbe]:
    """Probe every candidate variable of ``cnf`` once and return the probes.

    ``candidates`` defaults to every unassigned variable after propagating the
    ``assumptions``.  Contradictory inputs return an empty list.  The probes are
    returned in candidate order; use :func:`rank_variables_by_lookahead` for the
    ranking used by partitioning.
    """
    stats = SolverStats()
    propagator = _Propagator(cnf, stats)
    if propagator.contradictory:
        return []
    try:
        for lit in assumptions:
            propagator.enqueue(lit)
    except _Conflict:
        return []
    if candidates is None:
        pool: Sequence[int] = propagator.unassigned_variables()
    else:
        pool = [v for v in candidates if propagator.value(v) is None]
    return [_probe_variable(propagator, var) for var in pool]


def rank_variables_by_lookahead(
    cnf: CNF,
    candidates: Sequence[int] | None = None,
    assumptions: Sequence[int] = (),
) -> list[int]:
    """Candidate variables sorted by decreasing lookahead score.

    Failed-literal variables come first (their score is effectively infinite:
    assigning them is forced, so splitting on them is free), then the product
    rule decides; ties break on the variable index for determinism.
    """
    probes = lookahead_scores(cnf, candidates, assumptions)
    return [
        probe.variable
        for probe in sorted(
            probes,
            key=lambda p: (not p.is_failed_literal, -p.combined_score, p.variable),
        )
    ]


class LookaheadSolver:
    """A complete DPLL solver with lookahead branching and failed-literal detection.

    Parameters
    ----------
    max_probe_variables:
        Probe at most this many candidate variables per node (the candidates
        with the most occurrences are probed first); keeps the cubic worst case
        of full lookahead in check on larger formulas.
    """

    def __init__(self, max_probe_variables: int = 64):
        if max_probe_variables < 1:
            raise ValueError("max_probe_variables must be at least 1")
        self.max_probe_variables = max_probe_variables

    def solve(
        self,
        cnf: CNF,
        assumptions: Sequence[int] = (),
        budget: SolverBudget | None = None,
    ) -> SolveResult:
        """Solve ``cnf`` under ``assumptions``; see :class:`repro.sat.solver.Solver`."""
        start = time.perf_counter()
        stats = SolverStats()
        self._budget = budget or SolverBudget()
        self._start_time = start
        self._stats = stats

        propagator = _Propagator(cnf, stats)
        status = SolverStatus.UNSAT
        model: dict[int, bool] | None = None
        contradictory = propagator.contradictory
        if not contradictory:
            try:
                for lit in assumptions:
                    propagator.enqueue(lit)
            except _Conflict:
                contradictory = True

        if not contradictory:
            try:
                found = self._search(propagator)
            except _BudgetExhausted:
                found = None
            if found is None:
                status = SolverStatus.UNKNOWN
            elif found:
                status = SolverStatus.SAT
                model = dict(propagator.assignment)
                for var in range(1, cnf.num_vars + 1):
                    model.setdefault(var, False)

        stats.wall_time = time.perf_counter() - start
        return SolveResult(status=status, model=model, stats=stats)

    # ------------------------------------------------------------------ internals
    def _check_budget(self) -> None:
        budget = self._budget
        stats = self._stats
        if budget.max_decisions is not None and stats.decisions >= budget.max_decisions:
            raise _BudgetExhausted
        if budget.max_conflicts is not None and stats.conflicts >= budget.max_conflicts:
            raise _BudgetExhausted
        if (
            budget.max_propagations is not None
            and stats.propagations >= budget.max_propagations
        ):
            raise _BudgetExhausted
        if budget.max_seconds is not None:
            if time.perf_counter() - self._start_time >= budget.max_seconds:
                raise _BudgetExhausted

    def _candidates(self, propagator: _Propagator) -> list[int]:
        """The most frequently occurring unassigned variables, capped for cost."""
        counts: dict[int, int] = {}
        for clause in propagator.clauses:
            if any(propagator.value(lit) is True for lit in clause):
                continue
            for lit in clause:
                if propagator.value(lit) is None:
                    var = abs(lit)
                    counts[var] = counts.get(var, 0) + 1
        ranked = sorted(counts, key=lambda v: (-counts[v], v))
        return ranked[: self.max_probe_variables]

    def _search(self, propagator: _Propagator) -> bool | None:
        self._check_budget()
        candidates = self._candidates(propagator)
        if not candidates:
            return propagator.all_clauses_satisfied()

        # Lookahead phase: probe candidates, assigning failed literals as we go.
        best: LookaheadProbe | None = None
        index = 0
        while index < len(candidates):
            variable = candidates[index]
            index += 1
            if propagator.value(variable) is not None:
                continue
            probe = _probe_variable(propagator, variable)
            if probe.is_contradiction:
                self._stats.conflicts += 1
                return False
            if probe.is_failed_literal:
                forced = -variable if probe.failed_positive else variable
                try:
                    propagator.enqueue(forced)
                except _Conflict:
                    return False
                continue
            if best is None or probe.combined_score > best.combined_score:
                best = probe

        if best is None:
            # Everything was forced; recurse to re-evaluate the residual formula.
            return self._search(propagator)

        # Branch on the best variable, trying the more constrained polarity first.
        first_positive = best.positive_score >= best.negative_score
        self._stats.decisions += 1
        self._stats.max_decision_level = max(
            self._stats.max_decision_level, self._stats.decisions
        )
        for positive in (first_positive, not first_positive):
            mark = propagator.mark()
            try:
                propagator.enqueue(best.variable if positive else -best.variable)
                result = self._search(propagator)
            except _Conflict:
                self._stats.conflicts += 1
                result = False
            if result:
                return True
            propagator.backtrack(mark)
            if result is None:
                return None
        return False


# --------------------------------------------------------------- registry wiring
from repro.api.registry import register_solver  # noqa: E402  (import-time registration)


@register_solver("lookahead", description="lookahead solver (also builds cube-and-conquer)")
def _lookahead_factory(**options) -> LookaheadSolver:
    """Build a lookahead solver; keyword options are constructor arguments."""
    return LookaheadSolver(**options)
