"""A plain DPLL solver (baseline).

The Davis–Putnam–Logemann–Loveland procedure with unit propagation, pure
literal elimination and a most-occurrences branching rule.  It is orders of
magnitude slower than the CDCL solver on structured instances but is easy to
audit, which makes it the reference implementation against which the CDCL
solver is cross-checked in the test suite, and a secondary choice of the
algorithm ``A`` in ablation benchmarks.
"""

from __future__ import annotations

import time
from collections import Counter
from collections.abc import Sequence

from repro.sat.formula import CNF, normalize_clause
from repro.sat.solver import SolveResult, SolverBudget, SolverStats, SolverStatus


class BudgetExhausted(Exception):
    """Internal control-flow exception raised when the budget is spent."""


class DPLLSolver:
    """Recursive DPLL solver implementing the :class:`repro.sat.solver.Solver` protocol."""

    def __init__(self, use_pure_literals: bool = True):
        self.use_pure_literals = use_pure_literals

    def solve(
        self,
        cnf: CNF,
        assumptions: Sequence[int] = (),
        budget: SolverBudget | None = None,
    ) -> SolveResult:
        """Solve ``cnf`` under ``assumptions``; see :class:`repro.sat.solver.Solver`."""
        start = time.perf_counter()
        self._budget = budget or SolverBudget()
        self._stats = SolverStats()
        self._start_time = start
        self._num_vars = cnf.num_vars

        clauses: list[tuple[int, ...]] = []
        ok = True
        for clause in cnf.clauses:
            norm = normalize_clause(clause)
            if norm is None:
                continue
            if not norm:
                ok = False
                break
            clauses.append(norm)
        for lit in assumptions:
            clauses.append((lit,))

        status = SolverStatus.UNSAT
        model: dict[int, bool] | None = None
        if ok:
            try:
                found = self._dpll(clauses, {})
            except BudgetExhausted:
                found = None
            if found is None:
                status = SolverStatus.UNKNOWN
            elif found:
                status = SolverStatus.SAT
                model = dict(self._model)
                for var in range(1, self._num_vars + 1):
                    model.setdefault(var, False)
        self._stats.wall_time = time.perf_counter() - start
        return SolveResult(status=status, model=model, stats=self._stats)

    # ------------------------------------------------------------------ internals
    def _check_budget(self) -> None:
        budget = self._budget
        if budget.max_decisions is not None and self._stats.decisions >= budget.max_decisions:
            raise BudgetExhausted
        if budget.max_propagations is not None and self._stats.propagations >= budget.max_propagations:
            raise BudgetExhausted
        if budget.max_conflicts is not None and self._stats.conflicts >= budget.max_conflicts:
            raise BudgetExhausted
        if budget.max_seconds is not None:
            if time.perf_counter() - self._start_time >= budget.max_seconds:
                raise BudgetExhausted

    def _simplify(
        self, clauses: list[tuple[int, ...]], assignment: dict[int, bool]
    ) -> tuple[list[tuple[int, ...]] | None, dict[int, bool]]:
        """Unit propagation (and pure literals) to a fixed point.

        Returns ``(clauses, assignment)`` or ``(None, assignment)`` on conflict.
        """
        clauses = list(clauses)
        assignment = dict(assignment)
        changed = True
        while changed:
            changed = False
            new_clauses: list[tuple[int, ...]] = []
            unit: int | None = None
            for clause in clauses:
                satisfied = False
                remaining: list[int] = []
                for lit in clause:
                    var = abs(lit)
                    if var in assignment:
                        if assignment[var] == (lit > 0):
                            satisfied = True
                            break
                    else:
                        remaining.append(lit)
                if satisfied:
                    continue
                if not remaining:
                    self._stats.conflicts += 1
                    return None, assignment
                if len(remaining) == 1 and unit is None:
                    unit = remaining[0]
                new_clauses.append(tuple(remaining))
            clauses = new_clauses
            if unit is not None:
                assignment[abs(unit)] = unit > 0
                self._stats.propagations += 1
                self._check_budget()
                changed = True
                continue
            if self.use_pure_literals and clauses:
                # The polarity scan runs only when the pass found no unit
                # (unit passes dominate, and a polarity map built there would
                # be discarded immediately).  Assigning a pure literal only
                # removes clauses, which can never flip the polarity of
                # another pure variable, so every pure literal found by one
                # scan is assigned at once instead of re-scanning the whole
                # clause list per literal as the previous implementation did.
                polarity: dict[int, int] = {}
                for clause in clauses:
                    for lit in clause:
                        var = abs(lit)
                        polarity[var] = polarity.get(var, 0) | (1 if lit > 0 else 2)
                for var, mask in polarity.items():
                    if mask in (1, 2) and var not in assignment:
                        assignment[var] = mask == 1
                        self._stats.propagations += 1
                        changed = True
        return clauses, assignment

    def _dpll(self, clauses: list[tuple[int, ...]], assignment: dict[int, bool]) -> bool | None:
        self._check_budget()
        clauses, assignment = self._simplify(clauses, assignment)
        if clauses is None:
            return False
        if not clauses:
            self._model = assignment
            return True

        # Branch on the most frequently occurring variable (MOMS-lite heuristic).
        counts: Counter[int] = Counter()
        for clause in clauses:
            for lit in clause:
                counts[abs(lit)] += 1
        var = max(counts, key=lambda v: (counts[v], -v))

        self._stats.decisions += 1
        for value in (True, False):
            result = self._dpll(clauses, {**assignment, var: value})
            if result:
                return True
        return False


# --------------------------------------------------------------- registry wiring
from repro.api.registry import register_solver  # noqa: E402  (import-time registration)


@register_solver("dpll", description="DPLL reference solver")
def _dpll_factory(**options) -> DPLLSolver:
    """Build a DPLL solver; keyword options are constructor arguments."""
    return DPLLSolver(**options)
