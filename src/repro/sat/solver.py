"""Common solver interface: status codes, statistics, budgets, results.

Every solver in the library (CDCL, DPLL, WalkSAT) implements the small
:class:`Solver` protocol: it takes a :class:`~repro.sat.formula.CNF`, optional
assumptions, and an optional :class:`SolverBudget`, and returns a
:class:`SolveResult`.  The result carries both the outcome (SAT/UNSAT/UNKNOWN
plus the model when satisfiable) and a :class:`SolverStats` record.

The statistics record is what the Monte Carlo predictive function consumes: the
paper measures per-subproblem wall-clock time with a deterministic solver; we
additionally expose deterministic work counters (conflicts, decisions,
propagations) which make estimates exactly reproducible across machines.  The
choice of cost measure lives in :mod:`repro.core.predictive`.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.api.registry import get_cost_measure
from repro.sat.formula import CNF


class SolverStatus(enum.Enum):
    """Outcome of a solver run."""

    SAT = "SAT"
    UNSAT = "UNSAT"
    UNKNOWN = "UNKNOWN"

    def __bool__(self) -> bool:  # pragma: no cover - guard against accidental truthiness
        raise TypeError(
            "SolverStatus must be compared explicitly (status is SolverStatus.SAT)"
        )


@dataclass
class SolverBudget:
    """Resource limits for a single solver call.

    A budget of ``None`` in every field means "run to completion".  Budgets are
    used by the orchestration layer to stop hopeless sub-problems early (the
    original PDSAT interrupted MiniSat through non-blocking MPI messages; a
    conflict/time budget is the single-process analogue).
    """

    max_conflicts: int | None = None
    max_decisions: int | None = None
    max_propagations: int | None = None
    max_seconds: float | None = None

    def is_unlimited(self) -> bool:
        """True when no limit is set."""
        return (
            self.max_conflicts is None
            and self.max_decisions is None
            and self.max_propagations is None
            and self.max_seconds is None
        )


@dataclass
class SolverStats:
    """Work counters accumulated during one solver call.

    ``conflicts``, ``decisions`` and ``propagations`` are deterministic for a
    deterministic solver and a fixed input, which is exactly the property the
    Monte Carlo method needs from the random variable ``ξ_{C,A}``.

    ``propagations`` counts the literals **assigned by unit propagation**
    (one per ENQUEUE trace event), not the literals dequeued from the
    propagation queue: assignment counts are a property of the propagation
    closure, so the CDCL engines agree on them whenever their trails agree,
    where dequeue counts depend on which watcher-visit order first surfaces
    a conflict.  Decision literals and the input formula's own unit clauses
    are not propagations.
    """

    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    restarts: int = 0
    learned_clauses: int = 0
    deleted_clauses: int = 0
    max_decision_level: int = 0
    wall_time: float = 0.0

    def cost(self, measure: str = "conflicts") -> float:
        """Return the scalar cost according to the selected measure.

        Measures are looked up in the cost-measure registry
        (:mod:`repro.api.measures`); the built-ins are ``"conflicts"``,
        ``"decisions"``, ``"propagations"``, ``"wall_time"`` and ``"weighted"``
        (a fixed linear combination that approximates wall time but stays
        deterministic).  An unknown measure raises
        :class:`repro.api.registry.UnknownNameError` (a ``ValueError``).
        """
        return get_cost_measure(measure)(self)

    def merge(self, other: "SolverStats") -> "SolverStats":
        """Pointwise sum of two stats records (wall times add, levels take max)."""
        return SolverStats(
            conflicts=self.conflicts + other.conflicts,
            decisions=self.decisions + other.decisions,
            propagations=self.propagations + other.propagations,
            restarts=self.restarts + other.restarts,
            learned_clauses=self.learned_clauses + other.learned_clauses,
            deleted_clauses=self.deleted_clauses + other.deleted_clauses,
            max_decision_level=max(self.max_decision_level, other.max_decision_level),
            wall_time=self.wall_time + other.wall_time,
        )


@dataclass
class SolveResult:
    """Result of one solver call."""

    status: SolverStatus
    model: dict[int, bool] | None = None
    stats: SolverStats = field(default_factory=SolverStats)
    conflict_activity: dict[int, float] = field(default_factory=dict)

    @property
    def is_sat(self) -> bool:
        """True when the instance was proven satisfiable."""
        return self.status is SolverStatus.SAT

    @property
    def is_unsat(self) -> bool:
        """True when the instance was proven unsatisfiable."""
        return self.status is SolverStatus.UNSAT

    @property
    def is_decided(self) -> bool:
        """True when the solver reached a definite answer within its budget."""
        return self.status is not SolverStatus.UNKNOWN

    def model_bits(self, variables: Sequence[int]) -> tuple[int, ...]:
        """Project the model onto ``variables`` as a 0/1 tuple."""
        if self.model is None:
            raise ValueError("no model available (instance not SAT or not solved)")
        return tuple(int(self.model[v]) for v in variables)


@runtime_checkable
class Solver(Protocol):
    """Minimal protocol every solver in the library implements."""

    def solve(
        self,
        cnf: CNF,
        assumptions: Sequence[int] = (),
        budget: SolverBudget | None = None,
    ) -> SolveResult:
        """Solve ``cnf`` under the given assumption literals within ``budget``."""
        ...  # pragma: no cover


def check_model(cnf: CNF, model: dict[int, bool]) -> bool:
    """Verify that ``model`` satisfies ``cnf`` (used as a post-condition in tests)."""
    for clause in cnf.clauses:
        if not any(model.get(abs(lit), False) == (lit > 0) for lit in clause):
            return False
    return True
