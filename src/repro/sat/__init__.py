"""SAT substrate: CNF formulas, DIMACS I/O, solvers and preprocessing.

This subpackage plays the role of MiniSat in the original paper: it provides a
complete, deterministic solver (:class:`repro.sat.cdcl.CDCLSolver`) whose
per-instance cost can be measured either in wall-clock seconds or in
deterministic counters (conflicts, decisions, propagations), together with a
DPLL reference solver, a lookahead solver (also used to build cube-and-conquer
partitionings), the WalkSAT local search, and SatELite-style preprocessing
(:mod:`repro.sat.simplify`).  The Monte Carlo machinery in :mod:`repro.core`
is solver-agnostic and talks to solvers through the small interface defined in
:mod:`repro.sat.solver`.
"""

from repro.sat.assignment import Assignment
from repro.sat.dimacs import parse_dimacs, parse_dimacs_file, write_dimacs, write_dimacs_file
from repro.sat.formula import CNF, Clause, lit_to_var, neg, var_to_lit
from repro.sat.lookahead import LookaheadSolver, lookahead_scores, rank_variables_by_lookahead
from repro.sat.simplify import (
    PreprocessConfig,
    Preprocessor,
    PreprocessResult,
    PreprocessStats,
    SimplificationResult,
    SimplifyConfig,
    simplify_cnf,
)
from repro.sat.solver import SolveResult, SolverBudget, SolverStats, SolverStatus

__all__ = [
    "CNF",
    "Clause",
    "Assignment",
    "SolveResult",
    "SolverBudget",
    "SolverStats",
    "SolverStatus",
    "LookaheadSolver",
    "lookahead_scores",
    "rank_variables_by_lookahead",
    "PreprocessConfig",
    "Preprocessor",
    "PreprocessResult",
    "PreprocessStats",
    "SimplifyConfig",
    "SimplificationResult",
    "simplify_cnf",
    "lit_to_var",
    "neg",
    "var_to_lit",
    "parse_dimacs",
    "parse_dimacs_file",
    "write_dimacs",
    "write_dimacs_file",
]
