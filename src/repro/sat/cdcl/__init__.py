"""Conflict-Driven Clause Learning solver.

This is the library's stand-in for MiniSat: a complete, deterministic CDCL
solver with two-watched-literal propagation, first-UIP clause learning, VSIDS
branching, phase saving, Luby restarts and activity-based learned-clause
deletion.  It reports per-run work counters and per-variable conflict activity,
both of which the partitioning search in :mod:`repro.core` relies on.
"""

from repro.sat.cdcl.luby import luby
from repro.sat.cdcl.solver import CDCLConfig, CDCLSolver

__all__ = ["CDCLSolver", "CDCLConfig", "luby"]
