"""Conflict-Driven Clause Learning solver.

This is the library's stand-in for MiniSat: a complete, deterministic CDCL
solver with two-watched-literal propagation, first-UIP clause learning, VSIDS
branching, phase saving, Luby restarts and LBD-aware learned-clause deletion.
It reports per-run work counters and per-variable conflict activity, both of
which the partitioning search in :mod:`repro.core` relies on.

Two engines share the same contract and the same :class:`CDCLConfig`:

* :class:`CDCLSolver` (``"cdcl"`` in the solver registry) — the default
  flat-array engine of :mod:`repro.sat.cdcl.solver`: a single flat-int clause
  arena addressed by int32 offsets (a plain list, deliberately not
  ``array('i')`` — see the solver module docstring), array-indexed watcher
  lists with MiniSat-style blocker literals, and flat trail/reason/level
  stores.
* :class:`LegacyCDCLSolver` (``"cdcl-legacy"``) — the frozen pre-arena
  object-graph engine of :mod:`repro.sat.cdcl.legacy`, kept as the
  differential-testing reference and the perf-regression baseline.
"""

from repro.sat.cdcl.config import CDCLConfig
from repro.sat.cdcl.legacy import LegacyCDCLSolver
from repro.sat.cdcl.luby import luby
from repro.sat.cdcl.solver import CDCLSolver

__all__ = ["CDCLSolver", "CDCLConfig", "LegacyCDCLSolver", "luby"]
