"""The pre-arena CDCL engine (object-graph clause database).

This module preserves the original :class:`CDCLSolver` implementation — a
dict-of-list two-watched-literal scheme over per-clause
:class:`~repro.sat.cdcl.clause.WatchedClause` objects — under the name
:class:`LegacyCDCLSolver`.  The flat-array arena engine in
:mod:`repro.sat.cdcl.solver` replaced it as the default ``CDCLSolver``; the
legacy engine is retained for two reasons:

* **Differential testing** — ``tests/test_differential_fuzz.py`` solves the
  seeded CNF corpus with both engines and requires bit-identical SAT/UNSAT
  verdicts (models are additionally verified against the formula), including
  under incremental assumption sequences.
* **Perf regression measurement** — :mod:`repro.perf` benchmarks the arena
  engine *against* this engine on the same workload, so the committed
  ``BENCH_4.json`` speedups stay reproducible on any machine.

It implements the exact same public contract as the arena engine (one-shot
``solve(cnf)``, incremental ``load()`` + ``solve(assumptions=...)`` with
learned-clause retention, per-call stats/budgets, per-call conflict activity)
and is registered as the ``"cdcl-legacy"`` solver.  Do not extend it with new
features; it is a frozen reference implementation.  The only sanctioned
exceptions are cross-engine contracts that must stay in lock-step with the
arena engine so differential runs remain comparable:

* **observability** — ``stats.propagations`` counts literals **assigned** by
  unit propagation (a property of the propagation closure, identical across
  engines whenever their trails agree), and the same ``trace=None`` event
  hooks exist so a regressed benchmark pair can be recorded and diffed with
  :mod:`repro.trace`;
* **clause exchange** — the ``import_clauses()`` / ``exportable_clauses()``
  pair of the clause-sharing portfolio (:mod:`repro.portfolio.sharing`),
  mirrored here so the differential-fuzz lane can drive both engines through
  the same sharing schedule (the legacy engine stores no LBD, so it exports
  clause *length* as the LBD stand-in — the classical over-approximation).
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from repro.sat.cdcl.clause import WatchedClause
from repro.sat.cdcl.config import CDCLConfig
from repro.sat.cdcl.heap import ActivityHeap
from repro.sat.cdcl.luby import luby
from repro.sat.formula import CNF, normalize_clause
from repro.sat.solver import SolveResult, SolverBudget, SolverStats, SolverStatus

_UNASSIGNED = None


class LegacyCDCLSolver:
    """Conflict-driven clause-learning solver (MiniSat-style, object-graph storage)."""

    def __init__(self, config: CDCLConfig | None = None):
        self.config = config or CDCLConfig()
        #: The formula currently held in the internal clause database, or
        #: ``None`` before the first ``load``/``solve``.  The batched Monte
        #: Carlo engine checks this to decide whether a re-load is needed.
        self.loaded_cnf: CNF | None = None
        #: Persistent event sink mirroring the arena engine's ``trace``
        #: contract; ``None`` keeps tracing off.
        self.trace = None
        self._trace = None
        self._solve_seq = 0

    # ------------------------------------------------------------------ public
    def load(self, cnf: CNF, frozen=()) -> "LegacyCDCLSolver":
        """Build the internal clause database for ``cnf`` (incremental entry point).

        After ``load``, call :meth:`solve` without a CNF argument to solve the
        formula under varying assumptions while retaining learned clauses,
        activities and saved phases across calls.  Returns ``self`` so the
        idiom ``LegacyCDCLSolver().load(cnf)`` works.

        ``frozen`` is accepted (and range-validated) for interface parity with
        the arena engine's preprocessing-aware ``load``; the frozen reference
        engine never preprocesses, so the set is otherwise ignored and
        ``CDCLConfig.simplify`` has no effect here.
        """
        from repro.sat.simplify import validate_frozen

        validate_frozen(frozen, cnf.num_vars)
        self._init(cnf)
        self.loaded_cnf = cnf
        return self

    def solve(
        self,
        cnf: CNF | None = None,
        assumptions: Sequence[int] = (),
        budget: SolverBudget | None = None,
        trace=None,
    ) -> SolveResult:
        """Solve under ``assumptions`` within an optional per-call ``budget``.

        With a ``cnf`` argument the solver re-initialises from scratch (the
        one-shot behaviour).  With ``cnf=None`` the formula from a previous
        :meth:`load` (or previous one-shot solve) is reused incrementally:
        learned clauses are retained, only ``result.stats`` restarts from zero.

        ``trace`` attaches an event sink for this call (falling back to the
        persistent :attr:`trace` attribute), mirroring the arena engine.

        Returns a :class:`~repro.sat.solver.SolveResult` whose status is SAT,
        UNSAT, or UNKNOWN (budget exhausted).  When SAT, ``result.model`` maps
        every variable ``1..num_vars`` to a Boolean; variables that do not
        occur in the formula default to the solver's default phase.
        """
        start = time.perf_counter()
        self._budget = budget or SolverBudget()
        self._stats = SolverStats()
        self._trace = trace if trace is not None else self.trace
        fresh = cnf is not None
        if fresh:
            self.load(cnf)
        elif self.loaded_cnf is None:
            raise ValueError("no formula loaded: pass a CNF or call load() first")
        else:
            self._cancel_until(0)
        # Snapshot bookkeeping is only consumed by the incremental activity
        # report; keep it off the fresh path's conflict-analysis hot loop.
        self._track_bumps = not fresh
        self._bumped_vars.clear()
        self._bump_snapshots.clear()
        rescales_before = self._activity_rescales
        var_inc_before = self._var_inc

        for literal in assumptions:
            if literal == 0 or abs(literal) > self._num_vars:
                raise ValueError(
                    f"assumption literal {literal} is outside the loaded "
                    f"formula's variables 1..{self._num_vars}"
                )
        if self._trace is not None:
            self._trace.solve_begin(self._solve_seq, len(assumptions))
        self._solve_seq += 1
        status = self._solve_internal(list(assumptions))

        self._stats.wall_time = time.perf_counter() - start
        model = None
        if status is SolverStatus.SAT:
            model = {
                v: (self._value[v] if self._value[v] is not _UNASSIGNED
                    else self.config.default_phase)
                for v in range(1, self._num_vars + 1)
            }
        # Like stats, conflict_activity is per call: report only the bumps of
        # this call, not the cumulative VSIDS state retained across calls.
        # Fresh solves report the raw dense activity map over every variable
        # (the historical contract); incremental calls report only the
        # variables actually bumped this call, reconstructed from per-variable
        # snapshots taken at first bump (no O(num_vars) work per sample).
        # Deltas are normalised by the call-start var_inc so a bump in one
        # call weighs the same as a bump in any other, and each snapshot is
        # brought into the current frame when the 1e100 activity rescale fired
        # after it — without those two corrections, accumulated activity would
        # be exponentially dominated by the most recent calls, or collapse to
        # zero in the call where the rescale happens.
        if fresh:
            activity = {v: self._activity[v] for v in range(1, self._num_vars + 1)}
        else:
            unit = var_inc_before * (
                1e-100 ** (self._activity_rescales - rescales_before)
            )
            if unit <= 0.0:
                # >= 4 rescales in one call (~18k conflicts): the unit
                # underflowed to exactly 0.  Use the smallest positive float
                # and rely on the cap below — such a call saturated the
                # activity order anyway.
                unit = 5e-324
            activity = {}
            for v in sorted(self._bumped_vars):
                snap_value, snap_rescales = self._bump_snapshots[v]
                snap_scale = 1e-100 ** (self._activity_rescales - snap_rescales)
                delta = max(0.0, self._activity[v] - snap_value * snap_scale) / unit
                # Keep reported activity finite: an inf would be folded into
                # downstream accumulated sums permanently.
                activity[v] = min(delta, 1e100)
        return SolveResult(
            status=status,
            model=model,
            stats=self._stats,
            conflict_activity=activity,
        )

    # ------------------------------------------------------------ clause sharing
    def import_clauses(self, clauses: Sequence[Sequence[int]]) -> int:
        """Add externally learned clauses at a restart boundary.

        Mirror of :meth:`repro.sat.cdcl.CDCLSolver.import_clauses` (same
        caller contract: every clause must be implied by the loaded formula).
        Returns the number of clauses added; literals outside the loaded
        formula's variables raise :class:`ValueError`.
        """
        if self.loaded_cnf is None:
            raise ValueError("no formula loaded: call load() before import_clauses()")
        self._cancel_until(0)
        imported = 0
        for clause in clauses:
            norm = normalize_clause(clause)
            if norm is None:
                continue  # tautology
            lits: list[int] = []
            satisfied = False
            for lit in norm:
                if abs(lit) > self._num_vars:
                    raise ValueError(
                        f"imported literal {lit} is outside the loaded "
                        f"formula's variables 1..{self._num_vars}"
                    )
                val = self._lit_value(lit)
                if val is True:
                    satisfied = True
                    break
                if val is _UNASSIGNED:
                    lits.append(lit)
            if satisfied or not self._ok:
                continue
            imported += 1
            if not lits:
                self._ok = False  # implied empty clause: the formula is UNSAT
            elif len(lits) == 1:
                if not self._enqueue(lits[0], None):
                    self._ok = False
            else:
                wc = WatchedClause(lits, learnt=True, lbd=len(lits))
                self._learnts.append(wc)
                self._attach(wc)
        return imported

    def exportable_clauses(
        self,
        max_lbd: int | None = None,
        max_size: int | None = None,
        limit: int | None = None,
    ) -> list[tuple[tuple[int, ...], int]]:
        """Learned clauses worth sharing, as ``(clause, lbd)`` pairs.

        Mirror of :meth:`repro.sat.cdcl.CDCLSolver.exportable_clauses` with
        clause length standing in for the LBD the legacy engine never stores
        (``WatchedClause.lbd`` is 0 for clauses this engine learned itself).
        """
        if self.loaded_cnf is None:
            return []
        out: list[tuple[tuple[int, ...], int]] = []
        root_end = self._trail_lim[0] if self._trail_lim else len(self._trail)
        for lit in self._trail[:root_end]:
            out.append(((lit,), 1))
        for wc in self._learnts:
            size = len(wc.lits)
            lbd = wc.lbd if wc.lbd else size
            if max_lbd is not None and lbd > max_lbd:
                continue
            if max_size is not None and size > max_size:
                continue
            external = normalize_clause(wc.lits)
            if external is None:
                continue
            out.append((external, lbd))
        out.sort(key=lambda pair: (pair[1], len(pair[0]), pair[0]))
        if limit is not None:
            out = out[:limit]
        return out

    # -------------------------------------------------------------- initialise
    def _init(self, cnf: CNF) -> None:
        n = cnf.num_vars
        self._num_vars = n
        self._value: list[bool | None] = [_UNASSIGNED] * (n + 1)
        self._level: list[int] = [0] * (n + 1)
        self._reason: list[WatchedClause | None] = [None] * (n + 1)
        self._saved_phase: list[bool] = [self.config.default_phase] * (n + 1)
        self._activity: list[float] = [0.0] * (n + 1)
        self._activity_rescales = 0
        self._bumped_vars: set[int] = set()
        #: var -> (activity value, rescale count) at this call's first bump.
        self._bump_snapshots: dict[int, tuple[float, int]] = {}
        self._track_bumps = False
        self._var_inc = 1.0
        self._cla_inc = 1.0
        self._heap = ActivityHeap(self._activity)
        self._watches: dict[int, list[WatchedClause]] = {}
        for v in range(1, n + 1):
            self._watches[v] = []
            self._watches[-v] = []
            self._heap.push(v)
        self._clauses: list[WatchedClause] = []
        self._learnts: list[WatchedClause] = []
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._ok = True
        self._seen: list[bool] = [False] * (n + 1)

        for clause in cnf.clauses:
            if not self._add_problem_clause(clause):
                self._ok = False
                return

    def _add_problem_clause(self, clause: Sequence[int]) -> bool:
        """Add an original (non-learnt) clause; returns False on immediate conflict."""
        norm = normalize_clause(clause)
        if norm is None:
            return True  # tautology
        # Remove literals already falsified at level 0 and drop clauses already
        # satisfied at level 0.
        filtered: list[int] = []
        for lit in norm:
            val = self._lit_value(lit)
            if val is True:
                return True
            if val is _UNASSIGNED:
                filtered.append(lit)
        lits = filtered
        if not lits:
            return False
        if len(lits) == 1:
            return self._enqueue(lits[0], None)
        wc = WatchedClause(lits, learnt=False)
        self._clauses.append(wc)
        self._attach(wc)
        return True

    def _attach(self, clause: WatchedClause) -> None:
        self._watches[clause.lits[0]].append(clause)
        self._watches[clause.lits[1]].append(clause)

    # ----------------------------------------------------------------- values
    def _lit_value(self, lit: int) -> bool | None:
        val = self._value[abs(lit)]
        if val is _UNASSIGNED:
            return _UNASSIGNED
        return val if lit > 0 else not val

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    # -------------------------------------------------------------- propagation
    def _enqueue(self, lit: int, reason: WatchedClause | None) -> bool:
        val = self._lit_value(lit)
        if val is not _UNASSIGNED:
            return val is True
        var = abs(lit)
        self._value[var] = lit > 0
        self._level[var] = self._decision_level()
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _propagate(self) -> WatchedClause | None:
        """Unit propagation; returns a conflicting clause or ``None``.

        Like the arena engine, ``stats.propagations`` counts the literals
        **assigned** by this call (trail growth), not the literals dequeued,
        so the counter agrees across engines whenever their trails agree.
        """
        t0 = len(self._trail)
        conflict: WatchedClause | None = None
        while self._qhead < len(self._trail):
            p = self._trail[self._qhead]
            self._qhead += 1
            falsified = -p
            watch_list = self._watches[falsified]
            kept: list[WatchedClause] = []
            i = 0
            n_watch = len(watch_list)
            while i < n_watch:
                clause = watch_list[i]
                i += 1
                lits = clause.lits
                # Make sure the falsified literal is at position 1.
                if lits[0] == falsified:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                if self._lit_value(first) is True:
                    kept.append(clause)
                    continue
                # Look for a replacement watch.
                moved = False
                for k in range(2, len(lits)):
                    if self._lit_value(lits[k]) is not False:
                        lits[1], lits[k] = lits[k], lits[1]
                        self._watches[lits[1]].append(clause)
                        moved = True
                        break
                if moved:
                    continue
                # Clause is unit or conflicting under the current assignment.
                kept.append(clause)
                if self._lit_value(first) is False:
                    conflict = clause
                    # Preserve the remaining watchers untouched.
                    kept.extend(watch_list[i:])
                    self._qhead = len(self._trail)
                    break
                self._enqueue(first, clause)
            self._watches[falsified] = kept
            if conflict is not None:
                break
        self._stats.propagations += len(self._trail) - t0
        trace = self._trace
        if trace is not None and len(self._trail) > t0:
            trace.enqueue_all(self._trail[t0:])
        return conflict

    # ----------------------------------------------------------------- analyse
    def _analyze(self, conflict: WatchedClause) -> tuple[list[int], int]:
        """First-UIP conflict analysis; returns (learnt clause, backjump level)."""
        learnt: list[int] = [0]  # placeholder for the asserting literal
        seen = self._seen
        counter = 0
        p: int | None = None
        index = len(self._trail) - 1
        current_level = self._decision_level()
        clause: WatchedClause | None = conflict
        to_clear: list[int] = []

        while True:
            assert clause is not None
            if clause.learnt:
                self._bump_clause(clause)
            start = 0 if p is None else 1
            for q in clause.lits[start:]:
                var = abs(q)
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    to_clear.append(var)
                    self._bump_var(var)
                    if self._level[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[abs(self._trail[index])]:
                index -= 1
            p = self._trail[index]
            clause = self._reason[abs(p)]
            seen[abs(p)] = False
            index -= 1
            counter -= 1
            if counter == 0:
                break
        learnt[0] = -p

        if self.config.clause_minimization and len(learnt) > 1:
            learnt = self._minimize(learnt)

        # Compute the backjump level and put a literal of that level at index 1.
        if len(learnt) == 1:
            bt_level = 0
        else:
            max_i = 1
            for i in range(2, len(learnt)):
                if self._level[abs(learnt[i])] > self._level[abs(learnt[max_i])]:
                    max_i = i
            learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
            bt_level = self._level[abs(learnt[1])]

        for var in to_clear:
            seen[var] = False
        return learnt, bt_level

    def _minimize(self, learnt: list[int]) -> list[int]:
        """Cheap (non-recursive) clause minimisation.

        A literal other than the asserting one can be dropped when the reason of
        its variable is entirely subsumed by the remaining learnt literals.
        """
        marked = {abs(lit) for lit in learnt}
        result = [learnt[0]]
        for lit in learnt[1:]:
            reason = self._reason[abs(lit)]
            if reason is None:
                result.append(lit)
                continue
            redundant = True
            for q in reason.lits:
                var = abs(q)
                if var == abs(lit):
                    continue
                if var not in marked and self._level[var] > 0:
                    redundant = False
                    break
            if not redundant:
                result.append(lit)
        return result

    # --------------------------------------------------------------- activities
    def _bump_var(self, var: int) -> None:
        if self._track_bumps and var not in self._bumped_vars:
            self._bumped_vars.add(var)
            self._bump_snapshots[var] = (self._activity[var], self._activity_rescales)
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
            self._activity_rescales += 1
        self._heap.update(var)

    def _decay_var_activity(self) -> None:
        self._var_inc /= self.config.var_decay

    def _bump_clause(self, clause: WatchedClause) -> None:
        clause.activity += self._cla_inc
        if clause.activity > 1e20:
            for learnt in self._learnts:
                learnt.activity *= 1e-20
            self._cla_inc *= 1e-20

    def _decay_clause_activity(self) -> None:
        self._cla_inc /= self.config.clause_decay

    # --------------------------------------------------------------- backtracking
    def _cancel_until(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        target = self._trail_lim[level]
        for i in range(len(self._trail) - 1, target - 1, -1):
            lit = self._trail[i]
            var = abs(lit)
            if self.config.phase_saving:
                self._saved_phase[var] = self._value[var]
            self._value[var] = _UNASSIGNED
            self._reason[var] = None
            self._heap.push(var)
        del self._trail[target:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    # ------------------------------------------------------------------- decide
    def _pick_branch_var(self) -> int | None:
        while not self._heap.is_empty():
            var = self._heap.pop()
            if self._value[var] is _UNASSIGNED:
                return var
        return None

    # --------------------------------------------------------------- reduce DB
    def _reduce_db(self) -> None:
        """Remove roughly half of the learned clauses with the lowest activity."""
        locked = set()
        for var in range(1, self._num_vars + 1):
            reason = self._reason[var]
            if reason is not None and reason.learnt:
                locked.add(id(reason))
        self._learnts.sort(key=lambda c: c.activity)
        keep_from = len(self._learnts) // 2
        removed: list[WatchedClause] = []
        kept: list[WatchedClause] = []
        for i, clause in enumerate(self._learnts):
            if i < keep_from and len(clause.lits) > 2 and id(clause) not in locked:
                removed.append(clause)
            else:
                kept.append(clause)
        for clause in removed:
            self._detach(clause)
        self._stats.deleted_clauses += len(removed)
        self._learnts = kept
        if self._trace is not None:
            self._trace.reduce(len(removed), len(kept))

    def _detach(self, clause: WatchedClause) -> None:
        for lit in (clause.lits[0], clause.lits[1]):
            watchers = self._watches[lit]
            try:
                watchers.remove(clause)
            except ValueError:  # pragma: no cover - defensive
                pass

    # --------------------------------------------------------------- main loop
    def _budget_exhausted(self, start_time: float) -> bool:
        budget = self._budget
        stats = self._stats
        if budget.max_conflicts is not None and stats.conflicts >= budget.max_conflicts:
            return True
        if budget.max_decisions is not None and stats.decisions >= budget.max_decisions:
            return True
        if budget.max_propagations is not None and stats.propagations >= budget.max_propagations:
            return True
        if budget.max_seconds is not None and (time.perf_counter() - start_time) >= budget.max_seconds:
            return True
        return False

    def _solve_internal(self, assumptions: list[int]) -> SolverStatus:
        if not self._ok:
            return SolverStatus.UNSAT
        if self._propagate() is not None:
            self._ok = False  # conflict at level 0: globally UNSAT
            return SolverStatus.UNSAT
        if self._num_vars == 0:
            return SolverStatus.SAT

        start_time = time.perf_counter()
        max_learnts = max(
            100.0, self.config.learntsize_factor * max(1, len(self._clauses))
        )
        restart_count = 0

        while True:
            restart_count += 1
            if self.config.use_luby_restarts:
                conflict_budget = self.config.restart_base * luby(restart_count)
            else:
                conflict_budget = int(self.config.restart_base * (1.5 ** (restart_count - 1)))
            status = self._search(conflict_budget, assumptions, max_learnts, start_time)
            if status is not None:
                return status
            if self._budget_exhausted(start_time):
                return SolverStatus.UNKNOWN
            self._stats.restarts += 1
            if self._trace is not None:
                self._trace.restart(self._stats.conflicts)
            max_learnts *= self.config.learntsize_inc
            self._cancel_until(0)

    def _search(
        self,
        conflict_budget: int,
        assumptions: list[int],
        max_learnts: float,
        start_time: float,
    ) -> SolverStatus | None:
        """Run until the restart conflict budget is spent; None means "restart"."""
        conflicts_here = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self._stats.conflicts += 1
                conflicts_here += 1
                trace = self._trace
                if trace is not None:
                    trace.conflict(self._decision_level())
                if self._decision_level() == 0:
                    self._ok = False  # conflict below all decisions: globally UNSAT
                    return SolverStatus.UNSAT
                learnt, bt_level = self._analyze(conflict)
                if trace is not None:
                    lbd = len({self._level[abs(lit)] for lit in learnt})
                    trace.learn(lbd, len(learnt))
                    trace.backtrack(self._decision_level(), bt_level)
                self._cancel_until(bt_level)
                if len(learnt) == 1:
                    self._enqueue(learnt[0], None)
                else:
                    clause = WatchedClause(learnt, learnt=True)
                    self._learnts.append(clause)
                    self._stats.learned_clauses += 1
                    self._attach(clause)
                    self._bump_clause(clause)
                    self._enqueue(learnt[0], clause)
                self._decay_var_activity()
                self._decay_clause_activity()
                if self._budget_exhausted(start_time):
                    return SolverStatus.UNKNOWN
                continue

            # No conflict.
            if conflicts_here >= conflict_budget:
                return None  # restart
            if len(self._learnts) - len(self._trail) >= max_learnts:
                self._reduce_db()

            # Assumptions first, then heap decisions.
            decision: int | None = None
            while self._decision_level() < len(assumptions):
                lit = assumptions[self._decision_level()]
                val = self._lit_value(lit)
                if val is True:
                    self._trail_lim.append(len(self._trail))
                    continue
                if val is False:
                    return SolverStatus.UNSAT
                decision = lit
                break
            if decision is None:
                var = self._pick_branch_var()
                if var is None:
                    return SolverStatus.SAT
                phase = (
                    self._saved_phase[var]
                    if self.config.phase_saving
                    else self.config.default_phase
                )
                decision = var if phase else -var
            self._stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            self._stats.max_decision_level = max(
                self._stats.max_decision_level, self._decision_level()
            )
            self._enqueue(decision, None)
            if self._trace is not None:
                self._trace.decide(decision)


# --------------------------------------------------------------- registry wiring
from repro.api.registry import register_solver  # noqa: E402  (import-time registration)


@register_solver(
    "cdcl-legacy",
    description="pre-arena CDCL engine (object-graph storage; differential reference)",
)
def _cdcl_legacy_factory(**options) -> LegacyCDCLSolver:
    """Build a legacy CDCL solver; keyword options are :class:`CDCLConfig` fields."""
    return LegacyCDCLSolver(CDCLConfig(**options)) if options else LegacyCDCLSolver()
