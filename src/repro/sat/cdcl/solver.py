"""A complete, deterministic CDCL SAT solver with a flat-array propagation core.

The solver follows the MiniSat architecture — two-watched-literal unit
propagation, first-UIP conflict analysis with clause minimisation, VSIDS
variable activities with exponential decay, phase saving, Luby restarts and
LBD-aware deletion of learned clauses — but stores the entire clause database
in **flat arrays** instead of Python objects:

* **Clause arena** — one shared flat int sequence holds every clause as
  ``[size, lit0, lit1, ...]``; a clause is identified by the int32 offset
  (*cref*) of its size slot.  There are no per-clause Python objects on the hot
  path, no attribute lookups, and deleted clauses are compacted away by a
  mark-free garbage collector once half the arena is garbage.  (A plain list
  is used as the backing store rather than ``array('i')``: CPython boxes a
  fresh int on every ``array`` read, which measured ~15 % slower end-to-end,
  while a list of small ints shares the cached objects.)
* **Literal indices** — literals are encoded as array indices
  (``var·2`` for the positive, ``var·2 + 1`` for the negative literal, so
  negation is ``idx ^ 1``), and the assignment is a flat list indexed *by
  literal*: evaluating a literal under the current assignment is a single
  indexed load instead of a sign test plus a conditional negation.
* **Watcher lists with blocker literals** — each literal's watchers are a flat
  ``[cref, blocker, cref, blocker, ...]`` int list.  The blocker is a literal
  of the clause (MiniSat's trick): when it is already true the clause is
  satisfied and the propagation loop skips it without touching the arena at
  all, which is where most visits end on structured instances.
* **Preallocated trail/reason/level stores** — the trail is a flat literal
  list with an explicit propagation-queue head; reasons are crefs (``-1`` for
  decisions) and levels plain ints, both indexed by variable.

The engine is deliberately free of any randomisation so that repeated runs on
the same input produce identical work counters — the property the paper
requires of the algorithm ``A`` whose runtime defines the random variable
``ξ_{C,A}(X̃)``.  The pre-arena engine is preserved verbatim as
:class:`~repro.sat.cdcl.legacy.LegacyCDCLSolver` ("cdcl-legacy" in the solver
registry); the differential fuzz suite checks both engines reach identical
verdicts, and :mod:`repro.perf` measures the arena engine's speedup against it.

One-shot usage (fresh solver state per call, the historical behaviour)::

    solver = CDCLSolver()
    result = solver.solve(cnf, assumptions=[5, -7])
    if result.is_sat:
        print(result.model)
    print(result.stats.conflicts, result.stats.wall_time)

Incremental usage — the contract of the batched Monte Carlo engine
(:class:`repro.core.predictive.PredictiveFunction`):

* :meth:`CDCLSolver.load` builds the internal clause database **once**;
  subsequent ``solve(assumptions=...)`` calls (no CNF argument) solve the same
  formula under different assumption vectors without re-constructing watches,
  heaps or the arena.
* Learned clauses, variable activities and saved phases are **retained across
  calls**.  This is sound because assumptions are treated as decisions (never
  as units at level 0): every learned clause is a resolvent of database
  clauses only and is therefore implied by the formula itself, independent of
  whichever assumptions were active when it was learned.
* ``result.stats`` and ``result.conflict_activity`` are **per call**: counters
  restart from zero at each ``solve`` and the activity dict reports only this
  call's VSIDS bumps, so a :class:`~repro.sat.solver.SolverBudget` passed to
  one call bounds only that call (per-call restart/conflict budgets).  A call
  that exhausts its budget returns UNKNOWN and leaves the solver reusable.
* An UNSAT answer from an assumption-based call means "UNSAT *under these
  assumptions*"; only a conflict at decision level 0 proves the formula
  globally unsatisfiable (after which every later call returns UNSAT
  immediately).

Passing a CNF to :meth:`CDCLSolver.solve` always re-initialises from scratch,
which keeps one-shot runs deterministic and bit-for-bit repeatable.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from repro.sat.cdcl.config import CDCLConfig
from repro.sat.cdcl.heap import ActivityHeap
from repro.sat.cdcl.luby import luby
from repro.sat.formula import CNF, normalize_clause
from repro.sat.solver import SolveResult, SolverBudget, SolverStats, SolverStatus

#: Assignment-array states (indexed by literal): true / false / unassigned.
_TRUE, _FALSE, _UNDEF = 1, 0, -1
#: Reason sentinel: the variable is a decision/assumption (no reason clause).
_NO_REASON = -1


def _ilit(lit: int) -> int:
    """External DIMACS literal -> internal literal index (2v / 2v+1)."""
    return (lit << 1) if lit > 0 else ((-lit) << 1) | 1


def _elit(idx: int) -> int:
    """Internal literal index -> external DIMACS literal."""
    return -(idx >> 1) if idx & 1 else (idx >> 1)


class CDCLSolver:
    """Conflict-driven clause-learning solver over a flat clause arena."""

    def __init__(self, config: CDCLConfig | None = None):
        self.config = config or CDCLConfig()
        #: The formula currently held in the internal clause database, or
        #: ``None`` before the first ``load``/``solve``.  The batched Monte
        #: Carlo engine checks this to decide whether a re-load is needed.
        self.loaded_cnf: CNF | None = None
        #: Custom :class:`~repro.sat.simplify.Preprocessor` used when
        #: ``config.simplify`` is on; ``None`` means the registry default.
        self.preprocessor = None
        #: The :class:`~repro.sat.simplify.PreprocessResult` of the last
        #: :meth:`load` (``None`` when preprocessing is off).
        self._presolve = None
        #: Persistent event sink (:class:`repro.trace.format.TraceWriter` or
        #: anything with its event methods); ``None`` keeps tracing off.  A
        #: per-call sink can also be passed as ``solve(trace=...)``.
        self.trace = None
        self._trace = None
        self._solve_seq = 0
        #: The :class:`~repro.sat.cdcl.image.ArenaImage` behind the last
        #: :meth:`load_image` (``None`` after a plain ``load``); re-loads for
        #: the batched fresh-solve snapshot go through it when present.
        self._image = None
        #: Deep copy of the pristine post-load state (lazily captured by
        #: :meth:`solve_batch`); restoring it is ~25x cheaper than re-running
        #: ``_init`` and reproduces its output byte for byte.
        self._root_snapshot = None
        #: True while the internal state is exactly the post-load state (no
        #: solve has mutated it since); guards snapshot capture.
        self._pristine = False
        #: The frozen-variable set of the last :meth:`load` (the incremental
        #: contract's assumption candidates); :meth:`inprocess` re-freezes it.
        self._frozen: frozenset[int] = frozenset()

    # ------------------------------------------------------------------ public
    @property
    def presolve(self):
        """The preprocessing record of the loaded formula (``None`` when off)."""
        return self._presolve

    @property
    def eliminated_variables(self) -> frozenset[int]:
        """Variables removed by preprocessing (empty when ``simplify`` is off)."""
        return self._presolve.eliminated_variables if self._presolve is not None else frozenset()

    @property
    def unassumable_variables(self) -> frozenset[int]:
        """Variables illegal as assumptions after preprocessing.

        Eliminated variables plus non-frozen root-fixed ones — either way
        their clauses are gone from the internal database, so an assumption
        against them could come back SAT on a formula the original refutes.
        Empty when ``config.simplify`` is off, and empty when preprocessing
        refuted the formula outright (every solve then answers UNSAT, which is
        sound under any assumptions).  The batched Monte Carlo engine checks
        this set to decide whether a decomposition needs a re-load with an
        enlarged frozen set.
        """
        if self._presolve is None or self._presolve.unsat:
            return frozenset()
        return self._presolve.unassumable_variables

    def load(self, cnf: CNF, frozen=()) -> "CDCLSolver":
        """Build the internal clause database for ``cnf`` (incremental entry point).

        After ``load``, call :meth:`solve` without a CNF argument to solve the
        formula under varying assumptions while retaining learned clauses,
        activities and saved phases across calls.  Returns ``self`` so the
        idiom ``CDCLSolver().load(cnf)`` works.

        With ``config.simplify`` the formula is first run through the
        SatELite-style preprocessor; ``frozen`` names the variables that must
        survive simplification because later ``solve(assumptions=...)`` calls
        may constrain them (the incremental contract: pass the superset of all
        assumption candidates, e.g. the instance's start set).  SAT models are
        reconstructed over the original variables, so callers never see the
        simplified formula.  Frozen ids outside ``1..cnf.num_vars`` raise
        :class:`ValueError`; without ``config.simplify`` the argument is
        validated and otherwise ignored.
        """
        from repro.sat.simplify import Preprocessor, validate_frozen

        frozen_set = validate_frozen(frozen, cnf.num_vars)
        self._frozen = frozen_set
        if self.config.simplify:
            preprocessor = self.preprocessor if self.preprocessor is not None else Preprocessor()
            self._presolve = preprocessor.preprocess(cnf, frozen=frozen_set)
            self._init(self._presolve.cnf)
        else:
            self._presolve = None
            self._init(cnf)
        self.loaded_cnf = cnf
        self._image = None
        self._root_snapshot = None
        self._pristine = True
        return self

    def load_image(self, image) -> "CDCLSolver":
        """Rebuild the clause database from a frozen :class:`ArenaImage`.

        Bit-identical to :meth:`load` on the formula the image froze — the
        arena, cref table and root-unit trail are copied straight out of the
        buffer, skipping per-clause normalisation entirely (the zero-copy
        worker protocol: workers attach to one shared segment and rebuild
        from it instead of unpickling and re-loading a CNF per task).
        Requires ``config.simplify`` off, like :meth:`ArenaImage.freeze`.
        """
        if self.config.simplify:
            raise ValueError(
                "load_image requires config.simplify=False; preprocess the "
                "formula before freezing it into an ArenaImage"
            )
        n = image.num_vars
        self._presolve = None
        self._frozen = frozenset()
        self._num_vars = n
        self._values = [_UNDEF] * ((n + 1) << 1)
        self._level = [0] * (n + 1)
        self._reason = [_NO_REASON] * (n + 1)
        self._saved_phase = [self.config.default_phase] * (n + 1)
        self._activity = [0.0] * (n + 1)
        self._activity_rescales = 0
        self._bumped_vars = set()
        self._bump_snapshots = {}
        self._track_bumps = False
        self._var_inc = 1.0
        self._cla_inc = 1.0
        self._heap = ActivityHeap(self._activity)
        for v in range(1, n + 1):
            self._heap.push(v)
        self._watches = [[] for _ in range((n + 1) << 1)]
        self._tern_watches = [[] for _ in range((n + 1) << 1)]
        self._values[0] = _FALSE
        self._has_long = False
        self._arena = image.arena()
        self._clauses = image.crefs()
        self._learnts = []
        self._cla_activity = {}
        self._cla_lbd = {}
        self._wasted = 0
        self._trail = []
        self._trail_lim = []
        self._qhead = 0
        self._ok = image.ok
        self._seen = [False] * (n + 1)
        for cref in self._clauses:
            self._attach(cref)
        for lit in image.root_units():
            var = lit >> 1
            self._values[lit] = _TRUE
            self._values[lit ^ 1] = _FALSE
            self._level[var] = 0
            self._reason[var] = _NO_REASON
            self._trail.append(lit)
        self.loaded_cnf = image.to_cnf()
        self._image = image
        self._root_snapshot = None
        self._pristine = True
        return self

    def solve(
        self,
        cnf: CNF | None = None,
        assumptions: Sequence[int] = (),
        budget: SolverBudget | None = None,
        trace=None,
    ) -> SolveResult:
        """Solve under ``assumptions`` within an optional per-call ``budget``.

        With a ``cnf`` argument the solver re-initialises from scratch (the
        one-shot behaviour).  With ``cnf=None`` the formula from a previous
        :meth:`load` (or previous one-shot solve) is reused incrementally:
        learned clauses are retained, only ``result.stats`` restarts from zero.

        ``trace`` attaches an event sink (a
        :class:`repro.trace.format.TraceWriter`) for this call; when ``None``
        the persistent :attr:`trace` attribute is used, and when that is also
        ``None`` tracing is fully disabled — the search loops then perform a
        single guarded attribute check per propagation call and allocate
        nothing.

        Returns a :class:`~repro.sat.solver.SolveResult` whose status is SAT,
        UNSAT, or UNKNOWN (budget exhausted).  When SAT, ``result.model`` maps
        every variable ``1..num_vars`` to a Boolean; variables that do not
        occur in the formula default to the solver's default phase.
        """
        start = time.perf_counter()
        fresh = cnf is not None
        if fresh:
            if self.config.simplify:
                # One-shot solve with preprocessing: the assumption variables
                # are exactly the frozen set (validated against the incoming
                # formula first so a bad literal gets the assumption error,
                # not the frozen-variable one).
                for literal in assumptions:
                    if literal == 0 or abs(literal) > cnf.num_vars:
                        raise ValueError(
                            f"assumption literal {literal} is outside the loaded "
                            f"formula's variables 1..{cnf.num_vars}"
                        )
                self.load(cnf, frozen=frozenset(abs(lit) for lit in assumptions))
            else:
                self.load(cnf)
        elif self.loaded_cnf is None:
            raise ValueError("no formula loaded: pass a CNF or call load() first")
        else:
            self._cancel_until(0)
        return self._run_solve(assumptions, budget, trace, fresh, start)

    def _run_solve(
        self,
        assumptions: Sequence[int],
        budget: SolverBudget | None,
        trace,
        fresh: bool,
        start: float,
    ) -> SolveResult:
        """The post-load body of :meth:`solve` (shared with the batch engine).

        ``fresh`` selects the one-shot reporting contract (dense activity map,
        no bump tracking); the batched fresh-solve fallback restores the
        pristine root snapshot and calls this with ``fresh=True``, which makes
        it bit-identical to ``solve(cnf, ...)`` without re-running ``_init``.
        """
        self._budget = budget or SolverBudget()
        self._stats = SolverStats()
        self._trace = trace if trace is not None else self.trace
        self._pristine = False
        # Snapshot bookkeeping is only consumed by the incremental activity
        # report; keep it off the fresh path's conflict-analysis hot loop.
        self._track_bumps = not fresh
        self._bumped_vars.clear()
        self._bump_snapshots.clear()
        rescales_before = self._activity_rescales
        var_inc_before = self._var_inc

        for literal in assumptions:
            if literal == 0 or abs(literal) > self._num_vars:
                raise ValueError(
                    f"assumption literal {literal} is outside the loaded "
                    f"formula's variables 1..{self._num_vars}"
                )
        if self._presolve is not None:
            gone = sorted({abs(lit) for lit in assumptions} & self.unassumable_variables)
            if gone:
                raise ValueError(
                    f"assumption variables {gone} were eliminated or fixed by "
                    f"preprocessing; pass them in load(..., frozen=...) to keep "
                    f"them assumable"
                )
        if self._trace is not None:
            self._trace.solve_begin(self._solve_seq, len(assumptions))
        self._solve_seq += 1
        status = self._solve_internal([_ilit(lit) for lit in assumptions])

        self._stats.wall_time = time.perf_counter() - start
        model = None
        if status is SolverStatus.SAT:
            values = self._values
            default = self.config.default_phase
            model = {
                v: (values[v << 1] == _TRUE if values[v << 1] != _UNDEF else default)
                for v in range(1, self._num_vars + 1)
            }
            if self._presolve is not None:
                # Replay the preprocessor's reconstruction stack so eliminated
                # and root-fixed variables carry values satisfying the
                # *original* formula, not the solver's default phase.
                model = self._presolve.reconstruct(model)
        # Like stats, conflict_activity is per call: report only the bumps of
        # this call, not the cumulative VSIDS state retained across calls.
        # Fresh solves report the raw dense activity map over every variable
        # (the historical contract); incremental calls report only the
        # variables actually bumped this call, reconstructed from per-variable
        # snapshots taken at first bump (no O(num_vars) work per sample).
        # Deltas are normalised by the call-start var_inc so a bump in one
        # call weighs the same as a bump in any other, and each snapshot is
        # brought into the current frame when the 1e100 activity rescale fired
        # after it — without those two corrections, accumulated activity would
        # be exponentially dominated by the most recent calls, or collapse to
        # zero in the call where the rescale happens.
        if fresh:
            activity = {v: self._activity[v] for v in range(1, self._num_vars + 1)}
        else:
            unit = var_inc_before * (
                1e-100 ** (self._activity_rescales - rescales_before)
            )
            if unit <= 0.0:
                # >= 4 rescales in one call (~18k conflicts): the unit
                # underflowed to exactly 0.  Use the smallest positive float
                # and rely on the cap below — such a call saturated the
                # activity order anyway.
                unit = 5e-324
            activity = {}
            for v in sorted(self._bumped_vars):
                snap_value, snap_rescales = self._bump_snapshots[v]
                snap_scale = 1e-100 ** (self._activity_rescales - snap_rescales)
                delta = max(0.0, self._activity[v] - snap_value * snap_scale) / unit
                # Keep reported activity finite: an inf would be folded into
                # downstream accumulated sums permanently.
                activity[v] = min(delta, 1e100)
        return SolveResult(
            status=status,
            model=model,
            stats=self._stats,
            conflict_activity=activity,
        )

    def solve_batch(
        self,
        assumption_rows: Sequence[Sequence[int]],
        cnf: CNF | None = None,
        budget: SolverBudget | None = None,
        trace=None,
    ) -> list[SolveResult]:
        """Solve many fresh assumption rows against one formula, word-parallel.

        Semantically identical to ``[solve(cnf, row, ...) for row in rows]``
        with a *fresh* solve per row (no learnt clauses or activity carry
        across rows), but shares the root-level work: the formula is loaded
        once, root propagation over the assumption columns runs word-wide
        (one Python big-int bit per sample, mirroring
        ``lfsr.pack_state_columns``/``run_batch``), and only rows that hit a
        conflict fall back to an exact scalar solve from a restored pristine
        snapshot.  Statuses, models, stats and conflict activity are
        bit-identical to the scalar path; see ``tests/test_differential_fuzz.py
        ::TestBatchedVsScalar``.
        """
        from repro.sat.cdcl.batch import solve_batch_rows

        if cnf is not None:
            self.load(cnf)
        elif self.loaded_cnf is None:
            raise ValueError("no formula loaded: pass a CNF or call load() first")
        return solve_batch_rows(self, assumption_rows, budget=budget, trace=trace)

    # ------------------------------------------------------------ clause sharing
    def import_clauses(self, clauses: Sequence[Sequence[int]]) -> int:
        """Add externally learned clauses to the database at a restart boundary.

        The clause-sharing entry point of the parallel portfolio
        (:mod:`repro.portfolio.sharing`): every clause **must be implied by
        the loaded formula** — the caller's contract, typically satisfied
        because the clauses are learned clauses exported by another solver
        working on the same formula (learned clauses are resolvents of
        database clauses only, so they are formula consequences independent
        of any assumptions in force when they were derived).

        The trail is first cancelled to decision level 0 (the restart
        boundary).  Each clause is normalised, clauses satisfied at the root
        are skipped, root-falsified literals are removed, units are enqueued
        at the root, and everything longer is attached as a *learnt* clause
        (LBD = clause length) so the reduction heuristic may age it out
        again.  Returns the number of clauses actually added (units
        included); skipped duplicates of root-satisfied clauses do not count.
        Literals outside the loaded formula's variables raise
        :class:`ValueError`.
        """
        if self.loaded_cnf is None:
            raise ValueError("no formula loaded: call load() before import_clauses()")
        self._cancel_until(0)
        values = self._values
        imported = 0
        for clause in clauses:
            norm = normalize_clause(clause)
            if norm is None:
                continue  # tautology
            lits: list[int] = []
            satisfied = False
            for lit in norm:
                if abs(lit) > self._num_vars:
                    raise ValueError(
                        f"imported literal {lit} is outside the loaded "
                        f"formula's variables 1..{self._num_vars}"
                    )
                idx = _ilit(lit)
                val = values[idx]
                if val == _TRUE:
                    satisfied = True
                    break
                if val == _UNDEF:
                    lits.append(idx)
            if satisfied or not self._ok:
                continue
            imported += 1
            if not lits:
                self._ok = False  # implied empty clause: the formula is UNSAT
            elif len(lits) == 1:
                if not self._enqueue(lits[0], _NO_REASON):
                    self._ok = False
            else:
                cref = self._alloc(lits)
                self._learnts.append(cref)
                self._cla_activity[cref] = 0.0
                self._cla_lbd[cref] = len(lits)
                self._attach(cref)
        if imported:
            self._pristine = False
        return imported

    def exportable_clauses(
        self,
        max_lbd: int | None = None,
        max_size: int | None = None,
        limit: int | None = None,
    ) -> list[tuple[tuple[int, ...], int]]:
        """Learned clauses worth sharing, as ``(clause, lbd)`` pairs.

        Returns root-level unit consequences (LBD 1) plus the current learnt
        clauses passing the ``max_lbd`` / ``max_size`` quality filters, in a
        canonical deterministic order — sorted by ``(lbd, size, literals)``
        — truncated to ``limit``.  Clauses are tuples of external signed
        literals in :func:`normalize_clause` order, so identical clauses
        exported by different members compare equal in the exchange.  Every
        returned clause is implied by the loaded formula (root units and
        learned clauses are formula consequences), which is exactly the
        soundness contract :meth:`import_clauses` requires.
        """
        if self.loaded_cnf is None:
            return []
        arena = self._arena
        out: list[tuple[tuple[int, ...], int]] = []
        root_end = self._trail_lim[0] if self._trail_lim else len(self._trail)
        for lit in self._trail[:root_end]:
            out.append(((_elit(lit),), 1))
        for cref in self._learnts:
            size = arena[cref]
            lbd = self._cla_lbd.get(cref, size)
            if max_lbd is not None and lbd > max_lbd:
                continue
            if max_size is not None and size > max_size:
                continue
            external = normalize_clause(
                _elit(arena[cref + 1 + off]) for off in range(size)
            )
            if external is None:
                continue
            out.append((external, lbd))
        out.sort(key=lambda pair: (pair[1], len(pair[0]), pair[0]))
        if limit is not None:
            out = out[:limit]
        return out

    def inprocess(self, preprocessor=None, frozen=()):
        """Re-simplify the live clause database (inprocessing).

        Runs the PR 5 :class:`~repro.sat.simplify.Preprocessor` rules against
        the *current* database — root-fixed literals, problem clauses and
        learned clauses alike — at a restart boundary, then rebuilds the
        internal structures from the simplified formula.  The frozen-variable
        contract of :meth:`load` carries over: variables frozen at load time
        (plus any extra ``frozen`` ids given here) are never eliminated, so
        incremental ``solve(assumptions=...)`` calls stay valid afterwards.
        Saved phases and VSIDS activities survive the rebuild (variable
        numbering is stable), learned clauses that survive simplification
        become permanent clauses of the rebuilt database, and the
        preprocessing stage is chained onto any earlier stages so SAT models
        keep reconstructing over the *original* formula
        (:class:`~repro.sat.simplify.ChainedPreprocessResult`).

        Returns the stage's :class:`~repro.sat.simplify.PreprocessResult`,
        or ``None`` when the database is already known UNSAT (nothing to
        simplify).  :attr:`unassumable_variables` reflects the union over all
        stages after the call.
        """
        from repro.sat.simplify import (
            Preprocessor,
            chain_preprocess_results,
            validate_frozen,
        )

        if self.loaded_cnf is None:
            raise ValueError("no formula loaded: call load() before inprocess()")
        if not self._ok:
            return None
        self._cancel_until(0)
        frozen_set = self._frozen | validate_frozen(frozen, self._num_vars)

        # The live database in external literal form: root consequences as
        # units, then problem clauses, then learnt clauses (age order — the
        # ordering only affects the simplifier's deterministic tie-breaks).
        arena = self._arena
        clauses: list[tuple[int, ...]] = [(_elit(lit),) for lit in self._trail]
        for group in (self._clauses, self._learnts):
            for cref in group:
                size = arena[cref]
                clauses.append(tuple(_elit(arena[cref + 1 + off]) for off in range(size)))
        db_cnf = CNF(clauses, self._num_vars)

        if preprocessor is None:
            preprocessor = Preprocessor()
        result = preprocessor.preprocess(db_cnf, frozen=frozen_set, trace=self.trace)
        self._presolve = chain_preprocess_results(self._presolve, result)
        if result.unsat:
            self._ok = False
            return result

        # Rebuild the engine from the simplified formula, preserving the
        # branching heuristics (stable variable numbering makes the arrays
        # carry over verbatim; the heap is re-pushed so its invariant holds
        # under the restored activities).
        saved_phase = self._saved_phase
        activity = self._activity
        var_inc, cla_inc = self._var_inc, self._cla_inc
        rescales = self._activity_rescales
        self._init(result.cnf)
        self._saved_phase = saved_phase
        self._activity = activity
        self._var_inc, self._cla_inc = var_inc, cla_inc
        self._activity_rescales = rescales
        heap = ActivityHeap(self._activity)
        for v in range(1, self._num_vars + 1):
            heap.push(v)
        self._heap = heap
        self._frozen = frozen_set
        self._image = None
        self._root_snapshot = None
        self._pristine = False
        return result

    # --------------------------------------------------------- root snapshotting
    _SNAPSHOT_FIELDS = (
        # Every mutable field _init creates, except _seen (all-False between
        # solves — _analyze restores it) and the per-call bookkeeping that
        # _run_solve resets anyway (_budget/_stats/_trace, bump tracking).
        "_num_vars",
        "_values",
        "_level",
        "_reason",
        "_saved_phase",
        "_activity",
        "_activity_rescales",
        "_var_inc",
        "_cla_inc",
        "_has_long",
        "_arena",
        "_clauses",
        "_learnts",
        "_cla_activity",
        "_cla_lbd",
        "_wasted",
        "_trail",
        "_trail_lim",
        "_qhead",
        "_ok",
    )

    def _capture_root_state(self) -> dict:
        """Deep-copy the pristine post-load state (~25x cheaper to restore
        than re-running ``_init``, and byte-identical by construction)."""
        snap = {}
        for field in self._SNAPSHOT_FIELDS:
            value = getattr(self, field)
            if isinstance(value, list):
                value = value[:]
            elif isinstance(value, dict):
                value = dict(value)
            snap[field] = value
        snap["_watches"] = [wl[:] for wl in self._watches]
        snap["_tern_watches"] = [wl[:] for wl in self._tern_watches]
        snap["_heap"] = self._heap._heap[:]
        snap["_heap_indices"] = dict(self._heap._indices)
        return snap

    def _restore_root_state(self, snap: dict) -> None:
        """Overwrite the internal state with fresh copies of ``snap``."""
        for field in self._SNAPSHOT_FIELDS:
            value = snap[field]
            if isinstance(value, list):
                value = value[:]
            elif isinstance(value, dict):
                value = dict(value)
            setattr(self, field, value)
        self._watches = [wl[:] for wl in snap["_watches"]]
        self._tern_watches = [wl[:] for wl in snap["_tern_watches"]]
        # The heap must index into the *restored* activity list, not the
        # snapshot's: rebuild it around self._activity and graft the frozen
        # order back on.
        heap = ActivityHeap(self._activity)
        heap._heap = snap["_heap"][:]
        heap._indices = dict(snap["_heap_indices"])
        self._heap = heap
        self._seen = [False] * (self._num_vars + 1)
        self._bumped_vars = set()
        self._bump_snapshots = {}
        self._track_bumps = False
        self._pristine = True

    def _ensure_root_snapshot(self) -> dict:
        """Capture (or return) the pristine post-load snapshot, re-loading the
        formula first if a previous solve already mutated the state."""
        if self._root_snapshot is None:
            if not self._pristine:
                if self._image is not None:
                    self.load_image(self._image)
                else:
                    self.load(self.loaded_cnf)
            self._root_snapshot = self._capture_root_state()
        return self._root_snapshot

    # -------------------------------------------------------------- initialise
    def _init(self, cnf: CNF) -> None:
        n = cnf.num_vars
        self._num_vars = n
        #: Assignment indexed by literal index: _TRUE / _FALSE / _UNDEF.
        self._values: list[int] = [_UNDEF] * ((n + 1) << 1)
        self._level: list[int] = [0] * (n + 1)
        #: Reason cref per variable; _NO_REASON for decisions and unassigned.
        self._reason: list[int] = [_NO_REASON] * (n + 1)
        self._saved_phase: list[bool] = [self.config.default_phase] * (n + 1)
        self._activity: list[float] = [0.0] * (n + 1)
        self._activity_rescales = 0
        self._bumped_vars: set[int] = set()
        #: var -> (activity value, rescale count) at this call's first bump.
        self._bump_snapshots: dict[int, tuple[float, int]] = {}
        self._track_bumps = False
        self._var_inc = 1.0
        self._cla_inc = 1.0
        self._heap = ActivityHeap(self._activity)
        for v in range(1, n + 1):
            self._heap.push(v)
        #: Array-indexed watcher lists: _watches[lit] is a flat
        #: [cref, blocker, cref, blocker, ...] int list over clauses of
        #: length >= 3 whose watched literals include ``lit``.
        self._watches: list[list[int]] = [[] for _ in range((n + 1) << 1)]
        #: Binary and ternary clauses are watched on *all* their literals as
        #: static ``(cref, other1, other2)`` tuples, indexed by the
        #: *triggering* literal (the negation of the clause literal, so the
        #: hot loop skips the per-literal XOR): a visit decides
        #: satisfied/unit/conflict from the sibling values alone, with no
        #: arena access and no watcher movement, ever.  A binary clause is
        #: stored as ``(cref, other, 0)`` — literal index 0 belongs to the
        #: unused variable 0 and is pinned false, which makes the ternary
        #: visit logic collapse to exactly the binary implication rules.
        #: The dominant Tseitin workloads (an XOR gate encodes as four
        #: ternary clauses) never touch the arena during propagation at all.
        #: Tuples (not flat triples) let the hot loop unpack via the C-level
        #: ``for`` protocol.
        self._tern_watches: list[list[tuple[int, int, int]]] = [
            [] for _ in range((n + 1) << 1)
        ]
        self._values[0] = _FALSE  # the binary-clause sentinel literal
        #: True once any clause of length >= 4 is attached; while False the
        #: propagation loop skips the arena-backed long-clause path.
        self._has_long = False
        #: The clause arena.  Index 0 holds a sentinel so 0 is never a cref.
        self._arena = [0]
        self._clauses: list[int] = []  # problem-clause crefs, age order
        self._learnts: list[int] = []  # learnt-clause crefs, age order
        #: Learnt metadata keyed by cref (learnt-ness test = dict membership).
        self._cla_activity: dict[int, float] = {}
        self._cla_lbd: dict[int, int] = {}
        self._wasted = 0  # arena ints freed by clause deletion, reclaimed by GC
        self._trail: list[int] = []  # literal indices in assignment order
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._ok = True
        self._seen: list[bool] = [False] * (n + 1)

        for clause in cnf.clauses:
            if not self._add_problem_clause(clause):
                self._ok = False
                return

    def _add_problem_clause(self, clause: Sequence[int]) -> bool:
        """Add an original (non-learnt) clause; returns False on immediate conflict."""
        norm = normalize_clause(clause)
        if norm is None:
            return True  # tautology
        # Remove literals already falsified at level 0 and drop clauses already
        # satisfied at level 0.
        values = self._values
        lits: list[int] = []
        for lit in norm:
            idx = _ilit(lit)
            val = values[idx]
            if val == _TRUE:
                return True
            if val == _UNDEF:
                lits.append(idx)
        if not lits:
            return False
        if len(lits) == 1:
            return self._enqueue(lits[0], _NO_REASON)
        cref = self._alloc(lits)
        self._clauses.append(cref)
        self._attach(cref)
        return True

    def _alloc(self, lits: list[int]) -> int:
        """Append a clause to the arena and return its cref."""
        arena = self._arena
        cref = len(arena)
        arena.append(len(lits))
        arena.extend(lits)
        return cref

    def _attach(self, cref: int) -> None:
        arena = self._arena
        size = arena[cref]
        l0 = arena[cref + 1]
        l1 = arena[cref + 2]
        if size == 3:
            l2 = arena[cref + 3]
            self._tern_watches[l0 ^ 1].append((cref, l1, l2))
            self._tern_watches[l1 ^ 1].append((cref, l0, l2))
            self._tern_watches[l2 ^ 1].append((cref, l0, l1))
            return
        if size == 2:
            self._tern_watches[l0 ^ 1].append((cref, l1, 0))
            self._tern_watches[l1 ^ 1].append((cref, l0, 0))
            return
        self._has_long = True
        wl = self._watches[l0]
        wl.append(cref)
        wl.append(l1)
        wl = self._watches[l1]
        wl.append(cref)
        wl.append(l0)

    def _detach(self, cref: int) -> None:
        arena = self._arena
        size = arena[cref]
        if size in (2, 3):
            for off in range(1, size + 1):
                wl = self._tern_watches[arena[cref + off] ^ 1]
                for i, entry in enumerate(wl):
                    if entry[0] == cref:
                        del wl[i]
                        break
            return
        for lit in (arena[cref + 1], arena[cref + 2]):
            wl = self._watches[lit]
            for i in range(0, len(wl), 2):
                if wl[i] == cref:
                    del wl[i : i + 2]
                    break

    # -------------------------------------------------------------- propagation
    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _enqueue(self, lit: int, reason: int) -> bool:
        """Assign internal literal ``lit`` true; False when it is already false."""
        values = self._values
        val = values[lit]
        if val != _UNDEF:
            return val == _TRUE
        var = lit >> 1
        values[lit] = _TRUE
        values[lit ^ 1] = _FALSE
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _propagate(self) -> int:
        """Unit propagation; returns a conflicting cref or ``-1``.

        This is the hottest loop of the whole system (every Monte Carlo sample
        of ξ runs through it), so it is written against local aliases of the
        flat stores with the enqueue inlined, and edits watcher lists in place
        (read cursor ``i``, write cursor ``j``) instead of rebuilding them.

        ``stats.propagations`` counts the literals **assigned** by this call
        (the trail growth), not the literals dequeued: assignment counts are a
        property of the propagation closure and therefore agree across engines
        whenever their trails agree, where dequeue counts depend on which
        watcher order first surfaces a conflict.  One ENQUEUE trace event is
        emitted per counted literal, so traces and stats agree by construction.
        """
        trail = self._trail
        values = self._values
        watches = self._watches
        tern_watches = self._tern_watches
        arena = self._arena
        levels = self._level
        reasons = self._reason
        dl = len(self._trail_lim)
        qhead = self._qhead
        t0 = len(trail)
        confl = -1
        # Drain the trail in segments: each pass snapshots the still-unseen
        # suffix and iterates it with the C-level list iterator; literals
        # enqueued during the pass land in the next segment (same FIFO order
        # as a per-literal queue head, without per-literal len()/indexing).
        has_long = self._has_long
        enqueue = trail.append
        while confl < 0 and qhead < len(trail):
            segment = trail[qhead:]
            qhead = len(trail)

            if not has_long:
                # Fast drain: every database clause is binary or ternary, so
                # each literal is fully processed from its static watcher
                # tuples — no arena, no watcher movement, no long-path test.
                # MIRROR: this visit logic must stay identical to the copy in
                # the mixed path below (a shared helper would cost a call per
                # literal); tests/test_arena_engine.py pins the two paths to
                # identical results by forcing _has_long on short databases.
                for p in segment:
                    for cref, o1, o2 in tern_watches[p]:
                        v1 = values[o1]
                        v2 = values[o2]
                        if v1 == -1:
                            if v2 != 0:  # satisfied or two non-false remain
                                continue
                            unit = o1  # o2 false -> o1 implied
                        elif v1 == 1:
                            continue
                        elif v2 == 1:
                            continue
                        elif v2 == -1:
                            unit = o2  # o1 false -> o2 implied
                        else:  # all literals false
                            confl = cref
                            break
                        var = unit >> 1
                        values[unit] = 1
                        values[unit ^ 1] = 0
                        levels[var] = dl
                        reasons[var] = cref
                        enqueue(unit)
                    if confl >= 0:
                        break
                continue

            for p in segment:
                # Binary/ternary clauses: decided from the sibling values
                # (lists are indexed by the triggering literal p itself;
                # binary entries carry the pinned-false sentinel literal 0).
                # MIRROR: identical to the fast-drain copy above — keep the
                # two in sync (pinned by tests/test_arena_engine.py).
                for cref, o1, o2 in tern_watches[p]:
                    v1 = values[o1]
                    v2 = values[o2]
                    if v1 == -1:
                        if v2 != 0:  # satisfied or two non-false remain
                            continue
                        unit = o1  # o2 false -> o1 implied
                    elif v1 == 1:
                        continue
                    elif v2 == 1:
                        continue
                    elif v2 == -1:
                        unit = o2  # o1 false -> o2 implied
                    else:  # all literals false
                        confl = cref
                        break
                    var = unit >> 1
                    values[unit] = 1
                    values[unit ^ 1] = 0
                    levels[var] = dl
                    reasons[var] = cref
                    enqueue(unit)
                if confl >= 0:
                    break

                # Long clauses (>= 4 literals): classic two-watched scheme
                # over the arena, with blocker literals and in-place watcher
                # compaction (read cursor i, write cursor j).
                false_lit = p ^ 1
                wl = watches[false_lit]
                if not wl:
                    continue
                i = j = 0
                end = len(wl)
                while i < end:
                    cref = wl[i]
                    blocker = wl[i + 1]
                    if values[blocker] == 1:  # blocker true: clause satisfied
                        if j < i:
                            wl[j] = cref
                            wl[j + 1] = blocker
                        i += 2
                        j += 2
                        continue
                    i += 2
                    base = cref + 1
                    # Move the falsified literal into the second watch slot.
                    first = arena[base]
                    if first == false_lit:
                        first = arena[base + 1]
                        arena[base] = first
                        arena[base + 1] = false_lit
                    if values[first] == 1:  # other watch true: keep
                        wl[j] = cref
                        wl[j + 1] = first
                        j += 2
                        continue
                    # Look for a replacement watch among the tail literals.
                    k = base + 2
                    stop = base + arena[cref]
                    while k < stop:
                        lk = arena[k]
                        if values[lk] != 0:  # true or unassigned: new watch
                            arena[base + 1] = lk
                            arena[k] = false_lit
                            other = watches[lk]
                            other.append(cref)
                            other.append(first)
                            break
                        k += 1
                    else:
                        # Clause is unit or conflicting under this assignment.
                        wl[j] = cref
                        wl[j + 1] = first
                        j += 2
                        if values[first] == 0:
                            confl = cref
                            # Preserve the remaining watchers untouched.
                            while i < end:
                                wl[j] = wl[i]
                                wl[j + 1] = wl[i + 1]
                                i += 2
                                j += 2
                            break
                        # Inlined enqueue of the implied literal.
                        var = first >> 1
                        values[first] = 1
                        values[first ^ 1] = 0
                        levels[var] = dl
                        reasons[var] = cref
                        enqueue(first)
                del wl[j:]
                if confl >= 0:
                    break
        if confl >= 0:
            qhead = len(trail)
        self._qhead = qhead
        self._stats.propagations += len(trail) - t0
        trace = self._trace  # trace-hook
        if trace is not None and len(trail) > t0:  # trace-hook
            trace.enqueue_all(map(_elit, trail[t0:]))  # trace-hook
        return confl

    # ----------------------------------------------------------------- analyse
    def _analyze(self, confl: int) -> tuple[list[int], int, int]:
        """First-UIP conflict analysis.

        Returns ``(learnt clause as internal literals, backjump level, LBD)``;
        the asserting literal is at index 0 and a literal of the backjump
        level at index 1.
        """
        arena = self._arena
        trail = self._trail
        levels = self._level
        reasons = self._reason
        seen = self._seen
        learnt_meta = self._cla_activity
        learnt: list[int] = [0]  # placeholder for the asserting literal
        counter = 0
        p = -1  # -1 = none (first round uses the whole conflict clause)
        index = len(trail) - 1
        current_level = len(self._trail_lim)
        cref = confl
        to_clear: list[int] = []

        while True:
            if cref in learnt_meta:
                self._bump_clause(cref)
            base = cref + 1
            end = base + arena[cref]
            # On reason rounds skip the implied literal p itself (p = -1 on
            # the conflict round, which never matches a literal index).
            for qi in range(base, end):
                q = arena[qi]
                if q == p:
                    continue
                var = q >> 1
                if not seen[var] and levels[var] > 0:
                    seen[var] = True
                    to_clear.append(var)
                    self._bump_var(var)
                    if levels[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[trail[index] >> 1]:
                index -= 1
            p = trail[index]
            var_p = p >> 1
            cref = reasons[var_p]
            seen[var_p] = False
            index -= 1
            counter -= 1
            if counter == 0:
                break
        learnt[0] = p ^ 1

        if self.config.clause_minimization and len(learnt) > 1:
            learnt = self._minimize(learnt)

        # Compute the backjump level and put a literal of that level at index 1.
        if len(learnt) == 1:
            bt_level = 0
        else:
            max_i = 1
            for i in range(2, len(learnt)):
                if levels[learnt[i] >> 1] > levels[learnt[max_i] >> 1]:
                    max_i = i
            learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
            bt_level = levels[learnt[1] >> 1]

        # LBD = number of distinct decision levels among the learnt literals
        # (all currently assigned), the glue metric of the database reduction.
        lbd = len({levels[lit >> 1] for lit in learnt})

        for var in to_clear:
            seen[var] = False
        return learnt, bt_level, lbd

    def _minimize(self, learnt: list[int]) -> list[int]:
        """Cheap (non-recursive) clause minimisation.

        A literal other than the asserting one can be dropped when the reason of
        its variable is entirely subsumed by the remaining learnt literals.
        """
        arena = self._arena
        levels = self._level
        reasons = self._reason
        marked = {lit >> 1 for lit in learnt}
        result = [learnt[0]]
        for lit in learnt[1:]:
            var = lit >> 1
            reason = reasons[var]
            if reason < 0:
                result.append(lit)
                continue
            redundant = True
            for qi in range(reason + 1, reason + 1 + arena[reason]):
                q_var = arena[qi] >> 1
                if q_var == var:
                    continue
                if q_var not in marked and levels[q_var] > 0:
                    redundant = False
                    break
            if not redundant:
                result.append(lit)
        return result

    # --------------------------------------------------------------- activities
    def _bump_var(self, var: int) -> None:
        if self._track_bumps and var not in self._bumped_vars:
            self._bumped_vars.add(var)
            self._bump_snapshots[var] = (self._activity[var], self._activity_rescales)
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
            self._activity_rescales += 1
        self._heap.update(var)

    def _decay_var_activity(self) -> None:
        self._var_inc /= self.config.var_decay

    def _bump_clause(self, cref: int) -> None:
        act = self._cla_activity
        bumped = act[cref] + self._cla_inc
        act[cref] = bumped
        if bumped > 1e20:
            for learnt in self._learnts:
                act[learnt] *= 1e-20
            self._cla_inc *= 1e-20

    def _decay_clause_activity(self) -> None:
        self._cla_inc /= self.config.clause_decay

    # --------------------------------------------------------------- backtracking
    def _cancel_until(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        target = self._trail_lim[level]
        trail = self._trail
        values = self._values
        reasons = self._reason
        saved = self._saved_phase
        heap = self._heap
        queued = heap._indices  # inline membership test: push is a no-op then
        phase_saving = self.config.phase_saving
        for i in range(len(trail) - 1, target - 1, -1):
            lit = trail[i]
            var = lit >> 1
            if phase_saving:
                saved[var] = not (lit & 1)  # even index = positive = True
            values[lit] = _UNDEF
            values[lit ^ 1] = _UNDEF
            reasons[var] = _NO_REASON
            if var not in queued:
                heap.push(var)
        del trail[target:]
        del self._trail_lim[level:]
        self._qhead = target

    # ------------------------------------------------------------------- decide
    def _pick_branch_var(self) -> int | None:
        values = self._values
        heap = self._heap
        while not heap.is_empty():
            var = heap.pop()
            if values[var << 1] == _UNDEF:
                return var
        return None

    # --------------------------------------------------------------- reduce DB
    def _reduce_db(self) -> None:
        """Delete the worst half of the deletable learnt clauses.

        Deletion order is LBD-first (higher LBD = weaker clause), activity
        second, age (cref) as the deterministic tie-break.  Glue clauses
        (LBD <= ``config.glue_lbd``), binary clauses and clauses currently
        locked as reasons on the trail are never deleted.  Once deletions have
        turned half the arena into garbage, the arena is compacted in place.
        """
        arena = self._arena
        lbd = self._cla_lbd
        act = self._cla_activity
        locked = set()
        for lit in self._trail:
            reason = self._reason[lit >> 1]
            if reason >= 0 and reason in act:
                locked.add(reason)
        # Worst first: high LBD, then low activity, then young (large cref).
        order = sorted(self._learnts, key=lambda c: (-lbd[c], act[c], -c))
        target = len(self._learnts) // 2
        glue_limit = self.config.glue_lbd
        removed: set[int] = set()
        for cref in order:
            if len(removed) >= target:
                break
            if lbd[cref] <= glue_limit or arena[cref] <= 2 or cref in locked:
                continue
            removed.add(cref)
        for cref in removed:
            self._detach(cref)
            self._wasted += arena[cref] + 1
            del act[cref]
            del lbd[cref]
        self._stats.deleted_clauses += len(removed)
        self._learnts = [c for c in self._learnts if c not in removed]
        if self._trace is not None:
            self._trace.reduce(len(removed), len(self._learnts))
        if self._wasted * 2 > len(arena):
            self._garbage_collect()

    def _garbage_collect(self) -> None:
        """Compact the arena: copy live clauses, remap crefs, rebuild watches."""
        old = self._arena
        new = [0]
        remap: dict[int, int] = {}
        for group in (self._clauses, self._learnts):
            for slot, cref in enumerate(group):
                size = old[cref]
                new_cref = len(new)
                new.append(size)
                new.extend(old[cref + 1 : cref + 1 + size])
                remap[cref] = new_cref
                group[slot] = new_cref
        self._arena = new
        self._wasted = 0
        self._cla_activity = {remap[c]: v for c, v in self._cla_activity.items()}
        self._cla_lbd = {remap[c]: v for c, v in self._cla_lbd.items()}
        reasons = self._reason
        for lit in self._trail:
            var = lit >> 1
            if reasons[var] >= 0:
                reasons[var] = remap[reasons[var]]
        for wl in self._watches:
            del wl[:]
        for wl in self._tern_watches:
            del wl[:]
        self._has_long = False  # recomputed by the re-attach pass below
        for group in (self._clauses, self._learnts):
            for cref in group:
                self._attach(cref)
        if self._trace is not None:
            self._trace.arena_gc(len(old), len(new))

    # --------------------------------------------------------------- main loop
    def _budget_exhausted(self, start_time: float) -> bool:
        budget = self._budget
        stats = self._stats
        if budget.max_conflicts is not None and stats.conflicts >= budget.max_conflicts:
            return True
        if budget.max_decisions is not None and stats.decisions >= budget.max_decisions:
            return True
        if budget.max_propagations is not None and stats.propagations >= budget.max_propagations:
            return True
        if budget.max_seconds is not None and (time.perf_counter() - start_time) >= budget.max_seconds:
            return True
        return False

    def _solve_internal(self, assumptions: list[int]) -> SolverStatus:
        """Run the restart loop; ``assumptions`` are internal literal indices."""
        if not self._ok:
            return SolverStatus.UNSAT
        if self._propagate() >= 0:
            self._ok = False  # conflict at level 0: globally UNSAT
            return SolverStatus.UNSAT
        if self._num_vars == 0:
            return SolverStatus.SAT

        start_time = time.perf_counter()
        max_learnts = max(
            100.0, self.config.learntsize_factor * max(1, len(self._clauses))
        )
        restart_count = 0

        while True:
            restart_count += 1
            if self.config.use_luby_restarts:
                conflict_budget = self.config.restart_base * luby(restart_count)
            else:
                conflict_budget = int(self.config.restart_base * (1.5 ** (restart_count - 1)))
            status = self._search(conflict_budget, assumptions, max_learnts, start_time)
            if status is not None:
                return status
            if self._budget_exhausted(start_time):
                return SolverStatus.UNKNOWN
            self._stats.restarts += 1
            if self._trace is not None:
                self._trace.restart(self._stats.conflicts)
            max_learnts *= self.config.learntsize_inc
            self._cancel_until(0)

    def _search(
        self,
        conflict_budget: int,
        assumptions: list[int],
        max_learnts: float,
        start_time: float,
    ) -> SolverStatus | None:
        """Run until the restart conflict budget is spent; None means "restart"."""
        values = self._values
        conflicts_here = 0
        while True:
            confl = self._propagate()
            if confl >= 0:
                self._stats.conflicts += 1
                conflicts_here += 1
                trace = self._trace
                if trace is not None:
                    trace.conflict(len(self._trail_lim))
                if not self._trail_lim:
                    self._ok = False  # conflict below all decisions: globally UNSAT
                    return SolverStatus.UNSAT
                learnt, bt_level, lbd = self._analyze(confl)
                if trace is not None:
                    trace.learn(lbd, len(learnt))
                    trace.backtrack(len(self._trail_lim), bt_level)
                self._cancel_until(bt_level)
                if len(learnt) == 1:
                    self._enqueue(learnt[0], _NO_REASON)
                else:
                    cref = self._alloc(learnt)
                    self._learnts.append(cref)
                    self._cla_activity[cref] = 0.0
                    self._cla_lbd[cref] = lbd
                    self._stats.learned_clauses += 1
                    self._attach(cref)
                    self._bump_clause(cref)
                    self._enqueue(learnt[0], cref)
                self._decay_var_activity()
                self._decay_clause_activity()
                if self._budget_exhausted(start_time):
                    return SolverStatus.UNKNOWN
                continue

            # No conflict.
            if conflicts_here >= conflict_budget:
                return None  # restart
            if len(self._learnts) - len(self._trail) >= max_learnts:
                self._reduce_db()

            # Assumptions first, then heap decisions.
            decision = -1
            while len(self._trail_lim) < len(assumptions):
                lit = assumptions[len(self._trail_lim)]
                val = values[lit]
                if val == _TRUE:
                    self._trail_lim.append(len(self._trail))
                    continue
                if val == _FALSE:
                    return SolverStatus.UNSAT
                decision = lit
                break
            if decision < 0:
                var = self._pick_branch_var()
                if var is None:
                    return SolverStatus.SAT
                phase = (
                    self._saved_phase[var]
                    if self.config.phase_saving
                    else self.config.default_phase
                )
                decision = (var << 1) | (0 if phase else 1)
            self._stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            self._stats.max_decision_level = max(
                self._stats.max_decision_level, len(self._trail_lim)
            )
            self._enqueue(decision, _NO_REASON)
            if self._trace is not None:
                self._trace.decide(_elit(decision))


# --------------------------------------------------------------- registry wiring
from repro.api.registry import register_solver  # noqa: E402  (import-time registration)


@register_solver("cdcl", description="conflict-driven clause learning (flat-array arena core)")
def _cdcl_factory(**options) -> CDCLSolver:
    """Build a CDCL solver; keyword options are :class:`CDCLConfig` fields."""
    return CDCLSolver(CDCLConfig(**options)) if options else CDCLSolver()


__all__ = ["CDCLConfig", "CDCLSolver"]
