"""Frozen, buffer-backed CNF/arena images — the zero-copy worker protocol.

A :class:`CDCLSolver` builds its internal clause database with
:meth:`~repro.sat.cdcl.solver.CDCLSolver._init`: clause normalisation, root
unit enqueueing, arena layout and watcher construction.  That work is a pure
function of the formula, yet the process-pool estimation path historically
repeated it in *every worker for every task* (the CNF rode along in the pool
initializer, and each fresh ``solve(cnf, ...)`` re-ran ``_init``).  An
:class:`ArenaImage` does the work once in the leader and ships the result as
one flat ``int64`` buffer:

* :meth:`ArenaImage.freeze` loads the formula into a throwaway solver and
  serialises the **post-``_init`` state** — the clause arena, the problem-cref
  table and the root-level unit trail — into a private buffer;
* :meth:`ArenaImage.share` copies that buffer into a
  :mod:`multiprocessing.shared_memory` segment, so any number of worker
  processes can map the same physical pages;
* :meth:`ArenaImage.attach` maps an existing segment **read-only** (writes
  through the exposed buffer raise ``TypeError``), giving workers a zero-copy
  view: task payloads shrink to ``(segment name, assumption bits, seed)``;
* :meth:`~repro.sat.cdcl.solver.CDCLSolver.load_image` rebuilds a solver from
  an image without re-normalising a single clause — bit-identical to
  ``load(cnf)`` on the original formula, at a fraction of the cost.

Buffer layout (``int64`` words)::

    ┌─────────┬─────────┬──────────┬────┬───────────┬──────────┬────────────┐
    │ MAGIC   │ VERSION │ num_vars │ ok │ arena_len │ n_crefs  │ n_units    │
    ├─────────┴─────────┴──────────┴────┴───────────┴──────────┴────────────┤
    │ arena words  …  │ problem crefs … │ root-unit trail (internal lits) … │
    └───────────────────────────────────────────────────────────────────────┘

Segment lifecycle: the sharer *owns* the segment and must :meth:`unlink` it
(``close`` only drops this process's mapping).  POSIX semantics apply:
unlink-while-attached leaves existing attachments readable, new attaches fail.
:func:`list_segments` / :func:`sweep_segments` enumerate and reap orphaned
``repro-arena-*`` segments — the leak check run by tests and CI after the
concurrency suites.
"""

from __future__ import annotations

import os
import tempfile
import uuid
from array import array
from pathlib import Path

from repro.sat.formula import CNF

_MAGIC = 0x41524E41  # "ARNA"
_VERSION = 1
_HEADER_WORDS = 7

#: Prefix of every shared-memory segment created by :meth:`ArenaImage.share`;
#: the leak sweepers enumerate segments by it.
SEGMENT_PREFIX = "repro-arena-"

#: Where POSIX shared memory appears as files on Linux (the platforms CI runs
#: on).  Elsewhere the directory does not exist and :func:`list_segments`
#: falls back to the registry file below.
_SHM_DIR = "/dev/shm"


def _registry_path() -> Path:
    """The per-user sidecar file recording every segment :meth:`ArenaImage.share`
    created.

    On platforms where POSIX shared memory is not visible as files (macOS,
    BSDs — ``/dev/shm`` is Linux-specific), segments cannot be *enumerated*,
    only opened by name.  :meth:`ArenaImage.share` therefore appends each new
    segment name here, and :func:`list_segments` probes the recorded names
    via ``shared_memory.SharedMemory(name=...)`` when ``/dev/shm`` is
    unlistable, so the leak sweepers work everywhere instead of silently
    reporting an empty system.
    """
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return Path(tempfile.gettempdir()) / f"{SEGMENT_PREFIX}registry-{uid}"


def _registry_add(name: str) -> None:
    """Record ``name`` in the registry (O_APPEND: atomic for short lines)."""
    try:
        fd = os.open(
            _registry_path(), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o600
        )
    except OSError:
        return  # registry is best-effort; /dev/shm still covers Linux
    try:
        os.write(fd, (name + "\n").encode())
    finally:
        os.close(fd)


def _registry_discard(names: set[str]) -> None:
    """Drop ``names`` from the registry (best-effort rewrite; races are fine —
    stale survivors are pruned by the next probe in :func:`_registry_names`)."""
    path = _registry_path()
    try:
        recorded = path.read_text().split()
    except OSError:
        return
    kept = [name for name in recorded if name not in names]
    if len(kept) == len(recorded):
        return
    try:
        scratch = path.with_name(f"{path.name}.{os.getpid():x}.tmp")
        scratch.write_text("".join(f"{name}\n" for name in kept))
        scratch.replace(path)
    except OSError:
        pass


def _segment_alive(name: str) -> bool:
    """Probe whether a shared-memory segment with ``name`` currently exists."""
    from multiprocessing import shared_memory

    try:
        with _suppress_tracking():
            segment = shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, OSError, ValueError):
        return False
    segment.close()
    return True


def _registry_names(prefix: str) -> list[str]:
    """Live registered segments starting with ``prefix`` (prunes dead entries)."""
    try:
        recorded = _registry_path().read_text().split()
    except OSError:
        return []
    seen: set[str] = set()
    alive: list[str] = []
    dead: set[str] = set()
    for name in recorded:
        if name in seen:
            continue
        seen.add(name)
        if _segment_alive(name):
            if name.startswith(prefix):
                alive.append(name)
        else:
            dead.add(name)
    if dead:
        _registry_discard(dead)
    return alive


def _new_segment_name() -> str:
    return f"{SEGMENT_PREFIX}{os.getpid():x}-{uuid.uuid4().hex[:12]}"


class _suppress_tracking:
    """Keep the resource tracker out of an *attachment* (Python < 3.13).

    ``SharedMemory(name=...)`` registers even a plain attachment with the
    ``multiprocessing`` resource tracker, whose cleanup then unlinks the
    segment out from under the leader when any attached worker exits.  Worse,
    workers share the leader's tracker process (fork inheritance), so
    *unregistering* after the fact would erase the leader's own registration
    and make its rightful ``unlink`` scream.  The only clean fix on 3.11/3.12
    is to swallow the registration as it happens; 3.13+ exposes
    ``track=False`` for exactly this.
    """

    def __enter__(self):
        from multiprocessing import resource_tracker

        self._module = resource_tracker
        self._original = resource_tracker.register

        def register(name, rtype):
            if rtype != "shared_memory":
                self._original(name, rtype)

        resource_tracker.register = register
        return self

    def __exit__(self, *exc):
        self._module.register = self._original


def list_segments(prefix: str = SEGMENT_PREFIX) -> list[str]:
    """Names of live shared-memory segments starting with ``prefix`` (sorted).

    On Linux this lists ``/dev/shm`` directly (authoritative: it also sees
    segments created by processes that never touched the registry).  Where
    ``/dev/shm`` is unlistable — POSIX shared memory has no portable
    enumeration API — it falls back to probing the names recorded in the
    per-user registry file, so leak sweeping is not a silent no-op off Linux.
    """
    try:
        names = os.listdir(_SHM_DIR)
    except OSError:
        return sorted(_registry_names(prefix))
    return sorted(name for name in names if name.startswith(prefix))


def sweep_segments(prefix: str = SEGMENT_PREFIX) -> list[str]:
    """Unlink every live segment starting with ``prefix``; returns the names.

    The safety net of the shared-image protocol: a leader that dies between
    :meth:`ArenaImage.share` and :meth:`ArenaImage.unlink` leaks a segment
    (POSIX shared memory outlives its creator), and this reaps it.  Test
    fixtures call it in finalizers; CI fails the build when it finds anything
    to reap after the concurrency suites.
    """
    from multiprocessing import shared_memory

    reaped = []
    for name in list_segments(prefix):
        try:
            segment = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:  # raced with the rightful owner's unlink
            continue
        segment.close()
        segment.unlink()
        reaped.append(name)
    if reaped:
        _registry_discard(set(reaped))
    return reaped


class ArenaImage:
    """A frozen post-``_init`` solver state behind a flat read-only buffer."""

    def __init__(self, words, shm=None, owns_segment: bool = False):
        self._words = words
        self._shm = shm
        self._owns_segment = owns_segment
        self._closed = False
        self._validate()

    # ------------------------------------------------------------------ freeze
    @classmethod
    def freeze(cls, cnf: CNF, config=None) -> "ArenaImage":
        """Build the formula's clause database once and freeze it.

        ``config`` must not enable ``simplify``: a preprocessing solver's
        database depends on the per-call frozen set, which has no meaning in a
        shared one-formula image (pre-simplify the CNF instead and freeze the
        result).
        """
        from repro.sat.cdcl.config import CDCLConfig
        from repro.sat.cdcl.solver import CDCLSolver

        config = config or CDCLConfig()
        if config.simplify:
            raise ValueError(
                "ArenaImage.freeze requires config.simplify=False; "
                "preprocess the CNF first and freeze the simplified formula"
            )
        solver = CDCLSolver(config).load(cnf)
        arena = solver._arena
        crefs = solver._clauses
        trail = solver._trail
        words = array(
            "q",
            [
                _MAGIC,
                _VERSION,
                solver._num_vars,
                1 if solver._ok else 0,
                len(arena),
                len(crefs),
                len(trail),
            ],
        )
        words.extend(arena)
        words.extend(crefs)
        words.extend(trail)
        return cls(words)

    # ------------------------------------------------------------------- share
    def share(self, name: str | None = None) -> "ArenaImage":
        """Copy this image into a shared-memory segment; returns the owner image.

        The returned image *owns* the segment: call :meth:`unlink` on it when
        every worker is done (``close`` alone leaks the segment).  ``name``
        defaults to a fresh ``repro-arena-*`` name.
        """
        from multiprocessing import shared_memory

        self._require_open()
        payload = self._words.tobytes()
        segment = shared_memory.SharedMemory(
            name=name or _new_segment_name(), create=True, size=len(payload)
        )
        # Record the name so the sweepers can enumerate it on platforms
        # without a listable /dev/shm (see _registry_path).
        _registry_add(segment.name)
        segment.buf[: len(payload)] = payload
        words = memoryview(segment.buf).cast("q").toreadonly()
        return ArenaImage(words, shm=segment, owns_segment=True)

    # ------------------------------------------------------------------ attach
    @classmethod
    def attach(cls, name: str) -> "ArenaImage":
        """Map an existing segment read-only (raises ``FileNotFoundError`` if gone)."""
        from multiprocessing import shared_memory

        with _suppress_tracking():
            segment = shared_memory.SharedMemory(name=name)
        words = memoryview(segment.buf).cast("q").toreadonly()
        return cls(words, shm=segment, owns_segment=False)

    # --------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Drop this process's mapping (idempotent; the segment survives)."""
        if self._closed:
            return
        self._closed = True
        if self._shm is not None:
            # Release the cast view before the SharedMemory mapping, or the
            # mapping refuses to close while exports are alive.
            self._words.release()
            self._words = None
            self._shm.close()
        else:
            self._words = None

    def unlink(self) -> None:
        """Destroy the segment (owner's duty); implies :meth:`close`.

        Existing attachments keep reading their mapping (POSIX semantics);
        new :meth:`attach` calls fail with ``FileNotFoundError``.  Unlinking a
        segment someone else already unlinked is a no-op.
        """
        shm = self._shm
        self.close()
        if shm is not None:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
            _registry_discard({shm.name})

    def __enter__(self) -> "ArenaImage":
        return self

    def __exit__(self, *exc) -> None:
        if self._owns_segment:
            self.unlink()
        else:
            self.close()

    # --------------------------------------------------------------- accessors
    @property
    def name(self) -> str | None:
        """Segment name (``None`` for a private, unshared image)."""
        return None if self._shm is None else self._shm.name

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def buffer(self):
        """The raw ``int64`` words, read-only for attached/shared images."""
        self._require_open()
        return self._words

    @property
    def num_vars(self) -> int:
        self._require_open()
        return int(self._words[2])

    @property
    def ok(self) -> bool:
        """False when the formula was refuted while building the database."""
        self._require_open()
        return bool(self._words[3])

    def arena(self) -> list[int]:
        """A fresh mutable copy of the frozen clause arena."""
        self._require_open()
        base = _HEADER_WORDS
        return list(self._words[base : base + int(self._words[4])])

    def crefs(self) -> list[int]:
        """A fresh copy of the problem-clause cref table (age order)."""
        self._require_open()
        base = _HEADER_WORDS + int(self._words[4])
        return list(self._words[base : base + int(self._words[5])])

    def root_units(self) -> list[int]:
        """The root-level unit trail (internal literal indices, enqueue order)."""
        self._require_open()
        base = _HEADER_WORDS + int(self._words[4]) + int(self._words[5])
        return list(self._words[base : base + int(self._words[6])])

    def to_cnf(self) -> CNF:
        """Decode a CNF equivalent to the frozen database (for verification).

        Root units come first (they were enqueued before/while the arena was
        built), then the arena clauses in cref order.  The result is
        logically equivalent to the frozen formula but not literal-for-literal
        identical to the original (``_init`` already dropped tautologies and
        root-satisfied clauses).
        """
        self._require_open()
        from repro.sat.cdcl.solver import _elit

        clauses: list[tuple[int, ...]] = [(_elit(lit),) for lit in self.root_units()]
        arena = self.arena()
        for cref in self.crefs():
            size = arena[cref]
            clauses.append(tuple(_elit(lit) for lit in arena[cref + 1 : cref + 1 + size]))
        return CNF(clauses=clauses, num_vars=self.num_vars)

    # ---------------------------------------------------------------- internals
    def _require_open(self) -> None:
        if self._closed:
            raise ValueError("operation on a closed ArenaImage")

    def _validate(self) -> None:
        words = self._words
        if len(words) < _HEADER_WORDS:
            raise ValueError("buffer too small to be an ArenaImage")
        if int(words[0]) != _MAGIC:
            raise ValueError(f"bad ArenaImage magic: 0x{int(words[0]):x}")
        if int(words[1]) != _VERSION:
            raise ValueError(
                f"ArenaImage version {int(words[1])} unsupported "
                f"(this build reads version {_VERSION})"
            )
        needed = _HEADER_WORDS + int(words[4]) + int(words[5]) + int(words[6])
        if len(words) < needed:
            raise ValueError(
                f"truncated ArenaImage: {len(words)} words, header declares {needed}"
            )


__all__ = [
    "ArenaImage",
    "SEGMENT_PREFIX",
    "list_segments",
    "sweep_segments",
]
