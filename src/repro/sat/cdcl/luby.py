"""The Luby restart sequence.

The Luby sequence ``1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...`` is the standard
universal restart strategy used by MiniSat-family solvers.  ``luby(i)`` returns
the ``i``-th element (1-based); solvers multiply it by a base interval to get
the number of conflicts allowed before the next restart.
"""

from __future__ import annotations


def luby(i: int) -> int:
    """Return the ``i``-th element of the Luby sequence (``i`` >= 1).

    Uses the classical closed-form recurrence: if ``i = 2^k - 1`` the value is
    ``2^(k-1)``; otherwise recurse on ``i - 2^(k-1) + 1`` for the largest ``k``
    with ``2^(k-1) - 1 < i``.
    """
    if i < 1:
        raise ValueError("Luby sequence is defined for i >= 1")
    x = i - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) >> 1
        seq -= 1
        x %= size
    return 1 << seq


def luby_sequence(length: int) -> list[int]:
    """Return the first ``length`` elements of the Luby sequence."""
    return [luby(i) for i in range(1, length + 1)]
