"""Internal clause representation used by the CDCL solver.

A :class:`WatchedClause` is mutable: the watched-literal scheme reorders the
literal list so that the two watched literals always sit at positions 0 and 1.
Learned clauses additionally carry an activity score used by the clause-database
reduction heuristic (clauses that participate in recent conflict analyses are
kept, stale ones are removed).
"""

from __future__ import annotations


class WatchedClause:
    """A clause as stored inside :class:`~repro.sat.cdcl.solver.CDCLSolver`."""

    __slots__ = ("lits", "learnt", "activity", "lbd")

    def __init__(self, lits: list[int], learnt: bool = False, lbd: int = 0):
        self.lits = lits
        self.learnt = learnt
        self.activity = 0.0
        self.lbd = lbd

    def __len__(self) -> int:
        return len(self.lits)

    def __iter__(self):
        return iter(self.lits)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        kind = "learnt" if self.learnt else "problem"
        return f"WatchedClause({self.lits}, {kind})"
