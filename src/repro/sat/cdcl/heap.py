"""Indexed max-heap ordered by variable activity (the VSIDS order heap).

MiniSat keeps undecided variables in a binary heap keyed by their activity so
that the next branching variable can be extracted in ``O(log n)`` and activity
bumps can percolate the variable up in ``O(log n)``.  This module is a direct
Python port of that data structure: an array-based binary heap with an
``indices`` side table so membership tests and ``decrease``/``increase`` key
operations are constant / logarithmic time.
"""

from __future__ import annotations

from collections.abc import Iterable


class ActivityHeap:
    """Max-heap of variable indices keyed by an external activity array."""

    def __init__(self, activity: list[float]):
        # ``activity`` is shared with the solver and indexed by variable (1-based);
        # index 0 is unused padding.
        self._activity = activity
        self._heap: list[int] = []
        self._indices: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._heap)

    def __contains__(self, var: int) -> bool:
        return var in self._indices

    def is_empty(self) -> bool:
        """True when no variable is queued."""
        return not self._heap

    # ------------------------------------------------------------------ heap ops
    def _less(self, a: int, b: int) -> bool:
        # Max-heap on activity; ties broken by smaller variable index for determinism.
        act = self._activity
        if act[a] != act[b]:
            return act[a] > act[b]
        return a < b

    def _swap(self, i: int, j: int) -> None:
        heap = self._heap
        heap[i], heap[j] = heap[j], heap[i]
        self._indices[heap[i]] = i
        self._indices[heap[j]] = j

    def _sift_up(self, i: int) -> None:
        heap = self._heap
        while i > 0:
            parent = (i - 1) >> 1
            if self._less(heap[i], heap[parent]):
                self._swap(i, parent)
                i = parent
            else:
                break

    def _sift_down(self, i: int) -> None:
        heap = self._heap
        size = len(heap)
        while True:
            left = 2 * i + 1
            right = left + 1
            best = i
            if left < size and self._less(heap[left], heap[best]):
                best = left
            if right < size and self._less(heap[right], heap[best]):
                best = right
            if best == i:
                break
            self._swap(i, best)
            i = best

    # ------------------------------------------------------------------ public
    def push(self, var: int) -> None:
        """Insert a variable (no-op when already present)."""
        if var in self._indices:
            return
        self._heap.append(var)
        self._indices[var] = len(self._heap) - 1
        self._sift_up(len(self._heap) - 1)

    def pop(self) -> int:
        """Remove and return the variable with the highest activity."""
        if not self._heap:
            raise IndexError("pop from an empty ActivityHeap")
        top = self._heap[0]
        last = self._heap.pop()
        del self._indices[top]
        if self._heap:
            self._heap[0] = last
            self._indices[last] = 0
            self._sift_down(0)
        return top

    def update(self, var: int) -> None:
        """Restore the heap property after ``var``'s activity increased."""
        idx = self._indices.get(var)
        if idx is not None:
            self._sift_up(idx)

    def rebuild(self, variables: Iterable[int]) -> None:
        """Rebuild the heap from scratch over ``variables`` (used after rescaling)."""
        self._heap = list(variables)
        self._indices = {var: i for i, var in enumerate(self._heap)}
        for i in range(len(self._heap) // 2 - 1, -1, -1):
            self._sift_down(i)
