"""Word-parallel lockstep root propagation — the batched fresh-solve engine.

:meth:`CDCLSolver.solve_batch` must be *bit-identical* to solving each
assumption row with a fresh scalar ``solve(cnf, row)``, yet the Monte Carlo
estimation loop calls it with rows that differ only in a handful of
decomposition bits.  Three observations make the batch dramatically cheaper
than the scalar loop without changing a single reported bit:

1. **The root prefix is shared.**  ``load``/``_init`` plus root-level unit
   propagation are a pure function of the formula; the scalar loop repeated
   them per sample (~83 % of conflict-free sample time on the bivium family).
   Here they run once, and divergent samples re-start from a deep-copied
   pristine snapshot (:meth:`CDCLSolver._restore_root_state`, ~25x cheaper
   than ``_init`` and byte-identical by construction).
2. **Root propagation vectorises across samples.**  Mirroring the bit-sliced
   keystream engine (``lfsr.pack_state_columns``/``run_batch``), the batch
   keeps one Python big-int *mask* per literal — bit ``b`` of ``tmask[lit]``
   says "sample ``b`` has ``lit`` true".  A ternary clause visit then decides
   conflict/unit for **all samples at once** with a few bitwise ops::

       conflict = mask & f1 & f2                 # both siblings false
       unit1    = mask & f2 & ~f1 & ~t1          # o2 false, o1 unassigned

   Unit propagation is confluent, so the per-sample propagation *closure* and
   the per-sample "hit a conflict?" boolean are independent of visit order —
   which is what makes the lockstep counts equal the scalar counts.
3. **Only conflicting samples need search.**  A sample whose assumptions
   propagate to a complete conflict-free assignment is already answered (SAT,
   with stats fully determined by the closure); a sample refuted *at
   assumption placement* is answered UNSAT with zero conflicts.  Only samples
   that hit a conflict (or remain incomplete after placement) fall back to an
   exact scalar solve from the restored snapshot.

The scalar placement protocol is mirrored exactly: assumptions are placed one
decision at a time (already-true assumptions open an *empty* level and do not
count as decisions; a false-at-placement assumption answers UNSAT
immediately), and each decision round is followed by propagation to
quiescence.  ``tests/test_differential_fuzz.py::TestBatchedVsScalar`` pins
statuses, models, stats, activity maps and folded estimator statistics to the
scalar path across batch sizes, and ``TestTraceStatsParity`` pins the emitted
trace event counts.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from repro.sat.solver import SolveResult, SolverStats, SolverStatus


def _validate_rows(rows, num_vars: int) -> None:
    for row in rows:
        for literal in row:
            if literal == 0 or abs(literal) > num_vars:
                raise ValueError(
                    f"assumption literal {literal} is outside the loaded "
                    f"formula's variables 1..{num_vars}"
                )


def solve_batch_rows(solver, assumption_rows, budget=None, trace=None):
    """Backend of :meth:`CDCLSolver.solve_batch`; see the module docstring."""
    if solver.config.simplify:
        raise ValueError(
            "solve_batch requires config.simplify=False: a preprocessed "
            "database depends on the per-call frozen set, which has no "
            "single-formula meaning across a batch; preprocess the CNF "
            "first and batch on the simplified formula"
        )
    rows = [tuple(row) for row in assumption_rows]
    if not rows:
        return []
    _validate_rows(rows, solver.loaded_cnf.num_vars)

    snapshot = solver._ensure_root_snapshot()
    if not solver._pristine:
        solver._restore_root_state(snapshot)

    trace = trace if trace is not None else solver.trace
    use_lockstep = solver.config.batch_lockstep

    if use_lockstep:
        batch = _LockstepBatch(solver, rows)
        batch.run()
    else:
        batch = None

    results: list[SolveResult | None] = [None] * len(rows)
    for b, row in enumerate(rows):
        start = time.perf_counter()
        if batch is not None and batch.fast_path(b):
            results[b] = batch.emit_result(b, trace, start)
        else:
            solver._restore_root_state(snapshot)
            results[b] = solver._run_solve(row, budget, trace, True, start)
    solver._restore_root_state(snapshot)
    return results


class _LockstepBatch:
    """One word-parallel root-propagation run over a batch of assumption rows."""

    def __init__(self, solver, rows):
        self.solver = solver
        self.rows = rows
        n_samples = len(rows)
        self.full = (1 << n_samples) - 1
        # Divergent samples (conflict during propagation, or incomplete after
        # placement): answered by the scalar fallback.
        self.conflicted = 0
        self.divergent = 0
        # Samples refuted at assumption placement: answered UNSAT on the fast
        # path with zero conflicts (the scalar `_search` placement contract).
        self.failed = 0
        # Samples that placed every assumption without incident.
        self.placed = 0
        # Per-sample scalar mirrors of the `_search` placement loop.
        self.ptr = [0] * n_samples  # next assumption index to place
        self.levels = [0] * n_samples  # len(trail_lim): counts empty levels too
        self.decisions = [0] * n_samples
        self.maxdl = [0] * n_samples
        # Per-round records for stats/trace synthesis: decisions[r] maps
        # sample -> decided literal (internal), derived[r] is the FIFO list of
        # (lit, mask) assignment events of that round's propagation.
        self.round_decisions: list[dict[int, int]] = []
        self.round_derived: list[list[tuple[int, int]]] = []
        self.root_derived: list[int] = []
        self.root_conflict = False

    # --------------------------------------------------------------- main loop
    def run(self) -> None:
        solver = self.solver
        # Shared root propagation, run once through the *scalar* engine so the
        # derived-literal order matches a scalar fresh solve exactly (the
        # synthetic traces replay it verbatim).  State is mutated here; every
        # fallback and the batch epilogue restore the pristine snapshot.
        solver._stats = SolverStats()
        solver._trace = None
        if not solver._ok:
            self.root_conflict = False
            self.divergent = 0
            self.failed = 0
            self.placed = self.full  # fast path: every sample answers UNSAT
            self.not_ok = True
            return
        self.not_ok = False
        t0 = len(solver._trail)
        confl = solver._propagate()
        self.root_derived = list(solver._trail[t0:])
        if confl >= 0:
            self.root_conflict = True
            self.placed = self.full
            return
        if solver._num_vars == 0:
            self.placed = self.full
            self.complete = self.full
            return

        self._init_masks()
        while True:
            decided = self._placement_round()
            if not decided:
                break
            self._propagate_round(decided)
        self._finish()

    def _init_masks(self) -> None:
        solver = self.solver
        full = self.full
        size = (solver._num_vars + 1) << 1
        tmask = [0] * size
        fmask = [0] * size
        # The binary-clause sentinel literal 0 is pinned false in the scalar
        # engine (_values[0] = _FALSE, literal 1 stays unassigned): mirror it
        # so ternary tuples holding the sentinel collapse to binary rules.
        fmask[0] = full
        for lit in solver._trail:
            tmask[lit] = full
            fmask[lit ^ 1] = full
        self.tmask = tmask
        self.fmask = fmask
        # Long-clause (>= 4 literals) occurrence lists, keyed like the ternary
        # watch tuples by the *triggering* literal (the one just assigned
        # true): occ[p] holds the crefs containing the falsified literal p^1.
        occ: dict[int, list[int]] = {}
        arena = solver._arena
        for cref in solver._clauses:
            sz = arena[cref]
            if sz < 4:
                continue
            for k in range(cref + 1, cref + 1 + sz):
                occ.setdefault(arena[k] ^ 1, []).append(cref)
        self.occ = occ

    def _placement_round(self) -> dict[int, int]:
        """Advance every live sample to its next decision (scalar placement).

        Mirrors the assumption loop of ``_search``: already-true assumptions
        open an empty level (no decision, no DECIDE event, no
        max_decision_level update); a false assumption answers the sample
        UNSAT right there; the first unassigned assumption becomes this
        round's decision.  Returns the per-sample decisions, insertion-ordered
        by sample index (deterministic under any hash seed: int keys only).
        """
        tmask, fmask = self.tmask, self.fmask
        blocked = self.conflicted | self.failed | self.placed
        decided: dict[int, int] = {}
        for b, row in enumerate(self.rows):
            bit = 1 << b
            if blocked & bit:
                continue
            i = self.ptr[b]
            while i < len(row):
                lit = row[i]
                idx = (lit << 1) if lit > 0 else ((-lit) << 1) | 1
                if tmask[idx] & bit:  # already satisfied: empty level
                    self.levels[b] += 1
                    i += 1
                    continue
                if fmask[idx] & bit:  # refuted at placement: UNSAT, 0 conflicts
                    self.failed |= bit
                    break
                self.levels[b] += 1
                self.decisions[b] += 1
                self.maxdl[b] = self.levels[b]
                decided[b] = idx
                i += 1
                break
            else:
                self.placed |= bit
            self.ptr[b] = i
        self.round_decisions.append(decided)
        return decided

    def _propagate_round(self, decided: dict[int, int]) -> None:
        """Propagate this round's decisions to quiescence, word-parallel.

        A FIFO worklist of ``(lit, mask)`` assignment events with *immediate*
        mask updates reproduces the scalar engine's queue discipline; visit
        order does not affect the per-sample closure or the conflict booleans
        (unit propagation is confluent), which is why the fast-path counts
        are bit-identical to scalar.
        """
        tmask, fmask = self.tmask, self.fmask
        tern_watches = self.solver._tern_watches
        occ = self.occ
        arena = self.solver._arena
        derived: list[tuple[int, int]] = []
        self.round_derived.append(derived)

        worklist: list[tuple[int, int]] = []
        # Group the round's decisions by literal (samples assuming the same
        # bit propagate as one event); dict insertion order keeps this
        # deterministic and in sample order.
        grouped: dict[int, int] = {}
        for b, idx in decided.items():
            grouped[idx] = grouped.get(idx, 0) | (1 << b)
        for idx, mask in grouped.items():
            tmask[idx] |= mask
            fmask[idx ^ 1] |= mask
            worklist.append((idx, mask))

        head = 0
        while head < len(worklist):
            lit, mask = worklist[head]
            head += 1
            mask &= ~self.conflicted
            if not mask:
                continue
            for cref, o1, o2 in tern_watches[lit]:
                f1 = fmask[o1]
                f2 = fmask[o2]
                conf = mask & f1 & f2
                if conf:
                    self.conflicted |= conf
                    mask &= ~conf
                    if not mask:
                        break
                u1 = mask & f2 & ~f1 & ~tmask[o1]
                if u1:
                    tmask[o1] |= u1
                    fmask[o1 ^ 1] |= u1
                    derived.append((o1, u1))
                    worklist.append((o1, u1))
                u2 = mask & f1 & ~f2 & ~tmask[o2]
                if u2:
                    tmask[o2] |= u2
                    fmask[o2 ^ 1] |= u2
                    derived.append((o2, u2))
                    worklist.append((o2, u2))
            if not mask:
                continue
            for cref in occ.get(lit, ()):
                sz = arena[cref]
                lits = arena[cref + 1 : cref + 1 + sz]
                # Prefix/suffix AND-products of the false-masks give, for each
                # literal, the samples where *all other* literals are false —
                # the unit mask — in O(size) instead of O(size^2).
                pre = -1  # AND identity (arbitrary-precision all-ones)
                pres = []
                for li in lits:
                    pres.append(pre)
                    pre &= fmask[li]
                conf = mask & pre
                if conf:
                    self.conflicted |= conf
                    mask &= ~conf
                    if not mask:
                        break
                suf = -1
                for j in range(sz - 1, -1, -1):
                    li = lits[j]
                    others = pres[j] & suf
                    u = mask & others & ~fmask[li] & ~tmask[li]
                    if u:
                        tmask[li] |= u
                        fmask[li ^ 1] |= u
                        derived.append((li, u))
                        worklist.append((li, u))
                    suf &= fmask[li]

    def _finish(self) -> None:
        """Classify every sample: fast SAT, fast UNSAT, or divergent."""
        tmask = self.tmask
        complete = self.full
        for v in range(1, self.solver._num_vars + 1):
            complete &= tmask[v << 1] | tmask[(v << 1) | 1]
            if not complete:
                break
        self.complete = complete
        # Samples that hit a conflict need real search; samples that placed
        # every assumption but left variables unassigned would now take heap
        # decisions in the scalar engine — also real search.
        incomplete = self.placed & ~complete & ~self.conflicted
        self.divergent = self.conflicted | incomplete

    # ---------------------------------------------------------------- reporting
    def fast_path(self, b: int) -> bool:
        return not (self.divergent >> b) & 1

    def emit_result(self, b: int, trace, start: float) -> SolveResult:
        """Synthesize the scalar-identical result (and trace block) for sample ``b``.

        Trace events replay what a scalar fresh solve would emit: SOLVE, the
        shared root ENQUEUEs (in genuine scalar order — they were recorded
        from a real ``_propagate`` run), then per round one DECIDE plus the
        round's derived ENQUEUEs for this sample.  Event *counts* match the
        scalar run exactly (DECIDE = stats.decisions, ENQUEUE =
        stats.propagations); within-round ENQUEUE order is the deterministic
        lockstep assignment order.
        """
        solver = self.solver
        row = self.rows[b]
        bit = 1 << b
        if trace is not None:
            trace.solve_begin(solver._solve_seq, len(row))
        solver._solve_seq += 1

        stats = SolverStats()
        if getattr(self, "not_ok", False):
            stats.wall_time = time.perf_counter() - start
            return SolveResult(
                status=SolverStatus.UNSAT,
                model=None,
                stats=stats,
                conflict_activity={
                    v: 0.0 for v in range(1, solver._num_vars + 1)
                },
            )

        stats.propagations = len(self.root_derived)
        if trace is not None and self.root_derived:
            trace.enqueue_all(
                -(idx >> 1) if idx & 1 else (idx >> 1) for idx in self.root_derived
            )
        if self.root_conflict:
            status = SolverStatus.UNSAT
        elif solver._num_vars == 0:
            status = SolverStatus.SAT
        else:
            rounds = min(len(self.round_decisions), len(self.round_derived))
            for r in range(rounds):
                idx = self.round_decisions[r].get(b)
                if idx is None:
                    # This sample decided nothing in round r (already failed,
                    # placed, or skipped): it emitted and derived nothing.
                    continue
                if trace is not None:
                    trace.decide(-(idx >> 1) if idx & 1 else (idx >> 1))
                derived = [lit for lit, mask in self.round_derived[r] if mask & bit]
                stats.propagations += len(derived)
                if trace is not None and derived:
                    trace.enqueue_all(
                        -(i >> 1) if i & 1 else (i >> 1) for i in derived
                    )
            stats.decisions = self.decisions[b]
            stats.max_decision_level = self.maxdl[b]
            status = (
                SolverStatus.UNSAT if (self.failed >> b) & 1 else SolverStatus.SAT
            )

        model = None
        if status is SolverStatus.SAT:
            if solver._num_vars == 0:
                model = {}
            else:
                tmask = self.tmask
                model = {
                    v: bool(tmask[v << 1] & bit)
                    for v in range(1, solver._num_vars + 1)
                }
        stats.wall_time = time.perf_counter() - start
        return SolveResult(
            status=status,
            model=model,
            stats=stats,
            conflict_activity={v: 0.0 for v in range(1, solver._num_vars + 1)},
        )


__all__ = ["solve_batch_rows"]
