"""Tunable parameters shared by both CDCL engines (arena and legacy).

The defaults mirror MiniSat 2.2.  They are exposed mainly for the ablation
benchmarks and the diversified portfolio; the partitioning experiments use the
defaults throughout.  Both :class:`~repro.sat.cdcl.solver.CDCLSolver` (the
flat-array arena engine) and :class:`~repro.sat.cdcl.legacy.LegacyCDCLSolver`
(the frozen pre-arena reference) accept the same config object, so a portfolio
member or an experiment spec is engine-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CDCLConfig:
    """Tunable parameters of the CDCL solver."""

    var_decay: float = 0.95
    clause_decay: float = 0.999
    restart_base: int = 100
    use_luby_restarts: bool = True
    learntsize_factor: float = 1.0 / 3.0
    learntsize_inc: float = 1.1
    default_phase: bool = False
    phase_saving: bool = True
    clause_minimization: bool = True
    #: Learned clauses with an LBD (literal block distance — number of distinct
    #: decision levels among the clause's literals at learning time) at or
    #: below this value are "glue" clauses: the arena engine's database
    #: reduction never deletes them.  Ignored by the legacy engine, whose
    #: reduction is purely activity-ordered.
    glue_lbd: int = 2
    #: Run the SatELite-style preprocessor (:class:`repro.sat.simplify.Preprocessor`)
    #: inside :meth:`~repro.sat.cdcl.solver.CDCLSolver.load`: the internal
    #: clause database is built from the simplified formula, SAT models are
    #: reconstructed back over the original variables, and variables passed via
    #: ``load(..., frozen=...)`` are never eliminated (so they stay legal
    #: assumption candidates — the incremental contract).  Off by default: the
    #: simplified formula's solver counters define a *different* ξ random
    #: variable than the paper's, and on some instances eliminating
    #: propagation-relay variables slows the incremental engine down (see
    #: ``docs/preprocessing.md``).  Ignored by the frozen legacy engine.
    simplify: bool = False
    #: Use the word-parallel lockstep root-propagation engine inside
    #: :meth:`~repro.sat.cdcl.solver.CDCLSolver.solve_batch`: assumption
    #: columns of a whole batch propagate together, one big-int bit per
    #: sample, and only samples that hit a conflict fall back to an exact
    #: scalar solve from the restored root snapshot.  Results are bit-identical
    #: either way (the differential-fuzz lane proves it); turning this off
    #: routes every row through the scalar fallback, which is the reference
    #: semantics and a useful A/B lever when debugging the lockstep engine.
    batch_lockstep: bool = True
