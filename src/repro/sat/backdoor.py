"""Strong Unit-Propagation Backdoor Sets (SUPBS).

A set of variables ``B`` is a *Strong Unit-Propagation Backdoor Set* for a CNF
``C`` when, for every assignment of ``B``, unit propagation alone decides the
residual formula (either derives a conflict or satisfies every clause).  The
paper (Section 3) uses the circuit-input variables of the encoded function as a
SUPBS: substituting them makes every sub-problem trivially solvable by the CDCL
preprocessing, and that set is the natural *starting point* ``X̃_start`` of the
predictive-function minimisation as well as the reduced search space ``2^X̃_in``.

For the scaled ciphers in this library the input/state variables do form a
SUPBS (the encoding is a Tseitin translation of a circuit whose gates are
functionally determined by their inputs), and the verifier below checks that
property exhaustively for small sets or by sampling for larger ones.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Sequence
from dataclasses import dataclass

from repro.sat.formula import CNF
from repro.sat.preprocessing import unit_propagate


@dataclass
class BackdoorCheckResult:
    """Result of a (possibly sampled) SUPBS verification."""

    is_backdoor: bool
    checked_assignments: int
    counterexample: dict[int, bool] | None = None


def _decided_by_up(cnf: CNF, assignment: dict[int, bool]) -> bool:
    """True when unit propagation from ``assignment`` decides the formula."""
    result = unit_propagate(cnf, assignment)
    if result.conflict:
        return True
    assert result.simplified is not None
    return result.simplified.num_clauses == 0


def is_strong_up_backdoor(
    cnf: CNF,
    variables: Sequence[int],
    max_assignments: int | None = 4096,
    seed: int = 0,
) -> BackdoorCheckResult:
    """Check whether ``variables`` is a Strong UP Backdoor Set of ``cnf``.

    When ``2^|variables|`` exceeds ``max_assignments`` the check samples that
    many random assignments instead of enumerating all of them; a sampled check
    can only certify failure (via a counterexample), success is then "no
    counterexample found among the sampled assignments".

    Set ``max_assignments=None`` to force exhaustive checking.
    """
    variables = list(variables)
    d = len(variables)
    exhaustive = max_assignments is None or (d <= 30 and 2**d <= max_assignments)

    if exhaustive:
        assignments_iter = (
            dict(zip(variables, bits)) for bits in itertools.product([False, True], repeat=d)
        )
        total = 2**d
    else:
        rng = random.Random(seed)
        total = int(max_assignments)

        def _sampled():
            for _ in range(total):
                yield {v: rng.random() < 0.5 for v in variables}

        assignments_iter = _sampled()

    checked = 0
    for assignment in assignments_iter:
        checked += 1
        if not _decided_by_up(cnf, assignment):
            return BackdoorCheckResult(False, checked, counterexample=assignment)
    return BackdoorCheckResult(True, checked)


def greedy_backdoor_extension(
    cnf: CNF,
    seed_variables: Sequence[int],
    candidate_variables: Sequence[int] | None = None,
    max_size: int | None = None,
    samples_per_check: int = 64,
    seed: int = 0,
) -> list[int]:
    """Greedily grow ``seed_variables`` towards a (sampled) SUPBS.

    At each step the candidate variable whose addition maximises the fraction of
    sampled assignments decided by unit propagation is added, until either every
    sampled assignment is decided or ``max_size`` is reached.  This is a cheap
    constructive heuristic used when the natural circuit-input set is not known
    (e.g. for DIMACS instances supplied by the user).
    """
    rng = random.Random(seed)
    current = list(dict.fromkeys(seed_variables))
    candidates = [
        v for v in (candidate_variables or sorted(cnf.variables())) if v not in current
    ]
    limit = max_size if max_size is not None else cnf.num_vars

    def decided_fraction(variables: list[int]) -> float:
        if not variables:
            return 0.0
        hits = 0
        for _ in range(samples_per_check):
            assignment = {v: rng.random() < 0.5 for v in variables}
            if _decided_by_up(cnf, assignment):
                hits += 1
        return hits / samples_per_check

    while len(current) < limit:
        if decided_fraction(current) == 1.0:
            break
        best_var = None
        best_score = -1.0
        for var in candidates:
            score = decided_fraction(current + [var])
            if score > best_score:
                best_score = score
                best_var = var
        if best_var is None:
            break
        current.append(best_var)
        candidates.remove(best_var)
        if best_score == 1.0:
            break
    return current
