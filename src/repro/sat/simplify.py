"""SatELite-style CNF simplification: subsumption, self-subsumption, variable elimination.

MiniSat (the algorithm ``A`` of the paper's experiments) ships with the
SatELite preprocessor; PDSAT inherited it.  This module reproduces the core
preprocessing techniques so that weakened cipher-inversion CNFs can be shrunk
before search (their Tseitin encodings carry large amounts of removable
structure: functionally defined gate variables, subsumed clauses, literals
fixed by the known keystream):

* **unit propagation** — unit clauses fix their variable; satisfied clauses
  are removed and falsified literals stripped, to a fixed point;
* **pure-literal elimination** — a variable occurring with a single polarity
  is satisfied (recorded as an elimination: zero resolvents);
* **subsumption** — a clause ``C`` subsumes ``D`` when ``C ⊆ D``; ``D`` is
  redundant and removed;
* **self-subsuming resolution** — when ``C = A ∨ l`` and ``D = A ∨ B ∨ ¬l``,
  the resolvent ``A ∨ B`` subsumes ``D``, so ``¬l`` can be stripped from ``D``;
* **bounded variable elimination (BVE)** — a variable is eliminated by
  replacing the clauses containing it with their pairwise resolvents, whenever
  that does not increase the clause count beyond a configured growth bound;
* **failed-literal probing** — a literal whose unit-propagation closure is
  contradictory is false; its negation is fixed (optional, off by default);
* **blocked clause elimination (BCE)** — a clause is blocked on a literal
  ``l`` when every resolvent with clauses containing ``¬l`` is a tautology;
  blocked clauses can be removed without affecting satisfiability (optional,
  off by default).

The production entry point is :class:`Preprocessor` (registered as the
``"satelite"`` preprocessor): it takes a CNF plus a set of **frozen**
variables that must survive untouched — the incremental-solving contract, see
below — and returns a :class:`PreprocessResult` carrying the simplified CNF,
per-rule reduction statistics and a model-reconstruction stack whose
:meth:`PreprocessResult.reconstruct` turns any model of the simplified formula
back into a model of the original formula, the way MiniSat's ``extend()``
does.  :func:`simplify_cnf` is the pre-existing one-shot pipeline, kept for
the ablation benchmarks.

The frozen-variable contract
----------------------------

Every transformation above except BVE/pure-literal elimination and BCE
preserves logical *equivalence*, so it is sound under any later assumptions.
BVE only preserves equivalence over the **surviving** variables
(``∃v.F ≡ resolvents``), and BCE repairs models by flipping the blocking
literal — both are therefore unsound for variables a caller may still
constrain externally.  Freezing a variable guarantees it is never eliminated,
never chosen as a pure literal and never used as a blocking literal, which
makes ``solve(assumptions=...)`` over frozen variables against the simplified
formula equivalent to solving the original:

* the decomposition-set machinery freezes the instance's start set (the
  superset of every assumption candidate);
* unit-propagation consequences on frozen variables are kept as unit clauses
  in the simplified CNF (instead of being silently substituted away), so an
  assumption contradicting a root-level consequence still reports UNSAT.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field, fields, replace

from repro.sat.formula import CNF, Clause, normalize_clause


@dataclass
class SimplifyConfig:
    """Knobs of the simplification pipeline."""

    #: Enable subsumption / self-subsuming resolution.
    subsumption: bool = True
    #: Enable bounded variable elimination.
    variable_elimination: bool = True
    #: Enable blocked clause elimination.
    blocked_clause_elimination: bool = False
    #: A variable is eliminated only if the clause count grows by at most this much.
    max_growth: int = 0
    #: Never eliminate variables with more than this many occurrences (cost guard).
    max_occurrences: int = 20
    #: Variables that must never be eliminated (e.g. decomposition-set candidates).
    frozen: frozenset[int] = frozenset()

    def __post_init__(self) -> None:
        if self.max_occurrences < 1:
            raise ValueError("max_occurrences must be at least 1")


@dataclass
class SimplificationResult:
    """Outcome of :func:`simplify_cnf`.

    ``reconstruction`` is a stack of entries, in the order the simplifier
    removed things, that :meth:`extend_model` replays backwards to turn a model
    of the simplified formula into a model of the original formula:

    * ``("eliminated", variable, clauses)`` — the clauses that mentioned the
      variable when bounded variable elimination removed it;
    * ``("blocked", blocking_literal, (clause,))`` — a clause removed by
      blocked clause elimination together with its blocking literal.
    """

    cnf: CNF
    unsat: bool = False
    fixed: dict[int, bool] = field(default_factory=dict)
    reconstruction: list[tuple[str, int, tuple[Clause, ...]]] = field(default_factory=list)
    removed_subsumed: int = 0
    strengthened: int = 0
    removed_blocked: int = 0

    @property
    def eliminated(self) -> list[tuple[int, tuple[Clause, ...]]]:
        """Eliminated variables with their clause stacks, in elimination order."""
        return [
            (variable, clauses)
            for kind, variable, clauses in self.reconstruction
            if kind == "eliminated"
        ]

    @property
    def num_eliminated_variables(self) -> int:
        """Number of variables removed by bounded variable elimination."""
        return len(self.eliminated)

    def extend_model(self, model: dict[int, bool]) -> dict[int, bool]:
        """Extend a model of the simplified CNF to a model of the original CNF.

        Fixed variables are filled in directly; the reconstruction stack is
        replayed backwards — eliminated variables get a value satisfying every
        stored clause, and falsified blocked clauses are repaired by flipping
        their blocking literal (always sound because every resolvent on that
        literal is tautological).
        """
        extended = dict(model)
        extended.update(self.fixed)
        for kind, pivot, clauses in reversed(self.reconstruction):
            if kind == "eliminated":
                value_needed: bool | None = None
                for clause in clauses:
                    satisfied = False
                    for lit in clause:
                        if abs(lit) == pivot:
                            continue
                        if extended.get(abs(lit), False) == (lit > 0):
                            satisfied = True
                            break
                    if not satisfied:
                        polarity = next(lit > 0 for lit in clause if abs(lit) == pivot)
                        if value_needed is not None and value_needed != polarity:
                            raise ValueError(
                                f"cannot extend model: variable {pivot} is over-constrained"
                            )
                        value_needed = polarity
                extended[pivot] = value_needed if value_needed is not None else False
            else:  # blocked clause: pivot is the blocking literal
                (clause,) = clauses
                if not any(extended.get(abs(lit), False) == (lit > 0) for lit in clause):
                    extended[abs(pivot)] = pivot > 0
        return extended


def _resolve(first: Clause, second: Clause, variable: int) -> Clause | None:
    """The resolvent of two clauses on ``variable`` (``None`` when tautological)."""
    merged = [lit for lit in first if abs(lit) != variable]
    merged.extend(lit for lit in second if abs(lit) != variable)
    return normalize_clause(merged)


class _ClauseDatabase:
    """Mutable clause set with occurrence lists, used by the simplifier."""

    def __init__(self, cnf: CNF):
        self.clauses: dict[int, Clause] = {}
        self.occurrences: dict[int, set[int]] = defaultdict(set)
        self.unsat = False
        self._next_id = 0
        for clause in cnf.clauses:
            norm = normalize_clause(clause)
            if norm is None:
                continue
            if not norm:
                self.unsat = True
                return
            self.add(norm)

    def add(self, clause: Clause) -> int:
        """Insert a clause and index its literals; duplicates are kept harmless."""
        clause_id = self._next_id
        self._next_id += 1
        self.clauses[clause_id] = clause
        for lit in clause:
            self.occurrences[lit].add(clause_id)
        return clause_id

    def remove(self, clause_id: int) -> None:
        """Delete a clause and unindex it."""
        clause = self.clauses.pop(clause_id)
        for lit in clause:
            self.occurrences[lit].discard(clause_id)

    def replace(self, clause_id: int, new_clause: Clause) -> None:
        """Replace the clause in place (used by self-subsuming strengthening)."""
        self.remove(clause_id)
        if not new_clause:
            self.unsat = True
            return
        self.add(new_clause)

    def clauses_with(self, lit: int) -> list[int]:
        """Ids of clauses currently containing the literal."""
        return list(self.occurrences[lit])

    def occurrences_of_variable(self, variable: int) -> int:
        """Number of clauses mentioning the variable in either polarity."""
        return len(self.occurrences[variable]) + len(self.occurrences[-variable])

    def variables(self) -> set[int]:
        """Variables occurring in some clause."""
        return {abs(lit) for lit, ids in self.occurrences.items() if ids}

    def to_cnf(self, num_vars: int) -> CNF:
        """Materialise the database back into a CNF (stable clause order)."""
        ordered = [self.clauses[cid] for cid in sorted(self.clauses)]
        return CNF(ordered, num_vars)


def _propagate_units(db: _ClauseDatabase, fixed: dict[int, bool]) -> bool:
    """Apply every unit clause in ``db``; returns False on conflict."""
    changed = True
    while changed and not db.unsat:
        changed = False
        for clause_id, clause in list(db.clauses.items()):
            if clause_id not in db.clauses:
                continue
            if len(clause) != 1:
                continue
            lit = clause[0]
            variable, value = abs(lit), lit > 0
            if variable in fixed and fixed[variable] != value:
                return False
            fixed[variable] = value
            changed = True
            for sat_id in db.clauses_with(lit):
                db.remove(sat_id)
            for shrink_id in db.clauses_with(-lit):
                shorter = tuple(l for l in db.clauses[shrink_id] if l != -lit)
                if not shorter:
                    return False
                db.replace(shrink_id, shorter)
    return True


def _subsumption_round(db: _ClauseDatabase, result: SimplificationResult) -> bool:
    """One pass of subsumption + self-subsuming resolution; True when anything changed."""
    changed = False
    for clause_id in sorted(db.clauses, key=lambda cid: len(db.clauses.get(cid, ()))):
        clause = db.clauses.get(clause_id)
        if clause is None:
            continue
        # Candidate superset clauses share the clause's rarest literal.
        rarest = min(clause, key=lambda lit: len(db.occurrences[lit]))
        for other_id in db.clauses_with(rarest):
            if other_id == clause_id:
                continue
            other = db.clauses.get(other_id)
            if other is None or len(other) < len(clause):
                continue
            if set(clause) <= set(other):
                db.remove(other_id)
                result.removed_subsumed += 1
                changed = True
        # Self-subsuming resolution: clause = A ∨ l strengthens A ∨ B ∨ ¬l.
        for lit in clause:
            rest = set(clause) - {lit}
            for other_id in db.clauses_with(-lit):
                other = db.clauses.get(other_id)
                if other is None:
                    continue
                if rest <= (set(other) - {-lit}):
                    strengthened = tuple(l for l in other if l != -lit)
                    db.replace(other_id, strengthened)
                    result.strengthened += 1
                    changed = True
                    if db.unsat:
                        return True
    return changed


def _try_eliminate_variable(
    db: _ClauseDatabase, variable: int, config: SimplifyConfig, result: SimplificationResult
) -> bool:
    """Eliminate ``variable`` by resolution when the growth bound allows it."""
    positive_ids = db.clauses_with(variable)
    negative_ids = db.clauses_with(-variable)
    if not positive_ids and not negative_ids:
        return False
    if len(positive_ids) + len(negative_ids) > config.max_occurrences:
        return False

    resolvents: list[Clause] = []
    for pos_id in positive_ids:
        for neg_id in negative_ids:
            resolvent = _resolve(db.clauses[pos_id], db.clauses[neg_id], variable)
            if resolvent is None:
                continue
            if not resolvent:
                db.unsat = True
                return True
            resolvents.append(resolvent)
    if len(resolvents) > len(positive_ids) + len(negative_ids) + config.max_growth:
        return False

    original = tuple(db.clauses[cid] for cid in positive_ids + negative_ids)
    for clause_id in positive_ids + negative_ids:
        db.remove(clause_id)
    for resolvent in resolvents:
        db.add(resolvent)
    result.reconstruction.append(("eliminated", variable, original))
    return True


def _blocked_clause_round(db: _ClauseDatabase, config: SimplifyConfig, result: SimplificationResult) -> bool:
    """Remove clauses blocked on some literal; True when anything was removed."""
    changed = False
    for clause_id, clause in list(db.clauses.items()):
        if clause_id not in db.clauses:
            continue
        for lit in clause:
            if abs(lit) in config.frozen:
                continue
            blocked = True
            for other_id in db.clauses_with(-lit):
                if other_id == clause_id:
                    continue
                if _resolve(clause, db.clauses[other_id], abs(lit)) is not None:
                    blocked = False
                    break
            if blocked:
                db.remove(clause_id)
                result.removed_blocked += 1
                result.reconstruction.append(("blocked", lit, (clause,)))
                changed = True
                break
    return changed


def simplify_cnf(cnf: CNF, config: SimplifyConfig | None = None) -> SimplificationResult:
    """Run the SatELite-style pipeline on ``cnf`` and return the simplified formula.

    The pipeline alternates unit propagation, subsumption/strengthening,
    bounded variable elimination and (optionally) blocked clause elimination
    until a fixed point.  Satisfiability is preserved; use
    :meth:`SimplificationResult.extend_model` to map models back.
    """
    config = config or SimplifyConfig()
    db = _ClauseDatabase(cnf)
    result = SimplificationResult(cnf=cnf)
    if db.unsat:
        result.unsat = True
        result.cnf = CNF([()], cnf.num_vars)
        return result

    fixed: dict[int, bool] = {}
    changed = True
    while changed and not db.unsat:
        changed = False
        if not _propagate_units(db, fixed):
            db.unsat = True
            break
        if config.subsumption and _subsumption_round(db, result):
            changed = True
        if db.unsat:
            break
        if config.variable_elimination:
            for variable in sorted(db.variables()):
                if variable in config.frozen or variable in fixed:
                    continue
                if db.occurrences_of_variable(variable) == 0:
                    continue
                if _try_eliminate_variable(db, variable, config, result):
                    changed = True
                if db.unsat:
                    break
        if db.unsat:
            break
        if config.blocked_clause_elimination and _blocked_clause_round(db, config, result):
            changed = True

    result.fixed = fixed
    if db.unsat:
        result.unsat = True
        result.cnf = CNF([()], cnf.num_vars)
        return result
    result.cnf = db.to_cnf(cnf.num_vars)
    return result


# ======================================================================
# The production preprocessor: frozen-variable aware, reconstruction-complete.
# ======================================================================


@dataclass(frozen=True)
class PreprocessConfig:
    """Knobs of the :class:`Preprocessor` pipeline.

    Every rule can be switched off independently; the defaults enable the
    equivalence-safe core (unit propagation, pure literals, subsumption,
    self-subsuming resolution, bounded variable elimination) and leave the
    expensive or rarely-profitable rules (failed-literal probing, blocked
    clause elimination) off.
    """

    #: Fixpoint unit propagation (root-level consequences become fixed values).
    unit_propagation: bool = True
    #: Eliminate variables occurring with a single polarity.
    pure_literals: bool = True
    #: Remove clauses that are supersets of another clause.
    subsumption: bool = True
    #: Strengthen clauses by self-subsuming resolution.
    self_subsumption: bool = True
    #: Bounded variable elimination (resolve-and-eliminate).
    variable_elimination: bool = True
    #: A variable is eliminated only if the clause count grows by at most this.
    max_growth: int = 0
    #: Never try to eliminate variables with more occurrences than this.
    max_occurrences: int = 20
    #: Reject an elimination that would create a resolvent longer than this
    #: (``0`` = unlimited).  Capping at 3 keeps the whole database on the
    #: arena engine's static binary/ternary fast path; the cost is fewer
    #: eliminations.
    max_resolvent_length: int = 0
    #: Failed-literal probing: propagate each literal; a conflict fixes its
    #: negation.  Quadratic-ish in formula size, hence off by default.
    failed_literal_probing: bool = False
    #: Blocked clause elimination (never uses a frozen blocking literal).
    blocked_clause_elimination: bool = False
    #: Safety valve on the outer fixpoint loop.
    max_rounds: int = 50

    def __post_init__(self) -> None:
        if self.max_occurrences < 1:
            raise ValueError("max_occurrences must be at least 1")
        if self.max_growth < 0:
            raise ValueError("max_growth must be non-negative")
        if self.max_resolvent_length < 0:
            raise ValueError("max_resolvent_length must be non-negative (0 = unlimited)")
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be at least 1")


@dataclass
class PreprocessStats:
    """Per-rule reduction counters of one :meth:`Preprocessor.preprocess` run."""

    vars_before: int = 0
    vars_after: int = 0
    clauses_before: int = 0
    clauses_after: int = 0
    literals_before: int = 0
    literals_after: int = 0
    fixed_literals: int = 0
    pure_literals: int = 0
    subsumed: int = 0
    strengthened: int = 0
    eliminated_variables: int = 0
    failed_literals: int = 0
    probed_literals: int = 0
    blocked_clauses: int = 0
    rounds: int = 0
    wall_time: float = 0.0

    def to_dict(self) -> dict:
        """JSON-serialisable counters (CLI and benchmark records)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def summary(self) -> str:
        """One-line reduction report used by the CLI."""
        return (
            f"vars {self.vars_before} -> {self.vars_after}, "
            f"clauses {self.clauses_before} -> {self.clauses_after}, "
            f"literals {self.literals_before} -> {self.literals_after} "
            f"(fixed {self.fixed_literals}, pure {self.pure_literals}, "
            f"subsumed {self.subsumed}, strengthened {self.strengthened}, "
            f"eliminated {self.eliminated_variables}, "
            f"failed literals {self.failed_literals}, "
            f"blocked {self.blocked_clauses}, rounds {self.rounds})"
        )


#: Reconstruction-stack entry kinds (chronological order of removal).
_FIXED, _ELIMINATED, _BLOCKED = "fixed", "eliminated", "blocked"


def validate_frozen(frozen, num_vars: int) -> frozenset[int]:
    """Normalise a frozen-variable collection against a formula's range.

    The single implementation of the frozen-id contract shared by
    :meth:`Preprocessor.preprocess` and the CDCL engines' ``load``: ids must
    be variables of the formula (``1..num_vars``); anything else raises a
    clean :class:`ValueError` — the caller almost certainly passed a stale
    decomposition set, and silently ignoring it would make later
    ``solve(assumptions=...)`` calls on that variable unsound.
    """
    frozen_set = frozenset(int(v) for v in frozen)
    out_of_range = sorted(v for v in frozen_set if v < 1 or v > num_vars)
    if out_of_range:
        raise ValueError(
            f"frozen variables {out_of_range} are outside the formula's "
            f"variables 1..{num_vars}"
        )
    return frozen_set


@dataclass
class PreprocessResult:
    """Outcome of :meth:`Preprocessor.preprocess`.

    ``cnf`` is the simplified formula over the **same variable numbering** as
    the original (no renumbering — decomposition-set bookkeeping and the
    incremental solver contract both rely on stable variable ids).
    ``reconstruction`` is a stack of entries in the order the simplifier
    removed things; :meth:`reconstruct` replays it backwards:

    * ``("fixed", variable, ((lit,),))`` — a root-level unit consequence;
    * ``("eliminated", variable, clauses)`` — the clauses that mentioned the
      variable when (bounded or pure-literal) elimination removed it;
    * ``("blocked", blocking_literal, (clause,))`` — a clause removed by
      blocked clause elimination together with its blocking literal.
    """

    original: CNF
    cnf: CNF
    frozen: frozenset[int] = frozenset()
    unsat: bool = False
    fixed: dict[int, bool] = field(default_factory=dict)
    reconstruction: list[tuple[str, int, tuple[Clause, ...]]] = field(default_factory=list)
    stats: PreprocessStats = field(default_factory=PreprocessStats)

    @property
    def eliminated_variables(self) -> frozenset[int]:
        """Variables removed by (pure-literal or bounded) variable elimination."""
        return frozenset(
            variable for kind, variable, _ in self.reconstruction if kind == _ELIMINATED
        )

    @property
    def unassumable_variables(self) -> frozenset[int]:
        """Variables that later assumptions must not name.

        Eliminated variables, plus *non-frozen* root-fixed ones: both had
        their clauses removed from the simplified formula, so an assumption
        contradicting them would be trivially "satisfiable" there while the
        original formula refutes it.  (Frozen fixed variables are safe — their
        forced value stays visible as a unit clause.)
        """
        return self.eliminated_variables | frozenset(
            variable for variable in self.fixed if variable not in self.frozen
        )

    def reconstruct(self, model: dict[int, bool]) -> dict[int, bool]:
        """Extend a model of the simplified CNF to a model of the original CNF.

        The reconstruction stack is replayed backwards: fixed variables take
        their forced value, eliminated variables get a polarity satisfying
        every clause they were resolved out of (always possible — a
        contradiction would have produced a falsified resolvent in the
        simplified formula), and falsified blocked clauses are repaired by
        flipping their blocking literal.  The input mapping is not mutated.
        """
        extended = dict(model)
        for kind, pivot, clauses in reversed(self.reconstruction):
            if kind == _FIXED:
                ((lit,),) = clauses
                extended[pivot] = lit > 0
            elif kind == _ELIMINATED:
                value_needed: bool | None = None
                for clause in clauses:
                    satisfied = False
                    polarity = False
                    for lit in clause:
                        if abs(lit) == pivot:
                            polarity = lit > 0
                            continue
                        if extended.get(abs(lit), False) == (lit > 0):
                            satisfied = True
                            break
                    if not satisfied:
                        if value_needed is not None and value_needed != polarity:
                            raise ValueError(
                                f"cannot reconstruct model: variable {pivot} is over-constrained"
                            )
                        value_needed = polarity
                extended[pivot] = (
                    value_needed if value_needed is not None else extended.get(pivot, False)
                )
            else:  # blocked clause: pivot is the blocking literal
                (clause,) = clauses
                if not any(extended.get(abs(lit), False) == (lit > 0) for lit in clause):
                    extended[abs(pivot)] = pivot > 0
        return extended

    def summary(self) -> str:
        """One-line report used by the CLI."""
        if self.unsat:
            return "formula refuted during preprocessing"
        return self.stats.summary()


@dataclass
class ChainedPreprocessResult:
    """Several :class:`PreprocessResult` stages applied in sequence.

    Inprocessing (re-running the simplifier against a solver's *live* clause
    database mid-run, see :meth:`repro.sat.cdcl.CDCLSolver.inprocess`) stacks
    a new preprocessing stage on top of whatever the original ``load``
    already applied.  This wrapper presents the stack through the exact
    interface solvers consume from a single result:

    * :meth:`reconstruct` replays the stages backwards — a model of the
      newest (most simplified) formula is extended stage by stage until it
      satisfies the original formula;
    * :attr:`unassumable_variables` / :attr:`eliminated_variables` are the
      unions over all stages (a variable eliminated by *any* stage is gone
      from the live database);
    * :attr:`unsat` is true when any stage refuted the formula.
    """

    results: list[PreprocessResult] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.results:
            raise ValueError("a chained preprocess result needs at least one stage")

    @property
    def original(self) -> CNF:
        """The formula the *first* stage started from."""
        return self.results[0].original

    @property
    def cnf(self) -> CNF:
        """The formula the *last* stage produced (the live database's source)."""
        return self.results[-1].cnf

    @property
    def frozen(self) -> frozenset[int]:
        """Union of the frozen sets of every stage."""
        out: frozenset[int] = frozenset()
        for result in self.results:
            out |= result.frozen
        return out

    @property
    def unsat(self) -> bool:
        return any(result.unsat for result in self.results)

    @property
    def eliminated_variables(self) -> frozenset[int]:
        out: frozenset[int] = frozenset()
        for result in self.results:
            out |= result.eliminated_variables
        return out

    @property
    def unassumable_variables(self) -> frozenset[int]:
        out: frozenset[int] = frozenset()
        for result in self.results:
            out |= result.unassumable_variables
        return out

    def reconstruct(self, model: dict[int, bool]) -> dict[int, bool]:
        """Extend a model of the newest formula to one of the original formula."""
        extended = model
        for result in reversed(self.results):
            extended = result.reconstruct(extended)
        return extended

    def summary(self) -> str:
        """One-line report naming the stage count."""
        if self.unsat:
            return "formula refuted during preprocessing"
        return f"{len(self.results)} preprocessing stages: " + self.results[-1].summary()


def chain_preprocess_results(previous, latest: PreprocessResult) -> ChainedPreprocessResult:
    """Stack ``latest`` on top of ``previous`` (``None``, single, or chained)."""
    if previous is None:
        return ChainedPreprocessResult([latest])
    if isinstance(previous, ChainedPreprocessResult):
        return ChainedPreprocessResult([*previous.results, latest])
    return ChainedPreprocessResult([previous, latest])


class _OccurrenceDatabase:
    """Mutable clause store with occurrence lists and a pending-unit queue.

    Internal engine of :class:`Preprocessor`.  Clause ids are allocation-order
    ints and every iteration that affects the output is over *sorted* ids, so
    the simplified formula is byte-identical across runs and hash seeds.
    """

    def __init__(self) -> None:
        self.clauses: dict[int, Clause] = {}
        self.occurrences: dict[int, set[int]] = defaultdict(set)
        self.pending_units: list[int] = []
        #: Clauses added or strengthened since the last subsumption round —
        #: only these can newly subsume something, so later rounds skip the
        #: untouched bulk of the database.
        self.touched: set[int] = set()
        self.unsat = False
        self._next_id = 0

    def add(self, clause: Clause) -> None:
        if not clause:
            self.unsat = True
            return
        clause_id = self._next_id
        self._next_id += 1
        self.clauses[clause_id] = clause
        self.touched.add(clause_id)
        for lit in clause:
            self.occurrences[lit].add(clause_id)
        if len(clause) == 1:
            self.pending_units.append(clause[0])

    def remove(self, clause_id: int) -> Clause:
        clause = self.clauses.pop(clause_id)
        for lit in clause:
            self.occurrences[lit].discard(clause_id)
        return clause

    def strengthen(self, clause_id: int, drop: int) -> None:
        """Remove literal ``drop`` from the clause (self-subsumption / UP)."""
        clause = self.clauses[clause_id]
        shorter = tuple(lit for lit in clause if lit != drop)
        self.clauses[clause_id] = shorter
        self.touched.add(clause_id)
        self.occurrences[drop].discard(clause_id)
        if not shorter:
            self.unsat = True
        elif len(shorter) == 1:
            self.pending_units.append(shorter[0])

    def ids_with(self, lit: int) -> list[int]:
        """Sorted ids of clauses currently containing the literal."""
        return sorted(self.occurrences[lit])

    def num_occurrences(self, variable: int) -> int:
        return len(self.occurrences[variable]) + len(self.occurrences[-variable])

    def variables(self) -> list[int]:
        """Sorted variables with at least one occurrence."""
        return sorted(
            {abs(lit) for lit, ids in self.occurrences.items() if ids}
        )

    def num_literals(self) -> int:
        return sum(len(clause) for clause in self.clauses.values())


class Preprocessor:
    """The SatELite-style preprocessing/inprocessing pipeline.

    Stateless between calls: :meth:`preprocess` takes a CNF (plus the frozen
    variables of the incremental contract) and returns a fresh
    :class:`PreprocessResult`.  Keyword overrides are a shorthand for
    constructing a :class:`PreprocessConfig`::

        Preprocessor()                               # defaults
        Preprocessor(max_growth=8, max_occurrences=30)
        Preprocessor(PreprocessConfig(failed_literal_probing=True))
    """

    def __init__(self, config: PreprocessConfig | None = None, **overrides):
        if config is not None and overrides:
            config = replace(config, **overrides)
        elif config is None:
            config = PreprocessConfig(**overrides)
        self.config = config

    # ------------------------------------------------------------------ public
    #: PreprocessStats counter attribute per trace rule slot, in the order of
    #: :data:`repro.trace.format.PRE_RULES` — index ``i`` of a ``PRE_RULE``
    #: event refers to ``_TRACE_RULE_COUNTERS[i]``.
    _TRACE_RULE_COUNTERS = (
        "fixed_literals",
        "pure_literals",
        "subsumed",
        "strengthened",
        "eliminated_variables",
        "probed_literals",
        "failed_literals",
        "blocked_clauses",
    )

    def preprocess(self, cnf: CNF, frozen=(), trace=None) -> PreprocessResult:
        """Simplify ``cnf``; variables in ``frozen`` are never eliminated.

        Raises :class:`ValueError` when a frozen id is not a variable of the
        formula (``1..cnf.num_vars``) — the caller almost certainly passed a
        stale decomposition set, and silently ignoring it would make later
        ``solve(assumptions=...)`` calls on that variable unsound.

        ``trace`` is an optional :class:`repro.trace.format.TraceWriter`: each
        round emits a ``PRE_ROUND`` event with the database size at round
        entry, followed by one ``PRE_RULE`` event per rule counter that moved
        during the round (the per-round delta, not the running total).
        """
        frozen_set = validate_frozen(frozen, cnf.num_vars)
        started = time.perf_counter()
        config = self.config
        result = PreprocessResult(original=cnf, cnf=cnf, frozen=frozen_set)
        stats = result.stats
        stats.vars_before = len(cnf.variables())
        stats.clauses_before = cnf.num_clauses
        stats.literals_before = sum(len(clause) for clause in cnf.clauses)

        db = _OccurrenceDatabase()
        seen: set[Clause] = set()
        for clause in cnf.clauses:
            norm = normalize_clause(clause)
            if norm is None or norm in seen:
                continue  # tautology or exact duplicate
            seen.add(norm)
            db.add(norm)

        changed = True
        snapshot = None
        while changed and not db.unsat and stats.rounds < config.max_rounds:
            stats.rounds += 1
            changed = False
            if trace is not None:
                if snapshot is not None:
                    self._emit_rule_deltas(trace, stats, snapshot)
                live = {abs(lit) for clause in db.clauses.values() for lit in clause}
                trace.pre_round(stats.rounds, len(live), len(db.clauses))
                snapshot = [getattr(stats, name) for name in self._TRACE_RULE_COUNTERS]
            if config.unit_propagation and self._propagate(db, result):
                changed = True
            if db.unsat:
                break
            if config.pure_literals and self._pure_literal_round(db, result):
                changed = True
            if (config.subsumption or config.self_subsumption) and self._subsumption_round(
                db, result, full=(stats.rounds == 1)
            ):
                changed = True
            if db.unsat:
                break
            if config.variable_elimination and self._elimination_round(db, result):
                changed = True
            if db.unsat:
                break
            if config.failed_literal_probing and self._probing_round(db, result):
                changed = True
            if db.unsat:
                break
            if config.blocked_clause_elimination and self._blocked_round(db, result):
                changed = True

        if trace is not None and snapshot is not None:
            self._emit_rule_deltas(trace, stats, snapshot)

        if db.unsat:
            result.unsat = True
            result.cnf = CNF([()], cnf.num_vars, list(cnf.comments))
        else:
            ordered = [db.clauses[cid] for cid in sorted(db.clauses)]
            # Root-level consequences on frozen variables stay visible as unit
            # clauses: an assumption contradicting one must come back UNSAT
            # from the solver instead of silently satisfying a reduced formula.
            for variable in sorted(result.fixed):
                if variable in frozen_set:
                    ordered.append((variable,) if result.fixed[variable] else (-variable,))
            result.cnf = CNF(ordered, cnf.num_vars, list(cnf.comments))
            stats.vars_after = len(result.cnf.variables())
            stats.clauses_after = result.cnf.num_clauses
            stats.literals_after = sum(len(clause) for clause in result.cnf.clauses)
        stats.wall_time = time.perf_counter() - started
        return result

    def __call__(self, cnf: CNF, frozen=(), trace=None) -> PreprocessResult:
        """Alias for :meth:`preprocess`."""
        return self.preprocess(cnf, frozen=frozen, trace=trace)

    @classmethod
    def _emit_rule_deltas(cls, trace, stats, snapshot) -> None:
        """Emit one ``PRE_RULE`` event per counter that moved since ``snapshot``."""
        for index, name in enumerate(cls._TRACE_RULE_COUNTERS):
            delta = getattr(stats, name) - snapshot[index]
            if delta:
                trace.pre_rule(index, delta)

    # ------------------------------------------------------------------- rules
    @staticmethod
    def _assign(db: _OccurrenceDatabase, result: PreprocessResult, lit: int) -> bool:
        """Fix ``lit`` true at the root; returns False on contradiction."""
        variable, value = abs(lit), lit > 0
        known = result.fixed.get(variable)
        if known is not None:
            return known == value
        result.fixed[variable] = value
        result.reconstruction.append((_FIXED, variable, ((lit,),)))
        result.stats.fixed_literals += 1
        for clause_id in db.ids_with(lit):
            db.remove(clause_id)  # satisfied
        for clause_id in db.ids_with(-lit):
            db.strengthen(clause_id, -lit)
            if db.unsat:
                return False
        return True

    def _propagate(self, db: _OccurrenceDatabase, result: PreprocessResult) -> bool:
        """Drain the pending-unit queue to a fixed point."""
        changed = False
        while db.pending_units:
            lit = db.pending_units.pop(0)
            changed = True
            if not self._assign(db, result, lit):
                db.unsat = True
                return True
        return changed

    def _pure_literal_round(self, db: _OccurrenceDatabase, result: PreprocessResult) -> bool:
        """Eliminate non-frozen single-polarity variables (zero resolvents)."""
        changed = False
        for variable in db.variables():
            if variable in result.frozen or variable in result.fixed:
                continue
            pos, neg = db.occurrences[variable], db.occurrences[-variable]
            if pos and neg:
                continue
            occurring = db.ids_with(variable if pos else -variable)
            if not occurring:
                continue
            removed = tuple(db.remove(clause_id) for clause_id in occurring)
            result.reconstruction.append((_ELIMINATED, variable, removed))
            result.stats.pure_literals += 1
            result.stats.eliminated_variables += 1
            changed = True
        return changed

    def _subsumption_round(
        self, db: _OccurrenceDatabase, result: PreprocessResult, full: bool = False
    ) -> bool:
        """One pass of subsumption and self-subsuming resolution.

        The first pass (``full=True``) considers every clause as a potential
        subsumer; later passes only consider clauses added or strengthened
        since the previous pass (only those can newly subsume anything).
        """
        config = self.config
        changed = False
        pool = db.clauses if full else (db.touched & db.clauses.keys())
        db.touched.clear()
        order = sorted(pool, key=lambda cid: (len(db.clauses[cid]), cid))
        for clause_id in order:
            clause = db.clauses.get(clause_id)
            if clause is None:
                continue
            if config.subsumption:
                # Candidate supersets all contain the clause's rarest literal.
                rarest = min(clause, key=lambda lit: (len(db.occurrences[lit]), lit))
                literals = set(clause)
                for other_id in db.ids_with(rarest):
                    if other_id == clause_id:
                        continue
                    other = db.clauses.get(other_id)
                    if other is None or len(other) < len(clause):
                        continue
                    if literals <= set(other):
                        db.remove(other_id)
                        result.stats.subsumed += 1
                        changed = True
            if config.self_subsumption:
                for lit in clause:
                    rest = set(clause) - {lit}
                    for other_id in db.ids_with(-lit):
                        other = db.clauses.get(other_id)
                        if other is None or len(other) < len(clause):
                            continue
                        if rest <= set(other) - {-lit}:
                            db.strengthen(other_id, -lit)
                            result.stats.strengthened += 1
                            changed = True
                            if db.unsat:
                                return True
        return changed

    def _elimination_round(self, db: _OccurrenceDatabase, result: PreprocessResult) -> bool:
        """Bounded variable elimination, cheapest (fewest occurrences) first."""
        config = self.config
        changed = False
        candidates = [
            variable
            for variable in db.variables()
            if variable not in result.frozen and variable not in result.fixed
        ]
        candidates.sort(key=lambda variable: (db.num_occurrences(variable), variable))
        for variable in candidates:
            positive = db.ids_with(variable)
            negative = db.ids_with(-variable)
            if not positive or not negative:
                continue  # pure or gone; the pure-literal pass owns this case
            if len(positive) + len(negative) > config.max_occurrences:
                continue
            limit = len(positive) + len(negative) + config.max_growth
            max_length = config.max_resolvent_length
            resolvents: list[Clause] = []
            empty = rejected = False
            for pos_id in positive:
                for neg_id in negative:
                    resolvent = _resolve(db.clauses[pos_id], db.clauses[neg_id], variable)
                    if resolvent is None:
                        continue  # tautology
                    if not resolvent:
                        empty = True
                        break
                    if max_length and len(resolvent) > max_length:
                        rejected = True
                        break
                    resolvents.append(resolvent)
                    if len(resolvents) > limit:
                        # Growth bound already exceeded: stop resolving early
                        # (heavily-occurring variables would otherwise pay the
                        # full quadratic resolvent bill just to be rejected).
                        rejected = True
                        break
                if empty or rejected:
                    break
            if empty:
                db.unsat = True
                return True
            if rejected:
                continue
            removed = tuple(db.remove(clause_id) for clause_id in positive + negative)
            for resolvent in resolvents:
                db.add(resolvent)
            result.reconstruction.append((_ELIMINATED, variable, removed))
            result.stats.eliminated_variables += 1
            changed = True
            if db.unsat:
                return True
        return changed

    def _probing_round(self, db: _OccurrenceDatabase, result: PreprocessResult) -> bool:
        """Failed-literal probing over both polarities of every live variable."""
        changed = False
        for variable in db.variables():
            if variable in result.fixed:
                continue
            result.stats.probed_literals += 2
            positive_ok = self._up_consistent(db, variable)
            negative_ok = self._up_consistent(db, -variable)
            if not positive_ok and not negative_ok:
                db.unsat = True
                return True
            if positive_ok == negative_ok:
                continue
            forced = variable if positive_ok else -variable
            result.stats.failed_literals += 1
            changed = True
            if not self._assign(db, result, forced):
                db.unsat = True
                return True
            if self._propagate(db, result) and db.unsat:
                return True
        return changed

    @staticmethod
    def _up_consistent(db: _OccurrenceDatabase, lit: int) -> bool:
        """Does assuming ``lit`` survive unit propagation without conflict?"""
        values: dict[int, bool] = {}
        queue = [lit]
        while queue:
            current = queue.pop()
            variable, value = abs(current), current > 0
            known = values.get(variable)
            if known is not None:
                if known != value:
                    return False
                continue
            values[variable] = value
            for clause_id in db.occurrences[-current]:
                clause = db.clauses[clause_id]
                unassigned = None
                open_count = 0
                satisfied = False
                for other in clause:
                    other_value = values.get(abs(other))
                    if other_value is None:
                        unassigned = other
                        open_count += 1
                        if open_count > 1:
                            break
                    elif other_value == (other > 0):
                        satisfied = True
                        break
                if satisfied or open_count > 1:
                    continue
                if open_count == 0:
                    return False
                queue.append(unassigned)
        return True

    def _blocked_round(self, db: _OccurrenceDatabase, result: PreprocessResult) -> bool:
        """Remove clauses blocked on a non-frozen literal."""
        changed = False
        for clause_id in sorted(db.clauses):
            clause = db.clauses.get(clause_id)
            if clause is None:
                continue
            for lit in clause:
                if abs(lit) in result.frozen:
                    continue
                blocked = True
                for other_id in db.occurrences[-lit]:
                    if other_id == clause_id:
                        continue
                    if _resolve(clause, db.clauses[other_id], abs(lit)) is not None:
                        blocked = False
                        break
                if blocked:
                    db.remove(clause_id)
                    result.reconstruction.append((_BLOCKED, lit, (clause,)))
                    result.stats.blocked_clauses += 1
                    changed = True
                    break
        return changed


# --------------------------------------------------------------- registry wiring
from repro.api.registry import register_preprocessor  # noqa: E402  (import-time registration)


@register_preprocessor(
    "satelite",
    description="fixpoint UP + pure literals + subsumption/SSR + bounded variable elimination",
)
def _satelite_factory(**options) -> Preprocessor:
    """Build the default preprocessor; options are :class:`PreprocessConfig` fields."""
    return Preprocessor(PreprocessConfig(**options)) if options else Preprocessor()


@register_preprocessor(
    "units-only",
    description="fixpoint unit propagation and pure literals only (cheapest, equivalence-safe)",
)
def _units_only_factory(**options) -> Preprocessor:
    """A propagation-only pipeline (no clause-set rewriting beyond UP/pure)."""
    base = PreprocessConfig(
        subsumption=False, self_subsumption=False, variable_elimination=False
    )
    return Preprocessor(replace(base, **options) if options else base)


__all__ = [
    "PreprocessConfig",
    "PreprocessResult",
    "PreprocessStats",
    "Preprocessor",
    "SimplificationResult",
    "SimplifyConfig",
    "simplify_cnf",
    "validate_frozen",
]
