"""SatELite-style CNF simplification: subsumption, self-subsumption, variable elimination.

MiniSat (the algorithm ``A`` of the paper's experiments) ships with the
SatELite preprocessor; PDSAT inherited it.  This module reproduces the core
preprocessing techniques so that the effect of preprocessing on the predictive
function can be studied (``bench_ablation_preprocessing.py``) and so that
sub-instances can be shrunk before being handed to the pure-Python solvers:

* **subsumption** — a clause ``C`` subsumes ``D`` when ``C ⊆ D``; ``D`` is
  redundant and removed;
* **self-subsuming resolution** — when ``C = A ∨ l`` and ``D = A ∨ B ∨ ¬l``,
  the resolvent ``A ∨ B`` subsumes ``D``, so ``¬l`` can be stripped from ``D``;
* **bounded variable elimination (BVE)** — a variable is eliminated by
  replacing the clauses containing it with their pairwise resolvents, whenever
  that does not increase the clause count beyond a configured growth bound;
* **blocked clause elimination (BCE)** — a clause is blocked on a literal
  ``l`` when every resolvent with clauses containing ``¬l`` is a tautology;
  blocked clauses can be removed without affecting satisfiability.

All transformations preserve satisfiability; BVE and BCE do not preserve
logical equivalence, so :class:`SimplificationResult` records enough
information (eliminated-variable clause stacks, in elimination order) to extend
a model of the simplified formula back to a model of the original formula, the
way MiniSat's ``extend()`` does.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.sat.formula import CNF, Clause, normalize_clause


@dataclass
class SimplifyConfig:
    """Knobs of the simplification pipeline."""

    #: Enable subsumption / self-subsuming resolution.
    subsumption: bool = True
    #: Enable bounded variable elimination.
    variable_elimination: bool = True
    #: Enable blocked clause elimination.
    blocked_clause_elimination: bool = False
    #: A variable is eliminated only if the clause count grows by at most this much.
    max_growth: int = 0
    #: Never eliminate variables with more than this many occurrences (cost guard).
    max_occurrences: int = 20
    #: Variables that must never be eliminated (e.g. decomposition-set candidates).
    frozen: frozenset[int] = frozenset()

    def __post_init__(self) -> None:
        if self.max_occurrences < 1:
            raise ValueError("max_occurrences must be at least 1")


@dataclass
class SimplificationResult:
    """Outcome of :func:`simplify_cnf`.

    ``reconstruction`` is a stack of entries, in the order the simplifier
    removed things, that :meth:`extend_model` replays backwards to turn a model
    of the simplified formula into a model of the original formula:

    * ``("eliminated", variable, clauses)`` — the clauses that mentioned the
      variable when bounded variable elimination removed it;
    * ``("blocked", blocking_literal, (clause,))`` — a clause removed by
      blocked clause elimination together with its blocking literal.
    """

    cnf: CNF
    unsat: bool = False
    fixed: dict[int, bool] = field(default_factory=dict)
    reconstruction: list[tuple[str, int, tuple[Clause, ...]]] = field(default_factory=list)
    removed_subsumed: int = 0
    strengthened: int = 0
    removed_blocked: int = 0

    @property
    def eliminated(self) -> list[tuple[int, tuple[Clause, ...]]]:
        """Eliminated variables with their clause stacks, in elimination order."""
        return [
            (variable, clauses)
            for kind, variable, clauses in self.reconstruction
            if kind == "eliminated"
        ]

    @property
    def num_eliminated_variables(self) -> int:
        """Number of variables removed by bounded variable elimination."""
        return len(self.eliminated)

    def extend_model(self, model: dict[int, bool]) -> dict[int, bool]:
        """Extend a model of the simplified CNF to a model of the original CNF.

        Fixed variables are filled in directly; the reconstruction stack is
        replayed backwards — eliminated variables get a value satisfying every
        stored clause, and falsified blocked clauses are repaired by flipping
        their blocking literal (always sound because every resolvent on that
        literal is tautological).
        """
        extended = dict(model)
        extended.update(self.fixed)
        for kind, pivot, clauses in reversed(self.reconstruction):
            if kind == "eliminated":
                value_needed: bool | None = None
                for clause in clauses:
                    satisfied = False
                    for lit in clause:
                        if abs(lit) == pivot:
                            continue
                        if extended.get(abs(lit), False) == (lit > 0):
                            satisfied = True
                            break
                    if not satisfied:
                        polarity = next(lit > 0 for lit in clause if abs(lit) == pivot)
                        if value_needed is not None and value_needed != polarity:
                            raise ValueError(
                                f"cannot extend model: variable {pivot} is over-constrained"
                            )
                        value_needed = polarity
                extended[pivot] = value_needed if value_needed is not None else False
            else:  # blocked clause: pivot is the blocking literal
                (clause,) = clauses
                if not any(extended.get(abs(lit), False) == (lit > 0) for lit in clause):
                    extended[abs(pivot)] = pivot > 0
        return extended


def _resolve(first: Clause, second: Clause, variable: int) -> Clause | None:
    """The resolvent of two clauses on ``variable`` (``None`` when tautological)."""
    merged = [lit for lit in first if abs(lit) != variable]
    merged.extend(lit for lit in second if abs(lit) != variable)
    return normalize_clause(merged)


class _ClauseDatabase:
    """Mutable clause set with occurrence lists, used by the simplifier."""

    def __init__(self, cnf: CNF):
        self.clauses: dict[int, Clause] = {}
        self.occurrences: dict[int, set[int]] = defaultdict(set)
        self.unsat = False
        self._next_id = 0
        for clause in cnf.clauses:
            norm = normalize_clause(clause)
            if norm is None:
                continue
            if not norm:
                self.unsat = True
                return
            self.add(norm)

    def add(self, clause: Clause) -> int:
        """Insert a clause and index its literals; duplicates are kept harmless."""
        clause_id = self._next_id
        self._next_id += 1
        self.clauses[clause_id] = clause
        for lit in clause:
            self.occurrences[lit].add(clause_id)
        return clause_id

    def remove(self, clause_id: int) -> None:
        """Delete a clause and unindex it."""
        clause = self.clauses.pop(clause_id)
        for lit in clause:
            self.occurrences[lit].discard(clause_id)

    def replace(self, clause_id: int, new_clause: Clause) -> None:
        """Replace the clause in place (used by self-subsuming strengthening)."""
        self.remove(clause_id)
        if not new_clause:
            self.unsat = True
            return
        self.add(new_clause)

    def clauses_with(self, lit: int) -> list[int]:
        """Ids of clauses currently containing the literal."""
        return list(self.occurrences[lit])

    def occurrences_of_variable(self, variable: int) -> int:
        """Number of clauses mentioning the variable in either polarity."""
        return len(self.occurrences[variable]) + len(self.occurrences[-variable])

    def variables(self) -> set[int]:
        """Variables occurring in some clause."""
        return {abs(lit) for lit, ids in self.occurrences.items() if ids}

    def to_cnf(self, num_vars: int) -> CNF:
        """Materialise the database back into a CNF (stable clause order)."""
        ordered = [self.clauses[cid] for cid in sorted(self.clauses)]
        return CNF(ordered, num_vars)


def _propagate_units(db: _ClauseDatabase, fixed: dict[int, bool]) -> bool:
    """Apply every unit clause in ``db``; returns False on conflict."""
    changed = True
    while changed and not db.unsat:
        changed = False
        for clause_id, clause in list(db.clauses.items()):
            if clause_id not in db.clauses:
                continue
            if len(clause) != 1:
                continue
            lit = clause[0]
            variable, value = abs(lit), lit > 0
            if variable in fixed and fixed[variable] != value:
                return False
            fixed[variable] = value
            changed = True
            for sat_id in db.clauses_with(lit):
                db.remove(sat_id)
            for shrink_id in db.clauses_with(-lit):
                shorter = tuple(l for l in db.clauses[shrink_id] if l != -lit)
                if not shorter:
                    return False
                db.replace(shrink_id, shorter)
    return True


def _subsumption_round(db: _ClauseDatabase, result: SimplificationResult) -> bool:
    """One pass of subsumption + self-subsuming resolution; True when anything changed."""
    changed = False
    for clause_id in sorted(db.clauses, key=lambda cid: len(db.clauses.get(cid, ()))):
        clause = db.clauses.get(clause_id)
        if clause is None:
            continue
        # Candidate superset clauses share the clause's rarest literal.
        rarest = min(clause, key=lambda lit: len(db.occurrences[lit]))
        for other_id in db.clauses_with(rarest):
            if other_id == clause_id:
                continue
            other = db.clauses.get(other_id)
            if other is None or len(other) < len(clause):
                continue
            if set(clause) <= set(other):
                db.remove(other_id)
                result.removed_subsumed += 1
                changed = True
        # Self-subsuming resolution: clause = A ∨ l strengthens A ∨ B ∨ ¬l.
        for lit in clause:
            rest = set(clause) - {lit}
            for other_id in db.clauses_with(-lit):
                other = db.clauses.get(other_id)
                if other is None:
                    continue
                if rest <= (set(other) - {-lit}):
                    strengthened = tuple(l for l in other if l != -lit)
                    db.replace(other_id, strengthened)
                    result.strengthened += 1
                    changed = True
                    if db.unsat:
                        return True
    return changed


def _try_eliminate_variable(
    db: _ClauseDatabase, variable: int, config: SimplifyConfig, result: SimplificationResult
) -> bool:
    """Eliminate ``variable`` by resolution when the growth bound allows it."""
    positive_ids = db.clauses_with(variable)
    negative_ids = db.clauses_with(-variable)
    if not positive_ids and not negative_ids:
        return False
    if len(positive_ids) + len(negative_ids) > config.max_occurrences:
        return False

    resolvents: list[Clause] = []
    for pos_id in positive_ids:
        for neg_id in negative_ids:
            resolvent = _resolve(db.clauses[pos_id], db.clauses[neg_id], variable)
            if resolvent is None:
                continue
            if not resolvent:
                db.unsat = True
                return True
            resolvents.append(resolvent)
    if len(resolvents) > len(positive_ids) + len(negative_ids) + config.max_growth:
        return False

    original = tuple(db.clauses[cid] for cid in positive_ids + negative_ids)
    for clause_id in positive_ids + negative_ids:
        db.remove(clause_id)
    for resolvent in resolvents:
        db.add(resolvent)
    result.reconstruction.append(("eliminated", variable, original))
    return True


def _blocked_clause_round(db: _ClauseDatabase, config: SimplifyConfig, result: SimplificationResult) -> bool:
    """Remove clauses blocked on some literal; True when anything was removed."""
    changed = False
    for clause_id, clause in list(db.clauses.items()):
        if clause_id not in db.clauses:
            continue
        for lit in clause:
            if abs(lit) in config.frozen:
                continue
            blocked = True
            for other_id in db.clauses_with(-lit):
                if other_id == clause_id:
                    continue
                if _resolve(clause, db.clauses[other_id], abs(lit)) is not None:
                    blocked = False
                    break
            if blocked:
                db.remove(clause_id)
                result.removed_blocked += 1
                result.reconstruction.append(("blocked", lit, (clause,)))
                changed = True
                break
    return changed


def simplify_cnf(cnf: CNF, config: SimplifyConfig | None = None) -> SimplificationResult:
    """Run the SatELite-style pipeline on ``cnf`` and return the simplified formula.

    The pipeline alternates unit propagation, subsumption/strengthening,
    bounded variable elimination and (optionally) blocked clause elimination
    until a fixed point.  Satisfiability is preserved; use
    :meth:`SimplificationResult.extend_model` to map models back.
    """
    config = config or SimplifyConfig()
    db = _ClauseDatabase(cnf)
    result = SimplificationResult(cnf=cnf)
    if db.unsat:
        result.unsat = True
        result.cnf = CNF([()], cnf.num_vars)
        return result

    fixed: dict[int, bool] = {}
    changed = True
    while changed and not db.unsat:
        changed = False
        if not _propagate_units(db, fixed):
            db.unsat = True
            break
        if config.subsumption and _subsumption_round(db, result):
            changed = True
        if db.unsat:
            break
        if config.variable_elimination:
            for variable in sorted(db.variables()):
                if variable in config.frozen or variable in fixed:
                    continue
                if db.occurrences_of_variable(variable) == 0:
                    continue
                if _try_eliminate_variable(db, variable, config, result):
                    changed = True
                if db.unsat:
                    break
        if db.unsat:
            break
        if config.blocked_clause_elimination and _blocked_clause_round(db, config, result):
            changed = True

    result.fixed = fixed
    if db.unsat:
        result.unsat = True
        result.cnf = CNF([()], cnf.num_vars)
        return result
    result.cnf = db.to_cnf(cnf.num_vars)
    return result
