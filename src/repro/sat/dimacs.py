"""DIMACS CNF reader and writer.

The DIMACS format is the lingua franca of SAT solving; supporting it lets the
library exchange instances with external tools (and lets users feed their own
instances into the partitioning search).  The parser is forgiving about the
quirks found in the wild: missing or inconsistent ``p cnf`` headers, clauses
spanning several lines, ``%``-terminated files produced by some generators.
"""

from __future__ import annotations

import io
from pathlib import Path

from repro.sat.formula import CNF


class DimacsError(ValueError):
    """Raised when a DIMACS document cannot be parsed."""


def parse_dimacs(text: str, strict: bool = False) -> CNF:
    """Parse DIMACS CNF from a string.

    Parameters
    ----------
    text:
        The DIMACS document.
    strict:
        When true, require a ``p cnf`` header and verify that the declared
        number of variables and clauses matches the content.
    """
    comments: list[str] = []
    clauses: list[tuple[int, ...]] = []
    declared_vars: int | None = None
    declared_clauses: int | None = None
    current: list[int] = []

    for raw_line in io.StringIO(text):
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("c"):
            comments.append(line[1:].strip())
            continue
        if line.startswith("%"):
            break
        if line.startswith("p"):
            fields = line.split()
            if len(fields) != 4 or fields[1] != "cnf":
                raise DimacsError(f"malformed problem line: {line!r}")
            try:
                declared_vars = int(fields[2])
                declared_clauses = int(fields[3])
            except ValueError as exc:
                raise DimacsError(f"malformed problem line: {line!r}") from exc
            continue
        for token in line.split():
            try:
                lit = int(token)
            except ValueError as exc:
                raise DimacsError(f"unexpected token {token!r}") from exc
            if lit == 0:
                clauses.append(tuple(current))
                current = []
            else:
                current.append(lit)

    if current:
        # Clause without trailing 0 — accept it unless strict.
        if strict:
            raise DimacsError("last clause is missing its terminating 0")
        clauses.append(tuple(current))

    if strict:
        if declared_vars is None or declared_clauses is None:
            raise DimacsError("missing 'p cnf' header")
        if declared_clauses != len(clauses):
            raise DimacsError(
                f"header declares {declared_clauses} clauses but {len(clauses)} were found"
            )
        max_var = max((abs(l) for clause in clauses for l in clause), default=0)
        if max_var > declared_vars:
            raise DimacsError(
                f"header declares {declared_vars} variables but variable {max_var} is used"
            )

    num_vars = declared_vars or 0
    return CNF(clauses, num_vars=num_vars, comments=comments)


def parse_dimacs_file(path: str | Path, strict: bool = False) -> CNF:
    """Parse a DIMACS CNF file from disk."""
    return parse_dimacs(Path(path).read_text(), strict=strict)


def write_dimacs(cnf: CNF, include_comments: bool = True) -> str:
    """Serialise a CNF to a DIMACS string."""
    lines: list[str] = []
    if include_comments:
        for comment in cnf.comments:
            lines.append(f"c {comment}")
    lines.append(f"p cnf {cnf.num_vars} {cnf.num_clauses}")
    for clause in cnf.clauses:
        lines.append(" ".join(str(lit) for lit in clause) + " 0")
    return "\n".join(lines) + "\n"


def write_dimacs_file(cnf: CNF, path: str | Path, include_comments: bool = True) -> None:
    """Write a CNF to a DIMACS file."""
    Path(path).write_text(write_dimacs(cnf, include_comments=include_comments))
