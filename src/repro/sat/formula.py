"""CNF formulas and literal conventions.

Literals follow the DIMACS convention used throughout the library: a literal is
a non-zero signed integer, ``+v`` for the positive literal of variable ``v`` and
``-v`` for the negated literal.  Variables are positive integers numbered from
1.  Clauses are tuples of literals; a CNF is an ordered collection of clauses
plus the number of variables.

The representation is deliberately simple and immutable-ish (clauses are stored
as tuples) so that formulas can be hashed, shared between threads and processes,
and reasoned about easily in tests.  Solvers convert to their own internal
representation on construction.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field

Clause = tuple[int, ...]


def neg(lit: int) -> int:
    """Return the negation of a literal."""
    if lit == 0:
        raise ValueError("0 is not a valid literal")
    return -lit


def lit_to_var(lit: int) -> int:
    """Return the variable of a literal (always positive)."""
    if lit == 0:
        raise ValueError("0 is not a valid literal")
    return abs(lit)


def var_to_lit(var: int, positive: bool = True) -> int:
    """Build a literal from a variable and a polarity."""
    if var <= 0:
        raise ValueError(f"variables must be positive integers, got {var}")
    return var if positive else -var


def normalize_clause(literals: Iterable[int]) -> Clause | None:
    """Normalise a clause: deduplicate literals, sort, detect tautologies.

    Returns ``None`` when the clause is a tautology (contains both ``l`` and
    ``-l``), otherwise the sorted tuple of distinct literals.  An empty input
    yields the empty clause ``()`` which denotes falsity.
    """
    seen: set[int] = set()
    for lit in literals:
        if lit == 0:
            raise ValueError("0 terminator is not allowed inside a clause")
        if -lit in seen:
            return None
        seen.add(lit)
    return tuple(sorted(seen, key=lambda l: (abs(l), l < 0)))


@dataclass
class CNF:
    """A propositional formula in conjunctive normal form.

    Parameters
    ----------
    clauses:
        Iterable of clauses; each clause is an iterable of non-zero ints.
    num_vars:
        Number of variables.  If omitted it is inferred as the largest variable
        index mentioned in the clauses.  It may be larger than the largest
        mentioned variable (useful when some variables are unconstrained).
    comments:
        Free-form comment lines carried through DIMACS round trips.
    """

    clauses: list[Clause] = field(default_factory=list)
    num_vars: int = 0
    comments: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        cleaned: list[Clause] = []
        max_var = 0
        for clause in self.clauses:
            tup = tuple(clause)
            for lit in tup:
                if lit == 0:
                    raise ValueError("0 terminator is not allowed inside a clause")
                max_var = max(max_var, abs(lit))
            cleaned.append(tup)
        self.clauses = cleaned
        if self.num_vars < max_var:
            self.num_vars = max_var

    # ------------------------------------------------------------------ basic
    @property
    def num_clauses(self) -> int:
        """Number of clauses."""
        return len(self.clauses)

    def __len__(self) -> int:
        return len(self.clauses)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self.clauses)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CNF):
            return NotImplemented
        return self.num_vars == other.num_vars and self.clauses == other.clauses

    def variables(self) -> set[int]:
        """Set of variables that actually occur in some clause."""
        occurring: set[int] = set()
        for clause in self.clauses:
            for lit in clause:
                occurring.add(abs(lit))
        return occurring

    # ------------------------------------------------------------- construction
    def add_clause(self, literals: Iterable[int]) -> None:
        """Append one clause, updating ``num_vars`` as needed."""
        tup = tuple(literals)
        for lit in tup:
            if lit == 0:
                raise ValueError("0 terminator is not allowed inside a clause")
            if abs(lit) > self.num_vars:
                self.num_vars = abs(lit)
        self.clauses.append(tup)

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        """Append several clauses."""
        for clause in clauses:
            self.add_clause(clause)

    def new_var(self) -> int:
        """Allocate (and return) a fresh variable index."""
        self.num_vars += 1
        return self.num_vars

    def copy(self) -> "CNF":
        """Return a shallow copy (clauses are immutable tuples)."""
        return CNF(list(self.clauses), self.num_vars, list(self.comments))

    # ------------------------------------------------------------- operations
    def assign(self, assignment: dict[int, bool]) -> "CNF":
        """Return the formula obtained by substituting a partial assignment.

        Clauses satisfied by the assignment are dropped; falsified literals are
        removed from the remaining clauses.  If some clause becomes empty the
        result contains the empty clause (i.e. is trivially unsatisfiable).
        The variable numbering is preserved (no renumbering is performed), which
        keeps decomposition-set bookkeeping simple.
        """
        new_clauses: list[Clause] = []
        for clause in self.clauses:
            satisfied = False
            remaining: list[int] = []
            for lit in clause:
                var = abs(lit)
                if var in assignment:
                    value = assignment[var]
                    if (lit > 0) == value:
                        satisfied = True
                        break
                else:
                    remaining.append(lit)
            if not satisfied:
                new_clauses.append(tuple(remaining))
        return CNF(new_clauses, self.num_vars, list(self.comments))

    def with_unit_clauses(self, assignment: dict[int, bool]) -> "CNF":
        """Return a copy of the formula extended with unit clauses for ``assignment``.

        This is the standard way to "weaken" / decompose an instance without
        rewriting its clauses: the sub-instance ``C[X̃/α]`` of the paper is
        logically equivalent to ``C ∧ {unit clauses encoding α}`` and a CDCL
        solver handles the units during preprocessing.
        """
        result = self.copy()
        for var, value in sorted(assignment.items()):
            result.add_clause((var if value else -var,))
        return result

    def restrict_to_clauses(self, predicate) -> "CNF":
        """Return a CNF containing only the clauses for which ``predicate`` holds."""
        return CNF([c for c in self.clauses if predicate(c)], self.num_vars, list(self.comments))

    def is_satisfied_by(self, model: Sequence[bool] | dict[int, bool]) -> bool:
        """Check whether a full assignment satisfies every clause.

        ``model`` may be a dict ``{var: bool}`` or a sequence where index ``v-1``
        holds the value of variable ``v``.
        """
        getter = _model_getter(model)
        for clause in self.clauses:
            if not any(getter(abs(lit)) == (lit > 0) for lit in clause):
                return False
        return True

    def falsified_clauses(self, model: Sequence[bool] | dict[int, bool]) -> list[Clause]:
        """Return the clauses falsified by a full assignment (useful in tests)."""
        getter = _model_getter(model)
        return [
            clause
            for clause in self.clauses
            if not any(getter(abs(lit)) == (lit > 0) for lit in clause)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"CNF(num_vars={self.num_vars}, num_clauses={self.num_clauses})"


def _model_getter(model: Sequence[bool] | dict[int, bool]):
    """Return a ``var -> bool`` accessor for the two supported model shapes."""
    if isinstance(model, dict):
        return lambda var: bool(model[var])
    return lambda var: bool(model[var - 1])
