"""Random CNF generators.

Used by tests and by the Monte Carlo convergence benchmark: uniform random
k-SAT around the phase-transition density produces sub-problems with a wide
runtime spread, which is exactly the regime where the variance-reduction
properties of the predictive function matter.
"""

from __future__ import annotations

import random

from repro.sat.formula import CNF


def random_ksat(
    num_vars: int,
    num_clauses: int,
    k: int = 3,
    seed: int = 0,
) -> CNF:
    """Generate a uniform random k-SAT instance.

    Each clause picks ``k`` distinct variables uniformly at random and negates
    each independently with probability 1/2.
    """
    if k > num_vars:
        raise ValueError(f"clause width k={k} exceeds num_vars={num_vars}")
    rng = random.Random(seed)
    variables = list(range(1, num_vars + 1))
    clauses: list[tuple[int, ...]] = []
    for _ in range(num_clauses):
        chosen = rng.sample(variables, k)
        clause = tuple(v if rng.random() < 0.5 else -v for v in chosen)
        clauses.append(clause)
    cnf = CNF(clauses, num_vars)
    cnf.comments.append(f"random {k}-SAT n={num_vars} m={num_clauses} seed={seed}")
    return cnf


def random_ksat_at_ratio(num_vars: int, ratio: float = 4.26, k: int = 3, seed: int = 0) -> CNF:
    """Random k-SAT with ``m = round(ratio * n)`` clauses (4.26 is the 3-SAT threshold)."""
    return random_ksat(num_vars, round(ratio * num_vars), k=k, seed=seed)


def planted_ksat(
    num_vars: int,
    num_clauses: int,
    k: int = 3,
    seed: int = 0,
) -> tuple[CNF, dict[int, bool]]:
    """Generate a satisfiable k-SAT instance with a planted solution.

    Every clause is filtered to be satisfied by a hidden random assignment,
    which is returned alongside the formula so tests can verify that solvers
    find *some* model (not necessarily the planted one).
    """
    if k > num_vars:
        raise ValueError(f"clause width k={k} exceeds num_vars={num_vars}")
    rng = random.Random(seed)
    planted = {v: rng.random() < 0.5 for v in range(1, num_vars + 1)}
    variables = list(range(1, num_vars + 1))
    clauses: list[tuple[int, ...]] = []
    while len(clauses) < num_clauses:
        chosen = rng.sample(variables, k)
        clause = tuple(v if rng.random() < 0.5 else -v for v in chosen)
        if any(planted[abs(lit)] == (lit > 0) for lit in clause):
            clauses.append(clause)
    cnf = CNF(clauses, num_vars)
    cnf.comments.append(f"planted {k}-SAT n={num_vars} m={num_clauses} seed={seed}")
    return cnf, planted


def random_unsat_core(num_vars: int, seed: int = 0) -> CNF:
    """A small unsatisfiable formula: a planted pigeonhole-style chain plus contradiction.

    Generates an instance that is unsatisfiable by construction (it contains
    ``x`` and ``¬x`` chained through implications), useful for UNSAT-path tests
    without relying on a solver to certify unsatisfiability.
    """
    rng = random.Random(seed)
    if num_vars < 2:
        raise ValueError("need at least 2 variables")
    order = list(range(1, num_vars + 1))
    rng.shuffle(order)
    clauses: list[tuple[int, ...]] = [(order[0],)]
    for a, b in zip(order, order[1:]):
        clauses.append((-a, b))  # a -> b
    clauses.append((-order[-1],))
    return CNF(clauses, num_vars)


def pigeonhole(holes: int) -> CNF:
    """The pigeonhole principle PHP(holes+1, holes) — canonically hard for resolution.

    Variable ``p(i, j)`` (pigeon ``i`` in hole ``j``) is numbered
    ``i * holes + j + 1`` for ``i in range(holes + 1)``, ``j in range(holes)``.
    The formula is unsatisfiable and its difficulty grows super-polynomially,
    which makes it a convenient knob for "hard sub-problem" tests.
    """
    if holes < 1:
        raise ValueError("need at least one hole")
    pigeons = holes + 1

    def var(i: int, j: int) -> int:
        return i * holes + j + 1

    clauses: list[tuple[int, ...]] = []
    for i in range(pigeons):
        clauses.append(tuple(var(i, j) for j in range(holes)))
    for j in range(holes):
        for i1 in range(pigeons):
            for i2 in range(i1 + 1, pigeons):
                clauses.append((-var(i1, j), -var(i2, j)))
    return CNF(clauses, pigeons * holes)
