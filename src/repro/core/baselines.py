"""Baseline decomposition strategies.

The Table 2 comparison of the paper puts the tabu-search-found decomposition
set against two prior approaches:

* the fixed strategies of Eibach, Pilz & Völkel ("Attacking Bivium Using SAT
  Solvers"), the best of which fixes the **last 45 cells of the second shift
  register** — reproduced here by :func:`last_register_cells`;
* the CryptoMiniSat-style estimates of Soos et al., which amount to estimating
  over whatever variables the solver happens to branch on — approximated here
  by :func:`most_active_variables` (the top-k variables by conflict activity of
  a probing solver run), plus :func:`random_decomposition` as a sanity floor.

All baselines return plain variable lists so they can be fed to
:class:`~repro.core.predictive.PredictiveFunction` exactly like the points
found by the metaheuristics.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.problems.inversion import InversionInstance
from repro.sat.cdcl import CDCLSolver
from repro.sat.formula import CNF
from repro.sat.solver import Solver, SolverBudget


def last_register_cells(instance: InversionInstance, count: int, register: str | None = None) -> list[int]:
    """The Eibach-style fixed strategy: the last ``count`` cells of one register.

    ``register`` defaults to the last declared register of the generator (the
    second shift register for Bivium, matching the strategy of the paper's
    Table 2 reference).
    """
    reg_names = list(instance.generator.registers())
    reg = register if register is not None else reg_names[-1]
    if reg not in instance.register_vars:
        raise KeyError(f"unknown register {reg!r}")
    reg_vars = instance.register_vars[reg]
    if count > len(reg_vars):
        raise ValueError(f"register {reg!r} has only {len(reg_vars)} cells")
    return list(reg_vars[-count:])


def first_register_cells(instance: InversionInstance, count: int, register: str | None = None) -> list[int]:
    """The first ``count`` cells of one register (another fixed strategy)."""
    reg_names = list(instance.generator.registers())
    reg = register if register is not None else reg_names[0]
    reg_vars = instance.register_vars[reg]
    if count > len(reg_vars):
        raise ValueError(f"register {reg!r} has only {len(reg_vars)} cells")
    return list(reg_vars[:count])


def full_start_set(instance: InversionInstance) -> list[int]:
    """The whole state (the SUPBS start point ``X̃_start`` itself)."""
    return list(instance.free_start_variables or instance.start_set)


def random_decomposition(
    candidates: Sequence[int], size: int, seed: int = 0
) -> list[int]:
    """A uniformly random subset of ``candidates`` of the given size."""
    if size > len(candidates):
        raise ValueError(f"cannot pick {size} variables out of {len(candidates)}")
    rng = random.Random(seed)
    return sorted(rng.sample(list(candidates), size))


def most_active_variables(
    cnf: CNF,
    candidates: Sequence[int],
    size: int,
    solver: Solver | None = None,
    probe_conflicts: int = 2000,
) -> list[int]:
    """Top-``size`` candidate variables by conflict activity of a probing run.

    A budgeted CDCL run on the full instance accumulates VSIDS activity; the
    candidates with the highest activity approximate "the variables the solver
    likes to branch on", which is the spirit of the CryptoMiniSat-based
    estimates the paper compares against in Table 2.
    """
    if size > len(candidates):
        raise ValueError(f"cannot pick {size} variables out of {len(candidates)}")
    solver = solver if solver is not None else CDCLSolver()
    result = solver.solve(cnf, budget=SolverBudget(max_conflicts=probe_conflicts))
    activity = result.conflict_activity
    ranked = sorted(candidates, key=lambda v: (-activity.get(v, 0.0), v))
    return sorted(ranked[:size])
