"""Hill-climbing minimisation of the predictive function (ablation baselines).

The paper uses simulated annealing and tabu search; plain hill climbing is the
natural ablation baseline in between — it is what either metaheuristic
degenerates to when the "escape a local minimum" machinery is switched off.
Two classic variants are provided:

* **first-improvement** — move to the first neighbour that improves on the
  current centre (cheap steps, possibly many of them);
* **steepest-descent** — evaluate the whole neighbourhood and move to its best
  point (expensive steps, the same per-step cost profile as tabu search without
  the tabu-list restarts).

Both stop at the first local minimum (or when the shared
:class:`~repro.core.optimizer.StoppingCriteria` budget runs out), which is
exactly the behaviour the paper's two metaheuristics are designed to avoid —
the metaheuristic ablation benchmark quantifies how much that matters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.optimizer import (
    BaseMinimizer,
    MinimizationResult,
    StoppingCriteria,
    VisitedPoint,
)
from repro.core.predictive import PredictiveFunction
from repro.core.search_space import SearchPoint, SearchSpace


@dataclass
class HillClimbConfig:
    """Parameters of the hill-climbing walk."""

    #: ``"first"`` (first-improvement) or ``"steepest"`` (best of the neighbourhood).
    strategy: str = "steepest"
    #: Neighbourhood radius.
    radius: int = 1

    def __post_init__(self) -> None:
        if self.strategy not in ("first", "steepest"):
            raise ValueError("strategy must be 'first' or 'steepest'")
        if self.radius < 1:
            raise ValueError("radius must be at least 1")


class HillClimbingMinimizer(BaseMinimizer):
    """Greedy descent over the decomposition-set search space."""

    def __init__(
        self,
        evaluator: PredictiveFunction,
        search_space: SearchSpace,
        config: HillClimbConfig | None = None,
        stopping: StoppingCriteria | None = None,
    ):
        super().__init__(evaluator, search_space, stopping)
        self.config = config or HillClimbConfig()

    def minimize(self, start_point: SearchPoint | None = None) -> MinimizationResult:
        """Descend from ``start_point`` until a local minimum or the budget limit."""
        started_at = time.perf_counter()
        self._begin_run()
        center = start_point if start_point is not None else self.space.start_point()
        if not center:
            raise ValueError("the start point must be non-empty")

        center_result = self._evaluate(center)
        best_point, best_value, best_result = center, center_result.value, center_result
        trajectory = [VisitedPoint(center, center_result.value, True, 0)]
        checked: set[SearchPoint] = {center}

        stop_reason: str | None = None
        while stop_reason is None:
            improved = False
            best_neighbor: SearchPoint | None = None
            best_neighbor_value = best_value
            best_neighbor_result = None
            for neighbor in self.space.unchecked_neighbors(center, checked, self.config.radius):
                limit = self._stop_reason(started_at)
                if limit is not None:
                    stop_reason = limit
                    break
                result = self._evaluate(neighbor)
                checked.add(neighbor)
                value = result.value
                is_improvement = value < best_neighbor_value
                trajectory.append(
                    VisitedPoint(neighbor, value, value < best_value, len(trajectory))
                )
                if is_improvement:
                    best_neighbor, best_neighbor_value, best_neighbor_result = (
                        neighbor,
                        value,
                        result,
                    )
                    improved = True
                    if self.config.strategy == "first":
                        break
            if stop_reason is not None:
                break
            if not improved or best_neighbor is None:
                stop_reason = "local_minimum"
                break
            center = best_neighbor
            best_point, best_value = best_neighbor, best_neighbor_value
            assert best_neighbor_result is not None
            best_result = best_neighbor_result

        return MinimizationResult(
            best_point=best_point,
            best_value=best_value,
            best_prediction=best_result,
            final_center=center,
            num_evaluations=self._run_evaluations(),
            num_subproblem_solves=self._run_subproblem_solves(),
            wall_time=time.perf_counter() - started_at,
            trajectory=trajectory,
            stop_reason=stop_reason or "local_minimum",
        )


# --------------------------------------------------------------- registry wiring
from repro.api.registry import register_minimizer  # noqa: E402  (import-time registration)


@register_minimizer("hillclimb", description="greedy hill climbing (ablation baseline)")
def _hillclimb_factory(
    evaluator: PredictiveFunction,
    search_space: SearchSpace,
    *,
    stopping=None,
    seed: int = 0,
    config: HillClimbConfig | None = None,
    **options,
) -> HillClimbingMinimizer:
    """Build a hill-climbing minimiser; options are :class:`HillClimbConfig` fields."""
    del seed  # greedy descent is deterministic given the evaluator's sampling seed
    if config is None and options:
        config = HillClimbConfig(**options)
    return HillClimbingMinimizer(evaluator, search_space, config=config, stopping=stopping)
